// Ablation A1: the co-processor source-switch penalty.
//
// DESIGN.md calls out the receiver co-processor switching cost as the
// mechanism behind Fig. 8's "buffers smaller than 10K are much slower
// for stream merging than for point-to-point". This ablation re-runs the
// merge experiment with the penalty scaled by 0x / 0.5x / 1x / 2x: with
// the penalty removed, small-buffer merging should approach
// point-to-point efficiency; doubling it should push the knee right.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace scsq::bench;
  print_banner("Ablation A1", "source-switch penalty scaling (merge, balanced placement)");

  const std::vector<double> scales = {0.0, 0.5, 1.0, 2.0};
  const std::vector<std::uint64_t> buffer_sizes = {1000, 3000, 10000, 100000};

  std::vector<QueryPoint> points;
  for (auto buf : buffer_sizes) {
    const int arrays = arrays_for_buffer(buf);
    const std::uint64_t payload = 2 * kArrayBytes * static_cast<std::uint64_t>(arrays);
    for (double s : scales) {
      auto cost = scsq::hw::CostModel::lofar();
      cost.torus.source_switch_penalty_s *= s;
      points.push_back({merge_query(1, 4, kArrayBytes, arrays), payload, cost, buf, 2,
                        buf + static_cast<std::uint64_t>(s * 10)});
    }
  }
  const auto stats = run_points(points);

  std::printf("%10s", "buffer(B)");
  for (double s : scales) std::printf("      switch x%.1f", s);
  std::printf("   [Mbit/s]\n");

  std::size_t k = 0;
  for (auto buf : buffer_sizes) {
    std::printf("%10llu", static_cast<unsigned long long>(buf));
    for (std::size_t j = 0; j < scales.size(); ++j) std::printf("  %15.1f", stats[k++].mean());
    std::printf("\n");
  }
  std::printf(
      "\nExpected: without the penalty (x0.0) the small-buffer merge collapse\n"
      "disappears; scaling it up moves the knee toward larger buffers.\n");
  return 0;
}
