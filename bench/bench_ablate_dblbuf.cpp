// Ablation A2: what double buffering actually buys.
//
// The paper's MPI drivers "contain double buffers so that one buffer can
// be processed while the other one is read or written" (§2.3). This
// ablation sweeps the number of send buffers 1..4 on the Fig. 6
// point-to-point experiment: the second buffer overlaps marshal with
// transmission (the paper's double buffering); buffers beyond two add
// little because the pipeline only has two producer-side stages.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace scsq::bench;
  print_banner("Ablation A2", "send-buffer count 1..4 (point-to-point)");

  const std::vector<std::uint64_t> buffer_sizes = {1000, 10000, 100000, 1000000};

  std::vector<QueryPoint> points;
  for (auto buf : buffer_sizes) {
    const int arrays = arrays_for_buffer(buf);
    const std::uint64_t payload = kArrayBytes * static_cast<std::uint64_t>(arrays);
    for (int nb = 1; nb <= 4; ++nb) {
      points.push_back({p2p_query(kArrayBytes, arrays), payload,
                        scsq::hw::CostModel::lofar(), buf, nb,
                        buf * 10 + static_cast<std::uint64_t>(nb)});
    }
  }
  const auto stats = run_points(points);

  std::printf("%10s", "buffer(B)");
  for (int nb = 1; nb <= 4; ++nb) std::printf("    %d buffer(s)", nb);
  std::printf("   [Mbit/s]\n");

  std::size_t k = 0;
  for (auto buf : buffer_sizes) {
    std::printf("%10llu", static_cast<unsigned long long>(buf));
    for (int nb = 1; nb <= 4; ++nb) std::printf("  %12.1f", stats[k++].mean());
    std::printf("\n");
  }
  std::printf(
      "\nExpected: the 1 -> 2 step gives the paper's double-buffering gain;\n"
      "3 and 4 buffers add little (the marshal stage is already hidden).\n");
  return 0;
}
