// Ablation A3: node-selection strategies for inbound streaming.
//
// The paper concludes that its naive node-selection algorithm should be
// extended with the Fig. 15 findings: prefer many I/O nodes (psetrr
// spreading), co-locate back-end producers, and add a second receiving
// compute node when I/O nodes are scarce. This ablation compares, at
// several n, the bandwidth of:
//   naive     — no allocation sequence (next available BG node: all
//               receivers land in pset 0, one I/O node)
//   inpset    — receivers pinned to one pset (Query 3 topology)
//   psetrr    — receivers spread round-robin over psets (Query 5)
//   psetrr+urr— spread receivers AND spread back-end senders (Query 6)
#include <cstdio>
#include <sstream>
#include <vector>

#include "common.hpp"

namespace {

std::string nodesel_query(const char* b_alloc, const char* a_alloc, int n,
                          std::uint64_t bytes, int arrays) {
  std::ostringstream q;
  q << "select extract(c) from bag of sp a, bag of sp b, sp c, integer n"
    << " where c=sp(streamof(sum(merge(b))), 'bg')"
    << " and b=spv((select streamof(count(extract(p))) from sp p where p in a), 'bg'"
    << (b_alloc[0] ? std::string(", ") + b_alloc : "") << ")"
    << " and a=spv((select gen_array(" << bytes << "," << arrays << ")"
    << " from integer i where i in iota(1,n)), 'be', " << a_alloc << ")"
    << " and n=" << n << ";";
  return q.str();
}

}  // namespace

int main() {
  using namespace scsq::bench;
  print_banner("Ablation A3", "node-selection strategies for inbound streaming");

  struct Strategy {
    const char* name;
    const char* b_alloc;
    const char* a_alloc;
  };
  const std::vector<Strategy> strategies = {
      {"naive", "", "1"},
      {"inpset", "inPset(1)", "1"},
      {"psetrr", "psetrr()", "1"},
      {"psetrr+urr", "psetrr()", "urr('be')"},
  };
  const std::vector<int> ns = {1, 2, 4, 6, 8};
  const int arrays = quick_mode() ? 10 : kFullArrays;

  std::vector<QueryPoint> points;
  for (int n : ns) {
    const std::uint64_t payload =
        static_cast<std::uint64_t>(n) * kArrayBytes * static_cast<std::uint64_t>(arrays);
    for (const auto& s : strategies) {
      points.push_back({nodesel_query(s.b_alloc, s.a_alloc, n, kArrayBytes, arrays),
                        payload, scsq::hw::CostModel::lofar(), 64 * 1024, 2,
                        static_cast<std::uint64_t>(n * 131 + (s.b_alloc[0] ? 1 : 0) * 17 +
                                                   (s.a_alloc[0] == 'u' ? 1 : 0) * 29)});
    }
  }
  const auto stats = run_points(points);

  std::printf("%4s", "n");
  for (const auto& s : strategies) std::printf("  %14s", s.name);
  std::printf("   [Mbit/s]\n");

  std::size_t k = 0;
  for (int n : ns) {
    std::printf("%4d", n);
    for (std::size_t j = 0; j < strategies.size(); ++j) std::printf("  %14.1f", stats[k++].mean());
    std::printf("\n");
  }
  std::printf(
      "\nExpected: psetrr dominates once n > 1 (it recruits more I/O nodes);\n"
      "spreading senders too (psetrr+urr) loses bandwidth to I/O-node\n"
      "coordination — co-locating back-end producers wins, as the paper\n"
      "concludes for the future node-selection algorithm.\n");
  return 0;
}
