// Ablation A4: the paper's proposed node-selection extension.
//
// The paper closes with "we are currently experimenting with refinements
// of the node selection algorithm for the BlueGene based on the results
// of this paper". This bench quantifies that refinement: the same
// inbound query WITHOUT user allocation sequences, run under
//   naive  — the paper's current algorithm (next available node: all
//            receivers land in pset 0, sharing one I/O node), and
//   spread — the topology-aware extension (receivers spread across
//            psets, like the best-performing Query 5 placement).
#include <cstdio>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "exec/engine.hpp"

namespace {

std::string unhinted_inbound_query(int n, std::uint64_t bytes, int arrays) {
  std::ostringstream q;
  q << "select extract(c) from bag of sp a, bag of sp b, sp c, integer n"
    << " where c=sp(streamof(sum(merge(b))), 'bg')"
    << " and b=spv((select streamof(count(extract(p))) from sp p where p in a), 'bg')"
    << " and a=spv((select gen_array(" << bytes << "," << arrays << ")"
    << " from integer i where i in iota(1,n)), 'be', 1)"
    << " and n=" << n << ";";
  return q.str();
}

double run_with_selection(const std::string& query, std::uint64_t payload,
                          const scsq::hw::CostModel& cost,
                          scsq::exec::NodeSelection sel) {
  scsq::ScsqConfig cfg;
  cfg.cost = cost;
  cfg.exec.buffer_bytes = 64 * 1024;
  cfg.exec.node_selection = sel;
  scsq::Scsq scsq(cfg);
  auto report = scsq.run(query);
  scsq::bench::harness_count_perf(scsq.sim().perf());
  return static_cast<double>(payload) * 8.0 / report.elapsed_s / 1e6;
}

}  // namespace

int main() {
  using namespace scsq::bench;
  print_banner("Ablation A4", "naive vs. topology-aware node selection (no user hints)");

  const int arrays = quick_mode() ? 10 : kFullArrays;
  const int reps = quick_mode() ? 2 : kRepetitions;
  const std::vector<int> ns = {1, 2, 3, 4, 6, 8};

  struct Row {
    scsq::util::Stats naive, spread;
  };
  const auto rows = sweep(ns, [&](const int& n) {
    const auto query = unhinted_inbound_query(n, kArrayBytes, arrays);
    const std::uint64_t payload =
        static_cast<std::uint64_t>(n) * kArrayBytes * static_cast<std::uint64_t>(arrays);
    Row row;
    for (int rep = 0; rep < reps; ++rep) {
      auto cost = jittered(scsq::hw::CostModel::lofar(),
                           static_cast<std::uint64_t>(n * 100 + rep));
      row.naive.add(
          run_with_selection(query, payload, cost, scsq::exec::NodeSelection::kNaive));
      row.spread.add(
          run_with_selection(query, payload, cost, scsq::exec::NodeSelection::kSpread));
    }
    return row;
  });

  std::printf("%4s  %16s  %16s  %9s\n", "n", "naive Mbit/s", "spread Mbit/s", "speedup");
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%4d  %9.1f ± %4.1f  %9.1f ± %4.1f  %8.2fx\n", ns[i], r.naive.mean(),
                r.naive.stdev(), r.spread.mean(), r.spread.stdev(),
                r.spread.mean() / r.naive.mean());
  }
  std::printf(
      "\nExpected: equal at n=1; the spread strategy approaches the Query-5\n"
      "bandwidth for larger n while naive stays on a single I/O node.\n");
  return 0;
}
