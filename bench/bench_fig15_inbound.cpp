// Figure 15: BlueGene inbound streaming bandwidth for Queries 1-6 as a
// function of the number of parallel input streams n.
//
// Topologies (paper §3.2):
//   Q1: one back-end node -> one I/O node -> one compute node
//   Q2: n back-end nodes  -> one I/O node -> one compute node
//   Q3: one back-end node -> one I/O node -> n compute nodes (inPset)
//   Q4: n back-end nodes  -> one I/O node -> n compute nodes (inPset)
//   Q5: one back-end node -> n I/O nodes  -> n compute nodes (psetrr)
//   Q6: n back-end nodes  -> n I/O nodes  -> n compute nodes (psetrr)
//
// Paper shapes this bench must reproduce:
//  * Q1-Q4 (single I/O node) far below Q5/Q6 (many I/O nodes);
//  * Q3/Q4 slightly above Q1/Q2 (one->two receivers helps, then flat);
//  * Q1 above Q2 and Q5 above Q6 (one sender beats many: I/O-node
//    coordination with outside hosts);
//  * Q5 peaks around ~920 Mbit/s at n = 4 and dips at n = 5 (only four
//    I/O nodes on the partition, so a fifth stream shares one).
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace scsq::bench;
  print_banner("Figure 15", "BG inbound streaming bandwidth, Queries 1-6 vs. n");

  const int max_n = 8;
  const int arrays = quick_mode() ? 10 : kFullArrays;
  const std::uint64_t buffer = 64 * 1024;  // TCP path: rely on stack buffering (§3)

  std::vector<QueryPoint> points;
  for (int n = 1; n <= max_n; ++n) {
    for (int qn = 1; qn <= 6; ++qn) {
      const std::uint64_t payload =
          static_cast<std::uint64_t>(n) * kArrayBytes * static_cast<std::uint64_t>(arrays);
      points.push_back({inbound_query(qn, n, kArrayBytes, arrays), payload,
                        scsq::hw::CostModel::lofar(), buffer, /*send_buffers=*/2,
                        static_cast<std::uint64_t>(qn * 1000 + n)});
    }
  }
  const auto stats = run_points(points);

  std::printf("%4s", "n");
  for (int qn = 1; qn <= 6; ++qn) std::printf("  %16s", ("Query " + std::to_string(qn)).c_str());
  std::printf("   [Mbit/s, mean ± stdev]\n");

  std::size_t k = 0;
  for (int n = 1; n <= max_n; ++n) {
    std::printf("%4d", n);
    for (int qn = 1; qn <= 6; ++qn) {
      const auto& s = stats[k++];
      std::printf("  %9.1f ± %4.1f", s.mean(), s.stdev());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): Q5 best, peaking ~920 Mbit/s at n=4 with a dip\n"
      "at n=5; Q6 below Q5; Q1-Q4 significantly lower; Q3/Q4 slightly above\n"
      "Q1/Q2; Q1 above Q2.\n");
  return 0;
}
