// Figure 6: intra-BlueGene point-to-point streaming bandwidth vs. MPI
// stream buffer size, single vs. double buffering.
//
// Paper shapes this bench must reproduce:
//  * bandwidth collapses below ~1000-byte buffers (every stream buffer
//    occupies at least one full 1 KB torus packet);
//  * the optimum is at ~1000 bytes for both buffering modes;
//  * a gentle decline above 1 KB (cache misses + rendezvous protocol);
//  * double buffering pays off for large buffers;
//  * "bumps" where the buffer size is not a multiple of the packet size
//    (partially filled trailing packets).
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace scsq::bench;
  print_banner("Figure 6", "intra-BG point-to-point bandwidth vs. buffer size");

  const std::vector<std::uint64_t> buffer_sizes = {
      64,    100,   200,    400,    700,    1000,   1500,    2000,    3000,
      5000,  10000, 20000,  50000,  100000, 200000, 500000,  1000000};

  // Smallest buffers mean the most simulated messages, so enqueueing them
  // first lets the FIFO thread pool pack the heavy points early.
  std::vector<QueryPoint> points;
  for (auto buf : buffer_sizes) {
    const int arrays = arrays_for_buffer(buf);
    const std::uint64_t payload = kArrayBytes * static_cast<std::uint64_t>(arrays);
    const auto query = p2p_query(kArrayBytes, arrays);
    points.push_back({query, payload, scsq::hw::CostModel::lofar(), buf,
                      /*send_buffers=*/1, /*seed=*/buf * 2 + 1});
    points.push_back({query, payload, scsq::hw::CostModel::lofar(), buf,
                      /*send_buffers=*/2, /*seed=*/buf * 2 + 2});
  }
  const auto stats = run_points(points);

  std::printf("%10s  %8s  %22s  %22s\n", "buffer(B)", "arrays",
              "single-buffer Mbit/s", "double-buffer Mbit/s");
  for (std::size_t i = 0; i < buffer_sizes.size(); ++i) {
    const auto buf = buffer_sizes[i];
    const auto& single = stats[2 * i];
    const auto& dbl = stats[2 * i + 1];
    std::printf("%10llu  %8d  %14.1f ± %5.1f  %14.1f ± %5.1f\n",
                static_cast<unsigned long long>(buf), arrays_for_buffer(buf),
                single.mean(), single.stdev(), dbl.mean(), dbl.stdev());
  }
  std::printf(
      "\nExpected shape (paper): rise to a peak at ~1000 B, decline beyond it,\n"
      "double buffering ahead of single buffering at large buffer sizes.\n");
  return 0;
}
