// Figure 8: intra-BlueGene stream merging — total input bandwidth at the
// consumer for sequential vs. balanced node selection (Fig. 7A/7B),
// single and double buffering, versus buffer size.
//
// Paper shapes this bench must reproduce:
//  * bandwidth depends strongly on placement: the balanced selection
//    (producers at nodes 1 and 4) beats the sequential one (nodes 1 and
//    2, where b's traffic shares node 1's co-processor and outgoing
//    link) by up to ~60%;
//  * buffers below ~10 KB are much slower for merging than for
//    point-to-point (receiver co-processor source-switch penalty);
//  * the benefit of double buffering is less significant than for
//    point-to-point.
#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

struct Placement {
  const char* name;
  int x, y;
};

}  // namespace

int main() {
  using namespace scsq::bench;
  print_banner("Figure 8", "intra-BG stream merging, sequential vs. balanced placement");

  const std::vector<std::uint64_t> buffer_sizes = {1000,   3000,   10000,  30000,
                                                   100000, 300000, 1000000};
  const std::vector<Placement> placements = {{"sequential", 1, 2}, {"balanced", 1, 4}};

  std::vector<QueryPoint> points;
  for (auto buf : buffer_sizes) {
    const int arrays = arrays_for_buffer(buf);
    // Two producers: total payload is doubled.
    const std::uint64_t payload = 2 * kArrayBytes * static_cast<std::uint64_t>(arrays);
    for (const auto& p : placements) {
      const auto query = merge_query(p.x, p.y, kArrayBytes, arrays);
      points.push_back({query, payload, scsq::hw::CostModel::lofar(), buf, 1,
                        buf * 4 + static_cast<std::uint64_t>(p.x)});
      points.push_back({query, payload, scsq::hw::CostModel::lofar(), buf, 2,
                        buf * 4 + static_cast<std::uint64_t>(p.y) + 100});
    }
  }
  const auto stats = run_points(points);

  std::printf("%10s  %8s  %-11s  %22s  %22s\n", "buffer(B)", "arrays", "placement",
              "single-buffer Mbit/s", "double-buffer Mbit/s");
  std::size_t k = 0;
  for (auto buf : buffer_sizes) {
    const int arrays = arrays_for_buffer(buf);
    for (const auto& p : placements) {
      const auto& single = stats[k++];
      const auto& dbl = stats[k++];
      std::printf("%10llu  %8d  %-11s  %14.1f ± %5.1f  %14.1f ± %5.1f\n",
                  static_cast<unsigned long long>(buf), arrays, p.name, single.mean(),
                  single.stdev(), dbl.mean(), dbl.stdev());
    }
  }
  std::printf(
      "\nExpected shape (paper): balanced placement up to ~60%% above sequential;\n"
      "small buffers pay the co-processor switching penalty; double-buffer gain\n"
      "smaller than in Figure 6.\n");
  return 0;
}
