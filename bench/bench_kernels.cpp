// Microbenchmarks (google-benchmark) for the hot kernels of the engine:
// object marshalling, stream framing, torus routing, FFT, and the
// discrete-event kernel itself. These measure the *reproduction's* own
// code speed (wall clock), unlike the figure benches, which measure
// simulated bandwidth.
#include <benchmark/benchmark.h>

#include "funcs/fft.hpp"
#include "net/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "transport/frame.hpp"
#include "transport/marshal.hpp"
#include "util/rng.hpp"

namespace {

using scsq::catalog::Object;

void BM_MarshalDArray(benchmark::State& state) {
  std::vector<double> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  Object obj{data};
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    scsq::transport::marshal(obj, buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(obj.marshaled_size()));
}
BENCHMARK(BM_MarshalDArray)->Arg(1024)->Arg(65536);

void BM_UnmarshalDArray(benchmark::State& state) {
  std::vector<double> data(static_cast<std::size_t>(state.range(0)), 1.5);
  std::vector<std::uint8_t> buf;
  scsq::transport::marshal(Object{data}, buf);
  for (auto _ : state) {
    std::size_t off = 0;
    auto obj = scsq::transport::unmarshal(buf, off);
    benchmark::DoNotOptimize(obj);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_UnmarshalDArray)->Arg(1024)->Arg(65536);

void BM_FrameCutter(benchmark::State& state) {
  const auto buffer = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    scsq::transport::FrameCutter cutter(buffer);
    std::size_t frames = 0;
    for (int i = 0; i < 64; ++i) {
      frames += cutter.push(Object{scsq::catalog::SynthArray{30'000, 0}}).size();
    }
    frames += 1;
    (void)cutter.finish();
    benchmark::DoNotOptimize(frames);
  }
}
BENCHMARK(BM_FrameCutter)->Arg(1000)->Arg(65536);

void BM_TorusRoute(benchmark::State& state) {
  scsq::net::Torus3D torus(8, 8, 8);
  scsq::util::Rng rng(1);
  for (auto _ : state) {
    int a = static_cast<int>(rng.uniform_int(0, torus.node_count() - 1));
    int b = static_cast<int>(rng.uniform_int(0, torus.node_count() - 1));
    auto path = torus.route(a, b);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_TorusRoute);

void BM_Fft(benchmark::State& state) {
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  scsq::util::Rng rng(2);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    auto out = scsq::funcs::fft(x);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    sim.spawn([](scsq::sim::Simulator& s) -> scsq::sim::Task<void> {
      for (int i = 0; i < 10'000; ++i) co_await s.delay(1e-6);
    }(sim));
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

// Heap path: 256 concurrent timers with staggered deadlines keep the
// binary heap ~256 deep, measuring sift-up/down cost per event.
void BM_EventQueueHeapChurn(benchmark::State& state) {
  constexpr int kTimers = 256;
  constexpr int kRounds = 64;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    for (int t = 0; t < kTimers; ++t) {
      sim.spawn([](scsq::sim::Simulator& s, int timer) -> scsq::sim::Task<void> {
        for (int r = 0; r < kRounds; ++r) {
          co_await s.delay(1e-6 * (1.0 + 0.001 * timer));
        }
      }(sim, t));
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTimers * kRounds);
}
BENCHMARK(BM_EventQueueHeapChurn);

// Same-timestamp fast path + O(1) notify_one: two coroutines ping-pong
// through a pair of WaitQueues without simulated time ever advancing.
// The responder spawns (and parks) first so no notify is ever dropped.
void BM_WaitQueueWakeup(benchmark::State& state) {
  constexpr int kRounds = 10'000;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::WaitQueue ping(sim), pong(sim);
    sim.spawn([](scsq::sim::WaitQueue& p, scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        co_await q.wait();
        p.notify_one();
      }
    }(ping, pong));
    sim.spawn([](scsq::sim::WaitQueue& p, scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        q.notify_one();
        co_await p.wait();
      }
    }(ping, pong));
    sim.run();
    benchmark::DoNotOptimize(sim.perf().wakeups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRounds * 2);
}
BENCHMARK(BM_WaitQueueWakeup);

// Deep waiter queue drained one grant at a time: the old vector-front
// erase made this quadratic in the number of waiters.
void BM_WaitQueueDeepDrain(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::WaitQueue wq(sim);
    for (int i = 0; i < waiters; ++i) {
      sim.spawn([](scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
        co_await q.wait();
      }(wq));
    }
    sim.spawn([](scsq::sim::Simulator& s, scsq::sim::WaitQueue& q, int n) -> scsq::sim::Task<void> {
      co_await s.delay(1.0);  // let every waiter park first
      for (int i = 0; i < n; ++i) q.notify_one();
    }(sim, wq, waiters));
    sim.run();
    benchmark::DoNotOptimize(sim.perf().wakeups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * waiters);
}
BENCHMARK(BM_WaitQueueDeepDrain)->Arg(1024)->Arg(16384);

// Plain-callback path: the std::function bodies live in the reusable
// slab, so steady-state scheduling is allocation-free.
void BM_CallAtCallback(benchmark::State& state) {
  constexpr int kCallbacks = 10'000;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < kCallbacks; ++i) {
      sim.call_at(1e-6 * i, [&sum, i] { sum += static_cast<std::uint64_t>(i); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kCallbacks);
}
BENCHMARK(BM_CallAtCallback);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::Channel<int> ch(sim, 1);
    sim.spawn([](scsq::sim::Channel<int>& c) -> scsq::sim::Task<void> {
      for (int i = 0; i < 5'000; ++i) co_await c.send(i);
      c.close();
    }(ch));
    sim.spawn([](scsq::sim::Channel<int>& c) -> scsq::sim::Task<void> {
      while (co_await c.recv()) {
      }
    }(ch));
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5'000);
}
BENCHMARK(BM_ChannelPingPong);

}  // namespace

BENCHMARK_MAIN();
