// Microbenchmarks (google-benchmark) for the hot kernels of the engine:
// object marshalling, stream framing, torus routing, FFT, and the
// discrete-event kernel itself. These measure the *reproduction's* own
// code speed (wall clock), unlike the figure benches, which measure
// simulated bandwidth.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/scsq.hpp"
#include "funcs/fft.hpp"
#include "hw/lp_workload.hpp"
#include "net/topology.hpp"
#include "plan/builder.hpp"
#include "plan/operators.hpp"
#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "transport/driver.hpp"
#include "transport/frame.hpp"
#include "transport/marshal.hpp"
#include "util/rng.hpp"

namespace {

using scsq::catalog::Object;

void BM_MarshalDArray(benchmark::State& state) {
  std::vector<double> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  Object obj{data};
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    scsq::transport::marshal(obj, buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(obj.marshaled_size()));
}
BENCHMARK(BM_MarshalDArray)->Arg(1024)->Arg(65536);

void BM_UnmarshalDArray(benchmark::State& state) {
  std::vector<double> data(static_cast<std::size_t>(state.range(0)), 1.5);
  std::vector<std::uint8_t> buf;
  scsq::transport::marshal(Object{data}, buf);
  for (auto _ : state) {
    std::size_t off = 0;
    auto obj = scsq::transport::unmarshal(buf, off);
    benchmark::DoNotOptimize(obj);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_UnmarshalDArray)->Arg(1024)->Arg(65536);

void BM_FrameCutter(benchmark::State& state) {
  const auto buffer = static_cast<std::uint64_t>(state.range(0));
  scsq::transport::FramePool pool;
  std::vector<scsq::transport::Frame> scratch;
  for (auto _ : state) {
    scsq::transport::FrameCutter cutter(buffer, &pool);
    std::size_t frames = 0;
    for (int i = 0; i < 64; ++i) {
      scratch.clear();
      cutter.push(Object{scsq::catalog::SynthArray{30'000, 0}}, scratch);
      frames += scratch.size();
      for (auto& f : scratch) pool.recycle(std::move(f));
    }
    frames += 1;
    pool.recycle(cutter.finish());
    benchmark::DoNotOptimize(frames);
  }
}
BENCHMARK(BM_FrameCutter)->Arg(1000)->Arg(65536);

// Round-trip through the flat MarshalWriter/MarshalReader with the
// encode buffer reused across iterations — the capacity-reuse idiom of
// the data plane. Payloads mirror the stream shapes the figure benches
// push: bags of scalars, bags of strings, a 1 K-element signal array,
// and a nested mixed bag with SynthArray descriptors.
Object make_marshal_payload(const std::string& which) {
  using scsq::catalog::Bag;
  using scsq::catalog::SynthArray;
  if (which == "int") {
    Bag b;
    for (int i = 0; i < 64; ++i) b.emplace_back(i);
    return Object{std::move(b)};
  }
  if (which == "str") {
    Bag b;
    for (int i = 0; i < 64; ++i)
      b.emplace_back(std::string("stream-payload-string-") + std::to_string(i));
    return Object{std::move(b)};
  }
  if (which == "darray") {
    std::vector<double> a(1024);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i) * 0.5;
    return Object{std::move(a)};
  }
  // bag: nested mixed bag
  Bag outer;
  for (int i = 0; i < 16; ++i) {
    Bag inner;
    inner.emplace_back(i);
    inner.emplace_back(0.5 * i);
    inner.emplace_back(std::string("k") + std::to_string(i));
    inner.emplace_back(SynthArray{1000, static_cast<std::uint64_t>(i)});
    outer.emplace_back(std::move(inner));
  }
  return Object{std::move(outer)};
}

void BM_MarshalRoundTrip(benchmark::State& state, const char* which) {
  Object obj = make_marshal_payload(which);
  std::vector<std::uint8_t> buf;
  scsq::transport::MarshalWriter writer(buf);
  // Steady-state decode: every iteration rematerializes into the same
  // object tree (read_into), so warm capacities make the loop
  // allocation-free — the receive-side counterpart of the reused buf.
  Object back;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    buf.clear();
    writer.write(obj);
    scsq::transport::MarshalReader reader(buf);
    reader.read_into(back);
    benchmark::DoNotOptimize(back);
    bytes += buf.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, int, "int");
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, str, "str");
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, darray, "darray");
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, bag, "bag");

// Many small objects over a small buffer: every cut moves completed
// objects out of the pending queue (the object-churn path). Pool +
// scratch reuse, as the sender driver runs it.
void BM_FrameCutterCut(benchmark::State& state) {
  scsq::transport::FramePool pool;
  std::vector<scsq::transport::Frame> scratch;
  for (auto _ : state) {
    scsq::transport::FrameCutter cutter(100, &pool);
    std::size_t objects = 0;
    for (int i = 0; i < 256; ++i) {
      scratch.clear();
      cutter.push(Object{i}, scratch);
      for (auto& f : scratch) {
        objects += f.objects.size();
        pool.recycle(std::move(f));
      }
    }
    auto last = cutter.finish();
    objects += last.objects.size();
    pool.recycle(std::move(last));
    benchmark::DoNotOptimize(objects);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_FrameCutterCut);

// Steady-state pool cycle: acquire a frame, fill it, recycle it. After
// warm-up every acquire is served from the free list — this measures
// the zero-churn fast path itself.
void BM_FramePoolRecycle(benchmark::State& state) {
  scsq::transport::FramePool pool;
  for (auto _ : state) {
    auto frame = pool.acquire();
    frame.bytes = 4096;
    frame.objects.emplace_back(scsq::catalog::SynthArray{4096, 0});
    benchmark::DoNotOptimize(frame.objects.data());
    pool.recycle(std::move(frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FramePoolRecycle);

void BM_TorusRoute(benchmark::State& state) {
  scsq::net::Torus3D torus(8, 8, 8);
  scsq::util::Rng rng(1);
  for (auto _ : state) {
    int a = static_cast<int>(rng.uniform_int(0, torus.node_count() - 1));
    int b = static_cast<int>(rng.uniform_int(0, torus.node_count() - 1));
    auto path = torus.route(a, b);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_TorusRoute);

void BM_Fft(benchmark::State& state) {
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  scsq::util::Rng rng(2);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    auto out = scsq::funcs::fft(x);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    sim.spawn([](scsq::sim::Simulator& s) -> scsq::sim::Task<void> {
      for (int i = 0; i < 10'000; ++i) co_await s.delay(1e-6);
    }(sim));
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

// Heap path: 256 concurrent timers with staggered deadlines keep the
// binary heap ~256 deep, measuring sift-up/down cost per event.
void BM_EventQueueHeapChurn(benchmark::State& state) {
  constexpr int kTimers = 256;
  constexpr int kRounds = 64;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    for (int t = 0; t < kTimers; ++t) {
      sim.spawn([](scsq::sim::Simulator& s, int timer) -> scsq::sim::Task<void> {
        for (int r = 0; r < kRounds; ++r) {
          co_await s.delay(1e-6 * (1.0 + 0.001 * timer));
        }
      }(sim, t));
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTimers * kRounds);
}
BENCHMARK(BM_EventQueueHeapChurn);

// Same-timestamp fast path + O(1) notify_one: two coroutines ping-pong
// through a pair of WaitQueues without simulated time ever advancing.
// The responder spawns (and parks) first so no notify is ever dropped.
void BM_WaitQueueWakeup(benchmark::State& state) {
  constexpr int kRounds = 10'000;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::WaitQueue ping(sim), pong(sim);
    sim.spawn([](scsq::sim::WaitQueue& p, scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        co_await q.wait();
        p.notify_one();
      }
    }(ping, pong));
    sim.spawn([](scsq::sim::WaitQueue& p, scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        q.notify_one();
        co_await p.wait();
      }
    }(ping, pong));
    sim.run();
    benchmark::DoNotOptimize(sim.perf().wakeups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRounds * 2);
}
BENCHMARK(BM_WaitQueueWakeup);

// Deep waiter queue drained one grant at a time: the old vector-front
// erase made this quadratic in the number of waiters.
void BM_WaitQueueDeepDrain(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::WaitQueue wq(sim);
    for (int i = 0; i < waiters; ++i) {
      sim.spawn([](scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
        co_await q.wait();
      }(wq));
    }
    sim.spawn([](scsq::sim::Simulator& s, scsq::sim::WaitQueue& q, int n) -> scsq::sim::Task<void> {
      co_await s.delay(1.0);  // let every waiter park first
      for (int i = 0; i < n; ++i) q.notify_one();
    }(sim, wq, waiters));
    sim.run();
    benchmark::DoNotOptimize(sim.perf().wakeups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * waiters);
}
BENCHMARK(BM_WaitQueueDeepDrain)->Arg(1024)->Arg(16384);

// Plain-callback path: the std::function bodies live in the reusable
// slab, so steady-state scheduling is allocation-free.
void BM_CallAtCallback(benchmark::State& state) {
  constexpr int kCallbacks = 10'000;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < kCallbacks; ++i) {
      sim.call_at(1e-6 * i, [&sum, i] { sum += static_cast<std::uint64_t>(i); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kCallbacks);
}
BENCHMARK(BM_CallAtCallback);

// Pending-event-set shootout: the same self-rearming timer workload
// driven through the ladder queue (default) and the binary-heap
// reference, across arrival distributions that stress different ladder
// machinery. ~1k outstanding timers; each firing re-arms until the
// event budget per iteration is spent. The Simulator is reset() between
// iterations rather than reconstructed, so warm rung/bucket/slab
// storage is reused — the steady state this kernel is tuned for.
//  * uniform      delays spread over three decades: rung spreads stay
//                 balanced (calendar-queue home turf).
//  * spike        delays clustered at one far point with 1us jitter:
//                 dense same-bucket cohorts, the respread path.
//  * bimodal      short/long mixture: bottom inserts race far-future
//                 top parks.
//  * cancel_heavy every firing arms two timers and cancels one pending
//                 one: exercises cancelled-node consumption + slab churn.
struct EventQueueBenchDriver {
  scsq::sim::Simulator& sim;
  scsq::util::Rng rng;
  int remaining;
  int dist;  // 0 uniform, 1 spike, 2 bimodal, 3 cancel_heavy
  std::vector<scsq::sim::Simulator::TimerId> live;
  std::uint64_t fired = 0;

  double next_delay() {
    switch (dist) {
      case 1: return 1e-3 + rng.uniform(0.0, 1e-6);
      case 2: return rng.uniform_int(0, 1) != 0 ? rng.uniform(1e-7, 1e-6)
                                                : rng.uniform(1e-3, 2e-3);
      default: return rng.uniform(1e-6, 1e-3);
    }
  }

  void arm() {
    if (remaining <= 0) return;
    --remaining;
    const auto id = sim.call_at(sim.now() + next_delay(), [this] {
      ++fired;
      if (dist == 3) {
        // Arm two, cancel one pending: net population stays flat while
        // the queue digests a cancelled node per firing. Handles of
        // timers that already fired linger in `live`; the loop purges
        // them (cancel_timer returns false) until a live one dies.
        arm();
        arm();
        while (!live.empty()) {
          const auto victim = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          const bool was_pending = sim.cancel_timer(live[victim]);
          live[victim] = live.back();
          live.pop_back();
          if (was_pending) break;
        }
      } else {
        arm();
      }
    });
    if (dist == 3) live.push_back(id);
  }
};

void BM_EventQueue(benchmark::State& state, int dist, scsq::sim::EventQueue::Mode mode) {
  constexpr int kPopulation = 1024;
  constexpr int kEventsPerIter = 50'000;
  scsq::sim::Simulator sim(mode);
  std::uint64_t fired_total = 0;
  for (auto _ : state) {
    sim.reset();
    EventQueueBenchDriver drv{sim, scsq::util::Rng(42), kEventsPerIter, dist, {}, 0};
    for (int i = 0; i < kPopulation; ++i) drv.arm();
    sim.run();
    fired_total += drv.fired;
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired_total));
}
BENCHMARK_CAPTURE(BM_EventQueue, uniform, 0, scsq::sim::EventQueue::Mode::kLadder);
BENCHMARK_CAPTURE(BM_EventQueue, spike, 1, scsq::sim::EventQueue::Mode::kLadder);
BENCHMARK_CAPTURE(BM_EventQueue, bimodal, 2, scsq::sim::EventQueue::Mode::kLadder);
BENCHMARK_CAPTURE(BM_EventQueue, cancel_heavy, 3, scsq::sim::EventQueue::Mode::kLadder);
BENCHMARK_CAPTURE(BM_EventQueue, uniform_heap, 0, scsq::sim::EventQueue::Mode::kHeap);
BENCHMARK_CAPTURE(BM_EventQueue, spike_heap, 1, scsq::sim::EventQueue::Mode::kHeap);
BENCHMARK_CAPTURE(BM_EventQueue, bimodal_heap, 2, scsq::sim::EventQueue::Mode::kHeap);
BENCHMARK_CAPTURE(BM_EventQueue, cancel_heavy_heap, 3, scsq::sim::EventQueue::Mode::kHeap);

// ---------------------------------------------------------------------
// Batch-at-a-time SQEP execution. These measure the host-side cost per
// simulated stream item through real operator pipelines — the per-item
// coroutine tower (depth 1, the pre-batching seed path) against the
// batched/fused path (depth 256). Simulated results and timestamps are
// identical in both modes; only items/s (host wall clock) changes.
// ---------------------------------------------------------------------

constexpr int kPipeFrames = 40;
constexpr int kPipeObjectsPerFrame = 256;

scsq::sim::Task<void> feed_frames(scsq::sim::Channel<scsq::transport::Frame>& inbox,
                                  int frames, int objects_per_frame) {
  for (int f = 0; f < frames; ++f) {
    scsq::transport::Frame fr;
    fr.objects.reserve(static_cast<std::size_t>(objects_per_frame));
    for (int i = 0; i < objects_per_frame; ++i) {
      fr.objects.emplace_back(static_cast<std::int64_t>(i));
    }
    fr.bytes = static_cast<std::uint64_t>(objects_per_frame) * 9;
    fr.eos = f + 1 == frames;
    co_await inbox.send(std::move(fr));
  }
}

/// depth <= 1 drives the exact per-item path (next()); larger depths
/// drive next_batch the way the engine's batched loop does.
scsq::sim::Task<void> drive_operator(scsq::plan::Operator& op, std::size_t depth,
                                     std::uint64_t& items) {
  if (depth <= 1) {
    while (co_await op.next()) ++items;
    co_return;
  }
  scsq::plan::ItemBatch batch;
  bool eos = false;
  while (!eos) {
    batch.reset();
    co_await op.next_batch(batch, depth);
    items += batch.size();
    eos = batch.eos();
  }
}

void BM_OperatorPipeline(benchmark::State& state, const char* mode) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const std::string which = mode;
  std::int64_t items_per_iter = 0;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::Resource cpu(sim, 1, "cpu");
    scsq::plan::PlanContext ctx;
    ctx.sim = &sim;
    ctx.cpu = &cpu;
    ctx.batch_size = depth;
    std::uint64_t items = 0;
    if (which == "passthrough") {
      // streamof over a receive: the minimal stateless chain, fed with
      // frames of small objects (the shape where per-item coroutine
      // towers dominated).
      scsq::transport::ReceiverDriver driver(sim, scsq::transport::DriverParams{}, cpu);
      sim.spawn(feed_frames(driver.inbox(), kPipeFrames, kPipeObjectsPerFrame));
      scsq::plan::PassOp root(std::make_unique<scsq::plan::ReceiveOp>(driver));
      sim.spawn(drive_operator(root, depth, items));
      sim.run();
      items_per_iter = kPipeFrames * kPipeObjectsPerFrame;
    } else if (which == "fused_count") {
      // count(gen_array(...)) through the real builder: per-item it is
      // CountOp over GenArrayOp; at depth > 1 the fusion pass collapses
      // it into one FusedPipelineOp.
      constexpr std::int64_t kGenItems = 10'000;
      ctx.const_eval = [](const scsq::scsql::ExprPtr& e) { return e->literal; };
      auto expr = scsq::scsql::make_call(
          "count", {scsq::scsql::make_call(
                       "gen_array", {scsq::scsql::make_literal(Object{64}),
                                     scsq::scsql::make_literal(Object{kGenItems})})});
      auto root = scsq::plan::build_plan(expr, ctx);
      sim.spawn(drive_operator(*root, depth, items));
      sim.run();
      items = kGenItems;  // one result object; count consumed items
      items_per_iter = kGenItems;
    } else {  // merge
      scsq::transport::ReceiverDriver d1(sim, scsq::transport::DriverParams{}, cpu);
      scsq::transport::ReceiverDriver d2(sim, scsq::transport::DriverParams{}, cpu);
      sim.spawn(feed_frames(d1.inbox(), kPipeFrames, kPipeObjectsPerFrame));
      sim.spawn(feed_frames(d2.inbox(), kPipeFrames, kPipeObjectsPerFrame));
      scsq::plan::MergeOp root(ctx, {&d1, &d2});
      sim.spawn(drive_operator(root, depth, items));
      sim.run();
      items_per_iter = 2 * kPipeFrames * kPipeObjectsPerFrame;
    }
    benchmark::DoNotOptimize(items);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * items_per_iter);
}
BENCHMARK_CAPTURE(BM_OperatorPipeline, passthrough, "passthrough")->Arg(1)->Arg(256);
BENCHMARK_CAPTURE(BM_OperatorPipeline, fused_count, "fused_count")->Arg(1)->Arg(256);
BENCHMARK_CAPTURE(BM_OperatorPipeline, merge, "merge")->Arg(1)->Arg(256);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::Channel<int> ch(sim, 1);
    sim.spawn([](scsq::sim::Channel<int>& c) -> scsq::sim::Task<void> {
      for (int i = 0; i < 5'000; ++i) co_await c.send(i);
      c.close();
    }(ch));
    sim.spawn([](scsq::sim::Channel<int>& c) -> scsq::sim::Task<void> {
      while (co_await c.recv()) {
      }
    }(ch));
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5'000);
}
BENCHMARK(BM_ChannelPingPong);

// Conservative parallel runtime: the fig15-shaped inbound workload of
// hw/lp_workload.hpp on a rack-scale machine (512 compute nodes, 64
// psets, 16 back-ends), swept over the LP count. Workers = one per LP
// (the host decides how many actually run in parallel); items/s counts
// kernel events across all LPs. The checksum is asserted against the
// 1-LP run — the bench doubles as a determinism canary.
void BM_ParallelSim(benchmark::State& state) {
  const int lps = static_cast<int>(state.range(0));
  const auto cost = scsq::hw::CostModel::bluegene_rack();
  scsq::hw::LpWorkloadOptions options;
  options.messages_per_backend = 128;
  options.work_per_event = 32;
  static const std::uint64_t reference =
      scsq::hw::run_lp_workload(cost, 1, 1, options).checksum;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto result = scsq::hw::run_lp_workload(cost, lps, 0, options);
    if (result.checksum != reference) {
      state.SkipWithError("LP-count determinism violation");
      return;
    }
    events += result.events;
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
// UseRealTime: the LP workers run on their own threads, which the
// benchmark's per-thread CPU clock does not see — wall time is the only
// honest throughput denominator for lps > 1.
BENCHMARK(BM_ParallelSim)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Whole-engine parallel drive: a multi-pset TCP pipeline (producer on
// the back-end, consumer in pset 1 at bg8, extract back to the client
// — no cross-pset MPI, so the windowed runtime engages with RPs on two
// LPs) through the full SCSQL stack at the swept LP count. Every
// iteration's report is asserted bit-identical to the 1-LP reference:
// the determinism gate that makes any speedup claim meaningful.
// items/s counts kernel events summed over the LP Simulators.
void BM_EngineParallel(benchmark::State& state) {
  const int lps = static_cast<int>(state.range(0));
  const char* query =
      "select extract(b) from sp a, sp b"
      " where b=sp(streamof(count(extract(a))),'bg',8)"
      " and a=sp(gen_array(200000,24),'be',1);";
  struct Run {
    std::string fp;
    std::uint64_t events;
    int effective;
  };
  const auto run_once = [query](int k) {
    scsq::ScsqConfig cfg;
    cfg.exec.sim_lps = k;  // explicit config beats SCSQ_SIM_LPS
    scsq::Scsq scsq(cfg);
    const auto r = scsq.run(query);
    std::ostringstream os;
    os << std::hexfloat << r.elapsed_s << "/" << r.setup_s << "/" << r.stream_bytes;
    return Run{os.str(), scsq.machine().perf_total().events_dispatched,
               r.sim_lps_effective};
  };
  static const std::string reference = run_once(1).fp;
  std::uint64_t events = 0;
  int effective = 1;
  for (auto _ : state) {
    const Run run = run_once(lps);
    if (run.fp != reference) {
      state.SkipWithError("LP-count determinism violation in engine drive");
      return;
    }
    events += run.events;
    effective = run.effective;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["effective_lps"] = static_cast<double>(effective);
}
BENCHMARK(BM_EngineParallel)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
