// Microbenchmarks (google-benchmark) for the hot kernels of the engine:
// object marshalling, stream framing, torus routing, FFT, and the
// discrete-event kernel itself. These measure the *reproduction's* own
// code speed (wall clock), unlike the figure benches, which measure
// simulated bandwidth.
#include <benchmark/benchmark.h>

#include "funcs/fft.hpp"
#include "net/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "transport/frame.hpp"
#include "transport/marshal.hpp"
#include "util/rng.hpp"

namespace {

using scsq::catalog::Object;

void BM_MarshalDArray(benchmark::State& state) {
  std::vector<double> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  Object obj{data};
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    scsq::transport::marshal(obj, buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(obj.marshaled_size()));
}
BENCHMARK(BM_MarshalDArray)->Arg(1024)->Arg(65536);

void BM_UnmarshalDArray(benchmark::State& state) {
  std::vector<double> data(static_cast<std::size_t>(state.range(0)), 1.5);
  std::vector<std::uint8_t> buf;
  scsq::transport::marshal(Object{data}, buf);
  for (auto _ : state) {
    std::size_t off = 0;
    auto obj = scsq::transport::unmarshal(buf, off);
    benchmark::DoNotOptimize(obj);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_UnmarshalDArray)->Arg(1024)->Arg(65536);

void BM_FrameCutter(benchmark::State& state) {
  const auto buffer = static_cast<std::uint64_t>(state.range(0));
  scsq::transport::FramePool pool;
  std::vector<scsq::transport::Frame> scratch;
  for (auto _ : state) {
    scsq::transport::FrameCutter cutter(buffer, &pool);
    std::size_t frames = 0;
    for (int i = 0; i < 64; ++i) {
      scratch.clear();
      cutter.push(Object{scsq::catalog::SynthArray{30'000, 0}}, scratch);
      frames += scratch.size();
      for (auto& f : scratch) pool.recycle(std::move(f));
    }
    frames += 1;
    pool.recycle(cutter.finish());
    benchmark::DoNotOptimize(frames);
  }
}
BENCHMARK(BM_FrameCutter)->Arg(1000)->Arg(65536);

// Round-trip through the flat MarshalWriter/MarshalReader with the
// encode buffer reused across iterations — the capacity-reuse idiom of
// the data plane. Payloads mirror the stream shapes the figure benches
// push: bags of scalars, bags of strings, a 1 K-element signal array,
// and a nested mixed bag with SynthArray descriptors.
Object make_marshal_payload(const std::string& which) {
  using scsq::catalog::Bag;
  using scsq::catalog::SynthArray;
  if (which == "int") {
    Bag b;
    for (int i = 0; i < 64; ++i) b.emplace_back(i);
    return Object{std::move(b)};
  }
  if (which == "str") {
    Bag b;
    for (int i = 0; i < 64; ++i)
      b.emplace_back(std::string("stream-payload-string-") + std::to_string(i));
    return Object{std::move(b)};
  }
  if (which == "darray") {
    std::vector<double> a(1024);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i) * 0.5;
    return Object{std::move(a)};
  }
  // bag: nested mixed bag
  Bag outer;
  for (int i = 0; i < 16; ++i) {
    Bag inner;
    inner.emplace_back(i);
    inner.emplace_back(0.5 * i);
    inner.emplace_back(std::string("k") + std::to_string(i));
    inner.emplace_back(SynthArray{1000, static_cast<std::uint64_t>(i)});
    outer.emplace_back(std::move(inner));
  }
  return Object{std::move(outer)};
}

void BM_MarshalRoundTrip(benchmark::State& state, const char* which) {
  Object obj = make_marshal_payload(which);
  std::vector<std::uint8_t> buf;
  scsq::transport::MarshalWriter writer(buf);
  // Steady-state decode: every iteration rematerializes into the same
  // object tree (read_into), so warm capacities make the loop
  // allocation-free — the receive-side counterpart of the reused buf.
  Object back;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    buf.clear();
    writer.write(obj);
    scsq::transport::MarshalReader reader(buf);
    reader.read_into(back);
    benchmark::DoNotOptimize(back);
    bytes += buf.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, int, "int");
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, str, "str");
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, darray, "darray");
BENCHMARK_CAPTURE(BM_MarshalRoundTrip, bag, "bag");

// Many small objects over a small buffer: every cut moves completed
// objects out of the pending queue (the object-churn path). Pool +
// scratch reuse, as the sender driver runs it.
void BM_FrameCutterCut(benchmark::State& state) {
  scsq::transport::FramePool pool;
  std::vector<scsq::transport::Frame> scratch;
  for (auto _ : state) {
    scsq::transport::FrameCutter cutter(100, &pool);
    std::size_t objects = 0;
    for (int i = 0; i < 256; ++i) {
      scratch.clear();
      cutter.push(Object{i}, scratch);
      for (auto& f : scratch) {
        objects += f.objects.size();
        pool.recycle(std::move(f));
      }
    }
    auto last = cutter.finish();
    objects += last.objects.size();
    pool.recycle(std::move(last));
    benchmark::DoNotOptimize(objects);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_FrameCutterCut);

// Steady-state pool cycle: acquire a frame, fill it, recycle it. After
// warm-up every acquire is served from the free list — this measures
// the zero-churn fast path itself.
void BM_FramePoolRecycle(benchmark::State& state) {
  scsq::transport::FramePool pool;
  for (auto _ : state) {
    auto frame = pool.acquire();
    frame.bytes = 4096;
    frame.objects.emplace_back(scsq::catalog::SynthArray{4096, 0});
    benchmark::DoNotOptimize(frame.objects.data());
    pool.recycle(std::move(frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FramePoolRecycle);

void BM_TorusRoute(benchmark::State& state) {
  scsq::net::Torus3D torus(8, 8, 8);
  scsq::util::Rng rng(1);
  for (auto _ : state) {
    int a = static_cast<int>(rng.uniform_int(0, torus.node_count() - 1));
    int b = static_cast<int>(rng.uniform_int(0, torus.node_count() - 1));
    auto path = torus.route(a, b);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_TorusRoute);

void BM_Fft(benchmark::State& state) {
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  scsq::util::Rng rng(2);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    auto out = scsq::funcs::fft(x);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    sim.spawn([](scsq::sim::Simulator& s) -> scsq::sim::Task<void> {
      for (int i = 0; i < 10'000; ++i) co_await s.delay(1e-6);
    }(sim));
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

// Heap path: 256 concurrent timers with staggered deadlines keep the
// binary heap ~256 deep, measuring sift-up/down cost per event.
void BM_EventQueueHeapChurn(benchmark::State& state) {
  constexpr int kTimers = 256;
  constexpr int kRounds = 64;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    for (int t = 0; t < kTimers; ++t) {
      sim.spawn([](scsq::sim::Simulator& s, int timer) -> scsq::sim::Task<void> {
        for (int r = 0; r < kRounds; ++r) {
          co_await s.delay(1e-6 * (1.0 + 0.001 * timer));
        }
      }(sim, t));
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTimers * kRounds);
}
BENCHMARK(BM_EventQueueHeapChurn);

// Same-timestamp fast path + O(1) notify_one: two coroutines ping-pong
// through a pair of WaitQueues without simulated time ever advancing.
// The responder spawns (and parks) first so no notify is ever dropped.
void BM_WaitQueueWakeup(benchmark::State& state) {
  constexpr int kRounds = 10'000;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::WaitQueue ping(sim), pong(sim);
    sim.spawn([](scsq::sim::WaitQueue& p, scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        co_await q.wait();
        p.notify_one();
      }
    }(ping, pong));
    sim.spawn([](scsq::sim::WaitQueue& p, scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        q.notify_one();
        co_await p.wait();
      }
    }(ping, pong));
    sim.run();
    benchmark::DoNotOptimize(sim.perf().wakeups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRounds * 2);
}
BENCHMARK(BM_WaitQueueWakeup);

// Deep waiter queue drained one grant at a time: the old vector-front
// erase made this quadratic in the number of waiters.
void BM_WaitQueueDeepDrain(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::WaitQueue wq(sim);
    for (int i = 0; i < waiters; ++i) {
      sim.spawn([](scsq::sim::WaitQueue& q) -> scsq::sim::Task<void> {
        co_await q.wait();
      }(wq));
    }
    sim.spawn([](scsq::sim::Simulator& s, scsq::sim::WaitQueue& q, int n) -> scsq::sim::Task<void> {
      co_await s.delay(1.0);  // let every waiter park first
      for (int i = 0; i < n; ++i) q.notify_one();
    }(sim, wq, waiters));
    sim.run();
    benchmark::DoNotOptimize(sim.perf().wakeups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * waiters);
}
BENCHMARK(BM_WaitQueueDeepDrain)->Arg(1024)->Arg(16384);

// Plain-callback path: the std::function bodies live in the reusable
// slab, so steady-state scheduling is allocation-free.
void BM_CallAtCallback(benchmark::State& state) {
  constexpr int kCallbacks = 10'000;
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < kCallbacks; ++i) {
      sim.call_at(1e-6 * i, [&sum, i] { sum += static_cast<std::uint64_t>(i); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kCallbacks);
}
BENCHMARK(BM_CallAtCallback);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    scsq::sim::Simulator sim;
    scsq::sim::Channel<int> ch(sim, 1);
    sim.spawn([](scsq::sim::Channel<int>& c) -> scsq::sim::Task<void> {
      for (int i = 0; i < 5'000; ++i) co_await c.send(i);
      c.close();
    }(ch));
    sim.spawn([](scsq::sim::Channel<int>& c) -> scsq::sim::Task<void> {
      while (co_await c.recv()) {
      }
    }(ch));
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5'000);
}
BENCHMARK(BM_ChannelPingPong);

}  // namespace

BENCHMARK_MAIN();
