// Extension bench: Linear-Road-lite throughput on the simulated LOFAR
// environment ("further measurements could be made using benchmarks such
// as The Linear Road Benchmark", paper §5).
//
// Measures position-report throughput (reports/s of simulated time) for
// the toll pipeline at increasing vehicle counts, with the analysis
// placed on the BlueGene vs. on the back-end cluster — the placement
// trade-off the paper's node-selection work is about: crossing the
// I/O-node path costs bandwidth, but the BlueGene offloads the back-end.
#include <cstdio>
#include <sstream>
#include <vector>

#include "common.hpp"

namespace {

double run_toll_pipeline(int vehicles, int ticks, const char* analysis_cluster,
                         const scsq::hw::CostModel& cost) {
  scsq::ScsqConfig cfg;
  cfg.cost = cost;
  scsq::Scsq scsq(cfg);
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(lr_tolls(extract(a), 5), '" << analysis_cluster << "')"
    << " and a=sp(lr_source(" << vehicles << "," << ticks << ",1), 'be');";
  auto report = scsq.run(q.str());
  scsq::bench::harness_count_perf(scsq.sim().perf());
  return static_cast<double>(vehicles) * ticks / report.elapsed_s;
}

}  // namespace

int main() {
  using namespace scsq::bench;
  print_banner("Extension", "Linear-Road-lite toll pipeline throughput");

  const int ticks = quick_mode() ? 30 : 120;
  const int reps = quick_mode() ? 2 : kRepetitions;
  const std::vector<int> vehicle_counts = {50, 100, 200, 400, 800};

  struct Row {
    scsq::util::Stats bg, be;
  };
  const auto rows = sweep(vehicle_counts, [&](const int& vehicles) {
    Row row;
    for (int rep = 0; rep < reps; ++rep) {
      auto cost = jittered(scsq::hw::CostModel::lofar(),
                           static_cast<std::uint64_t>(vehicles * 10 + rep));
      row.bg.add(run_toll_pipeline(vehicles, ticks, "bg", cost));
      row.be.add(run_toll_pipeline(vehicles, ticks, "be", cost));
    }
    return row;
  });

  std::printf("%10s  %20s  %20s   [reports/s]\n", "vehicles", "analysis on bg",
              "analysis on be");
  for (std::size_t i = 0; i < vehicle_counts.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%10d  %13.0f ± %4.0f  %13.0f ± %4.0f\n", vehicle_counts[i], r.bg.mean(),
                r.bg.stdev(), r.be.mean(), r.be.stdev());
  }
  std::printf(
      "\nExpected: back-end placement avoids the I/O-node inbound path and wins\n"
      "on raw throughput; BlueGene placement is the price of offloading.\n");
  return 0;
}
