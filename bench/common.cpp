#include "common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

namespace scsq::bench {

namespace {

// Simulated events executed by runs since the last harness_begin().
// Relaxed atomic: worker threads only ever add their own run's total.
std::atomic<std::uint64_t> g_sim_events{0};
std::chrono::steady_clock::time_point g_harness_start;

}  // namespace

bool quick_mode() { return std::getenv("SCSQ_BENCH_QUICK") != nullptr; }

unsigned bench_threads() { return util::ThreadPool::default_threads(); }

int arrays_for_buffer(std::uint64_t buffer_bytes) {
  const int full = quick_mode() ? 10 : kFullArrays;
  // Cap the per-producer message count around 200k.
  const std::uint64_t max_bytes = buffer_bytes * 200'000;
  const int max_arrays = static_cast<int>(std::max<std::uint64_t>(2, max_bytes / kArrayBytes));
  return std::min(full, max_arrays);
}

hw::CostModel jittered(hw::CostModel cost, std::uint64_t seed) {
  util::Rng rng(seed);
  auto j = [&rng] { return rng.jitter(0.01); };
  cost.torus.send_per_packet_s *= j();
  cost.torus.recv_per_packet_s *= j();
  cost.torus.forward_per_packet_s *= j();
  cost.torus.per_message_overhead_s *= j();
  cost.tree.io_forward_per_byte_s *= j();
  cost.tree.compute_recv_per_byte_s *= j();
  cost.ethernet.per_message_overhead_s *= j();
  cost.bg_compute.marshal_per_byte_s *= j();
  cost.linux_node.marshal_per_byte_s *= j();
  return cost;
}

double run_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                      const hw::CostModel& cost, std::uint64_t buffer_bytes,
                      int send_buffers) {
  ScsqConfig cfg;
  cfg.cost = cost;
  cfg.exec.buffer_bytes = buffer_bytes;
  cfg.exec.send_buffers = send_buffers;
  Scsq scsq(cfg);
  auto report = scsq.run(query);
  g_sim_events.fetch_add(scsq.sim().events_dispatched(), std::memory_order_relaxed);
  SCSQ_CHECK(report.elapsed_s > 0.0) << "empty run";
  return static_cast<double>(payload_bytes) * 8.0 / report.elapsed_s / 1e6;
}

util::Stats repeat_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                              const hw::CostModel& base_cost, std::uint64_t buffer_bytes,
                              int send_buffers, std::uint64_t seed_base) {
  util::Stats stats;
  const int reps = quick_mode() ? 2 : kRepetitions;
  for (int rep = 0; rep < reps; ++rep) {
    auto cost = jittered(base_cost, seed_base + static_cast<std::uint64_t>(rep) * 7919);
    stats.add(run_query_mbps(query, payload_bytes, cost, buffer_bytes, send_buffers));
  }
  return stats;
}

void harness_count_events(std::uint64_t events) {
  g_sim_events.fetch_add(events, std::memory_order_relaxed);
}

void harness_begin() {
  g_sim_events.store(0, std::memory_order_relaxed);
  g_harness_start = std::chrono::steady_clock::now();
}

void harness_end(std::size_t points) {
  const auto elapsed = std::chrono::steady_clock::now() - g_harness_start;
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  const auto events = g_sim_events.load(std::memory_order_relaxed);
  std::fprintf(stderr,
               "[harness] %zu sweep points on %u thread(s): %.2f s wall, "
               "%llu simulated events, %.2fM events/s\n",
               points, bench_threads(), wall_s,
               static_cast<unsigned long long>(events),
               wall_s > 0.0 ? static_cast<double>(events) / wall_s / 1e6 : 0.0);
}

std::vector<util::Stats> run_points(const std::vector<QueryPoint>& points) {
  return sweep(points, [](const QueryPoint& p) {
    return repeat_query_mbps(p.query, p.payload_bytes, p.cost, p.buffer_bytes,
                             p.send_buffers, p.seed);
  });
}

std::string p2p_query(std::uint64_t array_bytes, int arrays) {
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(streamof(count(extract(a))),'bg',0)"
    << " and a=sp(gen_array(" << array_bytes << "," << arrays << "),'bg',1);";
  return q.str();
}

std::string merge_query(int x, int y, std::uint64_t array_bytes, int arrays) {
  std::ostringstream q;
  q << "select extract(c) from sp a, sp b, sp c"
    << " where c=sp(count(merge({a,b})), 'bg',0)"
    << " and a=sp(gen_array(" << array_bytes << "," << arrays << "),'bg'," << x << ")"
    << " and b=sp(gen_array(" << array_bytes << "," << arrays << "),'bg'," << y << ");";
  return q.str();
}

std::string inbound_query(int query_no, int n, std::uint64_t array_bytes, int arrays) {
  std::ostringstream q;
  const char* a_alloc = (query_no % 2 == 1) ? "1" : "urr('be')";
  if (query_no <= 2) {
    q << "select extract(c) from bag of sp a, sp b, sp c, integer n"
      << " where c=sp(extract(b), 'bg')"
      << " and b=sp(count(merge(a)), 'bg')"
      << " and a=spv((select gen_array(" << array_bytes << "," << arrays << ")"
      << " from integer i where i in iota(1,n)), 'be', " << a_alloc << ")"
      << " and n=" << n << ";";
  } else {
    const char* b_alloc = (query_no <= 4) ? "inPset(1)" : "psetrr()";
    q << "select extract(c) from bag of sp a, bag of sp b, sp c, integer n"
      << " where c=sp(streamof(sum(merge(b))), 'bg')"
      << " and b=spv((select streamof(count(extract(p))) from sp p where p in a),"
      << " 'bg', " << b_alloc << ")"
      << " and a=spv((select gen_array(" << array_bytes << "," << arrays << ")"
      << " from integer i where i in iota(1,n)), 'be', " << a_alloc << ")"
      << " and n=" << n << ";";
  }
  return q.str();
}

void print_banner(const char* figure, const char* what) {
  std::printf("=====================================================================\n");
  std::printf("SCSQ reproduction — %s: %s\n", figure, what);
  std::printf("Methodology: bandwidth = payload bytes / simulated query time;\n");
  std::printf("%d repetitions with ~1%% cost jitter (paper: five runs).%s\n",
              quick_mode() ? 2 : kRepetitions,
              quick_mode() ? " [QUICK MODE]" : "");
  std::printf("=====================================================================\n");
}

}  // namespace scsq::bench
