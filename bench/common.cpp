#include "common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>

#include "sim/trace.hpp"

namespace scsq::bench {

namespace {

// Simulated events executed by runs since the last harness_begin().
// Relaxed atomic: worker threads only ever add their own run's total.
std::atomic<std::uint64_t> g_sim_events{0};
std::atomic<std::uint64_t> g_wakeups{0};
std::atomic<std::uint64_t> g_peak_queue_depth{0};
std::atomic<std::uint64_t> g_rung_spills{0};
std::atomic<std::uint64_t> g_cancel_consumed{0};
// LP affinity of the sweep's runs (max over points — points are
// homogeneous within one bench, so max == the common value).
std::atomic<int> g_lps_requested{1};
std::atomic<int> g_lps_effective{1};
std::chrono::steady_clock::time_point g_harness_start;

void note_lps(int requested, int effective) {
  int seen = g_lps_requested.load(std::memory_order_relaxed);
  while (requested > seen &&
         !g_lps_requested.compare_exchange_weak(seen, requested, std::memory_order_relaxed)) {
  }
  seen = g_lps_effective.load(std::memory_order_relaxed);
  while (effective > seen &&
         !g_lps_effective.compare_exchange_weak(seen, effective, std::memory_order_relaxed)) {
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

bool quick_mode() { return std::getenv("SCSQ_BENCH_QUICK") != nullptr; }

unsigned bench_threads() { return util::ThreadPool::default_threads(); }

int sim_lps() {
  if (const char* env = std::getenv("SCSQ_SIM_LPS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<int>(v);
  }
  return 1;
}

unsigned plp_workers(int lps) {
  unsigned workers = lps < 1 ? 1u : static_cast<unsigned>(lps);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (workers > hw) workers = hw;
  const unsigned sweep_threads = std::max(1u, bench_threads());
  if (sweep_threads * workers > hw) {
    const unsigned capped = std::max(1u, hw / sweep_threads);
    // Warn once per process: sweeps call this per point.
    static std::atomic<bool> warned{false};
    if (capped < workers && !warned.exchange(true)) {
      std::fprintf(stderr,
                   "[harness] oversubscribed: %u sweep threads x %d LPs > %u hardware threads; "
                   "capping LP workers at %u (results unaffected)\n",
                   sweep_threads, lps, hw, capped);
    }
    workers = capped;
  }
  return workers;
}

int arrays_for_buffer(std::uint64_t buffer_bytes) {
  const int full = quick_mode() ? 10 : kFullArrays;
  // Cap the per-producer message count around 200k.
  const std::uint64_t max_bytes = buffer_bytes * 200'000;
  const int max_arrays = static_cast<int>(std::max<std::uint64_t>(2, max_bytes / kArrayBytes));
  return std::min(full, max_arrays);
}

hw::CostModel jittered(hw::CostModel cost, std::uint64_t seed) {
  util::Rng rng(seed);
  auto j = [&rng] { return rng.jitter(0.01); };
  cost.torus.send_per_packet_s *= j();
  cost.torus.recv_per_packet_s *= j();
  cost.torus.forward_per_packet_s *= j();
  cost.torus.per_message_overhead_s *= j();
  cost.tree.io_forward_per_byte_s *= j();
  cost.tree.compute_recv_per_byte_s *= j();
  cost.ethernet.per_message_overhead_s *= j();
  cost.bg_compute.marshal_per_byte_s *= j();
  cost.linux_node.marshal_per_byte_s *= j();
  return cost;
}

double run_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                      const hw::CostModel& cost, std::uint64_t buffer_bytes,
                      int send_buffers, RunCapture* capture) {
  ScsqConfig cfg;
  cfg.cost = cost;
  cfg.exec.buffer_bytes = buffer_bytes;
  cfg.exec.send_buffers = send_buffers;
  // Traces need one timeline; the LP count is byte-invisible, so the
  // traced repetition still measures the same run (DESIGN.md §5.9).
  cfg.force_single_lp = capture && capture->want_trace;
  Scsq scsq(cfg);
  sim::Trace trace;
  if (capture && capture->want_trace) scsq.machine().set_trace(&trace);
  auto report = scsq.run(query);
  harness_count_perf(scsq.machine().perf_total());
  note_lps(report.sim_lps_requested, report.sim_lps_effective);
  if (capture) {
    // Post-run: snapshotting cannot perturb the simulated timing above.
    scsq.machine().publish_metrics();
    std::ostringstream os;
    scsq.machine().metrics().write_json(os);
    capture->metrics_json = os.str();
    if (capture->want_trace) {
      std::ostringstream ts;
      trace.write_json(ts);
      capture->trace_json = ts.str();
    }
    if (capture->want_profile) {
      capture->profile_json = scsq.engine().profile(report).json();
    }
    if (capture->want_timeseries) {
      // Empty unless SCSQ_SAMPLE_INTERVAL armed the sampler for the run.
      std::ostringstream ts;
      scsq.engine().sampler().write_jsonl(ts);
      capture->timeseries_jsonl = ts.str();
    }
  }
  SCSQ_CHECK(report.elapsed_s > 0.0) << "empty run";
  return static_cast<double>(payload_bytes) * 8.0 / report.elapsed_s / 1e6;
}

util::Stats repeat_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                              const hw::CostModel& base_cost, std::uint64_t buffer_bytes,
                              int send_buffers, std::uint64_t seed_base,
                              RunCapture* capture) {
  util::Stats stats;
  const int reps = quick_mode() ? 2 : kRepetitions;
  for (int rep = 0; rep < reps; ++rep) {
    auto cost = jittered(base_cost, seed_base + static_cast<std::uint64_t>(rep) * 7919);
    RunCapture* rep_capture = (capture && rep == reps - 1) ? capture : nullptr;
    stats.add(run_query_mbps(query, payload_bytes, cost, buffer_bytes, send_buffers,
                             rep_capture));
  }
  return stats;
}

void harness_count_events(std::uint64_t events) {
  g_sim_events.fetch_add(events, std::memory_order_relaxed);
}

void harness_count_perf(const sim::PerfCounters& perf) {
  g_sim_events.fetch_add(perf.events_dispatched, std::memory_order_relaxed);
  g_wakeups.fetch_add(perf.wakeups, std::memory_order_relaxed);
  g_rung_spills.fetch_add(perf.rung_spills, std::memory_order_relaxed);
  g_cancel_consumed.fetch_add(perf.cancel_consumed, std::memory_order_relaxed);
  // Running max (no fetch_max before C++26): CAS until ours is not larger.
  std::uint64_t seen = g_peak_queue_depth.load(std::memory_order_relaxed);
  while (perf.peak_queue_depth > seen &&
         !g_peak_queue_depth.compare_exchange_weak(seen, perf.peak_queue_depth,
                                                   std::memory_order_relaxed)) {
  }
}

void harness_begin() {
  g_sim_events.store(0, std::memory_order_relaxed);
  g_wakeups.store(0, std::memory_order_relaxed);
  g_peak_queue_depth.store(0, std::memory_order_relaxed);
  g_rung_spills.store(0, std::memory_order_relaxed);
  g_cancel_consumed.store(0, std::memory_order_relaxed);
  g_lps_requested.store(1, std::memory_order_relaxed);
  g_lps_effective.store(1, std::memory_order_relaxed);
  g_harness_start = std::chrono::steady_clock::now();
}

void harness_end(std::size_t points) {
  const auto elapsed = std::chrono::steady_clock::now() - g_harness_start;
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  const auto events = g_sim_events.load(std::memory_order_relaxed);
  std::fprintf(stderr,
               "[harness] %zu sweep points on %u thread(s), lps=%d/%d (requested/effective): "
               "%.2f s wall, %llu simulated events, %.2fM events/s, "
               "peak queue depth %llu, %llu wakeups, %llu rung spills, "
               "%llu cancelled timers\n",
               points, bench_threads(),
               g_lps_requested.load(std::memory_order_relaxed),
               g_lps_effective.load(std::memory_order_relaxed), wall_s,
               static_cast<unsigned long long>(events),
               wall_s > 0.0 ? static_cast<double>(events) / wall_s / 1e6 : 0.0,
               static_cast<unsigned long long>(
                   g_peak_queue_depth.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(g_wakeups.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(g_rung_spills.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   g_cancel_consumed.load(std::memory_order_relaxed)));
}

namespace {

// One opener for every JSONL side channel: the first open of the
// process truncates, later opens (a bench with several tables) append,
// and an unopenable path warns once to stderr and drops the write —
// side channels must never fail a bench. `truncated` is the caller's
// per-channel static flag so each channel tracks its own first open.
std::ofstream open_side_channel(const char* path, const char* env_name, bool& truncated) {
  std::ofstream out(path, truncated ? std::ios::app : std::ios::trunc);
  truncated = true;
  if (!out) std::fprintf(stderr, "[harness] cannot open %s=%s\n", env_name, path);
  return out;
}

void write_metrics_jsonl(const char* path, const std::vector<QueryPoint>& points,
                         const std::vector<util::Stats>& stats,
                         const std::vector<RunCapture>& captures) {
  static bool truncated = false;
  std::ofstream out = open_side_channel(path, "SCSQ_METRICS_OUT", truncated);
  if (!out) return;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::string q;
    append_json_escaped(q, p.query);
    std::ostringstream line;
    line << std::setprecision(17);
    line << "{\"point\":" << i << ",\"query\":\"" << q << "\""
         << ",\"payload_bytes\":" << p.payload_bytes
         << ",\"buffer_bytes\":" << p.buffer_bytes
         << ",\"send_buffers\":" << p.send_buffers << ",\"seed\":" << p.seed
         << ",\"mbps_mean\":" << stats[i].mean() << ",\"mbps_stdev\":" << stats[i].stdev()
         << ",\"metrics\":" << captures[i].metrics_json << "}";
    out << line.str() << "\n";
  }
}

void write_profile_jsonl(const char* path, const std::vector<QueryPoint>& points,
                         const std::vector<RunCapture>& captures) {
  static bool truncated = false;
  std::ofstream out = open_side_channel(path, "SCSQ_PROFILE_OUT", truncated);
  if (!out) return;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::string q;
    append_json_escaped(q, p.query);
    out << "{\"point\":" << i << ",\"query\":\"" << q << "\""
        << ",\"payload_bytes\":" << p.payload_bytes
        << ",\"buffer_bytes\":" << p.buffer_bytes
        << ",\"send_buffers\":" << p.send_buffers << ",\"seed\":" << p.seed
        << ",\"profile\":" << captures[i].profile_json << "}\n";
  }
}

// Each sampler line already starts with `{"window":...`; splice the
// sweep point in front so one file carries every point's time series.
void write_timeseries_jsonl(const char* path, const std::vector<RunCapture>& captures) {
  static bool truncated = false;
  std::ofstream out = open_side_channel(path, "SCSQ_TIMESERIES_OUT", truncated);
  if (!out) return;
  for (std::size_t i = 0; i < captures.size(); ++i) {
    std::istringstream lines(captures[i].timeseries_jsonl);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      out << "{\"point\":" << i << ',' << line.substr(1) << '\n';
    }
  }
}

}  // namespace

std::vector<util::Stats> run_points(const std::vector<QueryPoint>& points) {
  const char* metrics_path = std::getenv("SCSQ_METRICS_OUT");
  const char* trace_path = std::getenv("SCSQ_TRACE_OUT");
  const char* profile_path = std::getenv("SCSQ_PROFILE_OUT");
  const char* timeseries_path = std::getenv("SCSQ_TIMESERIES_OUT");
  if (!metrics_path && !trace_path && !profile_path && !timeseries_path) {
    return sweep(points, [](const QueryPoint& p) {
      return repeat_query_mbps(p.query, p.payload_bytes, p.cost, p.buffer_bytes,
                               p.send_buffers, p.seed);
    });
  }

  struct PointOut {
    util::Stats stats;
    RunCapture capture;
  };
  const QueryPoint* first = points.data();
  auto outs = sweep(points, [&](const QueryPoint& p) {
    PointOut out;
    out.capture.want_trace = trace_path != nullptr && &p == first;
    out.capture.want_profile = profile_path != nullptr;
    out.capture.want_timeseries = timeseries_path != nullptr;
    out.stats = repeat_query_mbps(p.query, p.payload_bytes, p.cost, p.buffer_bytes,
                                  p.send_buffers, p.seed, &out.capture);
    return out;
  });

  std::vector<util::Stats> stats;
  std::vector<RunCapture> captures;
  stats.reserve(outs.size());
  captures.reserve(outs.size());
  for (auto& o : outs) {
    stats.push_back(std::move(o.stats));
    captures.push_back(std::move(o.capture));
  }
  if (metrics_path) write_metrics_jsonl(metrics_path, points, stats, captures);
  if (profile_path) write_profile_jsonl(profile_path, points, captures);
  if (timeseries_path) write_timeseries_jsonl(timeseries_path, captures);
  if (trace_path && !captures.empty() && !captures.front().trace_json.empty()) {
    // A trace is one whole JSON document, not JSONL: truncate each time.
    bool trunc_now = false;
    std::ofstream out = open_side_channel(trace_path, "SCSQ_TRACE_OUT", trunc_now);
    if (out) out << captures.front().trace_json;
  }
  return stats;
}

std::string p2p_query(std::uint64_t array_bytes, int arrays) {
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(streamof(count(extract(a))),'bg',0)"
    << " and a=sp(gen_array(" << array_bytes << "," << arrays << "),'bg',1);";
  return q.str();
}

std::string merge_query(int x, int y, std::uint64_t array_bytes, int arrays) {
  std::ostringstream q;
  q << "select extract(c) from sp a, sp b, sp c"
    << " where c=sp(count(merge({a,b})), 'bg',0)"
    << " and a=sp(gen_array(" << array_bytes << "," << arrays << "),'bg'," << x << ")"
    << " and b=sp(gen_array(" << array_bytes << "," << arrays << "),'bg'," << y << ");";
  return q.str();
}

std::string inbound_query(int query_no, int n, std::uint64_t array_bytes, int arrays) {
  std::ostringstream q;
  const char* a_alloc = (query_no % 2 == 1) ? "1" : "urr('be')";
  if (query_no <= 2) {
    q << "select extract(c) from bag of sp a, sp b, sp c, integer n"
      << " where c=sp(extract(b), 'bg')"
      << " and b=sp(count(merge(a)), 'bg')"
      << " and a=spv((select gen_array(" << array_bytes << "," << arrays << ")"
      << " from integer i where i in iota(1,n)), 'be', " << a_alloc << ")"
      << " and n=" << n << ";";
  } else {
    const char* b_alloc = (query_no <= 4) ? "inPset(1)" : "psetrr()";
    q << "select extract(c) from bag of sp a, bag of sp b, sp c, integer n"
      << " where c=sp(streamof(sum(merge(b))), 'bg')"
      << " and b=spv((select streamof(count(extract(p))) from sp p where p in a),"
      << " 'bg', " << b_alloc << ")"
      << " and a=spv((select gen_array(" << array_bytes << "," << arrays << ")"
      << " from integer i where i in iota(1,n)), 'be', " << a_alloc << ")"
      << " and n=" << n << ";";
  }
  return q.str();
}

void print_banner(const char* figure, const char* what) {
  std::printf("=====================================================================\n");
  std::printf("SCSQ reproduction — %s: %s\n", figure, what);
  std::printf("Methodology: bandwidth = payload bytes / simulated query time;\n");
  std::printf("%d repetitions with ~1%% cost jitter (paper: five runs).%s\n",
              quick_mode() ? 2 : kRepetitions,
              quick_mode() ? " [QUICK MODE]" : "");
  std::printf("=====================================================================\n");
}

}  // namespace scsq::bench
