// Shared harness for the figure-reproduction benches.
//
// Methodology follows the paper (§3): the bandwidth of a topology is the
// total stream payload divided by the total time to run a finite query,
// and "each experiment was performed five times in order to achieve low
// variance". Simulation runs are deterministic, so the five repetitions
// perturb the cost-model constants by ~1% (seeded) — standing in for the
// run-to-run hardware variation a real measurement would see.
//
// The paper streams 100 x 3 MB arrays per producer. For sub-1KB buffers
// that is hundreds of thousands of simulated messages per run, so the
// workload is scaled down (bandwidth is a steady-state measure and does
// not depend on stream length once past the ramp-up); the scaling is
// printed with each table.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

#include "core/scsq.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace scsq::bench {

inline constexpr std::uint64_t kArrayBytes = 3'000'000;  // the paper's 3 MB arrays
inline constexpr int kFullArrays = 100;                  // per producer
inline constexpr int kRepetitions = 5;                   // paper: five runs

/// True when SCSQ_BENCH_QUICK is set: shrink workloads for smoke runs.
bool quick_mode();

/// Number of arrays per producer such that one producer's stream is at
/// most ~200k messages at this buffer size (full size when possible).
int arrays_for_buffer(std::uint64_t buffer_bytes);

/// Perturbs timing constants by ~1% (seeded) to emulate run-to-run
/// hardware variation across repetitions.
hw::CostModel jittered(hw::CostModel cost, std::uint64_t seed);

/// Runs one query on a fresh simulated machine; returns Mbit/s of
/// `payload_bytes` over the query's elapsed time.
double run_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                      const hw::CostModel& cost, std::uint64_t buffer_bytes,
                      int send_buffers);

/// Repeats run_query_mbps kRepetitions times with jittered cost models.
util::Stats repeat_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                              const hw::CostModel& base_cost, std::uint64_t buffer_bytes,
                              int send_buffers, std::uint64_t seed_base);

// --- Query builders (the paper's SCSQL, parameterized) ---

/// §3.1 point-to-point: a at bg node 1 -> b at bg node 0.
std::string p2p_query(std::uint64_t array_bytes, int arrays);

/// §3.1 stream merging: producers at nodes x and y, consumer at node 0.
/// Sequential placement: (1,2); balanced: (1,4) — Fig. 7.
std::string merge_query(int x, int y, std::uint64_t array_bytes, int arrays);

/// §3.2 inbound Queries 1-6 with n parallel streams.
std::string inbound_query(int query_no, int n, std::uint64_t array_bytes, int arrays);

/// Prints a table header with the standard bench banner.
void print_banner(const char* figure, const char* what);

}  // namespace scsq::bench
