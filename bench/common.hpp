// Shared harness for the figure-reproduction benches.
//
// Methodology follows the paper (§3): the bandwidth of a topology is the
// total stream payload divided by the total time to run a finite query,
// and "each experiment was performed five times in order to achieve low
// variance". Simulation runs are deterministic, so the five repetitions
// perturb the cost-model constants by ~1% (seeded) — standing in for the
// run-to-run hardware variation a real measurement would see.
//
// The paper streams 100 x 3 MB arrays per producer. For sub-1KB buffers
// that is hundreds of thousands of simulated messages per run, so the
// workload is scaled down (bandwidth is a steady-state measure and does
// not depend on stream length once past the ramp-up); the scaling is
// printed with each table.
//
// Parallel sweeps: every sweep point runs on its own Simulator with its
// own jittered CostModel, so points are independent and fan out across
// SCSQ_BENCH_THREADS worker threads (default: hardware_concurrency;
// =1 preserves strictly sequential execution). Results are collected in
// point order, so tables are byte-identical regardless of thread count;
// the wall-time/events-per-second harness summary goes to stderr to keep
// stdout comparable.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/scsq.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace scsq::bench {

inline constexpr std::uint64_t kArrayBytes = 3'000'000;  // the paper's 3 MB arrays
inline constexpr int kFullArrays = 100;                  // per producer
inline constexpr int kRepetitions = 5;                   // paper: five runs

/// True when SCSQ_BENCH_QUICK is set: shrink workloads for smoke runs.
bool quick_mode();

/// Sweep worker threads: SCSQ_BENCH_THREADS or hardware_concurrency.
unsigned bench_threads();

/// Requested logical-process count for parallel-runtime benches:
/// SCSQ_SIM_LPS if set to a positive integer, else 1. Composable with
/// SCSQ_BENCH_THREADS: sweeps fan points over bench_threads() while each
/// point may run its simulation on plp_workers(sim_lps()) LP workers.
int sim_lps();

/// LP worker threads for a conservative-runtime run with `lps` logical
/// processes. Normally min(lps, hardware); when bench_threads() * lps
/// would oversubscribe hardware_concurrency(), the LP workers (never the
/// LP count — that is semantic) are capped to hardware_concurrency() /
/// bench_threads() and one [harness] warning is logged to stderr.
/// Results are unaffected: worker count is a performance knob only.
unsigned plp_workers(int lps);

/// Number of arrays per producer such that one producer's stream is at
/// most ~200k messages at this buffer size (full size when possible).
int arrays_for_buffer(std::uint64_t buffer_bytes);

/// Perturbs timing constants by ~1% (seeded) to emulate run-to-run
/// hardware variation across repetitions.
hw::CostModel jittered(hw::CostModel cost, std::uint64_t seed);

/// Opt-in capture of observability artifacts from one simulated run:
/// after the run the machine's metrics registry is published and
/// serialized to JSON, and (when want_trace) a Chrome trace is recorded.
/// Capturing happens after sim.run() returns, so timing results and the
/// stdout tables are unaffected.
struct RunCapture {
  bool want_trace = false;       ///< record a Chrome/Perfetto trace of the run
  bool want_profile = false;     ///< capture an EXPLAIN ANALYZE profile JSON
  bool want_timeseries = false;  ///< capture the telemetry sampler's windows
  std::string metrics_json;      ///< registry snapshot (obs JSON export)
  std::string trace_json;        ///< Chrome tracing JSON (when want_trace)
  std::string profile_json;      ///< obs::Profile JSON (when want_profile)
  /// Sampler JSONL, one line per window (empty unless
  /// SCSQ_SAMPLE_INTERVAL armed the sampler for the run).
  std::string timeseries_jsonl;
};

/// Runs one query on a fresh simulated machine; returns Mbit/s of
/// `payload_bytes` over the query's elapsed time. Thread-safe: each call
/// owns its whole simulated environment. `capture`, when non-null, is
/// filled with the run's metrics snapshot (and trace if requested).
double run_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                      const hw::CostModel& cost, std::uint64_t buffer_bytes,
                      int send_buffers, RunCapture* capture = nullptr);

/// Repeats run_query_mbps kRepetitions times with jittered cost models.
/// `capture` applies to the last repetition only (one snapshot per point).
util::Stats repeat_query_mbps(const std::string& query, std::uint64_t payload_bytes,
                              const hw::CostModel& base_cost, std::uint64_t buffer_bytes,
                              int send_buffers, std::uint64_t seed_base,
                              RunCapture* capture = nullptr);

// --- Parallel sweep harness ---

/// One repeat_query_mbps invocation, described as data so a sweep can
/// fan points across threads.
struct QueryPoint {
  std::string query;
  std::uint64_t payload_bytes = 0;
  hw::CostModel cost;
  std::uint64_t buffer_bytes = 0;
  int send_buffers = 1;
  std::uint64_t seed = 0;
};

/// Starts the wall clock / simulated-event accounting for a sweep.
void harness_begin();

/// Prints the harness summary (points, threads, wall seconds, simulated
/// events, events per wall second) for the sweep started by
/// harness_begin. Goes to *stderr*: stdout tables stay byte-identical
/// across thread counts while the perf numbers remain visible.
void harness_end(std::size_t points);

/// Adds externally-run Simulator events to the harness accounting (for
/// benches that drive Scsq directly instead of via run_query_mbps).
void harness_count_events(std::uint64_t events);

/// Full-counter variant: also aggregates wakeups and the peak event-queue
/// depth across sweep points into the harness summary.
void harness_count_perf(const sim::PerfCounters& perf);

/// Maps `fn` over `points` on bench_threads() workers with ordered
/// result collection, bracketed by harness_begin/harness_end.
template <class Point, class Fn>
auto sweep(const std::vector<Point>& points, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, const Point&>> {
  harness_begin();
  auto results = util::run_sweep(points, std::move(fn), bench_threads());
  harness_end(points.size());
  return results;
}

/// Fans QueryPoints (each = one repeat_query_mbps) across threads;
/// returns Stats in point order.
///
/// Observability side channels (both leave stdout byte-identical):
///  * SCSQ_METRICS_OUT=<path>: appends one JSON-lines record per sweep
///    point — the point's parameters, mean/stdev Mbit/s, and the full
///    metrics-registry snapshot of the point's last repetition (per-link
///    byte counters, frame-latency histograms, per-hop utilization...).
///    The first run_points call of the process truncates the file.
///  * SCSQ_TRACE_OUT=<path>: writes a Chrome/Perfetto trace of the first
///    sweep point's last repetition.
///  * SCSQ_PROFILE_OUT=<path>: appends one JSON-lines record per sweep
///    point — the point's parameters plus the EXPLAIN ANALYZE profile
///    (dataflow nodes/edges, critical path, attribution) of the point's
///    last repetition. First run_points call truncates the file.
///  * SCSQ_TIMESERIES_OUT=<path>: appends the telemetry sampler's
///    windowed time series (obs/sampler.hpp) of each point's last
///    repetition, one JSONL line per window tagged with its point.
///    Requires SCSQ_SAMPLE_INTERVAL to arm the sampler; analyzed by
///    `metrics_diff --timeseries`. First run_points call truncates.
std::vector<util::Stats> run_points(const std::vector<QueryPoint>& points);

// --- Query builders (the paper's SCSQL, parameterized) ---

/// §3.1 point-to-point: a at bg node 1 -> b at bg node 0.
std::string p2p_query(std::uint64_t array_bytes, int arrays);

/// §3.1 stream merging: producers at nodes x and y, consumer at node 0.
/// Sequential placement: (1,2); balanced: (1,4) — Fig. 7.
std::string merge_query(int x, int y, std::uint64_t array_bytes, int arrays);

/// §3.2 inbound Queries 1-6 with n parallel streams.
std::string inbound_query(int query_no, int n, std::uint64_t array_bytes, int arrays);

/// Prints a table header with the standard bench banner.
void print_banner(const char* figure, const char* what);

}  // namespace scsq::bench
