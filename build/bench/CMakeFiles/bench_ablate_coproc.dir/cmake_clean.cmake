file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_coproc.dir/bench_ablate_coproc.cpp.o"
  "CMakeFiles/bench_ablate_coproc.dir/bench_ablate_coproc.cpp.o.d"
  "bench_ablate_coproc"
  "bench_ablate_coproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_coproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
