# Empty compiler generated dependencies file for bench_ablate_coproc.
# This may be replaced when dependencies are built.
