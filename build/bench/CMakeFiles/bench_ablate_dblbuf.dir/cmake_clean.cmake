file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dblbuf.dir/bench_ablate_dblbuf.cpp.o"
  "CMakeFiles/bench_ablate_dblbuf.dir/bench_ablate_dblbuf.cpp.o.d"
  "bench_ablate_dblbuf"
  "bench_ablate_dblbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dblbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
