# Empty dependencies file for bench_ablate_dblbuf.
# This may be replaced when dependencies are built.
