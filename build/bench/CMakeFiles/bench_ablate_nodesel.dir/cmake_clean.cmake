file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_nodesel.dir/bench_ablate_nodesel.cpp.o"
  "CMakeFiles/bench_ablate_nodesel.dir/bench_ablate_nodesel.cpp.o.d"
  "bench_ablate_nodesel"
  "bench_ablate_nodesel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_nodesel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
