# Empty compiler generated dependencies file for bench_ablate_nodesel.
# This may be replaced when dependencies are built.
