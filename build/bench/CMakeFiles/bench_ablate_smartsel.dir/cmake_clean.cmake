file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_smartsel.dir/bench_ablate_smartsel.cpp.o"
  "CMakeFiles/bench_ablate_smartsel.dir/bench_ablate_smartsel.cpp.o.d"
  "bench_ablate_smartsel"
  "bench_ablate_smartsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_smartsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
