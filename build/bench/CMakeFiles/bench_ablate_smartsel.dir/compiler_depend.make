# Empty compiler generated dependencies file for bench_ablate_smartsel.
# This may be replaced when dependencies are built.
