file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_inbound.dir/bench_fig15_inbound.cpp.o"
  "CMakeFiles/bench_fig15_inbound.dir/bench_fig15_inbound.cpp.o.d"
  "bench_fig15_inbound"
  "bench_fig15_inbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_inbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
