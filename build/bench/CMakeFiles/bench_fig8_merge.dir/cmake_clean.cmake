file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_merge.dir/bench_fig8_merge.cpp.o"
  "CMakeFiles/bench_fig8_merge.dir/bench_fig8_merge.cpp.o.d"
  "bench_fig8_merge"
  "bench_fig8_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
