file(REMOVE_RECURSE
  "CMakeFiles/bench_linear_road.dir/bench_linear_road.cpp.o"
  "CMakeFiles/bench_linear_road.dir/bench_linear_road.cpp.o.d"
  "bench_linear_road"
  "bench_linear_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
