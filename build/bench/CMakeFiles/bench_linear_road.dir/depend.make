# Empty dependencies file for bench_linear_road.
# This may be replaced when dependencies are built.
