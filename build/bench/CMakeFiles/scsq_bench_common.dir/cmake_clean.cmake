file(REMOVE_RECURSE
  "CMakeFiles/scsq_bench_common.dir/common.cpp.o"
  "CMakeFiles/scsq_bench_common.dir/common.cpp.o.d"
  "libscsq_bench_common.a"
  "libscsq_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
