file(REMOVE_RECURSE
  "libscsq_bench_common.a"
)
