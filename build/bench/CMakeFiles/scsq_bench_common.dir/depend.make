# Empty dependencies file for scsq_bench_common.
# This may be replaced when dependencies are built.
