file(REMOVE_RECURSE
  "CMakeFiles/continuous_monitor.dir/continuous_monitor.cpp.o"
  "CMakeFiles/continuous_monitor.dir/continuous_monitor.cpp.o.d"
  "continuous_monitor"
  "continuous_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
