# Empty compiler generated dependencies file for linear_road.
# This may be replaced when dependencies are built.
