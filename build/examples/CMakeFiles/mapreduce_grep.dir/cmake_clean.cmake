file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_grep.dir/mapreduce_grep.cpp.o"
  "CMakeFiles/mapreduce_grep.dir/mapreduce_grep.cpp.o.d"
  "mapreduce_grep"
  "mapreduce_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
