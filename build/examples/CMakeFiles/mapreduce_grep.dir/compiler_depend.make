# Empty compiler generated dependencies file for mapreduce_grep.
# This may be replaced when dependencies are built.
