
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/scsq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/scsq_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scsq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/scsq_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/lroad/CMakeFiles/scsq_lroad.dir/DependInfo.cmake"
  "/root/repo/build/src/resolve/CMakeFiles/scsq_resolve.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/scsq_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/scsq_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scsq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/scsql/CMakeFiles/scsq_scsql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/scsq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scsq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
