file(REMOVE_RECURSE
  "CMakeFiles/radix_fft.dir/radix_fft.cpp.o"
  "CMakeFiles/radix_fft.dir/radix_fft.cpp.o.d"
  "radix_fft"
  "radix_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
