# Empty compiler generated dependencies file for radix_fft.
# This may be replaced when dependencies are built.
