file(REMOVE_RECURSE
  "CMakeFiles/topology_probe.dir/topology_probe.cpp.o"
  "CMakeFiles/topology_probe.dir/topology_probe.cpp.o.d"
  "topology_probe"
  "topology_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
