# Empty compiler generated dependencies file for topology_probe.
# This may be replaced when dependencies are built.
