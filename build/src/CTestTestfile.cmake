# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("net")
subdirs("hw")
subdirs("catalog")
subdirs("transport")
subdirs("scsql")
subdirs("resolve")
subdirs("plan")
subdirs("funcs")
subdirs("lroad")
subdirs("exec")
subdirs("core")
