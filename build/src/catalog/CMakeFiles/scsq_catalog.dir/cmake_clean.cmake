file(REMOVE_RECURSE
  "CMakeFiles/scsq_catalog.dir/object.cpp.o"
  "CMakeFiles/scsq_catalog.dir/object.cpp.o.d"
  "libscsq_catalog.a"
  "libscsq_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
