file(REMOVE_RECURSE
  "libscsq_catalog.a"
)
