# Empty dependencies file for scsq_catalog.
# This may be replaced when dependencies are built.
