file(REMOVE_RECURSE
  "CMakeFiles/scsq_exec.dir/coordinator.cpp.o"
  "CMakeFiles/scsq_exec.dir/coordinator.cpp.o.d"
  "CMakeFiles/scsq_exec.dir/engine.cpp.o"
  "CMakeFiles/scsq_exec.dir/engine.cpp.o.d"
  "CMakeFiles/scsq_exec.dir/eval.cpp.o"
  "CMakeFiles/scsq_exec.dir/eval.cpp.o.d"
  "CMakeFiles/scsq_exec.dir/substitute.cpp.o"
  "CMakeFiles/scsq_exec.dir/substitute.cpp.o.d"
  "libscsq_exec.a"
  "libscsq_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
