file(REMOVE_RECURSE
  "libscsq_exec.a"
)
