# Empty compiler generated dependencies file for scsq_exec.
# This may be replaced when dependencies are built.
