
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/funcs/fft.cpp" "src/funcs/CMakeFiles/scsq_funcs.dir/fft.cpp.o" "gcc" "src/funcs/CMakeFiles/scsq_funcs.dir/fft.cpp.o.d"
  "/root/repo/src/funcs/textgen.cpp" "src/funcs/CMakeFiles/scsq_funcs.dir/textgen.cpp.o" "gcc" "src/funcs/CMakeFiles/scsq_funcs.dir/textgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/scsq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scsq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
