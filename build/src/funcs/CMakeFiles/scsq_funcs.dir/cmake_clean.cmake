file(REMOVE_RECURSE
  "CMakeFiles/scsq_funcs.dir/fft.cpp.o"
  "CMakeFiles/scsq_funcs.dir/fft.cpp.o.d"
  "CMakeFiles/scsq_funcs.dir/textgen.cpp.o"
  "CMakeFiles/scsq_funcs.dir/textgen.cpp.o.d"
  "libscsq_funcs.a"
  "libscsq_funcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_funcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
