file(REMOVE_RECURSE
  "libscsq_funcs.a"
)
