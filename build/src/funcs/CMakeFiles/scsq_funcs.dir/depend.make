# Empty dependencies file for scsq_funcs.
# This may be replaced when dependencies are built.
