
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cndb.cpp" "src/hw/CMakeFiles/scsq_hw.dir/cndb.cpp.o" "gcc" "src/hw/CMakeFiles/scsq_hw.dir/cndb.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/hw/CMakeFiles/scsq_hw.dir/machine.cpp.o" "gcc" "src/hw/CMakeFiles/scsq_hw.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/scsq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scsq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scsq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
