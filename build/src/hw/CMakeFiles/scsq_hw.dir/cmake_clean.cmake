file(REMOVE_RECURSE
  "CMakeFiles/scsq_hw.dir/cndb.cpp.o"
  "CMakeFiles/scsq_hw.dir/cndb.cpp.o.d"
  "CMakeFiles/scsq_hw.dir/machine.cpp.o"
  "CMakeFiles/scsq_hw.dir/machine.cpp.o.d"
  "libscsq_hw.a"
  "libscsq_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
