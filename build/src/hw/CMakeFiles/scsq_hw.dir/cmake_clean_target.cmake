file(REMOVE_RECURSE
  "libscsq_hw.a"
)
