# Empty compiler generated dependencies file for scsq_hw.
# This may be replaced when dependencies are built.
