file(REMOVE_RECURSE
  "CMakeFiles/scsq_lroad.dir/workload.cpp.o"
  "CMakeFiles/scsq_lroad.dir/workload.cpp.o.d"
  "libscsq_lroad.a"
  "libscsq_lroad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_lroad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
