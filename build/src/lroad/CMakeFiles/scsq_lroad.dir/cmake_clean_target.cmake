file(REMOVE_RECURSE
  "libscsq_lroad.a"
)
