# Empty dependencies file for scsq_lroad.
# This may be replaced when dependencies are built.
