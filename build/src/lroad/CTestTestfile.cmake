# CMake generated Testfile for 
# Source directory: /root/repo/src/lroad
# Build directory: /root/repo/build/src/lroad
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
