
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ethernet.cpp" "src/net/CMakeFiles/scsq_net.dir/ethernet.cpp.o" "gcc" "src/net/CMakeFiles/scsq_net.dir/ethernet.cpp.o.d"
  "/root/repo/src/net/torus_net.cpp" "src/net/CMakeFiles/scsq_net.dir/torus_net.cpp.o" "gcc" "src/net/CMakeFiles/scsq_net.dir/torus_net.cpp.o.d"
  "/root/repo/src/net/tree_net.cpp" "src/net/CMakeFiles/scsq_net.dir/tree_net.cpp.o" "gcc" "src/net/CMakeFiles/scsq_net.dir/tree_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scsq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scsq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
