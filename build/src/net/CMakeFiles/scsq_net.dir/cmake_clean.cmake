file(REMOVE_RECURSE
  "CMakeFiles/scsq_net.dir/ethernet.cpp.o"
  "CMakeFiles/scsq_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/scsq_net.dir/torus_net.cpp.o"
  "CMakeFiles/scsq_net.dir/torus_net.cpp.o.d"
  "CMakeFiles/scsq_net.dir/tree_net.cpp.o"
  "CMakeFiles/scsq_net.dir/tree_net.cpp.o.d"
  "libscsq_net.a"
  "libscsq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
