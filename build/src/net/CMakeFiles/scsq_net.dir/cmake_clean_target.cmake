file(REMOVE_RECURSE
  "libscsq_net.a"
)
