# Empty compiler generated dependencies file for scsq_net.
# This may be replaced when dependencies are built.
