
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/builder.cpp" "src/plan/CMakeFiles/scsq_plan.dir/builder.cpp.o" "gcc" "src/plan/CMakeFiles/scsq_plan.dir/builder.cpp.o.d"
  "/root/repo/src/plan/lroad_ops.cpp" "src/plan/CMakeFiles/scsq_plan.dir/lroad_ops.cpp.o" "gcc" "src/plan/CMakeFiles/scsq_plan.dir/lroad_ops.cpp.o.d"
  "/root/repo/src/plan/operators.cpp" "src/plan/CMakeFiles/scsq_plan.dir/operators.cpp.o" "gcc" "src/plan/CMakeFiles/scsq_plan.dir/operators.cpp.o.d"
  "/root/repo/src/plan/window_ops.cpp" "src/plan/CMakeFiles/scsq_plan.dir/window_ops.cpp.o" "gcc" "src/plan/CMakeFiles/scsq_plan.dir/window_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lroad/CMakeFiles/scsq_lroad.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/scsq_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/scsq_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/scsq_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/scsql/CMakeFiles/scsq_scsql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/scsq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scsq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scsq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scsq_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
