file(REMOVE_RECURSE
  "CMakeFiles/scsq_plan.dir/builder.cpp.o"
  "CMakeFiles/scsq_plan.dir/builder.cpp.o.d"
  "CMakeFiles/scsq_plan.dir/lroad_ops.cpp.o"
  "CMakeFiles/scsq_plan.dir/lroad_ops.cpp.o.d"
  "CMakeFiles/scsq_plan.dir/operators.cpp.o"
  "CMakeFiles/scsq_plan.dir/operators.cpp.o.d"
  "CMakeFiles/scsq_plan.dir/window_ops.cpp.o"
  "CMakeFiles/scsq_plan.dir/window_ops.cpp.o.d"
  "libscsq_plan.a"
  "libscsq_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
