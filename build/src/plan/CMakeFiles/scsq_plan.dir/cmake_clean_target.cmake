file(REMOVE_RECURSE
  "libscsq_plan.a"
)
