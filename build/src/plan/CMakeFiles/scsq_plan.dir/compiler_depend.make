# Empty compiler generated dependencies file for scsq_plan.
# This may be replaced when dependencies are built.
