file(REMOVE_RECURSE
  "CMakeFiles/scsq_resolve.dir/binder.cpp.o"
  "CMakeFiles/scsq_resolve.dir/binder.cpp.o.d"
  "libscsq_resolve.a"
  "libscsq_resolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_resolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
