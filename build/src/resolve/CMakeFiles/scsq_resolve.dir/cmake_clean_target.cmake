file(REMOVE_RECURSE
  "libscsq_resolve.a"
)
