# Empty dependencies file for scsq_resolve.
# This may be replaced when dependencies are built.
