file(REMOVE_RECURSE
  "CMakeFiles/scsq_scsql.dir/ast.cpp.o"
  "CMakeFiles/scsq_scsql.dir/ast.cpp.o.d"
  "CMakeFiles/scsq_scsql.dir/lexer.cpp.o"
  "CMakeFiles/scsq_scsql.dir/lexer.cpp.o.d"
  "CMakeFiles/scsq_scsql.dir/parser.cpp.o"
  "CMakeFiles/scsq_scsql.dir/parser.cpp.o.d"
  "libscsq_scsql.a"
  "libscsq_scsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_scsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
