file(REMOVE_RECURSE
  "libscsq_scsql.a"
)
