# Empty compiler generated dependencies file for scsq_scsql.
# This may be replaced when dependencies are built.
