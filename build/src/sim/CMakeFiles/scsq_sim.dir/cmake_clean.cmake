file(REMOVE_RECURSE
  "CMakeFiles/scsq_sim.dir/simulator.cpp.o"
  "CMakeFiles/scsq_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/scsq_sim.dir/trace.cpp.o"
  "CMakeFiles/scsq_sim.dir/trace.cpp.o.d"
  "libscsq_sim.a"
  "libscsq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
