file(REMOVE_RECURSE
  "libscsq_sim.a"
)
