# Empty dependencies file for scsq_sim.
# This may be replaced when dependencies are built.
