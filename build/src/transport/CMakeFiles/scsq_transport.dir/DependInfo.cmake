
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/driver.cpp" "src/transport/CMakeFiles/scsq_transport.dir/driver.cpp.o" "gcc" "src/transport/CMakeFiles/scsq_transport.dir/driver.cpp.o.d"
  "/root/repo/src/transport/frame.cpp" "src/transport/CMakeFiles/scsq_transport.dir/frame.cpp.o" "gcc" "src/transport/CMakeFiles/scsq_transport.dir/frame.cpp.o.d"
  "/root/repo/src/transport/links.cpp" "src/transport/CMakeFiles/scsq_transport.dir/links.cpp.o" "gcc" "src/transport/CMakeFiles/scsq_transport.dir/links.cpp.o.d"
  "/root/repo/src/transport/marshal.cpp" "src/transport/CMakeFiles/scsq_transport.dir/marshal.cpp.o" "gcc" "src/transport/CMakeFiles/scsq_transport.dir/marshal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/scsq_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/scsq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scsq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scsq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scsq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
