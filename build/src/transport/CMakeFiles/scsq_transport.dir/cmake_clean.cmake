file(REMOVE_RECURSE
  "CMakeFiles/scsq_transport.dir/driver.cpp.o"
  "CMakeFiles/scsq_transport.dir/driver.cpp.o.d"
  "CMakeFiles/scsq_transport.dir/frame.cpp.o"
  "CMakeFiles/scsq_transport.dir/frame.cpp.o.d"
  "CMakeFiles/scsq_transport.dir/links.cpp.o"
  "CMakeFiles/scsq_transport.dir/links.cpp.o.d"
  "CMakeFiles/scsq_transport.dir/marshal.cpp.o"
  "CMakeFiles/scsq_transport.dir/marshal.cpp.o.d"
  "libscsq_transport.a"
  "libscsq_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
