file(REMOVE_RECURSE
  "libscsq_transport.a"
)
