# Empty compiler generated dependencies file for scsq_transport.
# This may be replaced when dependencies are built.
