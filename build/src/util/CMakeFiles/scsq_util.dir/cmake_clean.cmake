file(REMOVE_RECURSE
  "CMakeFiles/scsq_util.dir/bytes.cpp.o"
  "CMakeFiles/scsq_util.dir/bytes.cpp.o.d"
  "CMakeFiles/scsq_util.dir/logging.cpp.o"
  "CMakeFiles/scsq_util.dir/logging.cpp.o.d"
  "CMakeFiles/scsq_util.dir/stats.cpp.o"
  "CMakeFiles/scsq_util.dir/stats.cpp.o.d"
  "CMakeFiles/scsq_util.dir/strings.cpp.o"
  "CMakeFiles/scsq_util.dir/strings.cpp.o.d"
  "libscsq_util.a"
  "libscsq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
