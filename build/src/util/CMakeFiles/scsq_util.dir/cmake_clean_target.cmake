file(REMOVE_RECURSE
  "libscsq_util.a"
)
