# Empty compiler generated dependencies file for scsq_util.
# This may be replaced when dependencies are built.
