# Empty dependencies file for scsq_util.
# This may be replaced when dependencies are built.
