file(REMOVE_RECURSE
  "CMakeFiles/funcs_test.dir/funcs_test.cpp.o"
  "CMakeFiles/funcs_test.dir/funcs_test.cpp.o.d"
  "funcs_test"
  "funcs_test.pdb"
  "funcs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
