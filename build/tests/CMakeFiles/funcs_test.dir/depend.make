# Empty dependencies file for funcs_test.
# This may be replaced when dependencies are built.
