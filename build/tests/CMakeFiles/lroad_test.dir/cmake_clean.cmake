file(REMOVE_RECURSE
  "CMakeFiles/lroad_test.dir/lroad_test.cpp.o"
  "CMakeFiles/lroad_test.dir/lroad_test.cpp.o.d"
  "lroad_test"
  "lroad_test.pdb"
  "lroad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lroad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
