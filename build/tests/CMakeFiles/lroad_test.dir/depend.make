# Empty dependencies file for lroad_test.
# This may be replaced when dependencies are built.
