file(REMOVE_RECURSE
  "CMakeFiles/resolve_test.dir/resolve_test.cpp.o"
  "CMakeFiles/resolve_test.dir/resolve_test.cpp.o.d"
  "resolve_test"
  "resolve_test.pdb"
  "resolve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
