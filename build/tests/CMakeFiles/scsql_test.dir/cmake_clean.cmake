file(REMOVE_RECURSE
  "CMakeFiles/scsql_test.dir/scsql_test.cpp.o"
  "CMakeFiles/scsql_test.dir/scsql_test.cpp.o.d"
  "scsql_test"
  "scsql_test.pdb"
  "scsql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
