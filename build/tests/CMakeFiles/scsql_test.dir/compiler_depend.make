# Empty compiler generated dependencies file for scsql_test.
# This may be replaced when dependencies are built.
