# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/scsql_test[1]_include.cmake")
include("/root/repo/build/tests/resolve_test[1]_include.cmake")
include("/root/repo/build/tests/funcs_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/lroad_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
