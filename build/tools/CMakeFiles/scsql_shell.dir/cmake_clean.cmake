file(REMOVE_RECURSE
  "CMakeFiles/scsql_shell.dir/scsql_shell.cpp.o"
  "CMakeFiles/scsql_shell.dir/scsql_shell.cpp.o.d"
  "scsql_shell"
  "scsql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
