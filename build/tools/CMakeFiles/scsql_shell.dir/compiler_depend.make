# Empty compiler generated dependencies file for scsql_shell.
# This may be replaced when dependencies are built.
