# Empty dependencies file for scsql_shell.
# This may be replaced when dependencies are built.
