// A genuinely *continuous* query: an unbounded sensor stream, window
// aggregation on a BlueGene stream process, and a stop condition at the
// client ("the execution of CQs may be stopped either by explicit user
// intervention or by a stop condition in the query", paper §2.2).
//
//   $ ./examples/continuous_monitor
//
// An unbounded stream of 3 MB arrays flows into a BlueGene node that
// counts arrivals per tumbling window of 25 arrays and streams one
// throughput report per window to the client manager, which stops the
// CQ after five reports.
#include <cstdio>

#include "core/scsq.hpp"
#include "util/bytes.hpp"

int main() {
  scsq::ScsqConfig config;
  config.exec.max_results = 5;  // the stop condition
  config.exec.buffer_bytes = 64 * 1024;
  scsq::Scsq scsq(config);

  const char* query =
      "select extract(b)\n"
      "from sp a, sp b\n"
      "where b=sp(bagcount(cwindow(extract(a), 25)), 'bg')\n"
      "and   a=sp(gen_stream(3000000), 'bg');";

  std::printf("Continuous query (unbounded stream, stop after 5 window reports):\n%s\n\n",
              query);
  auto report = scsq.run(query);

  std::printf("window reports:");
  for (const auto& r : report.results) std::printf(" %s", r.to_string().c_str());
  std::printf("\nstopped by stop condition: %s\n", report.stopped ? "yes" : "no");
  std::printf("simulated time: %.3f s\n", report.elapsed_s);

  // The producer kept running until the stop propagated; its monitoring
  // record shows how much it actually produced.
  for (const auto& s : report.rps) {
    if (s.query.find("gen_stream") != std::string::npos) {
      std::printf("producer rp#%llu at %s emitted %llu arrays (%s) before the stop\n",
                  static_cast<unsigned long long>(s.id), s.loc.to_string().c_str(),
                  static_cast<unsigned long long>(s.elements_out),
                  scsq::util::format_bytes(s.bytes_sent).c_str());
    }
  }
  const bool ok = report.stopped && report.results.size() == 5;
  std::printf("\n%s\n", ok ? "stop condition honored" : "UNEXPECTED result count");
  return ok ? 0 : 1;
}
