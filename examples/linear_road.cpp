// Linear-Road-lite over SCSQ (the benchmark the paper names as future
// work, §5): a back-end stream process generates vehicle position
// reports; two independent BlueGene stream processes subscribe to the
// same source stream (stream splitting) — one computes simplified LRB
// tolls over the congestion window, the other detects accidents — and
// the client manager collects both result streams.
//
//   $ ./examples/linear_road [vehicles] [ticks]
#include <cstdio>
#include <sstream>

#include "core/scsq.hpp"
#include "lroad/workload.hpp"

int main(int argc, char** argv) {
  const int vehicles = argc > 1 ? std::atoi(argv[1]) : 80;
  const int ticks = argc > 2 ? std::atoi(argv[2]) : 60;
  const int accident_tick = ticks - 8;
  const std::uint64_t seed = 2007;

  scsq::Scsq scsq;
  std::ostringstream q;
  q << "select extract(d) from sp a, sp b, sp c, sp d"
    << " where d=sp(merge({b, c}), 'fe')"
    << " and b=sp(lr_tolls(extract(a), 5), 'bg')"
    << " and c=sp(lr_accidents(extract(a), 4), 'bg')"
    << " and a=sp(lr_source_acc(" << vehicles << "," << ticks << "," << seed << ","
    << accident_tick << "), 'be');";

  std::printf("Linear-Road-lite: %d vehicles, %d ticks, accident at tick %d\n\n", vehicles,
              ticks, accident_tick);
  auto report = scsq.run(q.str());
  if (report.results.size() != 2) {
    std::printf("unexpected result count %zu\n", report.results.size());
    return 1;
  }
  // Merge order is arrival order; identify by shape (tolls come in
  // pairs, accidents as a plain id list — disambiguate via the oracle).
  scsq::lroad::WorkloadParams p;
  p.vehicles = vehicles;
  p.ticks = ticks;
  p.seed = seed;
  p.accident_start_tick = accident_tick;
  auto reports = scsq::lroad::generate_reports(p);
  auto want_tolls = scsq::lroad::oracle_tolls(reports, {}, p.tick_seconds);
  auto want_accidents = scsq::lroad::oracle_accidents(reports, 4);

  const auto& first = report.results[0].as_darray();
  const auto& second = report.results[1].as_darray();
  const auto& tolls = first.size() == 2 * want_tolls.size() ? first : second;
  const auto& accidents = (&tolls == &first) ? second : first;

  std::printf("tolled segments (LAV < 40 mph, congested):\n");
  for (std::size_t i = 0; i + 1 < tolls.size(); i += 2) {
    std::printf("  segment %2d : $%.2f\n", static_cast<int>(tolls[i]), tolls[i + 1]);
  }
  if (tolls.empty()) std::printf("  (none)\n");
  std::printf("accident segments:");
  for (double s : accidents) std::printf(" %d", static_cast<int>(s));
  if (accidents.empty()) std::printf(" (none)");
  std::printf("\n\n");

  bool ok = tolls.size() == 2 * want_tolls.size() &&
            accidents.size() == want_accidents.size();
  for (std::size_t i = 0; ok && i < want_tolls.size(); ++i) {
    ok = static_cast<int>(tolls[2 * i]) == want_tolls[i].first &&
         std::abs(tolls[2 * i + 1] - want_tolls[i].second) < 1e-9;
  }
  std::printf("oracle check: %s\n", ok ? "match" : "MISMATCH");
  std::printf("stream processes: %zu, simulated time %.4f s\n", report.rp_count,
              report.elapsed_s);
  return ok ? 0 : 1;
}
