// The paper's distributed grep (§2.4): a mapreduce-style SCSQL query
// that fans grep subqueries out over back-end stream processes with
// spv() and merges their match streams.
//
//   $ ./examples/mapreduce_grep [pattern] [files]
//
// Files are the synthetic LOFAR observation logs of funcs/textgen; each
// grep runs in its own stream process, spread round-robin over the
// back-end cluster with the urr('be') allocation sequence.
#include <cstdio>
#include <sstream>
#include <string>

#include "core/scsq.hpp"
#include "funcs/textgen.hpp"

int main(int argc, char** argv) {
  const std::string pattern = argc > 1 ? argv[1] : "pulsar";
  const int files = argc > 2 ? std::atoi(argv[2]) : 100;

  scsq::Scsq scsq;
  std::ostringstream q2;
  q2 << "merge(spv((select grep(\"" << pattern << "\", filename(i))"
     << " from integer i where i in iota(1," << files << ")), 'be', urr('be')));";

  std::printf("Distributed grep for \"%s\" over %d files, one stream process each:\n\n",
              pattern.c_str(), files);
  auto report = scsq.run(q2.str());

  std::printf("matches: %zu lines\n", report.results.size());
  for (std::size_t i = 0; i < report.results.size() && i < 5; ++i) {
    std::printf("  %s\n", report.results[i].as_str().c_str());
  }
  if (report.results.size() > 5) std::printf("  ...\n");

  // Cross-check against a local scan of the same synthetic corpus.
  std::size_t expected = 0;
  for (int i = 1; i <= files; ++i) {
    expected += scsq::funcs::grep_file(pattern, scsq::funcs::filename_for(i)).size();
  }
  std::printf("\nlocal oracle:    %zu lines  (%s)\n", expected,
              expected == report.results.size() ? "match" : "MISMATCH");
  std::printf("stream processes: %zu, query time %.3f s (simulated)\n", report.rp_count,
              report.elapsed_s);
  return expected == report.results.size() ? 0 : 1;
}
