// Quickstart: submit the paper's intra-BlueGene point-to-point query and
// read the result stream.
//
//   $ ./examples/quickstart
//
// The query creates two stream processes on explicit BlueGene nodes
// (allocation sequences '1' and '0'), streams one hundred 3 MB arrays
// between them over simulated MPI, counts them on the receiving side and
// ships the count back to the client manager on the front-end cluster —
// exactly the setup of the paper's Fig. 5.
#include <cstdio>

#include "core/scsq.hpp"
#include "util/bytes.hpp"

int main() {
  scsq::ScsqConfig config;
  config.exec.buffer_bytes = 1000;  // the paper's optimal MPI buffer size
  config.exec.send_buffers = 2;     // double buffering
  scsq::Scsq scsq(config);

  const char* query =
      "select extract(b)\n"
      "from sp a, sp b\n"
      "where b=sp(streamof(count(extract(a))),\n"
      "           'bg',0) and\n"
      "      a=sp(gen_array(3000000,100),'bg',1);";

  std::printf("Submitting SCSQL query:\n%s\n\n", query);
  auto report = scsq.run(query);

  std::printf("results:");
  for (const auto& obj : report.results) std::printf(" %s", obj.to_string().c_str());
  std::printf("\n");
  std::printf("stream processes:   %zu (including the client manager)\n", report.rp_count);
  std::printf("setup time:         %.3f ms (coordinator RPCs + bgCC polling)\n",
              report.setup_s * 1e3);
  std::printf("query time:         %.3f s (simulated)\n", report.elapsed_s);
  std::printf("bytes streamed:     %s\n",
              scsq::util::format_bytes(report.stream_bytes).c_str());
  const double payload = 100.0 * 3e6;
  std::printf("p2p bandwidth:      %s\n",
              scsq::util::format_bandwidth_bps(payload * 8.0 / report.elapsed_s).c_str());

  std::printf("\nconnections:\n");
  for (const auto& c : report.connections) {
    std::printf("  rp#%llu %s -> rp#%llu %s : %s\n",
                static_cast<unsigned long long>(c.producer_rp), c.src.to_string().c_str(),
                static_cast<unsigned long long>(c.consumer_rp), c.dst.to_string().c_str(),
                scsq::util::format_bytes(c.bytes).c_str());
  }
  return 0;
}
