// The paper's radix2 FFT parallelization (§2.4): a user-defined query
// function whose body splits an antenna signal stream into odd/even
// halves, FFTs each half on its own stream process, and recombines.
//
//   $ ./examples/radix_fft
//
// The example registers a synthetic antenna source (a two-tone signal
// plus noise), runs the radix2 query function, verifies the distributed
// result against a direct single-node FFT, and reports the dominant
// spectral bins.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/scsq.hpp"
#include "funcs/fft.hpp"
#include "util/rng.hpp"

int main() {
  constexpr std::size_t kSamples = 1024;
  constexpr int kArrays = 4;
  constexpr double kTone1 = 50.0;  // bins
  constexpr double kTone2 = 200.0;

  // Synthetic antenna feed: two tones + noise.
  scsq::util::Rng rng(2007);
  std::vector<std::vector<double>> arrays;
  for (int a = 0; a < kArrays; ++a) {
    std::vector<double> x(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i) {
      const double t = static_cast<double>(i);
      x[i] = std::sin(2 * std::numbers::pi * kTone1 * t / kSamples) +
             0.5 * std::sin(2 * std::numbers::pi * kTone2 * t / kSamples) +
             0.1 * rng.normal(0.0, 1.0);
    }
    arrays.push_back(std::move(x));
  }

  scsq::Scsq scsq;
  scsq.register_stream_source("antenna1", arrays);

  const char* script = R"(
    create function radix2(string s)
                  ->stream
    as select radixcombine(merge({a,b}))
    from sp a, sp b, sp c
    where a=sp(fft(odd (extract(c))))
    and b=sp(fft(even(extract(c))))
    and c=sp(receiver(s));

    select radix2('antenna1');
  )";

  std::printf("Running the paper's radix2 query function over %d arrays of %zu samples...\n",
              kArrays, kSamples);
  auto report = scsq.run(script);

  std::printf("result arrays: %zu, stream processes: %zu, time %.4f s (simulated)\n\n",
              report.results.size(), report.rp_count, report.elapsed_s);

  bool all_match = true;
  for (std::size_t k = 0; k < report.results.size(); ++k) {
    const auto& got = report.results[k].as_carray();
    const auto expect = scsq::funcs::fft(arrays[k]);
    double max_err = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      max_err = std::max(max_err, std::abs(got[i] - expect[i]));
    }
    // Dominant positive-frequency bin.
    std::size_t peak = 1;
    for (std::size_t i = 1; i < got.size() / 2; ++i) {
      if (std::abs(got[i]) > std::abs(got[peak])) peak = i;
    }
    std::printf("array %zu: peak bin %zu (expect %.0f), |err|max vs direct FFT = %.2e\n", k,
                peak, kTone1, max_err);
    all_match &= max_err < 1e-9;
  }
  std::printf("\ndistributed radix2 %s the single-node FFT\n",
              all_match ? "matches" : "DOES NOT match");
  return all_match ? 0 : 1;
}
