// Using stream queries to measure communication performance — the
// paper's title, as a tool.
//
//   $ ./examples/topology_probe
//
// This example does what the paper's evaluation does: it generates SCSQL
// queries with explicit allocation sequences to place producers at
// chosen BlueGene torus nodes, measures the streaming bandwidth into a
// fixed consumer, and prints a ranking. It probes every producer
// placement at increasing torus distance from the consumer plus the
// paper's two Fig. 7 pairs — exactly how one would map an unknown
// interconnect with SCSQL.
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/scsq.hpp"

namespace {

double merge_bandwidth_mbps(int x, int y) {
  scsq::ScsqConfig config;
  config.exec.buffer_bytes = 100'000;
  scsq::Scsq scsq(config);
  constexpr std::uint64_t kBytes = 3'000'000;
  constexpr int kArrays = 20;
  std::ostringstream q;
  q << "select extract(c) from sp a, sp b, sp c"
    << " where c=sp(count(merge({a,b})), 'bg',0)"
    << " and a=sp(gen_array(" << kBytes << "," << kArrays << "),'bg'," << x << ")"
    << " and b=sp(gen_array(" << kBytes << "," << kArrays << "),'bg'," << y << ");";
  auto report = scsq.run(q.str());
  const double payload = 2.0 * kBytes * kArrays;
  return payload * 8.0 / report.elapsed_s / 1e6;
}

double p2p_bandwidth_mbps(int src) {
  scsq::ScsqConfig config;
  config.exec.buffer_bytes = 100'000;
  scsq::Scsq scsq(config);
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(streamof(count(extract(a))),'bg',0)"
    << " and a=sp(gen_array(3000000,20),'bg'," << src << ");";
  auto report = scsq.run(q.str());
  return 20.0 * 3e6 * 8.0 / report.elapsed_s / 1e6;
}

}  // namespace

int main() {
  std::printf("Probing the simulated BlueGene torus with SCSQL queries\n");
  std::printf("(consumer fixed at node 0; torus is 4x4x2, rank = x + 4y + 16z)\n\n");

  std::printf("-- point-to-point bandwidth vs. producer distance --\n");
  struct Probe {
    int node;
    const char* where;
  };
  for (auto [node, where] : {Probe{1, "X-neighbor (1 hop)"}, Probe{4, "Y-neighbor (1 hop)"},
                             Probe{16, "Z-neighbor (1 hop)"}, Probe{5, "diagonal (2 hops)"},
                             Probe{2, "X+2 (2 hops)"}, Probe{10, "far corner (4 hops)"}}) {
    std::printf("  producer at node %2d  %-22s : %8.1f Mbit/s\n", node, where,
                p2p_bandwidth_mbps(node));
  }

  std::printf("\n-- two-producer merge bandwidth vs. placement (paper Fig. 7/8) --\n");
  struct Pair {
    int x, y;
    const char* name;
  };
  std::vector<Pair> pairs = {
      {1, 2, "sequential (b routed through a)"},
      {1, 4, "balanced (independent links)"},
      {2, 8, "both 2 hops away"},
      {4, 16, "balanced on Y and Z links"},
  };
  double best = 0;
  const char* best_name = "";
  for (const auto& p : pairs) {
    double mbps = merge_bandwidth_mbps(p.x, p.y);
    std::printf("  a=%2d b=%2d  %-34s : %8.1f Mbit/s\n", p.x, p.y, p.name, mbps);
    if (mbps > best) {
      best = mbps;
      best_name = p.name;
    }
  }
  std::printf("\nBest merge placement: %s (%.1f Mbit/s)\n", best_name, best);
  std::printf("This ranking is what the paper feeds back into the node-selection\n"
              "algorithm of the cluster coordinator.\n");
  return 0;
}
