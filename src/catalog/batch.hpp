// Recycled batch of stream objects for batch-at-a-time execution.
//
// An ItemBatch is the unit the batched SQEP paths hand around: up to
// `max` materialized objects plus an end-of-stream flag. Like the
// transport FramePool, the batch recycles its storage — reset() rewinds
// the logical size but keeps the Object slots (and whatever heap
// capacity their last occupants left behind), so a drive loop reusing
// one batch performs no per-batch allocation in steady state: pushing
// into a previously used slot is a single move-assign.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "catalog/object.hpp"
#include "util/logging.hpp"

namespace scsq::catalog {

class ItemBatch {
 public:
  ItemBatch() = default;
  ItemBatch(const ItemBatch&) = delete;
  ItemBatch& operator=(const ItemBatch&) = delete;

  /// Appends one object, reusing a recycled slot when one is available.
  void push(Object&& obj) {
    if (size_ < slots_.size()) {
      slots_[size_] = std::move(obj);
    } else {
      slots_.push_back(std::move(obj));
    }
    ++size_;
  }

  /// Marks the end of the stream. A batch may carry items *and* EOS:
  /// the final items of a stream arrive together with the flag, and a
  /// later pull would yield an empty EOS batch.
  void mark_eos() { eos_ = true; }

  /// Rewinds to empty without releasing slot storage (the recycling
  /// point of this type). Clears the EOS flag too, so one batch can be
  /// reused across pulls and across streams.
  void reset() {
    size_ = 0;
    eos_ = false;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool eos() const { return eos_; }

  Object& operator[](std::size_t i) {
    SCSQ_CHECK(i < size_) << "batch index out of range";
    return slots_[i];
  }
  const Object& operator[](std::size_t i) const {
    SCSQ_CHECK(i < size_) << "batch index out of range";
    return slots_[i];
  }

  /// Slots ever grown (>= size(); stable across reset() — diagnostics
  /// for the zero-churn invariant, like FramePool::acquired/reused).
  std::size_t slot_capacity() const { return slots_.size(); }

 private:
  std::vector<Object> slots_;  // [0, size_) live, the rest recycled
  std::size_t size_ = 0;
  bool eos_ = false;
};

}  // namespace scsq::catalog
