#include "catalog/object.hpp"

#include <sstream>

namespace scsq::catalog {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kInt: return "int";
    case Kind::kReal: return "real";
    case Kind::kBool: return "bool";
    case Kind::kStr: return "string";
    case Kind::kBag: return "bag";
    case Kind::kDArray: return "darray";
    case Kind::kCArray: return "carray";
    case Kind::kSynth: return "syntharray";
    case Kind::kSp: return "sp";
  }
  return "?";
}

double Object::as_number() const {
  if (kind() == Kind::kInt) return static_cast<double>(as_int());
  if (kind() == Kind::kReal) return as_real();
  SCSQ_CHECK(false) << "object is not numeric: " << kind_name(kind());
  return 0.0;
}

std::string Object::to_string() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kInt:
      os << as_int();
      break;
    case Kind::kReal:
      os << as_real();
      break;
    case Kind::kBool:
      os << (as_bool() ? "true" : "false");
      break;
    case Kind::kStr:
      os << '"' << as_str() << '"';
      break;
    case Kind::kBag: {
      os << '{';
      const auto& bag = as_bag();
      for (std::size_t i = 0; i < bag.size(); ++i) {
        if (i > 0) os << ", ";
        os << bag[i].to_string();
      }
      os << '}';
      break;
    }
    case Kind::kDArray: {
      const auto& a = as_darray();
      os << "darray[" << a.size() << "](";
      for (std::size_t i = 0; i < a.size() && i < 4; ++i) {
        if (i > 0) os << ", ";
        os << a[i];
      }
      if (a.size() > 4) os << ", ...";
      os << ')';
      break;
    }
    case Kind::kCArray: {
      const auto& a = as_carray();
      os << "carray[" << a.size() << "](";
      for (std::size_t i = 0; i < a.size() && i < 3; ++i) {
        if (i > 0) os << ", ";
        os << a[i].real() << (a[i].imag() < 0 ? "" : "+") << a[i].imag() << 'i';
      }
      if (a.size() > 3) os << ", ...";
      os << ')';
      break;
    }
    case Kind::kSynth:
      os << "syntharray(" << as_synth().bytes << " bytes, #" << as_synth().seq << ')';
      break;
    case Kind::kSp:
      os << "sp#" << as_sp().id << '@' << as_sp().cluster;
      break;
  }
  return os.str();
}

std::uint64_t Object::marshaled_size() const {
  // Must stay in sync with transport/marshal.cpp. 1-byte kind tag, then
  // the payload encoding (8-byte lengths and fixed-width scalars).
  constexpr std::uint64_t kTag = 1;
  switch (kind()) {
    case Kind::kNull: return kTag;
    case Kind::kInt: return kTag + 8;
    case Kind::kReal: return kTag + 8;
    case Kind::kBool: return kTag + 1;
    case Kind::kStr: return kTag + 8 + as_str().size();
    case Kind::kBag: {
      std::uint64_t total = kTag + 8;
      for (const auto& o : as_bag()) total += o.marshaled_size();
      return total;
    }
    case Kind::kDArray: return kTag + 8 + 8 * static_cast<std::uint64_t>(as_darray().size());
    case Kind::kCArray: return kTag + 8 + 16 * static_cast<std::uint64_t>(as_carray().size());
    case Kind::kSynth:
      // Simulated payload bytes plus the descriptor header.
      return kTag + 16 + as_synth().bytes;
    case Kind::kSp: return kTag + 8 + 8 + as_sp().cluster.size();
  }
  SCSQ_CHECK(false) << "unreachable";
  return 0;
}

}  // namespace scsq::catalog
