#include "catalog/object.hpp"

#include <cstring>
#include <sstream>
#include <string_view>

namespace scsq::catalog {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kInt: return "int";
    case Kind::kReal: return "real";
    case Kind::kBool: return "bool";
    case Kind::kStr: return "string";
    case Kind::kBag: return "bag";
    case Kind::kDArray: return "darray";
    case Kind::kCArray: return "carray";
    case Kind::kSynth: return "syntharray";
    case Kind::kSp: return "sp";
  }
  return "?";
}

Object::Object(Bag v) : kind_(Kind::kBag) { new (&pay_.bag) Bag(std::move(v)); }

Object::Object(std::vector<double> v) : kind_(Kind::kDArray) {
  new (&pay_.da) std::vector<double>(std::move(v));
}

Object::Object(std::vector<std::complex<double>> v) : kind_(Kind::kCArray) {
  new (&pay_.ca) std::vector<std::complex<double>>(std::move(v));
}

Object::Object(SpHandle v) : kind_(Kind::kSp) {
  if (v.cluster.size() <= kSpInlineCap) {
    pay_.spi.id = v.id;
    pay_.spi.len = static_cast<std::uint8_t>(v.cluster.size());
    std::memcpy(pay_.spi.cluster, v.cluster.data(), v.cluster.size());
  } else {
    flags_ = kSpBoxed;
    pay_.sp = new SpHandle(std::move(v));
  }
}

void Object::copy_from(const Object& other) {
  kind_ = other.kind_;
  flags_ = other.flags_;
  switch (kind_) {
    case Kind::kStr:
      new (&pay_.str) std::string(other.pay_.str);
      break;
    case Kind::kBag:
      new (&pay_.bag) Bag(other.pay_.bag);
      break;
    case Kind::kDArray:
      new (&pay_.da) std::vector<double>(other.pay_.da);
      break;
    case Kind::kCArray:
      new (&pay_.ca) std::vector<std::complex<double>>(other.pay_.ca);
      break;
    case Kind::kSp:
      if (flags_ & kSpBoxed) {
        pay_.sp = new SpHandle(*other.pay_.sp);
        break;
      }
      [[fallthrough]];
    default:
      // Inline payloads are flat bytes; copy the widest member. (void*
      // casts: the union has non-trivial members, but only flat ones
      // are live on this path.)
      std::memcpy(static_cast<void*>(&pay_), static_cast<const void*>(&other.pay_),
                  sizeof(Payload));
      break;
  }
}

SpHandle Object::as_sp() const {
  require(Kind::kSp);
  if (flags_ & kSpBoxed) return *pay_.sp;
  return SpHandle{pay_.spi.id, std::string(pay_.spi.cluster, pay_.spi.len)};
}

double Object::as_number() const {
  if (kind() == Kind::kInt) return as_int();
  if (kind() == Kind::kReal) return as_real();
  SCSQ_CHECK(false) << "object is not numeric: " << kind_name(kind());
  return 0.0;
}

bool Object::operator==(const Object& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kInt: return pay_.i == other.pay_.i;
    case Kind::kReal: return pay_.r == other.pay_.r;
    case Kind::kBool: return pay_.b == other.pay_.b;
    case Kind::kStr: return pay_.str == other.pay_.str;
    case Kind::kBag: return pay_.bag == other.pay_.bag;
    case Kind::kDArray: return pay_.da == other.pay_.da;
    case Kind::kCArray: return pay_.ca == other.pay_.ca;
    case Kind::kSynth: return pay_.synth == other.pay_.synth;
    case Kind::kSp:
      return sp_id() == other.sp_id() && sp_cluster() == other.sp_cluster();
  }
  return false;
}

std::string Object::to_string() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kInt:
      os << as_int();
      break;
    case Kind::kReal:
      os << as_real();
      break;
    case Kind::kBool:
      os << (as_bool() ? "true" : "false");
      break;
    case Kind::kStr:
      os << '"' << as_str() << '"';
      break;
    case Kind::kBag: {
      os << '{';
      const auto& bag = as_bag();
      for (std::size_t i = 0; i < bag.size(); ++i) {
        if (i > 0) os << ", ";
        os << bag[i].to_string();
      }
      os << '}';
      break;
    }
    case Kind::kDArray: {
      const auto& a = as_darray();
      os << "darray[" << a.size() << "](";
      for (std::size_t i = 0; i < a.size() && i < 4; ++i) {
        if (i > 0) os << ", ";
        os << a[i];
      }
      if (a.size() > 4) os << ", ...";
      os << ')';
      break;
    }
    case Kind::kCArray: {
      const auto& a = as_carray();
      os << "carray[" << a.size() << "](";
      for (std::size_t i = 0; i < a.size() && i < 3; ++i) {
        if (i > 0) os << ", ";
        os << a[i].real() << (a[i].imag() < 0 ? "" : "+") << a[i].imag() << 'i';
      }
      if (a.size() > 3) os << ", ...";
      os << ')';
      break;
    }
    case Kind::kSynth:
      os << "syntharray(" << as_synth().bytes << " bytes, #" << as_synth().seq << ')';
      break;
    case Kind::kSp:
      os << "sp#" << sp_id() << '@' << sp_cluster();
      break;
  }
  return os.str();
}

}  // namespace scsq::catalog
