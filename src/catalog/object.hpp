// The SCSQL object model.
//
// "All data in SCSQ is represented by objects" (paper §2.4). An Object
// is a value: null, integer, real, boolean, string, a bag of objects, a
// numeric array (the streams of 1D signal arrays in the paper's
// experiments), a complex array (FFT results), a synthetic array
// descriptor, or a stream-process handle (stream processes are
// first-class objects — the paper's central language contribution).
//
// SynthArray deserves a note: the paper streams 100 arrays of 3 MB each
// per experiment. Allocating those for a bandwidth simulation would be
// waste — only their marshaled size matters — so gen_array() produces
// SynthArray descriptors whose `bytes` drive the simulated marshal and
// transfer costs byte-exactly. Real arrays (DArray) flow through the
// same drivers for the FFT and grep examples, and the binary marshal
// round-trip is tested for every kind.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/logging.hpp"

namespace scsq::catalog {

class Object;

/// Bags are ordered multisets (SCSQL `bag of`); vector keeps insertion
/// order, which merge() and spv() rely on for determinism.
using Bag = std::vector<Object>;

/// Simulated payload: stands in for a numeric array of `bytes` bytes.
struct SynthArray {
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;  // generator sequence number (debugging/tests)
  bool operator==(const SynthArray&) const = default;
};

/// Handle to a stream process (SP). SPs are first-class: queries bind
/// them to variables, pass them to extract()/merge(), and put them in
/// bags. The id is issued by the client manager; cluster records where
/// its running process lives.
struct SpHandle {
  std::uint64_t id = 0;
  std::string cluster;
  bool operator==(const SpHandle&) const = default;
};

enum class Kind : std::uint8_t {
  kNull = 0,
  kInt = 1,
  kReal = 2,
  kBool = 3,
  kStr = 4,
  kBag = 5,
  kDArray = 6,   // vector<double>
  kCArray = 7,   // vector<complex<double>>
  kSynth = 8,
  kSp = 9,
};

/// Human-readable kind name ("int", "bag", ...).
const char* kind_name(Kind kind);

class Object {
 public:
  Object() : value_(std::monostate{}) {}
  Object(std::int64_t v) : value_(v) {}                       // NOLINT(google-explicit-constructor)
  Object(int v) : value_(static_cast<std::int64_t>(v)) {}     // NOLINT
  Object(double v) : value_(v) {}                             // NOLINT
  Object(bool v) : value_(v) {}                               // NOLINT
  Object(std::string v) : value_(std::move(v)) {}             // NOLINT
  Object(const char* v) : value_(std::string(v)) {}           // NOLINT
  Object(Bag v) : value_(std::move(v)) {}                     // NOLINT
  Object(std::vector<double> v) : value_(std::move(v)) {}     // NOLINT
  Object(std::vector<std::complex<double>> v) : value_(std::move(v)) {}  // NOLINT
  Object(SynthArray v) : value_(v) {}                         // NOLINT
  Object(SpHandle v) : value_(std::move(v)) {}                // NOLINT

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }

  /// Typed accessors; SCSQ_CHECK on kind mismatch (callers validate
  /// kinds at plan build time, so a mismatch here is a programmer error).
  std::int64_t as_int() const { return get<std::int64_t>(); }
  double as_real() const { return get<double>(); }
  /// Numeric coercion: int or real as double.
  double as_number() const;
  bool as_bool() const { return get<bool>(); }
  const std::string& as_str() const { return get<std::string>(); }
  const Bag& as_bag() const { return get<Bag>(); }
  Bag& as_bag() { return std::get<Bag>(value_); }
  const std::vector<double>& as_darray() const { return get<std::vector<double>>(); }
  const std::vector<std::complex<double>>& as_carray() const {
    return get<std::vector<std::complex<double>>>();
  }
  const SynthArray& as_synth() const { return get<SynthArray>(); }
  const SpHandle& as_sp() const { return get<SpHandle>(); }

  bool operator==(const Object& other) const { return value_ == other.value_; }

  /// Renders the object for query results and debugging (bags as
  /// {a, b, ...}, arrays elided beyond a few elements).
  std::string to_string() const;

  /// Size of this object when marshaled by the stream drivers
  /// (1-byte kind tag + payload; see transport/marshal for the format).
  std::uint64_t marshaled_size() const;

 private:
  template <class T>
  const T& get() const {
    const T* p = std::get_if<T>(&value_);
    SCSQ_CHECK(p != nullptr) << "object kind mismatch: have " << kind_name(kind());
    return *p;
  }

  std::variant<std::monostate, std::int64_t, double, bool, std::string, Bag,
               std::vector<double>, std::vector<std::complex<double>>, SynthArray, SpHandle>
      value_;
};

}  // namespace scsq::catalog
