// The SCSQL object model.
//
// "All data in SCSQ is represented by objects" (paper §2.4). An Object
// is a value: null, integer, real, boolean, string, a bag of objects, a
// numeric array (the streams of 1D signal arrays in the paper's
// experiments), a complex array (FFT results), a synthetic array
// descriptor, or a stream-process handle (stream processes are
// first-class objects — the paper's central language contribution).
//
// SynthArray deserves a note: the paper streams 100 arrays of 3 MB each
// per experiment. Allocating those for a bandwidth simulation would be
// waste — only their marshaled size matters — so gen_array() produces
// SynthArray descriptors whose `bytes` drive the simulated marshal and
// transfer costs byte-exactly. Real arrays (DArray) flow through the
// same drivers for the FFT and grep examples, and the binary marshal
// round-trip is tested for every kind.
//
// Storage layout (small-value optimization): Object is a hand-rolled
// tagged union instead of a std::variant. Null/Int/Real/Bool/SynthArray
// and SpHandles with short cluster names live inline and never touch
// the heap — moving one is a flat copy of the payload word(s). Strings
// (std::string's own SSO applies) and the container kinds live inline
// in the union as well, so constructing a bag or array costs exactly
// its element storage — no box indirection. Only SpHandles with long
// cluster names are boxed. sizeof(Object) is 40 bytes (vs 48 for the
// variant), and the kind dispatch in move/copy/destroy is a single
// branch for the trivial kinds instead of variant's index table. The
// stream data plane moves Objects constantly (cutter -> frame ->
// receiver -> operators); this layout is what makes those moves
// allocation-free for the paper's SynthArray/count streams.
#pragma once

#include <complex>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.hpp"

namespace scsq::catalog {

class Object;

/// Bags are ordered multisets (SCSQL `bag of`); vector keeps insertion
/// order, which merge() and spv() rely on for determinism.
using Bag = std::vector<Object>;

/// Simulated payload: stands in for a numeric array of `bytes` bytes.
struct SynthArray {
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;  // generator sequence number (debugging/tests)
  bool operator==(const SynthArray&) const = default;
};

/// Handle to a stream process (SP). SPs are first-class: queries bind
/// them to variables, pass them to extract()/merge(), and put them in
/// bags. The id is issued by the client manager; cluster records where
/// its running process lives.
struct SpHandle {
  std::uint64_t id = 0;
  std::string cluster;
  bool operator==(const SpHandle&) const = default;
};

enum class Kind : std::uint8_t {
  kNull = 0,
  kInt = 1,
  kReal = 2,
  kBool = 3,
  kStr = 4,
  kBag = 5,
  kDArray = 6,   // vector<double>
  kCArray = 7,   // vector<complex<double>>
  kSynth = 8,
  kSp = 9,
};

/// Human-readable kind name ("int", "bag", ...).
const char* kind_name(Kind kind);

class Object {
 public:
  Object() noexcept : kind_(Kind::kNull) {}
  Object(std::int64_t v) noexcept : kind_(Kind::kInt) { pay_.i = v; }  // NOLINT(google-explicit-constructor)
  Object(int v) noexcept : Object(static_cast<std::int64_t>(v)) {}    // NOLINT
  Object(double v) noexcept : kind_(Kind::kReal) { pay_.r = v; }      // NOLINT
  Object(bool v) noexcept : kind_(Kind::kBool) { pay_.b = v; }        // NOLINT
  Object(std::string v) : kind_(Kind::kStr) {                         // NOLINT
    new (&pay_.str) std::string(std::move(v));
  }
  Object(const char* v) : Object(std::string(v)) {}                   // NOLINT
  Object(Bag v);                                                      // NOLINT
  Object(std::vector<double> v);                                      // NOLINT
  Object(std::vector<std::complex<double>> v);                        // NOLINT
  Object(SynthArray v) noexcept : kind_(Kind::kSynth) { pay_.synth = v; }  // NOLINT
  Object(SpHandle v);                                                 // NOLINT

  Object(const Object& other) { copy_from(other); }
  Object(Object&& other) noexcept { steal_from(other); }
  Object& operator=(const Object& other) {
    if (this != &other) {
      destroy();
      copy_from(other);
    }
    return *this;
  }
  Object& operator=(Object&& other) noexcept {
    if (this != &other) {
      destroy();
      steal_from(other);
    }
    return *this;
  }
  ~Object() { destroy(); }

  /// Scalar assignment without a temporary Object: the steady-state
  /// decode path re-fills recycled slots with these.
  Object& operator=(std::int64_t v) noexcept {
    destroy();
    kind_ = Kind::kInt;
    flags_ = 0;
    pay_.i = v;
    return *this;
  }
  Object& operator=(double v) noexcept {
    destroy();
    kind_ = Kind::kReal;
    flags_ = 0;
    pay_.r = v;
    return *this;
  }
  Object& operator=(bool v) noexcept {
    destroy();
    kind_ = Kind::kBool;
    flags_ = 0;
    pay_.b = v;
    return *this;
  }
  Object& operator=(int v) noexcept { return *this = static_cast<std::int64_t>(v); }
  Object& operator=(SynthArray v) noexcept {
    destroy();
    kind_ = Kind::kSynth;
    flags_ = 0;
    pay_.synth = v;
    return *this;
  }
  // Without these, `o = "text"` would silently pick operator=(bool) via
  // pointer->bool conversion.
  Object& operator=(std::string v) {
    if (kind_ == Kind::kStr) {
      pay_.str = std::move(v);
    } else {
      destroy();
      kind_ = Kind::kStr;
      flags_ = 0;
      new (&pay_.str) std::string(std::move(v));
    }
    return *this;
  }
  Object& operator=(const char* v) { return *this = std::string(v); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; SCSQ_CHECK on kind mismatch (callers validate
  /// kinds at plan build time, so a mismatch here is a programmer error).
  std::int64_t as_int() const {
    require(Kind::kInt);
    return pay_.i;
  }
  double as_real() const {
    require(Kind::kReal);
    return pay_.r;
  }
  /// Numeric coercion: int or real as double.
  double as_number() const;
  bool as_bool() const {
    require(Kind::kBool);
    return pay_.b;
  }
  const std::string& as_str() const {
    require(Kind::kStr);
    return pay_.str;
  }
  std::string& as_str() {
    require(Kind::kStr);
    return pay_.str;
  }
  const Bag& as_bag() const {
    require(Kind::kBag);
    return pay_.bag;
  }
  Bag& as_bag() {
    require(Kind::kBag);
    return pay_.bag;
  }
  const std::vector<double>& as_darray() const {
    require(Kind::kDArray);
    return pay_.da;
  }
  std::vector<double>& as_darray() {
    require(Kind::kDArray);
    return pay_.da;
  }
  const std::vector<std::complex<double>>& as_carray() const {
    require(Kind::kCArray);
    return pay_.ca;
  }
  std::vector<std::complex<double>>& as_carray() {
    require(Kind::kCArray);
    return pay_.ca;
  }
  const SynthArray& as_synth() const {
    require(Kind::kSynth);
    return pay_.synth;
  }
  /// By value: short cluster names are stored inline (no SpHandle object
  /// exists to reference); the returned copy is SSO-cheap.
  SpHandle as_sp() const;

  bool operator==(const Object& other) const;

  /// Renders the object for query results and debugging (bags as
  /// {a, b, ...}, arrays elided beyond a few elements).
  std::string to_string() const;

  /// Size of this object when marshaled by the stream drivers
  /// (1-byte kind tag + payload; see transport/marshal for the format).
  /// Defined inline below: the frame cutter calls it once per pushed
  /// object, so it must fold into the caller.
  std::uint64_t marshaled_size() const;

 private:
  // Cluster names up to kSpInlineCap chars ("bg", "fe", "be", ...) keep
  // the whole handle in the payload word; longer names fall back to a
  // boxed SpHandle (flags_ & kSpBoxed).
  static constexpr std::size_t kSpInlineCap = 7;
  static constexpr std::uint8_t kSpBoxed = 1;

  struct SpInline {
    std::uint64_t id;
    char cluster[kSpInlineCap];
    std::uint8_t len;
  };
  static_assert(sizeof(SpInline) == 16);

  union Payload {
    Payload() noexcept {}
    ~Payload() noexcept {}
    std::int64_t i;
    double r;
    bool b;
    SynthArray synth;
    SpInline spi;
    std::string str;
    Bag bag;
    std::vector<double> da;
    std::vector<std::complex<double>> ca;
    SpHandle* sp;  // boxed: cluster name longer than kSpInlineCap
  };

  void require(Kind want) const {
    SCSQ_CHECK(kind_ == want) << "object kind mismatch: have " << kind_name(kind_)
                              << ", want " << kind_name(want);
  }

  // The heap-owning kinds kStr..kCArray have contiguous tags, so the
  // hot move/destroy paths dispatch with a single range check before
  // falling into a jump table — streams of scalars/SynthArrays take one
  // predicted branch per object.
  static bool owns_heap(Kind k) { return k >= Kind::kStr && k <= Kind::kCArray; }

  // destroy/steal_from are defined inline below: they run once per
  // Object move on the data plane (cutter, frames, channels), where an
  // out-of-line call would dominate the work itself.
  void destroy() noexcept;
  void copy_from(const Object& other);
  void steal_from(Object& other) noexcept;

  // Non-allocating Sp access for comparison/printing/sizing.
  std::uint64_t sp_id() const { return (flags_ & kSpBoxed) ? pay_.sp->id : pay_.spi.id; }
  std::string_view sp_cluster() const {
    return (flags_ & kSpBoxed) ? std::string_view(pay_.sp->cluster)
                               : std::string_view(pay_.spi.cluster, pay_.spi.len);
  }

  Kind kind_;
  std::uint8_t flags_ = 0;
  Payload pay_;
};

static_assert(sizeof(Object) <= 40, "Object grew past its SVO budget");

inline void Object::destroy() noexcept {
  if (!owns_heap(kind_)) {
    if (kind_ == Kind::kSp && (flags_ & kSpBoxed)) delete pay_.sp;
    return;
  }
  switch (kind_) {
    case Kind::kStr:
      pay_.str.~basic_string();
      break;
    case Kind::kBag:
      pay_.bag.~vector();
      break;
    case Kind::kDArray:
      pay_.da.~vector();
      break;
    case Kind::kCArray:
      pay_.ca.~vector();
      break;
    default:
      break;
  }
}

inline void Object::steal_from(Object& other) noexcept {
  kind_ = other.kind_;
  flags_ = other.flags_;
  if (!owns_heap(kind_)) {
    // Inline payloads are flat bytes; a boxed SpHandle is a pointer
    // whose ownership transfers with the copy (other is nulled below).
    // (void* casts: the union has non-trivial members, but only flat
    // ones are live on this path.)
    std::memcpy(static_cast<void*>(&pay_), static_cast<const void*>(&other.pay_),
                sizeof(Payload));
  } else {
    switch (kind_) {
      case Kind::kStr:
        new (&pay_.str) std::string(std::move(other.pay_.str));
        other.pay_.str.~basic_string();
        break;
      case Kind::kBag:
        new (&pay_.bag) Bag(std::move(other.pay_.bag));
        other.pay_.bag.~vector();
        break;
      case Kind::kDArray:
        new (&pay_.da) std::vector<double>(std::move(other.pay_.da));
        other.pay_.da.~vector();
        break;
      case Kind::kCArray:
        new (&pay_.ca) std::vector<std::complex<double>>(std::move(other.pay_.ca));
        other.pay_.ca.~vector();
        break;
      default:
        break;
    }
  }
  other.kind_ = Kind::kNull;
  other.flags_ = 0;
}

inline std::uint64_t Object::marshaled_size() const {
  // Must stay in sync with transport/marshal.cpp. 1-byte kind tag, then
  // the payload encoding (8-byte lengths and fixed-width scalars).
  constexpr std::uint64_t kTag = 1;
  switch (kind()) {
    case Kind::kNull: return kTag;
    case Kind::kInt: return kTag + 8;
    case Kind::kReal: return kTag + 8;
    case Kind::kBool: return kTag + 1;
    case Kind::kStr: return kTag + 8 + as_str().size();
    case Kind::kBag: {
      std::uint64_t total = kTag + 8;
      for (const auto& o : as_bag()) total += o.marshaled_size();
      return total;
    }
    case Kind::kDArray: return kTag + 8 + 8 * static_cast<std::uint64_t>(as_darray().size());
    case Kind::kCArray: return kTag + 8 + 16 * static_cast<std::uint64_t>(as_carray().size());
    case Kind::kSynth:
      // Simulated payload bytes plus the descriptor header.
      return kTag + 16 + as_synth().bytes;
    case Kind::kSp: return kTag + 8 + 8 + sp_cluster().size();
  }
  SCSQ_CHECK(false) << "unreachable";
  return 0;
}

}  // namespace scsq::catalog
