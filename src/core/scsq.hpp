// Public facade of the SCSQ reproduction.
//
// One Scsq instance owns a complete simulated LOFAR environment (front-
// end cluster, back-end cluster, BlueGene partition) and an execution
// engine. Submit SCSQL scripts with run(); the returned RunReport holds
// the result stream, the simulated elapsed time and per-connection byte
// counts — everything the paper's bandwidth measurements need.
//
// Example:
//   scsq::Scsq scsq;
//   auto report = scsq.run(
//       "select extract(b) from sp a, sp b "
//       "where b=sp(streamof(count(extract(a))),'bg',0) "
//       "and a=sp(gen_array(3000000,100),'bg',1);");
//   // report.results == {100}, report.elapsed_s = simulated query time
#pragma once

#include <string_view>

#include "exec/engine.hpp"
#include "hw/machine.hpp"
#include "sim/simulator.hpp"

namespace scsq {

struct ScsqConfig {
  /// Hardware calibration (defaults: the paper's LOFAR environment).
  hw::CostModel cost = hw::CostModel::lofar();
  /// Execution options (stream buffer size, single/double buffering...).
  exec::ExecOptions exec;
};

class Scsq {
 public:
  explicit Scsq(ScsqConfig config = {})
      : machine_(sim_, config.cost), engine_(machine_, config.exec) {}

  /// Parses and runs an SCSQL script; returns the last query's report.
  /// Throws scsql::Error on syntax/semantic/execution errors.
  exec::RunReport run(std::string_view script) { return engine_.run_script(script); }

  /// Registers a named signal source for the receiver() builtin.
  void register_stream_source(std::string name, std::vector<std::vector<double>> arrays) {
    engine_.register_stream_source(std::move(name), std::move(arrays));
  }

  sim::Simulator& sim() { return sim_; }
  hw::Machine& machine() { return machine_; }
  exec::Engine& engine() { return engine_; }

 private:
  // Declaration order doubles as teardown order: the engine (RPs,
  // drivers) goes first, then the machine (resources), then the
  // simulator (surviving coroutine frames).
  sim::Simulator sim_;
  hw::Machine machine_;
  exec::Engine engine_;
};

}  // namespace scsq
