// Public facade of the SCSQ reproduction.
//
// One Scsq instance owns a complete simulated LOFAR environment (front-
// end cluster, back-end cluster, BlueGene partition) and an execution
// engine. Submit SCSQL scripts with run(); the returned RunReport holds
// the result stream, the simulated elapsed time and per-connection byte
// counts — everything the paper's bandwidth measurements need.
//
// Example:
//   scsq::Scsq scsq;
//   auto report = scsq.run(
//       "select extract(b) from sp a, sp b "
//       "where b=sp(streamof(count(extract(a))),'bg',0) "
//       "and a=sp(gen_array(3000000,100),'bg',1);");
//   // report.results == {100}, report.elapsed_s = simulated query time
#pragma once

#include <string_view>

#include "exec/engine.hpp"
#include "hw/machine.hpp"
#include "sim/lp_domain.hpp"
#include "sim/simulator.hpp"

namespace scsq {

struct ScsqConfig {
  /// Hardware calibration (defaults: the paper's LOFAR environment).
  hw::CostModel cost = hw::CostModel::lofar();
  /// Execution options (stream buffer size, single/double buffering...).
  exec::ExecOptions exec;
  /// Lay the machine out on one LP regardless of SCSQ_SIM_LPS. Set this
  /// when attaching a TraceWriter (traces interleave events from every
  /// Simulator and need a single timeline; Machine::set_trace enforces
  /// it). Results and simulated timing are unaffected — the LP count is
  /// byte-invisible by design.
  bool force_single_lp = false;
};

class Scsq {
 public:
  explicit Scsq(ScsqConfig config = {})
      : domain_(resolve_lps(config)), machine_(domain_, config.cost),
        engine_(machine_, config.exec) {}

  /// Parses and runs an SCSQL script; returns the last query's report.
  /// Throws scsql::Error on syntax/semantic/execution errors.
  exec::RunReport run(std::string_view script) { return engine_.run_script(script); }

  /// Registers a named signal source for the receiver() builtin.
  void register_stream_source(std::string name, std::vector<std::vector<double>> arrays) {
    engine_.register_stream_source(std::move(name), std::move(arrays));
  }

  sim::Simulator& sim() { return domain_.sim(0); }
  sim::LpDomain& domain() { return domain_; }
  hw::Machine& machine() { return machine_; }
  exec::Engine& engine() { return engine_; }

 private:
  /// LP count for the domain: SCSQ_SIM_LPS (else the configured
  /// exec.sim_lps), clamped to the machine's pset count — with two
  /// features forcing a 1-LP (sequential, seed-identical) layout because
  /// they touch machine-wide state mid-drive: max_results (the client
  /// closes every inbox the moment enough results arrived) and the
  /// telemetry sampler (registry-wide reads on a simulated cadence).
  /// Byte-identity across LP counts means this fallback never changes a
  /// query's results or timing, only how many cores drive it.
  static int resolve_lps(const ScsqConfig& config) {
    if (config.force_single_lp || config.exec.max_results > 0 ||
        exec::Engine::resolve_sample_interval_env(config.exec.sample_interval_s) > 0.0) {
      return 1;
    }
    return hw::clamp_lp_count(config.cost,
                              exec::Engine::resolve_sim_lps_env(config.exec.sim_lps));
  }

  // Declaration order doubles as teardown order: the engine (RPs,
  // drivers) goes first, then the machine (resources), then the domain
  // (its Simulators hold surviving coroutine frames).
  sim::LpDomain domain_;
  hw::Machine machine_;
  exec::Engine engine_;
};

}  // namespace scsq
