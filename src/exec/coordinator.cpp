#include "exec/coordinator.hpp"

#include <cmath>

#include "scsql/error.hpp"

namespace scsq::exec {

ClusterCoordinator::ClusterCoordinator(sim::Simulator& sim, std::string cluster,
                                       hw::Cndb& cndb, double rpc_latency,
                                       double poll_interval, bool exclusive_nodes,
                                       NodeSelection selection)
    : sim_(&sim),
      cluster_(std::move(cluster)),
      cndb_(&cndb),
      rpc_latency_(rpc_latency),
      poll_interval_(poll_interval),
      exclusive_nodes_(exclusive_nodes),
      selection_(selection) {}

int ClusterCoordinator::select_node(AllocationSeq* seq) {
  if (seq == nullptr || seq->nodes.empty()) {
    // No user constraint: naive next-available, or the topology-aware
    // spread the paper proposes as the extension of this algorithm.
    auto node = selection_ == NodeSelection::kSpread ? cndb_->next_available_spread()
                                                     : cndb_->next_available();
    if (!node) throw scsql::Error("no available compute node in cluster '" + cluster_ + "'");
    return *node;
  }
  // Cyclic walk of the allocation sequence, skipping busy nodes.
  for (std::size_t tries = 0; tries < seq->nodes.size(); ++tries) {
    int node = seq->nodes[seq->cursor % seq->nodes.size()];
    ++seq->cursor;
    if (node < 0 || node >= cndb_->node_count()) {
      throw scsql::Error("allocation sequence names unknown node " + std::to_string(node) +
                         " in cluster '" + cluster_ + "'");
    }
    if (!exclusive_nodes_ || !cndb_->busy(node)) return node;
  }
  throw scsql::Error("allocation sequence for cluster '" + cluster_ +
                     "' contains no available node");
}

sim::Task<int> ClusterCoordinator::allocate_node(AllocationSeq* seq) {
  // Registration RPC with the cluster coordinator (via the feCC for the
  // BlueGene).
  co_await sim_->delay(rpc_latency_);
  if (poll_interval_ > 0.0) {
    // bgCC picks the registration up at its next poll tick.
    const double now = sim_->now();
    const double next_tick = std::ceil(now / poll_interval_) * poll_interval_;
    co_await sim_->delay(next_tick - now);
  }
  int node = select_node(seq);
  if (exclusive_nodes_) cndb_->set_busy(node, true);
  co_return node;
}

void ClusterCoordinator::release_node(int node) {
  if (exclusive_nodes_) cndb_->set_busy(node, false);
}

}  // namespace scsq::exec
