// Cluster coordinators (feCC, beCC, bgCC of the paper's Fig. 2).
//
// Each coordinator owns node selection for its cluster, querying the
// CNDB. The BlueGene coordinator cannot be contacted directly — CNK has
// no server sockets — so "sub-queries ... to be executed on the BlueGene
// are registered with the feCC [and] the bgCC retrieves new sub-queries
// from the feCC by polling" (paper §2.2). We model that with a polling
// interval: a BlueGene allocation completes at the next poll tick after
// the registration RPC.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/cndb.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace scsq::exec {

/// A cyclic allocation sequence ("the node selection algorithm will
/// choose the first available node in the allocation sequence"). One
/// instance is shared by all SPs of a single sp()/spv() call, so
/// successive allocations advance through the sequence — urr('be')
/// spreads SPs round-robin while a literal single-node sequence pins
/// every SP to that node (the paper's Query 1 vs. Query 2).
struct AllocationSeq {
  std::vector<int> nodes;
  std::size_t cursor = 0;
};

/// Which algorithm fills in node choices when the user gives no
/// allocation sequence.
enum class NodeSelection {
  kNaive,   // the paper's current algorithm: next available node
  kSpread,  // the paper's proposed extension: spread across psets
};

class ClusterCoordinator {
 public:
  /// `rpc_latency` is the coordinator registration round-trip;
  /// `poll_interval` > 0 adds the bgCC polling delay (0 = direct).
  /// `exclusive_nodes`: a node runs at most one RP (BlueGene compute
  /// nodes "can execute only one process", §2.2).
  ClusterCoordinator(sim::Simulator& sim, std::string cluster, hw::Cndb& cndb,
                     double rpc_latency, double poll_interval, bool exclusive_nodes,
                     NodeSelection selection = NodeSelection::kNaive);

  /// Allocates a node for a new RP, honoring `seq` when given (cyclic,
  /// skipping busy nodes); otherwise the naive next-available algorithm.
  /// Simulates registration latency. Throws scsql::Error when no node
  /// is available.
  sim::Task<int> allocate_node(AllocationSeq* seq);

  /// Releases a node at query teardown.
  void release_node(int node);

  const std::string& cluster() const { return cluster_; }
  hw::Cndb& cndb() { return *cndb_; }

 private:
  int select_node(AllocationSeq* seq);

  sim::Simulator* sim_;
  std::string cluster_;
  hw::Cndb* cndb_;
  double rpc_latency_;
  double poll_interval_;
  bool exclusive_nodes_;
  NodeSelection selection_;
};

}  // namespace scsq::exec
