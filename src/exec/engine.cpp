#include "exec/engine.hpp"

#include <cstdlib>

#include "exec/eval.hpp"
#include "exec/substitute.hpp"
#include "resolve/binder.hpp"
#include "util/logging.hpp"

namespace scsq::exec {

using catalog::Bag;
using catalog::Kind;
using catalog::Object;
using catalog::SpHandle;
using scsql::Error;
using scsql::ExprKind;
using scsql::ExprPtr;

namespace {

/// batch_size == 0 means "resolve from the environment": SCSQ_BATCH_SIZE
/// if set to a positive integer, otherwise the built-in default. The
/// resolved value is written back into options_, so options().batch_size
/// always reports the effective depth.
std::size_t resolve_batch_size(std::size_t configured) {
  constexpr std::size_t kDefaultBatchSize = 256;
  if (configured != 0) return configured;
  if (const char* env = std::getenv("SCSQ_BATCH_SIZE")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  return kDefaultBatchSize;
}

/// sim_lps == 0 means "resolve from the environment": SCSQ_SIM_LPS if
/// set to a positive integer, otherwise 1 (the sequential fast path).
/// Same write-back convention as resolve_batch_size.
int resolve_sim_lps(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("SCSQ_SIM_LPS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<int>(v);
  }
  return 1;
}

/// sample_interval_s < 0 means "resolve from the environment":
/// SCSQ_SAMPLE_INTERVAL if set to a positive number of simulated
/// seconds, otherwise 0 (sampling off). Same write-back convention as
/// resolve_batch_size. Unlike the other knobs a malformed value is
/// rejected, not defaulted: a typo'd interval silently disabling
/// sampling would make a telemetry run lie by omission.
double resolve_sample_interval(double configured) {
  if (configured >= 0.0) return configured;
  const char* env = std::getenv("SCSQ_SAMPLE_INTERVAL");
  if (env == nullptr || *env == '\0') return 0.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0') {
    throw Error(std::string("SCSQ_SAMPLE_INTERVAL must be a number of simulated "
                            "seconds, got '") +
                env + "'");
  }
  if (v <= 0.0) {
    throw Error(std::string("SCSQ_SAMPLE_INTERVAL must be positive, got '") + env +
                "' (unset the variable to disable sampling)");
  }
  return v;
}

}  // namespace

int Engine::resolve_sim_lps_env(int configured) { return resolve_sim_lps(configured); }

double Engine::resolve_sample_interval_env(double configured) {
  return resolve_sample_interval(configured);
}

Engine::Engine(hw::Machine& machine, ExecOptions options)
    : machine_(&machine), options_(std::move(options)) {
  options_.batch_size = resolve_batch_size(options_.batch_size);
  options_.sample_interval_s = resolve_sample_interval(options_.sample_interval_s);
  // partition_ is the *requested* affinity labeling (SCSQ_SIM_LPS clamped
  // to the pset count) used for rp.lp labels, monitor LP rows and the
  // requested gauge. The machine's own layout — machine_->lp_of/sim_of —
  // governs where RPs actually execute; core::Scsq collapses it to one
  // LP for features that need the sequential drive, without changing the
  // labels here.
  options_.sim_lps = resolve_sim_lps(options_.sim_lps);
  partition_ = machine_->partition(options_.sim_lps);
  if (machine_->parallel_drive() &&
      (options_.max_results > 0 || options_.sample_interval_s > 0.0)) {
    // Both features need the whole data plane on one Simulator:
    // max_results stops mid-stream from the client (closing inboxes on
    // every LP), and the sampler ticks the machine-wide registry.
    // core::Scsq collapses the domain to one LP for them; reaching this
    // point means the machine was assembled by hand — refuse rather
    // than race.
    throw Error(
        "max_results and SCSQ_SAMPLE_INTERVAL require a single-LP machine "
        "(build the LpDomain with lp_count 1, or unset SCSQ_SIM_LPS)");
  }
  set_sample_interval(options_.sample_interval_s);
  auto& sim = machine_->sim();
  fe_cc_ = std::make_unique<ClusterCoordinator>(sim, hw::kFrontEnd,
                                                machine_->cndb(hw::kFrontEnd),
                                                options_.coordinator_rpc_s,
                                                /*poll_interval=*/0.0,
                                                /*exclusive_nodes=*/false);
  be_cc_ = std::make_unique<ClusterCoordinator>(sim, hw::kBackEnd,
                                                machine_->cndb(hw::kBackEnd),
                                                options_.coordinator_rpc_s,
                                                /*poll_interval=*/0.0,
                                                /*exclusive_nodes=*/false);
  bg_cc_ = std::make_unique<ClusterCoordinator>(sim, hw::kBlueGene,
                                                machine_->cndb(hw::kBlueGene),
                                                options_.coordinator_rpc_s,
                                                options_.bgcc_poll_interval_s,
                                                /*exclusive_nodes=*/true,
                                                options_.node_selection);
  // Monitor side channel + environment-registered monitor query
  // (SCSQ_MONITOR pairs with SCSQ_SAMPLE_INTERVAL the way
  // SCSQ_TIMESERIES_OUT does — without a sample interval it never fires).
  if (const char* env = std::getenv("SCSQ_MONITOR_OUT")) monitor_out_path_ = env;
  if (const char* env = std::getenv("SCSQ_MONITOR")) {
    if (*env != '\0') register_monitor(env);
  }
}

Engine::~Engine() = default;

void Engine::set_sample_interval(double interval_s) {
  options_.sample_interval_s = interval_s > 0.0 ? interval_s : 0.0;
  sampler_ = std::make_unique<obs::Sampler>(
      machine_->sim(), machine_->metrics(),
      obs::Sampler::Options{options_.sample_interval_s});
  // Pull-model metrics (network utilization, kernel perf, frame pool)
  // must be fresh in the registry at every window boundary.
  sampler_->add_publisher([this] { machine_->publish_metrics(); });
  install_window_observer();
}

void Engine::install_window_observer() {
  sampler_->set_window_observer(
      [this](const obs::Sampler::Window& w, std::size_t i) { on_window(w, i); });
}

ClusterCoordinator& Engine::coordinator(const std::string& cluster) {
  if (cluster == hw::kFrontEnd) return *fe_cc_;
  if (cluster == hw::kBackEnd) return *be_cc_;
  if (cluster == hw::kBlueGene) return *bg_cc_;
  throw Error("unknown cluster '" + cluster + "'");
}

void Engine::register_function(std::shared_ptr<const scsql::FunctionDef> fn) {
  SCSQ_CHECK(fn != nullptr) << "null function definition";
  functions_[fn->name] = std::move(fn);
}

void Engine::register_stream_source(std::string name,
                                    std::vector<std::vector<double>> arrays) {
  stream_sources_[std::move(name)] = std::move(arrays);
}

transport::DriverParams Engine::driver_params_for(const hw::Location& loc) const {
  transport::DriverParams p;
  p.buffer_bytes = options_.buffer_bytes;
  p.send_buffers = options_.send_buffers;
  p.recv_buffers = options_.recv_buffers;
  const auto& node = machine_->node_params(loc);
  p.marshal_per_byte_s = node.marshal_per_byte_s;
  p.alloc_per_object_s = node.alloc_per_object_s;
  p.frame_pool = &machine_->pool_of(loc);
  if (loc.cluster == hw::kBlueGene) {
    // BlueGene compute CPUs see cache-miss growth for large buffers
    // (the Fig. 6 decline right of the peak).
    auto* torus = &machine_->bg().torus();
    p.cache_factor = [torus](std::uint64_t bytes) { return torus->cache_factor(bytes); };
  }
  return p;
}

// ---------------------------------------------------------------------
// Script / statement entry points
// ---------------------------------------------------------------------

RunReport Engine::run_script(std::string_view text) {
  RunReport last;
  for (const auto& st : scsql::parse_script(text)) {
    last = run_statement(st);
  }
  return last;
}

RunReport Engine::run_statement(const scsql::Statement& statement) {
  if (statement.function) {
    register_function(statement.function);
    return RunReport{};
  }
  SCSQ_CHECK(statement.query != nullptr) << "statement without query or function";

  RunReport report;
  error_ = nullptr;
  stop_requested_ = false;
  rps_.clear();
  alloc_seqs_.clear();
  next_rp_id_ = 1;
  results_sink_ = &report.results;
  monitor_alerts_.clear();
  monitor_error_ = nullptr;
  for (auto& m : monitors_) m.alerts_last_run = 0;

  auto& sim = machine_->sim();
  sim::LpDomain* domain = machine_->domain();
  // The two-phase drive only engages when more than one LP could run:
  // a 1-LP domain takes the seed single-Simulator path, so its event
  // order (and in particular the sampler's tick interleaving) is
  // byte-identical to a domain-less machine.
  const bool phased = machine_->parallel_drive();
  const double t0 = sim.now();
  // Arm the telemetry sampler before the first event. Ticks are
  // zero-duration read-only callbacks, so the statement's observable
  // timing is identical with sampling on or off (DESIGN.md §5.7).
  sampler_->begin(t0, machine_->trace());
  phase_ready_ = false;
  effective_lps_ = 1;
  sequenced_drive_ = false;
  if (phased) phase_gate_ = std::make_unique<sim::Event>(sim);
  sim.spawn(execute(statement.query, &report));
  const double limit =
      options_.max_sim_time_s > 0 ? t0 + options_.max_sim_time_s : sim::Simulator::kNoLimit;
  // Phase A: parse/bind/wire runs entirely on LP0. On a parallel machine
  // execute() parks on phase_gate_ once wiring is done, so this run()
  // quiesces with the data plane built but not started.
  sim.run(limit);
  if (phase_ready_) {
    // Phase B: start every non-client RP on its own LP's Simulator, then
    // release execute() (which runs the client manager on LP0) and drive
    // the whole domain. Scheduling happens here — single-threaded, all
    // LPs quiescent — because call_at into a *running* remote Simulator
    // would race.
    // A cross-pset MPI stream collapses the drive to the sequenced
    // multiplexer (effective 1 — the gauge reports realized parallelism,
    // not shard count). begin_sequenced() must precede the RP-start
    // scheduling below so those call_at events draw their seqs from the
    // shared counter in rps_ order — the k == 1 relative order.
    effective_lps_ = sequenced_drive_ ? 1 : count_effective_lps();
    if (sequenced_drive_) domain->begin_sequenced();
    const double t_wire = sim.now();
    for (auto& rp : rps_) {
      if (rp->is_client) continue;
      Rp* p = rp.get();
      auto& s = machine_->sim_of(p->loc);
      s.call_at(std::max(t_wire, s.now()), [this, p, &s] { s.spawn(run_rp(*p)); });
    }
    phase_gate_->set();
  }
  const auto drive = [&](double l) {
    if (sequenced_drive_) {
      domain->run_sequenced(l);
    } else if (phased && effective_lps_ > 1) {
      domain->run_windowed(l);
    } else {
      sim.run(l);
    }
  };
  const auto live_roots = [&]() -> std::size_t {
    if (domain == nullptr) return sim.live_root_tasks();
    std::size_t n = 0;
    for (int lp = 0; lp < domain->lp_count(); ++lp) n += domain->sim(lp).live_root_tasks();
    return n;
  };
  drive(limit);
  if (live_roots() > 0 && !error_) {
    // "Explicit user intervention": the simulated-time limit fired while
    // the CQ was still running. Stop it and let the teardown drain.
    // initiate_stop runs here on the main thread with every LP quiescent,
    // so touching the LP0-owned client manager is race-free.
    initiate_stop();
    report.stopped = true;
    drive(limit + std::max(1.0, 0.5 * options_.max_sim_time_s));
  }
  if (phased) {
    // Deferred transport metrics: split links buffered registry updates
    // during the parallel drive; publish them now at quiescence.
    for (const auto& rp : rps_) {
      for (const auto& tx : rp->senders) tx->link().publish_deferred();
    }
    if (sequenced_drive_) domain->end_sequenced();
    machine_->thaw_fabric_factors();
    phase_gate_.reset();
  }
  // Normally a no-op (execute() finished the sampler before its last
  // event); on error/limit paths this cancels the parked tick and drops
  // link-histogram registrations before any teardown can dangle them.
  sampler_->finish();

  // Teardown: release exclusively held nodes ("when a CQ is stopped, its
  // RPs are terminated", §2.2).
  for (const auto& rp : rps_) {
    if (!rp->is_client) coordinator(rp->loc.cluster).release_node(rp->loc.node);
  }
  results_sink_ = nullptr;

  // Flush the monitor side channel before any error propagates: a run
  // that died mid-statement still leaves its alerts on disk.
  if (!monitor_out_path_.empty()) {
    obs::append_alerts_file(monitor_out_path_, monitor_alerts_);
  }

  if (error_) std::rethrow_exception(error_);
  if (monitor_error_) std::rethrow_exception(monitor_error_);
  if (live_roots() > 0) {
    throw Error("query did not complete (deadlock or simulated-time limit exceeded)");
  }

  // Connection and per-RP monitoring statistics.
  for (const auto& rp : rps_) {
    for (std::size_t i = 0; i < rp->senders.size(); ++i) {
      ConnectionStat c;
      c.producer_rp = rp->id;
      c.consumer_rp = rp->consumer_ids[i];
      c.src = rp->loc;
      c.dst = find_rp(rp->consumer_ids[i]).loc;
      c.bytes = rp->senders[i]->bytes_sent();
      report.stream_bytes += c.bytes;
      report.connections.push_back(std::move(c));
    }
    RpStat s;
    s.id = rp->id;
    s.loc = rp->loc;
    s.query = rp->query ? rp->query->to_string() : "<client manager>";
    s.elements_out = rp->elements_out;
    s.drive_s = rp->drive_s;
    for (const auto& tx : rp->senders) {
      s.bytes_sent += tx->bytes_sent();
      s.stall_s += tx->stall_seconds();
      s.marshal_s += tx->marshal_seconds();
    }
    for (const auto& rx : rp->receivers) {
      s.bytes_received += rx->bytes_received();
      s.recv_wait_s += rx->wait_seconds();
      s.demarshal_s += rx->demarshal_seconds();
    }
    if (rp->root) {
      s.batches = rp->root->batch_counters().batches;
      s.batch_items = rp->root->batch_counters().items;
    }
    s.lp = partition_.lp_of(rp->loc);
    publish_rp_metrics(s);
    report.rps.push_back(std::move(s));
  }
  report.rp_count = rps_.size();
  report.stopped |= stop_requested_;
  machine_->metrics().gauge("engine.setup_s").set(report.setup_s);
  machine_->metrics().gauge("engine.elapsed_s").set(report.elapsed_s);
  machine_->metrics().gauge("engine.rp_count").set(static_cast<double>(report.rp_count));
  // LP partition affinity: requested = SCSQ_SIM_LPS (after clamping to
  // the pset count), effective = how many LPs actually hosted RPs this
  // statement. effective > 1 means the drive ran through
  // LpDomain::run_windowed with conservative link-latency lookahead;
  // effective == 1 collapses to the sequential kernel. Either way the
  // output is byte-identical at every LP count (DESIGN.md §5.9).
  report.sim_lps_requested = partition_.lp_count;
  report.sim_lps_effective = effective_lps_;
  machine_->metrics().gauge("engine.sim_lps.requested")
      .set(static_cast<double>(partition_.lp_count));
  machine_->metrics().gauge("engine.sim_lps.effective")
      .set(static_cast<double>(effective_lps_));
  return report;
}

void Engine::publish_rp_metrics(const RpStat& s) {
  auto& registry = machine_->metrics();
  const obs::Labels labels{{"rp", std::to_string(s.id)}, {"loc", s.loc.to_string()}};
  registry.gauge("engine.rp.elements_out", labels).set(static_cast<double>(s.elements_out));
  registry.gauge("engine.rp.bytes_sent", labels).set(static_cast<double>(s.bytes_sent));
  registry.gauge("engine.rp.bytes_received", labels)
      .set(static_cast<double>(s.bytes_received));
  registry.gauge("engine.rp.stall_s", labels).set(s.stall_s);
  registry.gauge("engine.rp.drive_s", labels).set(s.drive_s);
  registry.gauge("engine.rp.recv_wait_s", labels).set(s.recv_wait_s);
  registry.gauge("engine.rp.marshal_s", labels).set(s.marshal_s);
  registry.gauge("engine.rp.demarshal_s", labels).set(s.demarshal_s);
  registry.gauge("engine.rp.batches", labels).set(static_cast<double>(s.batches));
  registry.gauge("engine.rp.batch_fill", labels)
      .set(s.batches == 0 ? 0.0
                          : static_cast<double>(s.batch_items) /
                                static_cast<double>(s.batches));
  registry.gauge("engine.rp.lp", labels).set(static_cast<double>(s.lp));
}

obs::Profile Engine::profile(const RunReport& report) const {
  obs::Profile p;
  p.elapsed_s = report.elapsed_s;
  p.setup_s = report.setup_s;
  p.coproc_switch_s = machine_->bg().torus().switch_seconds();
  for (const auto& rp : rps_) {
    obs::ProfileNode n;
    n.rp = rp->id;
    n.loc = rp->loc.to_string();
    n.query = rp->query ? rp->query->to_string() : "<client manager>";
    n.op = rp->root ? rp->root->name() : "collect";
    n.is_client = rp->is_client;
    n.elements_out = rp->elements_out;
    n.drive_s = rp->drive_s;
    if (rp->root) {
      n.batches = rp->root->batch_counters().batches;
      n.batch_items = rp->root->batch_counters().items;
    }
    for (const auto& rx : rp->receivers) {
      n.bytes_received += rx->bytes_received();
      n.recv_wait_s += rx->wait_seconds();
      n.demarshal_s += rx->demarshal_seconds();
    }
    for (std::size_t i = 0; i < rp->senders.size(); ++i) {
      const auto& tx = *rp->senders[i];
      n.bytes_sent += tx.bytes_sent();
      n.marshal_s += tx.marshal_seconds();
      n.send_stall_s += tx.stall_seconds();
      obs::ProfileEdge e;
      e.src_rp = rp->id;
      e.dst_rp = rp->consumer_ids[i];
      e.type = tx.link().type();
      const auto& st = tx.link().stats();
      e.frames = st.frames;
      e.payload_bytes = st.payload_bytes;
      e.wire_bytes = st.wire_bytes;
      e.transit_s = st.transit_s;
      e.window_wait_s = st.window_wait_s;
      e.latency = st.latency;
      p.edges.push_back(std::move(e));
    }
    p.nodes.push_back(std::move(n));
  }
  return p;
}

// ---------------------------------------------------------------------
// Introspection monitors (DESIGN.md §5.8)
// ---------------------------------------------------------------------

std::string Engine::register_monitor(const std::string& query_text) {
  std::string text = query_text;
  const std::size_t b = text.find_first_not_of(" \t\r\n");
  const std::size_t e = text.find_last_not_of(" \t\r\n;");
  if (b == std::string::npos || e == std::string::npos || b > e) {
    throw Error("empty monitor query");
  }
  text = text.substr(b, e - b + 1);
  scsql::Statement st = scsql::parse_statement(text + ";");
  if (st.function || st.query == nullptr) {
    throw Error("a monitor must be a query expression, not a function definition");
  }
  ExprPtr query = st.query;
  if (query->kind == ExprKind::kSelect) {
    // `select expr;` sugar: monitors are single expressions — binding
    // clauses would need the client-manager pass, which spawns RPs.
    const auto& sel = *query->select;
    if (sel.exprs.size() != 1 || !sel.predicates.empty()) {
      throw Error("a monitor must be a single expression (no from/where clauses)",
                  sel.pos);
    }
    query = sel.exprs[0];
  }

  Monitor m;
  m.name = "m" + std::to_string(next_monitor_id_++);
  m.query_text = text;
  m.query = std::move(query);
  // Validate now, not at the first window: build and drain the plan over
  // an empty feed. Build-time hooks reject extract()/receiver() (they
  // need the network); the dry drain rejects plans that suspend.
  obs::Sampler::Window dummy;
  plan::IntrospectFeed feed;
  feed.window = &dummy;
  run_monitor(m, feed, /*dry_run=*/true);
  m.alerts_last_run = 0;
  monitors_.push_back(std::move(m));
  return monitors_.back().name;
}

bool Engine::unregister_monitor(const std::string& name) {
  for (auto it = monitors_.begin(); it != monitors_.end(); ++it) {
    if (it->name == name) {
      monitors_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<Engine::MonitorInfo> Engine::monitors() const {
  std::vector<MonitorInfo> out;
  out.reserve(monitors_.size());
  for (const auto& m : monitors_) {
    out.push_back(MonitorInfo{m.name, m.query_text, m.alerts_last_run});
  }
  return out;
}

void Engine::add_window_listener(
    std::function<void(const obs::Sampler::Window&, std::size_t)> fn) {
  SCSQ_CHECK(fn != nullptr) << "window listener must be callable";
  window_listeners_.push_back(std::move(fn));
}

std::vector<sim::plp::LpLiveSample> Engine::lp_samples(double t_end) const {
  if (lp_live_source_) return lp_live_source_();
  // Deterministic default: one row per partition LP. The engine's data
  // plane executes sequentially (DESIGN.md §5.6), so there is no live
  // plp::Runtime to sample — the row carries the partition shape and the
  // window frontier, with the wall-clock-dependent fields at zero.
  std::vector<sim::plp::LpLiveSample> out;
  out.reserve(static_cast<std::size_t>(partition_.lp_count));
  for (int lp = 0; lp < partition_.lp_count; ++lp) {
    sim::plp::LpLiveSample s;
    s.lp = lp;
    s.horizon_s = t_end;
    out.push_back(s);
  }
  return out;
}

void Engine::on_window(const obs::Sampler::Window& window, std::size_t index) {
  if (!monitors_.empty()) {
    plan::IntrospectFeed feed;
    feed.window = &window;
    feed.window_index = index;
    feed.lps = lp_samples(window.t_end);
    for (auto& m : monitors_) {
      try {
        run_monitor(m, feed, /*dry_run=*/false);
      } catch (...) {
        // Deferred: run_statement rethrows after the workload tears
        // down — a broken monitor must not corrupt the measured run.
        if (!monitor_error_) monitor_error_ = std::current_exception();
      }
    }
  }
  for (const auto& fn : window_listeners_) fn(window, index);
}

void Engine::run_monitor(Monitor& monitor, const plan::IntrospectFeed& feed,
                         bool dry_run) {
  // Zero-perturbation contract: all NodeParams costs are zero, the CPU
  // resource is private and uncontended, and batch_size is 1 (no fusion
  // pass). Every awaitable the operator machinery reaches then completes
  // inline — Resource::acquire with a free slot, delay_until(now) — so
  // the plan is drained synchronously below by resuming each next() once
  // and never schedules a simulator event. The measured workload's event
  // order, tables and elapsed_s are byte-identical with monitors on or
  // off.
  hw::NodeParams zero;
  zero.marshal_per_byte_s = 0.0;
  zero.alloc_per_object_s = 0.0;
  zero.gen_per_byte_s = 0.0;
  zero.op_invoke_s = 0.0;
  zero.flop_s = 0.0;
  sim::Resource cpu(machine_->sim(), 1);
  Env env;
  plan::PlanContext ctx;
  ctx.sim = &machine_->sim();
  ctx.loc = hw::Location{hw::kFrontEnd, 0};
  ctx.cpu = &cpu;
  ctx.node = zero;
  ctx.batch_size = 1;
  ctx.introspect = &feed;
  ctx.const_eval = [this, &env](const ExprPtr& e) { return eval_const(e, env, machine_); };
  ctx.subscribe = [](const SpHandle&) -> transport::ReceiverDriver& {
    throw Error("extract()/merge() are not available in monitor queries");
  };
  ctx.stream_source = [](const std::string& name) -> std::vector<std::vector<double>> {
    throw Error("receiver('" + name + "') is not available in monitor queries");
  };
  plan::OperatorPtr root = plan::build_plan(monitor.query, ctx);

  constexpr std::size_t kMaxRowsPerWindow = 65536;
  auto* trace = machine_->trace();
  std::size_t rows = 0;
  while (true) {
    if (rows >= kMaxRowsPerWindow) {
      throw Error("monitor " + monitor.name + " produced more than " +
                  std::to_string(kMaxRowsPerWindow) + " rows in one window");
    }
    auto task = root->next();
    auto h = task.release();
    h.resume();
    if (!h.done()) {
      h.destroy();
      throw Error("monitor " + monitor.name +
                  " suspended: monitor queries must stay on introspection "
                  "streams (no gen_stream, network, or timed operators)");
    }
    auto& promise = h.promise();
    if (promise.exception) {
      const auto ex = promise.exception;
      h.destroy();
      std::rethrow_exception(ex);
    }
    SCSQ_CHECK(promise.value.has_value()) << "monitor plan finished without a value";
    std::optional<Object> row = std::move(*promise.value);
    h.destroy();
    if (!row.has_value()) break;
    if (!dry_run) {
      obs::MonitorAlert alert;
      alert.monitor = monitor.name;
      alert.query = monitor.query_text;
      alert.window = feed.window_index;
      alert.t_start = feed.window->t_start;
      alert.t_end = feed.window->t_end;
      alert.row = rows;
      alert.value = std::move(*row);
      if (trace != nullptr) {
        trace->instant("monitor:" + monitor.name, "alert", machine_->sim().now());
      }
      monitor_alerts_.push_back(std::move(alert));
    }
    ++rows;
  }
  if (!dry_run) monitor.alerts_last_run += rows;
}

// ---------------------------------------------------------------------
// Client-manager binding pass
// ---------------------------------------------------------------------

sim::Task<void> Engine::execute(ExprPtr query, RunReport* report) {
  auto& sim = machine_->sim();
  const double t0 = sim.now();
  try {
    Env env;
    ExprPtr result_expr;
    bool filters_hold = true;

    if (query->kind == ExprKind::kSelect) {
      auto bound = resolve::bind(*query->select);
      if (!bound.enumerations.empty()) {
        throw Error("enumeration ('in') in the top-level query is not supported",
                    bound.enumerations.front()->pos);
      }
      for (const auto* b : bound.bindings) {
        const bool var_on_lhs = b->lhs->kind == ExprKind::kVar && !env.contains(b->lhs->name);
        const auto& var = var_on_lhs ? b->lhs->name : b->rhs->name;
        const auto& value_expr = var_on_lhs ? b->rhs : b->lhs;
        env[var] = co_await eval_async(value_expr, env);
      }
      for (const auto* f : bound.filters) {
        Object lhs = eval_const(f->lhs, env, machine_);
        Object rhs = eval_const(f->rhs, env, machine_);
        Object keep = eval_const(
            scsql::make_binary(f->op, scsql::make_literal(lhs), scsql::make_literal(rhs)),
            env, machine_);
        if (keep.kind() == Kind::kBool && !keep.as_bool()) filters_hold = false;
      }
      if (query->select->exprs.size() != 1) {
        throw Error("exactly one select expression is supported", query->select->pos);
      }
      result_expr = co_await expand(query->select->exprs[0], env);
    } else {
      result_expr = co_await expand(query, env);
    }

    // The client manager is itself an RP on front-end node 0.
    Rp& cm = make_rp(hw::Location{hw::kFrontEnd, 0},
                     filters_hold ? result_expr : nullptr, env, /*is_client=*/true);

    const double bind_done = sim.now();
    if (auto* trace = machine_->trace()) {
      trace->interval("engine", "bind", t0, bind_done);
    }

    // Compile every RP's subquery into its SQEP; extract()/merge() calls
    // wire the stream connections as a side effect.
    for (auto& rp : rps_) {
      if (rp->query) wire_rp(*rp);
    }
    report->setup_s = sim.now() - t0;
    if (auto* trace = machine_->trace()) {
      trace->interval("engine", "wire", bind_done, sim.now());
    }

    if (machine_->parallel_drive()) {
      // Two-phase drive: snapshot the fabric factors (§5.9 coupling #2)
      // and park on the gate. run_statement sees quiescence, schedules
      // every non-client RP on its home LP, and releases the gate before
      // starting the (possibly parallel) drive. Single-LP machines keep
      // the seed single-Simulator path below. The sequenced fallback
      // keeps *live* factors: its dispatch order is bit-identical to a
      // 1-LP run (single-threaded), so live recomputation reads exactly
      // the flow state a 1-LP run would read — freezing here would
      // *break* byte-identity for workloads whose factors move mid-run.
      if (!sequenced_drive_) machine_->freeze_fabric_factors();
      phase_ready_ = true;
      co_await phase_gate_->wait();
    } else {
      for (auto& rp : rps_) {
        if (rp->id != cm.id) sim.spawn(run_rp(*rp));
      }
    }
    co_await run_rp(cm);
    co_await cm.done->wait();
    // End sampling *here*, inside the event at the statement's last
    // timestamp: the cancelled tick parked past this instant is then
    // consumed silently and can never advance the clock run_statement
    // hands to the next statement.
    sampler_->finish();
    report->elapsed_s = sim.now() - t0;
    if (auto* trace = machine_->trace()) {
      trace->interval("engine", "run", report->setup_s + t0, sim.now());
    }
  } catch (...) {
    record_error(std::current_exception());
  }
}

sim::Task<Object> Engine::eval_async(ExprPtr expr, Env& env) {
  if (expr->kind == ExprKind::kCall) {
    if (expr->name == "sp") co_return co_await eval_sp(*expr, env);
    if (expr->name == "spv") co_return co_await eval_spv(*expr, env);
    if (functions_.contains(expr->name)) {
      throw Error("query function '" + expr->name +
                      "' returns a stream and cannot be bound to a variable; call it in "
                      "the select expression",
                  expr->pos);
    }
  }
  co_return eval_const(expr, env, machine_);
}

sim::Task<ExprPtr> Engine::expand(ExprPtr expr, Env& env) {
  SCSQ_CHECK(expr != nullptr) << "null expression in expand";
  switch (expr->kind) {
    case ExprKind::kLiteral:
    case ExprKind::kVar:
    case ExprKind::kSelect:
      co_return expr;
    case ExprKind::kCall: {
      if (expr->name == "sp") {
        Object handle = co_await eval_sp(*expr, env);
        co_return scsql::make_literal(std::move(handle), expr->pos);
      }
      if (expr->name == "spv") {
        Object handles = co_await eval_spv(*expr, env);
        co_return scsql::make_literal(std::move(handles), expr->pos);
      }
      if (functions_.contains(expr->name)) {
        co_return co_await inline_function(*expr, env);
      }
      [[fallthrough]];
    }
    case ExprKind::kBagCtor:
    case ExprKind::kBinary:
    case ExprKind::kNeg: {
      bool changed = false;
      std::vector<ExprPtr> args;
      args.reserve(expr->args.size());
      for (const auto& a : expr->args) {
        auto na = co_await expand(a, env);
        changed |= (na != a);
        args.push_back(std::move(na));
      }
      if (!changed) co_return expr;
      auto out = std::make_shared<scsql::Expr>(*expr);
      out->args = std::move(args);
      co_return out;
    }
  }
  co_return expr;
}

std::optional<AllocationSeq*> Engine::allocation_from(const ExprPtr& expr, const Env& env) {
  if (!expr) return std::nullopt;
  Object v = eval_const(expr, env, machine_);
  auto seq = std::make_unique<AllocationSeq>();
  if (v.kind() == Kind::kInt) {
    seq->nodes.push_back(static_cast<int>(v.as_int()));
  } else if (v.kind() == Kind::kBag) {
    for (const auto& el : v.as_bag()) {
      if (el.kind() != Kind::kInt) {
        throw Error("allocation sequence must contain node numbers", expr->pos);
      }
      seq->nodes.push_back(static_cast<int>(el.as_int()));
    }
  } else {
    throw Error("allocation sequence must be a node number or a stream of node numbers",
                expr->pos);
  }
  alloc_seqs_.push_back(std::move(seq));
  return alloc_seqs_.back().get();
}

sim::Task<Object> Engine::eval_sp(const scsql::Expr& call, Env& env) {
  if (call.args.empty() || call.args.size() > 3) {
    throw Error("sp(subquery [, cluster [, allocation]]) takes 1-3 arguments", call.pos);
  }
  std::string cluster = options_.default_cluster;
  if (call.args.size() >= 2) {
    Object c = eval_const(call.args[1], env, machine_);
    if (c.kind() != Kind::kStr) throw Error("sp() cluster must be a string", call.pos);
    cluster = c.as_str();
  }
  if (!machine_->has_cluster(cluster)) {
    throw Error("unknown cluster '" + cluster + "'", call.pos);
  }
  AllocationSeq* seq = nullptr;
  if (call.args.size() == 3) seq = *allocation_from(call.args[2], env);

  // Expand nested sp()/function calls inside the shipped subquery now —
  // all stream processes of a CQ are created at submission.
  ExprPtr subquery = co_await expand(call.args[0], env);
  SpHandle handle = co_await spawn_rp(cluster, std::move(subquery), env, seq);
  co_return Object{std::move(handle)};
}

sim::Task<Object> Engine::eval_spv(const scsql::Expr& call, Env& env) {
  if (call.args.empty() || call.args.size() > 3) {
    throw Error("spv(select [, cluster [, allocation]]) takes 1-3 arguments", call.pos);
  }
  if (call.args[0]->kind != ExprKind::kSelect) {
    throw Error("spv() first argument must be a select of subqueries", call.pos);
  }
  std::string cluster = options_.default_cluster;
  if (call.args.size() >= 2) {
    Object c = eval_const(call.args[1], env, machine_);
    if (c.kind() != Kind::kStr) throw Error("spv() cluster must be a string", call.pos);
    cluster = c.as_str();
  }
  if (!machine_->has_cluster(cluster)) {
    throw Error("unknown cluster '" + cluster + "'", call.pos);
  }
  AllocationSeq* seq = nullptr;
  if (call.args.size() == 3) seq = *allocation_from(call.args[2], env);

  const auto& select = call.args[0]->select;
  if (select->exprs.size() != 1) {
    throw Error("spv() select must have exactly one expression", select->pos);
  }
  std::set<std::string> pre_bound;
  for (const auto& [k, v] : env) pre_bound.insert(k);
  auto bound = resolve::bind(*select, pre_bound);

  // Enumerate rows: the cartesian product of the 'in' collections.
  std::vector<std::pair<std::string, Bag>> enums;
  for (const auto* e : bound.enumerations) {
    Object coll = co_await eval_async(e->rhs, env);
    if (coll.kind() != Kind::kBag) {
      throw Error("'in' expects a bag/stream to enumerate", e->pos);
    }
    enums.emplace_back(e->lhs->name, coll.as_bag());
  }

  Bag handles;
  std::vector<std::size_t> idx(enums.size(), 0);
  const auto total_rows = [&] {
    std::size_t n = 1;
    for (const auto& [name, bag] : enums) n *= bag.size();
    return enums.empty() ? 1 : n;
  }();
  for (std::size_t row = 0; row < total_rows; ++row) {
    Env row_env = env;
    std::size_t rem = row;
    for (std::size_t k = 0; k < enums.size(); ++k) {
      const auto& [name, bag] = enums[k];
      if (bag.empty()) co_return Object{Bag{}};
      row_env[name] = bag[rem % bag.size()];
      rem /= bag.size();
    }
    // Row-local bindings (rare; none in the paper's queries, but legal).
    for (const auto* b : bound.bindings) {
      const bool var_on_lhs = b->lhs->kind == ExprKind::kVar && !row_env.contains(b->lhs->name);
      const auto& var = var_on_lhs ? b->lhs->name : b->rhs->name;
      const auto& value_expr = var_on_lhs ? b->rhs : b->lhs;
      row_env[var] = co_await eval_async(value_expr, row_env);
    }
    bool keep = true;
    for (const auto* f : bound.filters) {
      Object v = eval_const(
          scsql::make_binary(f->op, scsql::make_literal(eval_const(f->lhs, row_env, machine_)),
                             scsql::make_literal(eval_const(f->rhs, row_env, machine_))),
          row_env, machine_);
      if (v.kind() == Kind::kBool && !v.as_bool()) keep = false;
    }
    if (!keep) continue;
    ExprPtr subquery = co_await expand(select->exprs[0], row_env);
    SpHandle h = co_await spawn_rp(cluster, std::move(subquery), row_env, seq);
    handles.emplace_back(std::move(h));
  }
  co_return Object{std::move(handles)};
}

sim::Task<ExprPtr> Engine::inline_function(const scsql::Expr& call, Env& env) {
  const auto& fn = functions_.at(call.name);
  if (call.args.size() != fn->params.size()) {
    throw Error(call.name + "() takes " + std::to_string(fn->params.size()) +
                    " argument(s)",
                call.pos);
  }
  // Fresh names for parameters and body-local variables.
  const std::string prefix = "__" + fn->name + std::to_string(next_fn_inline_++) + "_";
  std::map<std::string, std::string> renames;
  for (const auto& p : fn->params) renames[p.name] = prefix + p.name;
  if (fn->body->kind == ExprKind::kSelect) {
    for (const auto& d : fn->body->select->decls) renames[d.name] = prefix + d.name;
  }
  // Bind argument values under the renamed parameter names.
  for (std::size_t i = 0; i < fn->params.size(); ++i) {
    env[renames.at(fn->params[i].name)] = co_await eval_async(call.args[i], env);
  }

  if (fn->body->kind != ExprKind::kSelect) {
    co_return co_await expand(substitute_vars(fn->body, renames), env);
  }

  auto body = substitute_vars(fn->body->select, renames);
  std::set<std::string> pre_bound;
  for (const auto& [k, v] : env) pre_bound.insert(k);
  auto bound = resolve::bind(*body, pre_bound);
  if (!bound.enumerations.empty()) {
    throw Error("enumeration inside a query function body is not supported",
                bound.enumerations.front()->pos);
  }
  for (const auto* b : bound.bindings) {
    const bool var_on_lhs = b->lhs->kind == ExprKind::kVar && !env.contains(b->lhs->name);
    const auto& var = var_on_lhs ? b->lhs->name : b->rhs->name;
    const auto& value_expr = var_on_lhs ? b->rhs : b->lhs;
    env[var] = co_await eval_async(value_expr, env);
  }
  if (body->exprs.size() != 1) {
    throw Error("query function body must select exactly one expression", body->pos);
  }
  co_return co_await expand(body->exprs[0], env);
}

sim::Task<SpHandle> Engine::spawn_rp(const std::string& cluster, ExprPtr subquery,
                                     const Env& outer_env, AllocationSeq* seq) {
  auto& coord = coordinator(cluster);
  int node = co_await coord.allocate_node(seq);

  // Capture only the variables the subquery references ("by shipping
  // stream handles we avoid unnecessary data shipping").
  Env captured;
  for (const auto& name : resolve::free_vars(subquery)) {
    auto it = outer_env.find(name);
    if (it != outer_env.end()) captured[name] = it->second;
  }
  Rp& rp = make_rp(hw::Location{cluster, node}, std::move(subquery), std::move(captured),
                   /*is_client=*/false);
  SCSQ_LOG(kDebug) << "spawned rp#" << rp.id << " at " << rp.loc.to_string() << ": "
                   << rp.query->to_string();
  co_return SpHandle{rp.id, cluster};
}

// ---------------------------------------------------------------------
// Wiring and running
// ---------------------------------------------------------------------

Engine::Rp& Engine::make_rp(hw::Location loc, ExprPtr query, Env env, bool is_client) {
  auto rp = std::make_unique<Rp>();
  rp->id = is_client ? 0 : next_rp_id_++;
  rp->loc = std::move(loc);
  rp->query = std::move(query);
  rp->env = std::move(env);
  rp->is_client = is_client;
  // done lives on the RP's home Simulator so setting it from run_rp never
  // crosses an LP boundary (only the client's done is ever awaited).
  rp->done = std::make_unique<sim::Event>(machine_->sim_of(rp->loc));
  rps_.push_back(std::move(rp));
  return *rps_.back();
}

Engine::Rp& Engine::find_rp(std::uint64_t id) {
  for (auto& rp : rps_) {
    if (rp->id == id) return *rp;
  }
  throw Error("unknown stream process #" + std::to_string(id));
}

void Engine::wire_rp(Rp& rp) {
  rp.ctx.sim = &machine_->sim_of(rp.loc);
  rp.ctx.loc = rp.loc;
  rp.ctx.cpu = &machine_->cpu_of(rp.loc);
  rp.ctx.node = machine_->node_params(rp.loc);
  rp.ctx.batch_size = options_.batch_size;
  rp.ctx.const_eval = [this, &rp](const ExprPtr& e) {
    return eval_const(e, rp.env, machine_);
  };
  rp.ctx.subscribe = [this, &rp](const SpHandle& h) -> transport::ReceiverDriver& {
    return connect(h, rp);
  };
  rp.ctx.stream_source = [this](const std::string& name) {
    auto it = stream_sources_.find(name);
    if (it == stream_sources_.end()) {
      throw Error("unknown stream source '" + name + "'");
    }
    return it->second;
  };
  rp.root = plan::build_plan(rp.query, rp.ctx);
}

transport::ReceiverDriver& Engine::connect(const SpHandle& producer_handle, Rp& consumer) {
  Rp& producer = find_rp(producer_handle.id);
  if (machine_->parallel_drive() && producer.loc.cluster == hw::kBlueGene &&
      consumer.loc.cluster == hw::kBlueGene && !(producer.loc == consumer.loc) &&
      machine_->bg().pset_of(producer.loc.node) != machine_->bg().pset_of(consumer.loc.node)) {
    // The torus MpiLink shares per-hop state between endpoints with zero
    // lookahead, so a cross-pset (= cross-LP) MPI stream cannot run under
    // the conservative windowed drive. Fall back to the sequenced
    // multiplexer: one global event order across the shards, byte-
    // identical to SCSQ_SIM_LPS=1 at the cost of parallelism.
    sequenced_drive_ = true;
  }
  consumer.receivers.push_back(std::make_unique<transport::ReceiverDriver>(
      machine_->sim_of(consumer.loc), driver_params_for(consumer.loc),
      machine_->cpu_of(consumer.loc)));
  auto& rx = *consumer.receivers.back();
  auto link = transport::make_link(*machine_, producer.loc, consumer.loc, rx.inbox(),
                                   producer.id);
  if (auto* trace = machine_->trace()) {
    link->set_flow_trace(trace, "rp" + std::to_string(producer.id),
                         "rp" + std::to_string(consumer.id));
  }
  if (sampler_->active()) {
    // Per-window latency quantiles for this connection. The rp labels
    // keep keys unique when two connections share endpoints; the link
    // (and its LogHistogram) outlives the sampler run — finish() drops
    // the registration before rps_ is torn down.
    sampler_->add_log_histogram(
        obs::metric_key("transport.link.latency",
                        {{"type", link->type()},
                         {"src", producer.loc.to_string()},
                         {"dst", consumer.loc.to_string()},
                         {"src_rp", std::to_string(producer.id)},
                         {"dst_rp", std::to_string(consumer.id)}}),
        &link->stats().latency);
  }
  producer.senders.push_back(std::make_unique<transport::SenderDriver>(
      machine_->sim_of(producer.loc), driver_params_for(producer.loc),
      machine_->cpu_of(producer.loc), std::move(link), producer.id));
  producer.consumer_ids.push_back(consumer.id);
  return rx;
}

sim::Task<void> Engine::run_rp(Rp& rp) {
  auto& rpsim = machine_->sim_of(rp.loc);
  auto* trace = machine_->trace();
  const std::string track = "rp" + std::to_string(rp.id);
  if (trace) trace->instant(track, "start", rpsim.now());
  try {
    if (rp.root != nullptr) {
      // Drive depth: the client manager and subscriber-less sinks pull
      // whole batches; producer RPs stay at depth 1 so every element is
      // pushed to the senders at exactly the per-item moment (frame-cut
      // and linger timing depend on push times). The per-item timeline
      // is preserved at any depth — batching only changes how much
      // host-side work happens per simulated suspension.
      const std::size_t base_depth =
          (rp.is_client || rp.senders.empty()) ? options_.batch_size : 1;
      plan::ItemBatch batch;
      bool eos = false;
      while (!stop_requested_ && !eos) {
        std::size_t depth = base_depth;
        if (rp.is_client && options_.max_results > 0) {
          SCSQ_CHECK(results_sink_ != nullptr) << "no active result sink";
          // Never pull past the stop condition: the collected count and
          // the stop moment stay identical to the per-item loop.
          const std::size_t remaining = options_.max_results - results_sink_->size();
          depth = std::min(depth, std::max<std::size_t>(remaining, 1));
        }
        batch.reset();
        const double drive_start = rpsim.now();
        co_await rp.root->next_batch(batch, depth);
        rp.drive_s += rpsim.now() - drive_start;
        eos = batch.eos();
        bool stopped_here = false;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          // The per-item loop re-checked the stop flag between items.
          if (stop_requested_ && !rp.is_client) break;
          rp.elements_out += 1;
          // Sampled, not per-element: an unthrottled counter track would
          // dominate the trace for multi-thousand-element streams.
          if (trace && (rp.elements_out & 0x3F) == 0) {
            trace->counter(track, "elements_out", rpsim.now(),
                           static_cast<double>(rp.elements_out));
          }
          if (rp.is_client) {
            SCSQ_CHECK(results_sink_ != nullptr) << "no active result sink";
            results_sink_->push_back(std::move(batch[i]));
            // Stop condition: enough results collected.
            if (options_.max_results > 0 &&
                results_sink_->size() >= options_.max_results) {
              initiate_stop();
              stopped_here = true;
              break;
            }
            continue;
          }
          if (rp.senders.empty()) continue;  // no subscribers: discard
          if (rp.senders.size() == 1) {
            co_await rp.senders[0]->push(std::move(batch[i]));
          } else {
            // Stream splitting: every subscriber receives the full
            // stream (the radix2 query extracts c from both halves).
            for (auto& s : rp.senders) co_await s->push(batch[i]);
          }
        }
        if (stopped_here) break;
      }
    }
    for (auto& s : rp.senders) co_await s->finish();
  } catch (...) {
    record_error(std::current_exception());
  }
  if (trace) {
    trace->counter(track, "elements_out", rpsim.now(),
                   static_cast<double>(rp.elements_out));
    trace->instant(track, "done", rpsim.now());
  }
  rp.done->set();
}

void Engine::initiate_stop() {
  if (stop_requested_) return;
  stop_requested_ = true;
  SCSQ_LOG(kDebug) << "stopping continuous query: closing " << rps_.size()
                   << " stream process(es)";
  // Close every receiver inbox: blocked deliveries discard their frames,
  // receive loops see end-of-stream, and producer RPs observe the stop
  // flag on their next iteration — the control-message teardown of §2.2.
  for (auto& rp : rps_) {
    for (auto& rx : rp->receivers) rx->inbox().close();
  }
}

int Engine::count_effective_lps() const {
  // How many distinct LPs of the *machine's* layout host at least one RP
  // of this statement (partition_ is only the requested labeling). The
  // client manager counts too (it pulls the result stream on LP0).
  const int machine_lps = machine_->lp_partition().lp_count;
  std::vector<bool> seen(static_cast<std::size_t>(std::max(1, machine_lps)), false);
  int n = 0;
  for (const auto& rp : rps_) {
    const auto lp = static_cast<std::size_t>(machine_->lp_of(rp->loc));
    if (!seen[lp]) {
      seen[lp] = true;
      ++n;
    }
  }
  return std::max(1, n);
}

void Engine::record_error(std::exception_ptr e) {
  // run_rp coroutines on different LPs can fail inside the same drive
  // window; first-in wins under the lock, the rest are dropped.
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_) error_ = std::move(e);
}

}  // namespace scsq::exec
