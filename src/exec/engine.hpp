// The SCSQ execution engine: client manager, binding evaluation,
// stream-process spawning and running-process execution.
//
// Submitting a query (paper §2.2):
//  1. The statement is parsed; `create function` definitions register.
//  2. The client manager (an RP on front-end node 0) binds the query:
//     where-clause equations are evaluated in dependency order. sp() and
//     spv() calls go through the target cluster's coordinator (with the
//     feCC-polling detour for the BlueGene), which selects a node via
//     the CNDB — honoring allocation sequences — and creates a
//     RunningProcess there. User-defined query functions are inlined,
//     spawning the stream processes their bodies bind.
//  3. Every RP compiles its shipped subquery into a SQEP; extract()/
//     merge() references create subscriptions, wiring sender driver →
//     link (MPI or TCP) → receiver driver between producer and consumer.
//  4. All RPs run as simulation processes; the client manager collects
//     the result stream. When the finite streams end (EOS propagation —
//     the control-message role of §2.2), the query completes, nodes are
//     released and a RunReport is returned.
#pragma once

#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "exec/coordinator.hpp"
#include "exec/env.hpp"
#include "hw/machine.hpp"
#include "obs/monitor.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "plan/builder.hpp"
#include "plan/introspect_ops.hpp"
#include "scsql/parser.hpp"
#include "transport/driver.hpp"
#include "transport/links.hpp"

namespace scsq::exec {

struct ExecOptions {
  /// Stream buffer size for all drivers (the Fig. 6/8 x-axis).
  std::uint64_t buffer_bytes = 64 * 1024;
  /// 1 = single buffering, 2 = double buffering.
  int send_buffers = 2;
  /// Receiver inbox capacity in frames.
  int recv_buffers = 2;
  /// Cluster for sp() calls without an explicit cluster argument.
  std::string default_cluster = hw::kBlueGene;
  /// Coordinator registration RPC latency.
  double coordinator_rpc_s = 200e-6;
  /// bgCC poll interval (CNK has no server sockets; §2.2).
  double bgcc_poll_interval_s = 1e-3;
  /// Node selection for sp()/spv() calls without an allocation sequence:
  /// the paper's naive algorithm, or the topology-aware spread it
  /// proposes as future work.
  NodeSelection node_selection = NodeSelection::kNaive;
  /// Stop condition: the client manager stops the CQ once it has
  /// collected this many results (0 = unlimited). This is how continuous
  /// queries over unbounded streams (gen_stream) terminate normally.
  std::size_t max_results = 0;
  /// "Explicit user intervention": simulated seconds after which a
  /// still-running query is stopped (its RPs are terminated and the
  /// partial results returned with RunReport::stopped set). 0 disables.
  double max_sim_time_s = 1e6;
  /// Batch depth for batch-at-a-time SQEP execution. 0 = resolve from
  /// the SCSQ_BATCH_SIZE environment variable at engine construction
  /// (default 256); 1 = exact per-item execution with no fusion pass.
  /// Simulated timing is bitwise-identical at every depth — only the
  /// host-side work per simulated item changes.
  std::size_t batch_size = 0;
  /// Logical-process count for the conservative partition of the
  /// simulated hardware (sim/lp_domain.hpp, hw::make_partition). 0 =
  /// resolve from the SCSQ_SIM_LPS environment variable at engine
  /// construction (default 1, clamped to the pset count). On a machine
  /// built over an LpDomain the domain's LP count is authoritative and
  /// this knob is overwritten with it. The partition assigns every RP an
  /// LP affinity (RpStat::lp, engine.rp.lp) and the data plane really
  /// runs across those LPs: per-LP frame pools, frozen per-run
  /// coordination-factor snapshots and split TCP links remove the
  /// zero-lookahead couplings, and reported tables stay byte-identical
  /// at every LP count (DESIGN.md §5.9). The drive still falls back to
  /// one LP when every RP of a statement lands on LP 0, when traces are
  /// recorded, or when max_results / a sample interval demand the
  /// sequential path (engine.sim_lps.effective reports the outcome).
  int sim_lps = 0;
  /// Telemetry sampling window in simulated seconds (obs/sampler.hpp).
  /// < 0 = resolve from the SCSQ_SAMPLE_INTERVAL environment variable at
  /// engine construction (unset/non-positive = off), 0 = off. Sampling
  /// is observational by construction: every figure table is
  /// byte-identical with it on or off (DESIGN.md §5.7).
  double sample_interval_s = -1.0;
};

/// One producer→consumer stream connection, reported after the run.
struct ConnectionStat {
  std::uint64_t producer_rp = 0;
  std::uint64_t consumer_rp = 0;
  hw::Location src;
  hw::Location dst;
  std::uint64_t bytes = 0;
};

/// Per-RP monitoring record (the paper's Fig. 3 lists "monitoring the
/// execution of its SQEP" among RP responsibilities).
struct RpStat {
  std::uint64_t id = 0;
  hw::Location loc;
  std::string query;           // the subquery text (pretty-printed)
  std::uint64_t elements_out = 0;  // objects emitted by the SQEP root
  std::uint64_t bytes_sent = 0;    // over all subscriber connections
  std::uint64_t bytes_received = 0;
  double stall_s = 0.0;  // time blocked waiting for a free send buffer
  double drive_s = 0.0;      // time inside root->next() (includes waits)
  double recv_wait_s = 0.0;  // blocked on empty inboxes
  double marshal_s = 0.0;    // send-side marshal CPU
  double demarshal_s = 0.0;  // receive-side de-marshal + alloc CPU
  std::uint64_t batches = 0;      // non-empty batches the SQEP root delivered
  std::uint64_t batch_items = 0;  // items across those batches (mean fill
                                  // = batch_items / batches)
  int lp = 0;  // logical process owning this RP's node (hw::LpPartition)
};

struct RunReport {
  std::vector<catalog::Object> results;
  /// Total query time, submission to completion (the paper's measure).
  double elapsed_s = 0.0;
  /// Time spent binding/spawning before streams started.
  double setup_s = 0.0;
  /// Sum of stream payload bytes over all connections.
  std::uint64_t stream_bytes = 0;
  std::vector<ConnectionStat> connections;
  std::vector<RpStat> rps;
  std::size_t rp_count = 0;
  /// True when the CQ was terminated by a stop condition (max_results)
  /// or the simulated-time limit rather than by its streams ending.
  bool stopped = false;
  /// LP count of the machine partition (SCSQ_SIM_LPS after clamping).
  int sim_lps_requested = 1;
  /// Distinct LPs the statement's RPs actually landed on — the LP count
  /// the data plane was driven with (> 1 means the windowed parallel
  /// runtime ran it).
  int sim_lps_effective = 1;
};

class Engine {
 public:
  explicit Engine(hw::Machine& machine, ExecOptions options = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a user-defined query function (create function ...).
  void register_function(std::shared_ptr<const scsql::FunctionDef> fn);

  /// Registers a named external signal source for receiver(name).
  void register_stream_source(std::string name,
                              std::vector<std::vector<double>> arrays);

  /// Parses and executes a script: create-function statements register
  /// their functions; each query statement executes. Returns the report
  /// of the last query (empty report if the script defines only
  /// functions). Throws scsql::Error on user errors.
  RunReport run_script(std::string_view text);

  /// Executes one pre-parsed statement.
  RunReport run_statement(const scsql::Statement& statement);

  /// EXPLAIN ANALYZE: builds the measured dataflow profile of the run
  /// `report` came from. Valid until the next run_statement/run_script
  /// call (the engine keeps the finished RPs and their drivers alive
  /// until then).
  obs::Profile profile(const RunReport& report) const;

  hw::Machine& machine() { return *machine_; }
  const ExecOptions& options() const { return options_; }

  /// Environment resolution for the LP-count and sample-interval knobs,
  /// shared with core::Scsq (which must size the machine's LpDomain
  /// *before* this engine exists, with exactly the same rules).
  static int resolve_sim_lps_env(int configured);
  static double resolve_sample_interval_env(double configured);

  /// The sim-time telemetry sampler. Always constructed (cheap when
  /// disabled); windows() holds the last statement's time series.
  obs::Sampler& sampler() { return *sampler_; }

  /// Re-arms the sampler with a new window length for subsequent
  /// statements (the shell's \watch command). <= 0 turns sampling off.
  /// Updates options().sample_interval_s.
  void set_sample_interval(double interval_s);

  // --- introspection monitors (DESIGN.md §5.8) ---

  /// A registered monitor, as reported by monitors().
  struct MonitorInfo {
    std::string name;
    std::string query;
    std::size_t alerts = 0;  ///< rows emitted during the last statement
  };

  /// Registers a continuous monitor query over the introspection streams
  /// (system.metrics / system.gauges / system.rates / system.lp). The
  /// query is parsed and plan-validated now (throws scsql::Error on
  /// malformed or non-introspection queries) and then re-executed at
  /// every sampler window boundary of every subsequent statement, as a
  /// zero-duration read-only callback: the measured workload's tables
  /// and elapsed_s are byte-identical with monitors on or off. Matched
  /// rows become obs::MonitorAlert records (monitor_alerts(), the
  /// SCSQ_MONITOR_OUT side channel, Chrome-trace instants). Requires a
  /// positive sample interval to ever fire. Returns the assigned monitor
  /// name ("m1", "m2", ...).
  std::string register_monitor(const std::string& query_text);

  /// Removes one monitor by name. Returns false if no such monitor.
  bool unregister_monitor(const std::string& name);

  /// The registered monitors with their last-statement alert counts.
  std::vector<MonitorInfo> monitors() const;

  /// Alerts collected during the last statement, in window order.
  const std::vector<obs::MonitorAlert>& monitor_alerts() const {
    return monitor_alerts_;
  }

  /// Registers an observer called after every sampler window, after the
  /// monitors ran for it (the shell's live \watch display). Runs inside
  /// the zero-duration sample callback: it must not advance simulated
  /// time. Listeners persist across statements.
  void add_window_listener(
      std::function<void(const obs::Sampler::Window&, std::size_t)> fn);

  /// Provider of per-LP live samples for the system.lp() source,
  /// typically a sim::plp::Runtime::live_sample binding. Without one the
  /// engine synthesizes one deterministic row per partition LP.
  using LpLiveSource = std::function<std::vector<sim::plp::LpLiveSample>()>;
  void set_lp_live_source(LpLiveSource source) {
    lp_live_source_ = std::move(source);
  }

 private:
  struct Rp {
    std::uint64_t id = 0;
    hw::Location loc;
    scsql::ExprPtr query;
    Env env;
    bool is_client = false;
    plan::PlanContext ctx;
    plan::OperatorPtr root;
    std::vector<std::unique_ptr<transport::ReceiverDriver>> receivers;
    std::vector<std::unique_ptr<transport::SenderDriver>> senders;
    std::vector<std::uint64_t> consumer_ids;  // parallel to senders
    std::uint64_t elements_out = 0;
    double drive_s = 0.0;  // simulated time spent inside root->next()
    std::unique_ptr<sim::Event> done;
  };

  ClusterCoordinator& coordinator(const std::string& cluster);
  transport::DriverParams driver_params_for(const hw::Location& loc) const;

  // --- asynchronous binding pass (client manager) ---
  sim::Task<void> execute(scsql::ExprPtr query, RunReport* report);
  sim::Task<catalog::Object> eval_async(scsql::ExprPtr expr, Env& env);
  sim::Task<scsql::ExprPtr> expand(scsql::ExprPtr expr, Env& env);
  sim::Task<catalog::Object> eval_sp(const scsql::Expr& call, Env& env);
  sim::Task<catalog::Object> eval_spv(const scsql::Expr& call, Env& env);
  sim::Task<scsql::ExprPtr> inline_function(const scsql::Expr& call, Env& env);
  sim::Task<catalog::SpHandle> spawn_rp(const std::string& cluster, scsql::ExprPtr subquery,
                                        const Env& outer_env, AllocationSeq* seq);
  std::optional<AllocationSeq*> allocation_from(const scsql::ExprPtr& expr, const Env& env);

  // --- wiring and running ---
  Rp& make_rp(hw::Location loc, scsql::ExprPtr query, Env env, bool is_client);
  void wire_rp(Rp& rp);
  transport::ReceiverDriver& connect(const catalog::SpHandle& producer, Rp& consumer);
  Rp& find_rp(std::uint64_t id);
  sim::Task<void> run_rp(Rp& rp);
  void publish_rp_metrics(const RpStat& stat);
  /// Distinct LPs over the current statement's RP locations.
  int count_effective_lps() const;
  /// Records an exception from any LP thread (first one wins).
  void record_error(std::exception_ptr e);

  /// Stops the CQ: future RP loop iterations terminate and all inboxes
  /// close, discarding in-flight stream data (the control-message
  /// teardown of §2.2).
  void initiate_stop();

  // --- monitor runner ---
  struct Monitor {
    std::string name;
    std::string query_text;
    scsql::ExprPtr query;
    std::size_t alerts_last_run = 0;
  };

  /// Sampler window observer: runs every monitor over the window, then
  /// the external window listeners.
  void on_window(const obs::Sampler::Window& window, std::size_t index);

  /// Builds and synchronously drains one monitor's plan over one feed.
  /// Zero-perturbation: see DESIGN.md §5.8. With dry_run the rows are
  /// discarded (register-time validation on an empty feed).
  void run_monitor(Monitor& monitor, const plan::IntrospectFeed& feed, bool dry_run);

  std::vector<sim::plp::LpLiveSample> lp_samples(double t_end) const;
  void install_window_observer();

  hw::Machine* machine_;
  ExecOptions options_;
  hw::LpPartition partition_;  // RP -> LP affinity (options_.sim_lps)
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<ClusterCoordinator> fe_cc_;
  std::unique_ptr<ClusterCoordinator> be_cc_;
  std::unique_ptr<ClusterCoordinator> bg_cc_;

  std::map<std::string, std::shared_ptr<const scsql::FunctionDef>> functions_;
  std::map<std::string, std::vector<std::vector<double>>> stream_sources_;

  std::vector<std::unique_ptr<Rp>> rps_;
  std::vector<std::unique_ptr<AllocationSeq>> alloc_seqs_;
  std::uint64_t next_rp_id_ = 1;  // 0 is reserved for the client manager
  std::uint64_t next_fn_inline_ = 1;
  std::vector<catalog::Object>* results_sink_ = nullptr;
  bool stop_requested_ = false;
  std::exception_ptr error_;
  std::mutex error_mu_;  // run_rp runs on every LP; first error wins

  // --- two-phase parallel drive (LpDomain machines) ---
  // Phase A runs binding + wiring on LP 0 only; execute() then freezes
  // the fabric factors and parks on this gate. run_statement schedules
  // the RP starts (single-threaded), releases the gate and drives either
  // LP 0 alone (every RP on LP 0) or the whole windowed domain.
  std::unique_ptr<sim::Event> phase_gate_;
  bool phase_ready_ = false;
  int effective_lps_ = 1;
  // Set during wiring when a cross-pset MPI stream (torus per-hop state
  // spans the partition below the lookahead) forces the zero-lookahead
  // sequenced drive instead of windowed parallelism.
  bool sequenced_drive_ = false;

  std::vector<Monitor> monitors_;
  std::vector<obs::MonitorAlert> monitor_alerts_;
  std::vector<std::function<void(const obs::Sampler::Window&, std::size_t)>>
      window_listeners_;
  LpLiveSource lp_live_source_;
  std::uint64_t next_monitor_id_ = 1;
  std::string monitor_out_path_;        // SCSQ_MONITOR_OUT, "" = off
  std::exception_ptr monitor_error_;    // first monitor failure of the run
};

}  // namespace scsq::exec
