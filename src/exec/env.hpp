// Variable environments for query binding and shipped subqueries.
#pragma once

#include <map>
#include <string>

#include "catalog/object.hpp"

namespace scsq::exec {

/// Variable bindings (query variables -> values). Shipped subqueries
/// carry the subset of the client manager's environment they reference
/// ("By shipping stream handles we avoid unnecessary data shipping",
/// paper §3.2).
using Env = std::map<std::string, catalog::Object>;

}  // namespace scsq::exec
