#include "exec/eval.hpp"

#include "funcs/textgen.hpp"

namespace scsq::exec {
namespace {

using catalog::Bag;
using catalog::Kind;
using catalog::Object;
using scsql::BinOp;
using scsql::Error;
using scsql::ExprKind;
using scsql::ExprPtr;

Object eval_binary(BinOp op, const Object& lhs, const Object& rhs, scsql::SourcePos pos) {
  const bool both_int = lhs.kind() == Kind::kInt && rhs.kind() == Kind::kInt;
  switch (op) {
    case BinOp::kAdd:
      if (both_int) return Object{lhs.as_int() + rhs.as_int()};
      return Object{lhs.as_number() + rhs.as_number()};
    case BinOp::kSub:
      if (both_int) return Object{lhs.as_int() - rhs.as_int()};
      return Object{lhs.as_number() - rhs.as_number()};
    case BinOp::kMul:
      if (both_int) return Object{lhs.as_int() * rhs.as_int()};
      return Object{lhs.as_number() * rhs.as_number()};
    case BinOp::kDiv: {
      const double d = rhs.as_number();
      if (d == 0.0) throw Error("division by zero", pos);
      if (both_int && lhs.as_int() % rhs.as_int() == 0) {
        return Object{lhs.as_int() / rhs.as_int()};
      }
      return Object{lhs.as_number() / d};
    }
    case BinOp::kEq:
      return Object{lhs == rhs};
    case BinOp::kNe:
      return Object{!(lhs == rhs)};
    case BinOp::kLt:
      return Object{lhs.as_number() < rhs.as_number()};
    case BinOp::kLe:
      return Object{lhs.as_number() <= rhs.as_number()};
    case BinOp::kGt:
      return Object{lhs.as_number() > rhs.as_number()};
    case BinOp::kGe:
      return Object{lhs.as_number() >= rhs.as_number()};
  }
  throw Error("unknown operator", pos);
}

Object eval_call(const scsql::Expr& call, const Env& env, hw::Machine* machine) {
  auto arg = [&](std::size_t i) { return eval_const(call.args.at(i), env, machine); };
  auto need_args = [&](std::size_t n) {
    if (call.args.size() != n) {
      throw Error(call.name + "() takes " + std::to_string(n) + " argument(s)", call.pos);
    }
  };

  if (call.name == "iota") {
    // iota(n, m): all integers from n to m (paper §2.4).
    need_args(2);
    const auto lo = arg(0);
    const auto hi = arg(1);
    if (lo.kind() != Kind::kInt || hi.kind() != Kind::kInt) {
      throw Error("iota() arguments must be integers", call.pos);
    }
    Bag out;
    for (std::int64_t v = lo.as_int(); v <= hi.as_int(); ++v) out.emplace_back(v);
    return Object{std::move(out)};
  }

  if (call.name == "filename") {
    // The grep example's filename table.
    need_args(1);
    const auto idx = arg(0);
    if (idx.kind() != Kind::kInt) throw Error("filename() index must be an integer",
                                              call.pos);
    return Object{funcs::filename_for(idx.as_int())};
  }

  if (is_allocation_function(call.name)) {
    if (machine == nullptr) {
      throw Error(call.name + "() requires a cluster coordinator (no machine attached)",
                  call.pos);
    }
    if (call.name == "urr") {
      // urr(cl): round-robin stream of available nodes of cluster cl.
      need_args(1);
      const auto cl = arg(0);
      if (cl.kind() != Kind::kStr || !machine->has_cluster(cl.as_str())) {
        throw Error("urr() needs a cluster name ('fe', 'be', 'bg')", call.pos);
      }
      auto& cndb = machine->cndb(cl.as_str());
      Bag out;
      for (int n : cndb.round_robin_available(cndb.node_count())) out.emplace_back(n);
      return Object{std::move(out)};
    }
    if (call.name == "inPset" || call.name == "inpset") {
      // inPset(k): compute nodes of BlueGene pset k.
      need_args(1);
      const auto k = arg(0);
      if (k.kind() != Kind::kInt) throw Error("inPset() takes a pset number", call.pos);
      auto& cndb = machine->cndb(hw::kBlueGene);
      if (k.as_int() < 0 || k.as_int() >= cndb.pset_count()) {
        throw Error("pset " + std::to_string(k.as_int()) + " out of range", call.pos);
      }
      Bag out;
      for (int n : cndb.nodes_in_pset(static_cast<int>(k.as_int()))) out.emplace_back(n);
      return Object{std::move(out)};
    }
    // psetrr(): successive nodes from successive psets, round-robin.
    need_args(0);
    auto& cndb = machine->cndb(hw::kBlueGene);
    Bag out;
    for (int n : cndb.pset_round_robin(cndb.node_count())) out.emplace_back(n);
    return Object{std::move(out)};
  }

  if (call.name == "sp" || call.name == "spv") {
    throw Error(call.name + "() cannot be evaluated in a constant context", call.pos);
  }
  throw Error("unknown function '" + call.name + "' in constant context", call.pos);
}

}  // namespace

bool is_allocation_function(const std::string& name) {
  return name == "urr" || name == "inPset" || name == "inpset" || name == "psetrr";
}

Object eval_const(const ExprPtr& expr, const Env& env, hw::Machine* machine) {
  SCSQ_CHECK(expr != nullptr) << "null expression";
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return expr->literal;
    case ExprKind::kVar: {
      auto it = env.find(expr->name);
      if (it == env.end()) throw Error("unknown variable '" + expr->name + "'", expr->pos);
      return it->second;
    }
    case ExprKind::kBagCtor: {
      Bag bag;
      bag.reserve(expr->args.size());
      for (const auto& a : expr->args) bag.push_back(eval_const(a, env, machine));
      return Object{std::move(bag)};
    }
    case ExprKind::kBinary:
      return eval_binary(expr->op,
                         eval_const(expr->args[0], env, machine),
                         eval_const(expr->args[1], env, machine), expr->pos);
    case ExprKind::kNeg: {
      Object v = eval_const(expr->args[0], env, machine);
      if (v.kind() == Kind::kInt) return Object{-v.as_int()};
      return Object{-v.as_number()};
    }
    case ExprKind::kCall:
      return eval_call(*expr, env, machine);
    case ExprKind::kSelect:
      throw Error("select cannot be evaluated in a constant context", expr->pos);
  }
  throw Error("unhandled expression kind", expr->pos);
}

}  // namespace scsq::exec
