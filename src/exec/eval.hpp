// Constant (non-streaming, non-spawning) expression evaluation.
//
// Used in three places: evaluating where-clause scalars at the client
// manager (n = 4, iota(1, n)), evaluating allocation-sequence
// expressions (urr('be'), inPset(1), psetrr(), literal node ids), and
// const-folding inside SQEP plan building (gen_array sizes, extract()
// targets from the captured environment).
//
// sp()/spv()/user-defined functions are NOT handled here — they spawn
// processes and are evaluated by the Engine's asynchronous binding pass.
#pragma once

#include "exec/env.hpp"
#include "hw/machine.hpp"
#include "scsql/ast.hpp"

namespace scsq::exec {

/// Evaluates `expr` against `env`. `machine` may be null; it is required
/// only for the CNDB allocation functions (urr, inPset, psetrr).
/// Throws scsql::Error for unknown variables/functions or type errors.
catalog::Object eval_const(const scsql::ExprPtr& expr, const Env& env,
                           hw::Machine* machine);

/// True if `name` is one of the allocation-sequence builtins.
bool is_allocation_function(const std::string& name);

}  // namespace scsq::exec
