#include "exec/substitute.hpp"

namespace scsq::exec {

using scsql::Expr;
using scsql::ExprKind;
using scsql::ExprPtr;
using scsql::Select;
using scsql::SelectPtr;

SelectPtr substitute_vars(const SelectPtr& select,
                          const std::map<std::string, std::string>& renames) {
  auto out = std::make_shared<Select>();
  out->pos = select->pos;
  bool changed = false;
  for (const auto& d : select->decls) {
    auto nd = d;
    auto it = renames.find(d.name);
    if (it != renames.end()) {
      nd.name = it->second;
      changed = true;
    }
    out->decls.push_back(std::move(nd));
  }
  for (const auto& e : select->exprs) {
    auto ne = substitute_vars(e, renames);
    changed |= (ne != e);
    out->exprs.push_back(std::move(ne));
  }
  for (const auto& p : select->predicates) {
    auto np = p;
    np.lhs = substitute_vars(p.lhs, renames);
    np.rhs = substitute_vars(p.rhs, renames);
    changed |= (np.lhs != p.lhs) || (np.rhs != p.rhs);
    out->predicates.push_back(std::move(np));
  }
  if (!changed) return select;
  return out;
}

ExprPtr substitute_vars(const ExprPtr& expr,
                        const std::map<std::string, std::string>& renames) {
  if (!expr || renames.empty()) return expr;
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kVar: {
      auto it = renames.find(expr->name);
      if (it == renames.end()) return expr;
      return scsql::make_var(it->second, expr->pos);
    }
    case ExprKind::kCall:
    case ExprKind::kBagCtor:
    case ExprKind::kBinary:
    case ExprKind::kNeg: {
      bool changed = false;
      std::vector<ExprPtr> args;
      args.reserve(expr->args.size());
      for (const auto& a : expr->args) {
        auto na = substitute_vars(a, renames);
        changed |= (na != a);
        args.push_back(std::move(na));
      }
      if (!changed) return expr;
      auto out = std::make_shared<Expr>(*expr);
      out->args = std::move(args);
      return out;
    }
    case ExprKind::kSelect: {
      auto ns = substitute_vars(expr->select, renames);
      if (ns == expr->select) return expr;
      auto out = std::make_shared<Expr>(*expr);
      out->select = std::move(ns);
      return out;
    }
  }
  return expr;
}

}  // namespace scsq::exec
