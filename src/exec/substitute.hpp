// AST variable renaming, used when inlining user-defined query functions.
//
// Inlining `radix2('src')` splices the function body's select into the
// caller's scope; its local variables (a, b, c) and parameters (s) are
// renamed with a fresh prefix so they cannot collide with the caller's
// names.
#pragma once

#include <map>
#include <string>

#include "scsql/ast.hpp"

namespace scsq::exec {

/// Returns `expr` with every variable (and nested select declaration)
/// whose name appears in `renames` replaced by the mapped name.
/// Function-call names are never renamed. Returns the original pointer
/// when nothing changed.
scsql::ExprPtr substitute_vars(const scsql::ExprPtr& expr,
                               const std::map<std::string, std::string>& renames);

/// Same for a whole select (declarations, select list and predicates).
scsql::SelectPtr substitute_vars(const scsql::SelectPtr& select,
                                 const std::map<std::string, std::string>& renames);

}  // namespace scsq::exec
