#include "funcs/fft.hpp"

#include <numbers>

#include "util/logging.hpp"

namespace scsq::funcs {

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

CVec fft_complex(CVec a) {
  const std::size_t n = a.size();
  SCSQ_CHECK(is_pow2(n)) << "fft size must be a power of two, got " << n;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wl(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        auto u = a[i + k];
        auto v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  return a;
}

CVec fft(const std::vector<double>& input) {
  CVec a(input.begin(), input.end());
  return fft_complex(std::move(a));
}

CVec naive_dft(const std::vector<double>& input) {
  const std::size_t n = input.size();
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * std::numbers::pi * static_cast<double>(k) * static_cast<double>(t) /
          static_cast<double>(n);
      acc += input[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> odd(const std::vector<double>& x) {
  std::vector<double> out;
  out.reserve(x.size() / 2);
  for (std::size_t i = 1; i < x.size(); i += 2) out.push_back(x[i]);
  return out;
}

std::vector<double> even(const std::vector<double>& x) {
  std::vector<double> out;
  out.reserve((x.size() + 1) / 2);
  for (std::size_t i = 0; i < x.size(); i += 2) out.push_back(x[i]);
  return out;
}

CVec radix_combine(const CVec& even_fft, const CVec& odd_fft) {
  SCSQ_CHECK(even_fft.size() == odd_fft.size())
      << "radix_combine halves differ: " << even_fft.size() << " vs " << odd_fft.size();
  const std::size_t half = even_fft.size();
  const std::size_t n = 2 * half;
  CVec out(n);
  for (std::size_t k = 0; k < half; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n);
    const std::complex<double> w(std::cos(angle), std::sin(angle));
    out[k] = even_fft[k] + w * odd_fft[k];
    out[k + half] = even_fft[k] - w * odd_fft[k];
  }
  return out;
}

}  // namespace scsq::funcs
