// Signal-processing builtins used by the paper's radix2 FFT example.
//
// The paper (§2.4) parallelizes FFT radix-2 style: odd(x)/even(x) split
// an array, fft() transforms each half on a separate stream process, and
// radixcombine() merges the partial results:
//   X[k]        = E[k] + w^k O[k]
//   X[k + N/2]  = E[k] - w^k O[k],   w = exp(-2*pi*i/N)
// A naive O(n^2) DFT is provided as the test oracle.
#pragma once

#include <complex>
#include <vector>

namespace scsq::funcs {

using CVec = std::vector<std::complex<double>>;

/// In-order iterative radix-2 FFT. Size must be a power of two (>= 1).
CVec fft(const std::vector<double>& input);

/// FFT of an already-complex sequence (used internally and in tests).
CVec fft_complex(CVec input);

/// Naive O(n^2) DFT — the correctness oracle for fft().
CVec naive_dft(const std::vector<double>& input);

/// Elements at odd indices (x[1], x[3], ...).
std::vector<double> odd(const std::vector<double>& x);

/// Elements at even indices (x[0], x[2], ...).
std::vector<double> even(const std::vector<double>& x);

/// Radix-2 combine of the FFTs of the even- and odd-indexed halves:
/// given E = fft(even(x)) and O = fft(odd(x)), returns fft(x).
CVec radix_combine(const CVec& even_fft, const CVec& odd_fft);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

}  // namespace scsq::funcs
