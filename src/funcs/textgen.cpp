#include "funcs/textgen.hpp"

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scsq::funcs {
namespace {

const char* const kDictionary[] = {
    "antenna", "stream",  "signal", "torus",   "query",   "buffer", "node",
    "pulsar",  "cluster", "merge",  "process", "radio",   "noise",  "fft",
    "gain",    "flux",    "epoch",  "drift",   "sky",     "beam",
};
constexpr std::size_t kDictSize = sizeof(kDictionary) / sizeof(kDictionary[0]);

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string filename_for(std::int64_t index) {
  return "lofar_obs_" + std::to_string(index) + ".log";
}

std::vector<std::string> file_lines(const std::string& filename,
                                    const TextGenOptions& options) {
  util::Rng rng(fnv1a(filename));
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(options.lines_per_file));
  for (int l = 0; l < options.lines_per_file; ++l) {
    std::string line;
    for (int w = 0; w < options.words_per_line; ++w) {
      if (w > 0) line += ' ';
      line += kDictionary[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kDictSize) - 1))];
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::vector<std::string> grep_file(const std::string& pattern, const std::string& filename,
                                   const TextGenOptions& options) {
  std::vector<std::string> out;
  for (auto& line : file_lines(filename, options)) {
    if (util::contains(line, pattern)) out.push_back(std::move(line));
  }
  return out;
}

}  // namespace scsq::funcs
