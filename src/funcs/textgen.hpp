// Synthetic text corpus for the mapreduce grep example.
//
// The paper's distributed grep runs over a table of 1000 filenames. We
// have no corpus, so file contents are generated deterministically from
// the filename: every file gets `lines_per_file` lines of pseudo-random
// words drawn from a fixed dictionary, so a given (filename, pattern)
// always yields the same matches on every run and node — which the grep
// example's correctness test relies on.
#pragma once

#include <string>
#include <vector>

namespace scsq::funcs {

struct TextGenOptions {
  int lines_per_file = 64;
  int words_per_line = 8;
};

/// The filename table: filename(i) of the paper's grep query.
std::string filename_for(std::int64_t index);

/// Deterministic synthetic content of a file.
std::vector<std::string> file_lines(const std::string& filename,
                                    const TextGenOptions& options = {});

/// Lines of `filename` containing `pattern` (plain substring match).
std::vector<std::string> grep_file(const std::string& pattern, const std::string& filename,
                                   const TextGenOptions& options = {});

}  // namespace scsq::funcs
