#include "hw/cndb.hpp"

#include <algorithm>

namespace scsq::hw {

Cndb::Cndb(int node_count, std::function<int(int)> pset_of) {
  SCSQ_CHECK(node_count >= 1) << "empty cluster";
  busy_.assign(node_count, false);
  pset_.resize(node_count);
  for (int i = 0; i < node_count; ++i) {
    pset_[i] = pset_of(i);
    pset_count_ = std::max(pset_count_, pset_[i] + 1);
  }
}

std::optional<int> Cndb::next_available() {
  const int n = node_count();
  for (int step = 0; step < n; ++step) {
    int node = (cursor_ + step) % n;
    if (!busy_[node]) {
      cursor_ = (node + 1) % n;
      return node;
    }
  }
  return std::nullopt;
}

std::optional<int> Cndb::next_available_spread() {
  if (pset_count_ <= 0) return next_available();
  int best_pset = -1;
  int best_busy = INT32_MAX;
  std::vector<int> busy_per_pset(static_cast<std::size_t>(pset_count_), 0);
  std::vector<int> first_free(static_cast<std::size_t>(pset_count_), -1);
  for (int i = 0; i < node_count(); ++i) {
    const int p = pset_[i];
    if (p < 0) continue;
    if (busy_[i]) {
      busy_per_pset[static_cast<std::size_t>(p)] += 1;
    } else if (first_free[static_cast<std::size_t>(p)] < 0) {
      first_free[static_cast<std::size_t>(p)] = i;
    }
  }
  for (int p = 0; p < pset_count_; ++p) {
    if (first_free[static_cast<std::size_t>(p)] < 0) continue;  // pset full
    if (busy_per_pset[static_cast<std::size_t>(p)] < best_busy) {
      best_busy = busy_per_pset[static_cast<std::size_t>(p)];
      best_pset = p;
    }
  }
  if (best_pset < 0) return std::nullopt;
  return first_free[static_cast<std::size_t>(best_pset)];
}

std::optional<int> Cndb::first_available_in(
    const std::vector<int>& allocation_sequence) const {
  for (int node : allocation_sequence) {
    SCSQ_CHECK(node >= 0 && node < node_count())
        << "allocation sequence names unknown node " << node;
    if (!busy_[node]) return node;
  }
  return std::nullopt;
}

std::vector<int> Cndb::round_robin_available(int count) const {
  std::vector<int> available;
  for (int i = 0; i < node_count(); ++i) {
    if (!busy_[i]) available.push_back(i);
  }
  std::vector<int> out;
  if (available.empty()) return out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(available[static_cast<std::size_t>(i) % available.size()]);
  }
  return out;
}

std::vector<int> Cndb::nodes_in_pset(int pset) const {
  std::vector<int> out;
  for (int i = 0; i < node_count(); ++i) {
    if (pset_[i] == pset) out.push_back(i);
  }
  return out;
}

std::vector<int> Cndb::pset_round_robin(int count) const {
  // Successive entries belong to successive psets; within each pset,
  // successive rounds name its successive available nodes. Busy nodes
  // are skipped entirely (they can never be selected).
  std::vector<std::vector<int>> per_pset(static_cast<std::size_t>(std::max(pset_count_, 1)));
  for (int i = 0; i < node_count(); ++i) {
    if (pset_[i] >= 0 && !busy_[i]) per_pset[static_cast<std::size_t>(pset_[i])].push_back(i);
  }
  std::vector<int> out;
  std::size_t round = 0;
  while (static_cast<int>(out.size()) < count) {
    bool produced = false;
    for (const auto& nodes : per_pset) {
      if (static_cast<int>(out.size()) >= count) break;
      if (round < nodes.size()) {
        out.push_back(nodes[round]);
        produced = true;
      }
    }
    if (!produced) break;  // all psets exhausted
    ++round;
  }
  return out;
}

}  // namespace scsq::hw
