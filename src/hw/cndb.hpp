// Compute node database (CNDB).
//
// Each cluster coordinator "maintains an internal compute node database
// containing the properties and status of the possibly thousands of
// compute nodes in its cluster. A node selection algorithm in the
// cluster coordinator starts the new RP on a suitable compute node by
// querying its CNDB. Currently, a naive node selection algorithm is
// used, returning the next available node." (paper §2.2)
//
// The CNDB also backs the allocation-sequence functions: urr(cl) walks
// available nodes round-robin, inPset(k) lists a pset's nodes, and
// psetrr() yields one node per pset round-robin.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "util/logging.hpp"

namespace scsq::hw {

class Cndb {
 public:
  /// `pset_of` maps a node index to its pset (or -1 for clusters
  /// without psets, i.e. the Linux clusters).
  Cndb(int node_count, std::function<int(int)> pset_of);

  /// Convenience for Linux clusters (no psets).
  explicit Cndb(int node_count)
      : Cndb(node_count, [](int) { return -1; }) {}

  int node_count() const { return static_cast<int>(busy_.size()); }
  bool busy(int node) const { return busy_.at(node); }
  void set_busy(int node, bool b) { busy_.at(node) = b; }
  int pset_of(int node) const { return pset_.at(node); }
  int pset_count() const { return pset_count_; }

  /// The paper's naive node selection: the next available node after an
  /// internal cursor (round-robin so repeated selections spread out).
  std::optional<int> next_available();

  /// Topology-aware selection (the paper's proposed extension of the
  /// node selection algorithm): picks an available node from the pset
  /// with the fewest busy nodes, spreading receivers across I/O nodes
  /// like psetrr() does — the Fig. 15 recipe for inbound bandwidth.
  /// Falls back to next_available() for clusters without psets.
  std::optional<int> next_available_spread();

  /// Node selection restricted by an allocation sequence: "the node
  /// selection algorithm will choose the first available node in the
  /// allocation sequence" (paper §2.4).
  std::optional<int> first_available_in(const std::vector<int>& allocation_sequence) const;

  /// urr(cl): a round-robin stream of available nodes; each call to this
  /// generator-style helper advances an independent cursor so that the
  /// k-th element names the k-th distinct available node (wrapping).
  std::vector<int> round_robin_available(int count) const;

  /// inPset(k): all node indices in pset k (available or not; busy nodes
  /// are skipped by the selection step).
  std::vector<int> nodes_in_pset(int pset) const;

  /// psetrr(): node indices where each successive entry belongs to the
  /// next pset round-robin (the first available node of each pset).
  std::vector<int> pset_round_robin(int count) const;

 private:
  std::vector<bool> busy_;
  std::vector<int> pset_;
  int pset_count_ = 0;
  int cursor_ = 0;
};

}  // namespace scsq::hw
