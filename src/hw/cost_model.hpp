// Calibration constants for the simulated LOFAR environment.
//
// Every number that shapes the reproduced figures lives here, with the
// mechanism it drives. Defaults are calibrated so the benches reproduce
// the *shapes* of the paper's Fig. 6 / Fig. 8 / Fig. 15 (who wins, where
// knees, peaks and dips fall); absolute values are the simulator's, not
// IBM's. See DESIGN.md §2 for the substitution rationale and
// EXPERIMENTS.md for per-figure calibration notes.
#pragma once

#include <cstdint>

#include "net/ethernet.hpp"
#include "net/tree_net.hpp"
#include "net/torus_net.hpp"

namespace scsq::hw {

/// Per-node CPU cost parameters (stream-engine work, not networking).
struct NodeParams {
  /// Marshal/de-marshal cost per payload byte on this CPU.
  double marshal_per_byte_s = 1.2e-9;
  /// Cost to materialize (allocate + construct) one received object.
  double alloc_per_object_s = 5.0e-6;
  /// Cost per byte for gen_array() to produce array content.
  double gen_per_byte_s = 0.5e-9;
  /// Fixed cost of one operator invocation on one element.
  double op_invoke_s = 1.0e-6;
  /// Cost of one floating-point operation (numeric builtins like fft).
  double flop_s = 0.7e-9;
  /// Number of CPUs usable for query execution on this node.
  int cpu_count = 1;
};

struct CostModel {
  net::TorusParams torus;
  net::TreeParams tree;
  net::EthernetParams ethernet;

  /// BlueGene compute node: dual PPC440 at 700 MHz, but one CPU is the
  /// communication co-processor (modeled inside TorusNetwork), so the
  /// stream engine sees a single slow CPU.
  NodeParams bg_compute{};

  /// Linux cluster node: dual PPC970 at 2.2 GHz, both CPUs usable.
  NodeParams linux_node{.marshal_per_byte_s = 0.8e-9,
                        .alloc_per_object_s = 1.5e-6,
                        .gen_per_byte_s = 0.25e-9,
                        .op_invoke_s = 0.3e-6,
                        .flop_s = 0.25e-9,
                        .cpu_count = 2};

  /// I/O-node coordination: per-byte forwarding cost grows by this
  /// coefficient for every distinct external host streaming into the
  /// BlueGene beyond the first. This reproduces the paper's observation
  /// that one back-end sender beats several (Q1 > Q2, Q5 > Q6):
  /// "coordination problems in the I/O node when communicating with
  /// many outside nodes".
  double io_coord_coeff = 0.31;

  /// Compute-node ingest multiplexing: per-byte ingest cost grows by
  /// this coefficient for every extra inbound TCP stream converging on
  /// one compute node. Drives the small Q3/Q4-over-Q1/Q2 gain from
  /// spreading receivers (Fig. 15 observation 2).
  double compute_mux_coeff = 0.06;

  // --- Geometry of the experiment partition (paper §2.1/§5) ---
  int torus_x = 4;
  int torus_y = 4;
  int torus_z = 2;   // 32 compute nodes = 4 psets of 8
  int pset_size = 8;
  int io_node_count = 4;   // "we have only four I/O nodes"
  int backend_nodes = 4;   // "and four nodes in the back-end cluster"
  int frontend_nodes = 2;

  /// Default capacity (in stream buffers) of a receiver driver inbox.
  int receiver_inbox_buffers = 2;

  int compute_node_count() const { return torus_x * torus_y * torus_z; }
  int pset_of(int rank) const { return rank / pset_size; }

  /// The paper's LOFAR configuration (also the struct defaults).
  static CostModel lofar() { return CostModel{}; }

  /// A full BlueGene rack-scale partition: 512 compute nodes in an
  /// 8x8x8 torus, 64 psets/I/O nodes, 16 back-end nodes. Used by the
  /// scale tests ("it remains to be investigated what happens for large
  /// amounts of back-end and I/O nodes", paper §5).
  static CostModel bluegene_rack() {
    CostModel c;
    c.torus_x = 8;
    c.torus_y = 8;
    c.torus_z = 8;
    c.pset_size = 8;
    c.io_node_count = 64;
    c.backend_nodes = 16;
    return c;
  }
};

}  // namespace scsq::hw
