// Placement of a running process: a cluster name and a node index.
#pragma once

#include <string>

#include "util/logging.hpp"

namespace scsq::hw {

/// Cluster names used throughout the system (the paper's Fig. 1/2).
inline constexpr const char* kFrontEnd = "fe";
inline constexpr const char* kBackEnd = "be";
inline constexpr const char* kBlueGene = "bg";

struct Location {
  std::string cluster;  // "fe", "be" or "bg"
  int node = -1;        // node index within the cluster (BG: torus rank)

  bool operator==(const Location&) const = default;

  std::string to_string() const { return cluster + ":" + std::to_string(node); }
};

}  // namespace scsq::hw
