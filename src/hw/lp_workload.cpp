#include "hw/lp_workload.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "hw/machine.hpp"
#include "net/topology.hpp"
#include "util/logging.hpp"

namespace scsq::hw {
namespace {

using sim::plp::Message;
using sim::plp::NodeId;
using sim::plp::Runtime;

constexpr std::uint32_t kProduce = 1;  // back-end emits its next message
constexpr std::uint32_t kForward = 2;  // I/O node forwards to a compute rank
constexpr std::uint32_t kWork = 3;     // compute node processes a payload
constexpr std::uint32_t kMerge = 4;    // merger folds a result

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Payload values travel in the Message's double slot; keep them inside
// the 2^53 range where doubles are exact integers.
constexpr std::uint64_t kValueMask = (1ull << 52) - 1;

}  // namespace

LpWorkloadResult run_lp_workload(const CostModel& cost, int lp_count, unsigned workers,
                                 const LpWorkloadOptions& options) {
  const LpPartition part = make_partition(cost, lp_count);
  const int computes = cost.compute_node_count();
  const int psets = computes / cost.pset_size;
  const int backends = cost.backend_nodes;
  const net::Torus3D topo(cost.torus_x, cost.torus_y, cost.torus_z);

  // Per-message link costs, all bounded below by the partition
  // lookaheads the runtime enforces (min_link_latency is the bytes -> 1,
  // hops -> 1 floor of each formula).
  const double bytes = static_cast<double>(options.payload_bytes);
  const double eth_s = cost.ethernet.per_message_overhead_s +
                       bytes / (cost.ethernet.nic_bandwidth_Bps * cost.ethernet.tcp_efficiency);
  const double tree_s = cost.tree.io_per_message_overhead_s +
                        bytes * cost.tree.io_forward_per_byte_s +
                        bytes / cost.tree.link_bandwidth_Bps;
  const auto torus_s = [&cost](int hops) {
    return cost.torus.per_message_overhead_s + cost.torus.send_per_packet_s +
           static_cast<double>(hops) *
               (cost.torus.forward_per_packet_s +
                static_cast<double>(cost.torus.packet_bytes) / cost.torus.link_bandwidth_Bps);
  };

  Runtime rt(part.lp_count);

  // Node layout (creation order fixes NodeIds): compute ranks, then I/O
  // nodes per pset, then back-end nodes.
  std::vector<NodeId> compute_node(static_cast<std::size_t>(computes));
  std::vector<NodeId> io_node(static_cast<std::size_t>(psets));
  std::vector<NodeId> be_node(static_cast<std::size_t>(backends));

  // The merger is compute rank 0's node; per-node state lives here and
  // is only ever touched by the owning LP's worker.
  const int merger_rank = 0;
  struct MergerState {
    std::uint64_t checksum = 0;
    std::uint64_t merged = 0;
  };
  auto merger = std::make_unique<MergerState>();

  for (int rank = 0; rank < computes; ++rank) {
    const int lp = part.bg_compute_lp[static_cast<std::size_t>(rank)];
    compute_node[static_cast<std::size_t>(rank)] = rt.add_node(
        lp, [&, rank](Runtime::Context& ctx, const Message& m) {
          if (m.tag == kWork) {
            // Deterministic per-message compute burn, seeded by the
            // partition-independent message identity.
            std::uint64_t h = splitmix64(static_cast<std::uint64_t>(m.value)) ^
                              (static_cast<std::uint64_t>(m.src) << 32);
            for (int i = 0; i < options.work_per_event; ++i) h = splitmix64(h);
            const int hops = topo.hop_distance(rank, merger_rank);
            ctx.send(compute_node[static_cast<std::size_t>(merger_rank)],
                     ctx.now() + torus_s(hops), kMerge, static_cast<double>(h & kValueMask));
            return;
          }
          SCSQ_CHECK(m.tag == kMerge) << "unexpected tag " << m.tag;
          SCSQ_CHECK(rank == merger_rank);
          // Order-dependent fold: any deviation from the deterministic
          // delivery order changes the checksum.
          merger->checksum = splitmix64(merger->checksum * 31 +
                                        (static_cast<std::uint64_t>(m.value) ^ m.src));
          ++merger->merged;
        });
  }

  for (int p = 0; p < psets; ++p) {
    io_node[static_cast<std::size_t>(p)] =
        rt.add_node(part.bg_io_lp[static_cast<std::size_t>(p)],
                    [&](Runtime::Context& ctx, const Message& m) {
                      SCSQ_CHECK(m.tag == kForward) << "unexpected tag " << m.tag;
                      const int rank = static_cast<int>(m.value);
                      // Tree hop: always intra-LP (psets are kept whole).
                      ctx.send(compute_node[static_cast<std::size_t>(rank)], ctx.now() + tree_s,
                               kWork, m.value);
                    });
  }

  for (int b = 0; b < backends; ++b) {
    be_node[static_cast<std::size_t>(b)] = rt.add_node(
        part.be_lp[static_cast<std::size_t>(b)], [&, b](Runtime::Context& ctx, const Message& m) {
          SCSQ_CHECK(m.tag == kProduce) << "unexpected tag " << m.tag;
          // Spread the stream over compute ranks, co-prime stride so
          // every rank sees traffic from several back-ends.
          const std::uint64_t k = m.seq;
          const int rank = static_cast<int>((static_cast<std::uint64_t>(b) * 17 + k * 5) %
                                            static_cast<std::uint64_t>(computes));
          const int pset = cost.pset_of(rank);
          ctx.send(io_node[static_cast<std::size_t>(pset)], ctx.now() + eth_s, kForward,
                   static_cast<double>(rank));
        });
  }

  // Declare per-link-class lookaheads for exactly the LP pairs each link
  // class can cross (set_lookahead keeps the minimum on double
  // declarations).
  for (int b = 0; b < backends; ++b) {
    for (int p = 0; p < psets; ++p) {
      rt.set_lookahead(part.be_lp[static_cast<std::size_t>(b)],
                       part.bg_io_lp[static_cast<std::size_t>(p)], part.ethernet_lookahead_s);
    }
  }
  for (int rank = 0; rank < computes; ++rank) {
    rt.set_lookahead(part.bg_compute_lp[static_cast<std::size_t>(rank)],
                     part.bg_compute_lp[static_cast<std::size_t>(merger_rank)],
                     part.torus_lookahead_s);
  }

  // Seed each back-end's stream as staggered self-stimuli; emission
  // times depend only on (backend, index), never on the partition.
  for (int b = 0; b < backends; ++b) {
    for (int k = 0; k < options.messages_per_backend; ++k) {
      const double at = 1e-6 * static_cast<double>(k + 1) + 1e-8 * static_cast<double>(b);
      rt.post_initial(be_node[static_cast<std::size_t>(b)], at, kProduce, 0.0);
    }
  }

  if (options.monitor) {
    rt.enable_live_timing(true);
    std::atomic<bool> stop{false};
    std::thread monitor_thread([&] {
      const auto period = std::chrono::milliseconds(
          options.monitor_interval_ms > 0 ? options.monitor_interval_ms : 1);
      while (!stop.load(std::memory_order_acquire)) {
        options.monitor(rt.live_sample());
        std::this_thread::sleep_for(period);
      }
    });
    rt.run(workers);
    stop.store(true, std::memory_order_release);
    monitor_thread.join();
    options.monitor(rt.live_sample());  // settled final snapshot
  } else {
    rt.run(workers);
  }

  LpWorkloadResult result;
  result.checksum = merger->checksum;
  result.merged = merger->merged;
  result.end_time_s = rt.end_time();
  result.lp_count = rt.lp_count();
  result.totals = rt.total_stats();
  result.events = result.totals.events;
  result.per_lp.reserve(static_cast<std::size_t>(rt.lp_count()));
  for (int lp = 0; lp < rt.lp_count(); ++lp) result.per_lp.push_back(rt.lp_stats(lp));
  return result;
}

}  // namespace scsq::hw
