// Fig. 15-shaped message workload on the conservative parallel runtime.
//
// Drives the inbound-stream scenario of the paper over sim/plp.hpp
// instead of the coroutine engine: back-end nodes emit a stream of
// messages across the Ethernet to each pset's I/O node, the I/O node
// forwards over the tree to a compute node, the compute node burns a
// deterministic amount of hash work and ships its result across the
// torus to a merger rank that folds everything into an order-dependent
// checksum. Latencies are derived from the same net/* parameter structs
// the engine uses; LP assignment comes from hw::make_partition, so every
// Ethernet and torus crossing respects the partition's link-latency
// lookahead.
//
// The checksum folds messages in handler order, so it detects any
// deviation from the deterministic (recv_time, src, seq) delivery order:
// run_lp_workload must return bitwise identical results for every
// (lp_count, workers) combination. This is both the cross-LP invariance
// fixture of tests/plp_test.cpp and the body of the BM_ParallelSim
// microbench.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/cost_model.hpp"
#include "sim/plp.hpp"

namespace scsq::hw {

struct LpWorkloadOptions {
  int messages_per_backend = 64;  ///< stream length emitted by each back-end node
  int work_per_event = 32;        ///< splitmix64 rounds per compute-node event
  std::uint64_t payload_bytes = 4096;
  /// Optional live monitor: when set, run_lp_workload enables wall-clock
  /// running/blocked accounting and spawns one monitor thread that calls
  /// this with Runtime::live_sample() every monitor_interval_ms while
  /// the run is in flight, plus once after completion. Observational
  /// only — reads are atomic and the checksum stays bitwise identical.
  std::function<void(const std::vector<sim::plp::LpLiveSample>&)> monitor;
  int monitor_interval_ms = 10;
};

struct LpWorkloadResult {
  std::uint64_t checksum = 0;   ///< order-dependent fold at the merger ranks
  std::uint64_t merged = 0;     ///< messages folded into the checksum
  std::uint64_t events = 0;     ///< kernel events dispatched across all LPs
  double end_time_s = 0.0;      ///< simulated completion time
  int lp_count = 0;             ///< effective LP count (after clamping)
  sim::plp::LpStats totals;     ///< summed runtime counters
  std::vector<sim::plp::LpStats> per_lp;
};

/// Runs the workload on `lp_count` logical processes multiplexed over
/// `workers` threads (0 = one per LP). Deterministic: the result is
/// identical for every lp_count and worker count.
LpWorkloadResult run_lp_workload(const CostModel& cost, int lp_count, unsigned workers,
                                 const LpWorkloadOptions& options = {});

}  // namespace scsq::hw
