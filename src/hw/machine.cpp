#include "hw/machine.hpp"

#include "obs/sim_bridge.hpp"

namespace scsq::hw {

LinuxCluster::LinuxCluster(sim::Simulator& sim, net::EthernetFabric& fabric,
                           std::string name, int node_count, const NodeParams& params)
    : name_(std::move(name)), params_(params), cndb_(node_count) {
  for (int i = 0; i < node_count; ++i) {
    cpus_.push_back(std::make_unique<sim::Resource>(
        sim, params.cpu_count, name_ + std::to_string(i) + ".cpu"));
    hosts_.push_back(fabric.add_host(name_ + std::to_string(i)));
  }
}

BlueGene::BlueGene(sim::Simulator& sim, net::EthernetFabric& fabric, const CostModel& cost)
    : params_(cost.bg_compute),
      cndb_(cost.compute_node_count(), [&cost](int rank) { return cost.pset_of(rank); }) {
  torus_ = std::make_unique<net::TorusNetwork>(
      sim, net::Torus3D(cost.torus_x, cost.torus_y, cost.torus_z), cost.torus);
  const int psets = cost.io_node_count;
  SCSQ_CHECK(psets * cost.pset_size == cost.compute_node_count())
      << "pset geometry inconsistent: " << psets << " psets of " << cost.pset_size
      << " != " << cost.compute_node_count() << " compute nodes";
  tree_ = std::make_unique<net::TreeNetwork>(sim, psets, cost.compute_node_count(),
                                             cost.tree);
  for (int i = 0; i < cost.compute_node_count(); ++i) {
    cpus_.push_back(
        std::make_unique<sim::Resource>(sim, 1, "bg" + std::to_string(i) + ".cpu"));
  }
  for (int p = 0; p < psets; ++p) {
    io_hosts_.push_back(fabric.add_host("io" + std::to_string(p), /*is_ionode=*/true));
  }
}

Machine::Machine(sim::Simulator& sim, CostModel cost) : sim_(&sim), cost_(cost) {
  fabric_ = std::make_unique<net::EthernetFabric>(sim, cost_.ethernet);
  fe_ = std::make_unique<LinuxCluster>(sim, *fabric_, kFrontEnd, cost_.frontend_nodes,
                                       cost_.linux_node);
  be_ = std::make_unique<LinuxCluster>(sim, *fabric_, kBackEnd, cost_.backend_nodes,
                                       cost_.linux_node);
  bg_ = std::make_unique<BlueGene>(sim, *fabric_, cost_);
  bg_inbound_streams_.assign(static_cast<std::size_t>(cost_.compute_node_count()), 0);
}

bool Machine::has_cluster(const std::string& cluster) const {
  return cluster == kFrontEnd || cluster == kBackEnd || cluster == kBlueGene;
}

Cndb& Machine::cndb(const std::string& cluster) {
  if (cluster == kFrontEnd) return fe_->cndb();
  if (cluster == kBackEnd) return be_->cndb();
  if (cluster == kBlueGene) return bg_->cndb();
  SCSQ_CHECK(false) << "unknown cluster '" << cluster << "'";
  return fe_->cndb();
}

int Machine::node_count(const std::string& cluster) const {
  if (cluster == kFrontEnd) return fe_->node_count();
  if (cluster == kBackEnd) return be_->node_count();
  if (cluster == kBlueGene) return bg_->compute_node_count();
  SCSQ_CHECK(false) << "unknown cluster '" << cluster << "'";
  return 0;
}

sim::Resource& Machine::cpu_of(const Location& loc) {
  if (loc.cluster == kFrontEnd) return fe_->cpu(loc.node);
  if (loc.cluster == kBackEnd) return be_->cpu(loc.node);
  if (loc.cluster == kBlueGene) return bg_->compute_cpu(loc.node);
  SCSQ_CHECK(false) << "unknown cluster '" << loc.cluster << "'";
  return fe_->cpu(0);
}

const NodeParams& Machine::node_params(const Location& loc) const {
  if (loc.cluster == kBlueGene) return bg_->params();
  if (loc.cluster == kFrontEnd) return fe_->params();
  if (loc.cluster == kBackEnd) return be_->params();
  SCSQ_CHECK(false) << "unknown cluster '" << loc.cluster << "'";
  return fe_->params();
}

int Machine::fabric_host_of(const Location& loc) const {
  if (loc.cluster == kFrontEnd) return fe_->fabric_host(loc.node);
  if (loc.cluster == kBackEnd) return be_->fabric_host(loc.node);
  if (loc.cluster == kBlueGene) return bg_->io_fabric_host(bg_->pset_of(loc.node));
  SCSQ_CHECK(false) << "unknown cluster '" << loc.cluster << "'";
  return 0;
}

void Machine::register_bg_inbound(int rank) {
  bg_inbound_streams_.at(static_cast<std::size_t>(rank)) += 1;
}

void Machine::unregister_bg_inbound(int rank) {
  auto& n = bg_inbound_streams_.at(static_cast<std::size_t>(rank));
  SCSQ_CHECK(n > 0) << "unregister of absent inbound stream at bg rank " << rank;
  n -= 1;
}

double Machine::io_coordination_factor() const {
  int senders = fabric_->distinct_senders_to_ionodes();
  if (senders <= 1) return 1.0;
  return 1.0 + cost_.io_coord_coeff * static_cast<double>(senders - 1);
}

void Machine::publish_metrics() {
  bg_->torus().publish_metrics(metrics_);
  bg_->tree().publish_metrics(metrics_);
  obs::bridge_sim_perf(metrics_, sim_->perf());
  // Frame recycling health: acquired - reused = frames ever freshly
  // constructed. Flat across steady-state streaming = zero-churn.
  metrics_.gauge("transport.frame_pool.acquired", {}).set(static_cast<double>(frame_pool_.acquired()));
  metrics_.gauge("transport.frame_pool.reused", {}).set(static_cast<double>(frame_pool_.reused()));
  metrics_.gauge("transport.frame_pool.recycled", {}).set(static_cast<double>(frame_pool_.recycled()));
  metrics_.gauge("transport.frame_pool.free", {}).set(static_cast<double>(frame_pool_.free_frames()));
}

void Machine::set_trace(sim::Trace* trace) {
  trace_ = trace;
  for (int r = 0; r < bg_->compute_node_count(); ++r) {
    bg_->torus().coproc(r).set_trace(trace);
    bg_->compute_cpu(r).set_trace(trace);
    bg_->tree().compute_ingest(r).set_trace(trace);
  }
  for (int p = 0; p < bg_->pset_count(); ++p) {
    bg_->tree().io_cpu(p).set_trace(trace);
    bg_->tree().tree_link(p).set_trace(trace);
  }
  for (auto* cluster : {fe_.get(), be_.get()}) {
    for (int n = 0; n < cluster->node_count(); ++n) {
      cluster->cpu(n).set_trace(trace);
      fabric_->tx_nic(cluster->fabric_host(n)).set_trace(trace);
      fabric_->rx_nic(cluster->fabric_host(n)).set_trace(trace);
    }
  }
  for (int p = 0; p < bg_->pset_count(); ++p) {
    fabric_->tx_nic(bg_->io_fabric_host(p)).set_trace(trace);
    fabric_->rx_nic(bg_->io_fabric_host(p)).set_trace(trace);
  }
}

double Machine::compute_mux_factor(int rank) const {
  int streams = bg_inbound_streams_.at(static_cast<std::size_t>(rank));
  if (streams <= 1) return 1.0;
  return 1.0 + cost_.compute_mux_coeff * static_cast<double>(streams - 1);
}

int LpPartition::lp_of(const Location& loc) const {
  const auto node = static_cast<std::size_t>(loc.node);
  if (loc.cluster == kBlueGene) return bg_compute_lp.at(node);
  if (loc.cluster == kBackEnd) return be_lp.at(node);
  if (loc.cluster == kFrontEnd) return fe_lp.at(node);
  SCSQ_CHECK(false) << "unknown cluster " << loc.cluster;
  return 0;
}

LpPartition make_partition(const CostModel& cost, int lp_count) {
  const int psets = cost.compute_node_count() / cost.pset_size;
  if (lp_count < 1) lp_count = 1;
  // Psets are the unit of partitioning (the tree network must stay
  // inside one LP), so they are also the LP ceiling.
  if (lp_count > psets) lp_count = psets;

  LpPartition part;
  part.lp_count = lp_count;
  part.torus_lookahead_s = cost.torus.min_link_latency();
  part.ethernet_lookahead_s = cost.ethernet.min_link_latency();
  part.tree_lookahead_s = cost.tree.min_link_latency();

  const auto chunk_of = [lp_count](int index, int total) {
    return index * lp_count / total;
  };
  part.bg_compute_lp.resize(static_cast<std::size_t>(cost.compute_node_count()));
  for (int rank = 0; rank < cost.compute_node_count(); ++rank) {
    part.bg_compute_lp[static_cast<std::size_t>(rank)] = chunk_of(cost.pset_of(rank), psets);
  }
  part.bg_io_lp.resize(static_cast<std::size_t>(psets));
  for (int p = 0; p < psets; ++p) {
    part.bg_io_lp[static_cast<std::size_t>(p)] = chunk_of(p, psets);
  }
  part.be_lp.resize(static_cast<std::size_t>(cost.backend_nodes));
  for (int n = 0; n < cost.backend_nodes; ++n) {
    part.be_lp[static_cast<std::size_t>(n)] = chunk_of(n, cost.backend_nodes);
  }
  part.fe_lp.resize(static_cast<std::size_t>(cost.frontend_nodes));
  for (int n = 0; n < cost.frontend_nodes; ++n) {
    part.fe_lp[static_cast<std::size_t>(n)] = chunk_of(n, cost.frontend_nodes);
  }
  return part;
}

}  // namespace scsq::hw
