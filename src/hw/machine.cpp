#include "hw/machine.hpp"

#include "obs/sim_bridge.hpp"

namespace scsq::hw {

LinuxCluster::LinuxCluster(sim::Simulator& sim, net::EthernetFabric& fabric,
                           std::string name, int node_count, const NodeParams& params,
                           std::function<sim::Simulator&(int)> node_sim)
    : name_(std::move(name)), params_(params), cndb_(node_count) {
  for (int i = 0; i < node_count; ++i) {
    sim::Simulator& owner = node_sim ? node_sim(i) : sim;
    cpus_.push_back(std::make_unique<sim::Resource>(
        owner, params.cpu_count, name_ + std::to_string(i) + ".cpu"));
    hosts_.push_back(fabric.add_host(name_ + std::to_string(i), /*is_ionode=*/false,
                                     node_sim ? &owner : nullptr));
  }
}

BlueGene::BlueGene(sim::Simulator& sim, net::EthernetFabric& fabric, const CostModel& cost,
                   std::function<sim::Simulator&(int)> rank_sim,
                   std::function<sim::Simulator&(int)> pset_sim)
    : params_(cost.bg_compute),
      cndb_(cost.compute_node_count(), [&cost](int rank) { return cost.pset_of(rank); }) {
  torus_ = std::make_unique<net::TorusNetwork>(
      sim, net::Torus3D(cost.torus_x, cost.torus_y, cost.torus_z), cost.torus, rank_sim);
  const int psets = cost.io_node_count;
  SCSQ_CHECK(psets * cost.pset_size == cost.compute_node_count())
      << "pset geometry inconsistent: " << psets << " psets of " << cost.pset_size
      << " != " << cost.compute_node_count() << " compute nodes";
  tree_ = std::make_unique<net::TreeNetwork>(sim, psets, cost.compute_node_count(),
                                             cost.tree, pset_sim, rank_sim);
  for (int i = 0; i < cost.compute_node_count(); ++i) {
    sim::Simulator& owner = rank_sim ? rank_sim(i) : sim;
    cpus_.push_back(
        std::make_unique<sim::Resource>(owner, 1, "bg" + std::to_string(i) + ".cpu"));
  }
  for (int p = 0; p < psets; ++p) {
    io_hosts_.push_back(fabric.add_host("io" + std::to_string(p), /*is_ionode=*/true,
                                        pset_sim ? &pset_sim(p) : nullptr));
  }
}

Machine::Machine(sim::Simulator& sim, CostModel cost)
    : sim_(&sim), cost_(cost), partition_(make_partition(cost_, 1)) {
  build(sim);
}

Machine::Machine(sim::LpDomain& domain, CostModel cost)
    : sim_(&domain.sim(0)),
      cost_(cost),
      domain_(&domain),
      partition_(make_partition(cost_, domain.lp_count())) {
  SCSQ_CHECK(partition_.lp_count == domain.lp_count())
      << "LpDomain has " << domain.lp_count() << " LPs but this geometry supports at most "
      << partition_.lp_count << " — size the domain with hw::clamp_lp_count";
  // Every cross-LP interaction is floored by the Ethernet per-message
  // overhead: split TCP deliveries complete one full NIC hold (>= the
  // overhead, even for 0-byte EOS frames) after they are announced, and
  // credit returns travel at min_link_latency (> overhead). Cross-pset
  // MPI, whose torus floor is smaller, is refused by the engine when more
  // than one LP drives.
  domain.set_lookahead(cost_.ethernet.per_message_overhead_s);
  build(*sim_);
}

void Machine::build(sim::Simulator& sim) {
  std::function<sim::Simulator&(int)> fe_sim, be_sim, rank_sim, pset_sim;
  if (domain_ != nullptr) {
    fe_sim = [this](int n) -> sim::Simulator& {
      return domain_->sim(partition_.fe_lp.at(static_cast<std::size_t>(n)));
    };
    be_sim = [this](int n) -> sim::Simulator& {
      return domain_->sim(partition_.be_lp.at(static_cast<std::size_t>(n)));
    };
    rank_sim = [this](int rank) -> sim::Simulator& {
      return domain_->sim(partition_.bg_compute_lp.at(static_cast<std::size_t>(rank)));
    };
    pset_sim = [this](int pset) -> sim::Simulator& {
      return domain_->sim(partition_.bg_io_lp.at(static_cast<std::size_t>(pset)));
    };
  }
  fabric_ = std::make_unique<net::EthernetFabric>(sim, cost_.ethernet);
  fe_ = std::make_unique<LinuxCluster>(sim, *fabric_, kFrontEnd, cost_.frontend_nodes,
                                       cost_.linux_node, fe_sim);
  be_ = std::make_unique<LinuxCluster>(sim, *fabric_, kBackEnd, cost_.backend_nodes,
                                       cost_.linux_node, be_sim);
  bg_ = std::make_unique<BlueGene>(sim, *fabric_, cost_, rank_sim, pset_sim);
  bg_inbound_streams_.assign(static_cast<std::size_t>(cost_.compute_node_count()), 0);

  const int lps = domain_ != nullptr ? domain_->lp_count() : 1;
  for (int i = 0; i < lps; ++i) {
    pools_.push_back(std::make_unique<transport::FramePool>());
    if (lps > 1) pools_.back()->set_shared(true);
  }

  if (domain_ != nullptr) {
    // Create every torus link a same-pset MPI route can touch now, so the
    // links_ map never mutates while LPs run concurrently (and so link
    // identity is independent of the LP count — publish_metrics skips
    // never-used links, keeping snapshots byte-identical across counts).
    const int ranks = bg_->compute_node_count();
    for (int a = 0; a < ranks; ++a) {
      for (int b = 0; b < ranks; ++b) {
        if (a != b && bg_->pset_of(a) == bg_->pset_of(b)) {
          bg_->torus().prewarm_route(a, b);
        }
      }
    }
  }
}

bool Machine::has_cluster(const std::string& cluster) const {
  return cluster == kFrontEnd || cluster == kBackEnd || cluster == kBlueGene;
}

Cndb& Machine::cndb(const std::string& cluster) {
  if (cluster == kFrontEnd) return fe_->cndb();
  if (cluster == kBackEnd) return be_->cndb();
  if (cluster == kBlueGene) return bg_->cndb();
  SCSQ_CHECK(false) << "unknown cluster '" << cluster << "'";
  return fe_->cndb();
}

int Machine::node_count(const std::string& cluster) const {
  if (cluster == kFrontEnd) return fe_->node_count();
  if (cluster == kBackEnd) return be_->node_count();
  if (cluster == kBlueGene) return bg_->compute_node_count();
  SCSQ_CHECK(false) << "unknown cluster '" << cluster << "'";
  return 0;
}

sim::Simulator& Machine::sim_of(const Location& loc) { return lp_sim(lp_of(loc)); }

sim::Simulator& Machine::lp_sim(int lp) {
  if (domain_ == nullptr) {
    SCSQ_CHECK(lp == 0) << "LP " << lp << " on a single-Simulator machine";
    return *sim_;
  }
  return domain_->sim(lp);
}

// Deterministic tie-break for posted events. Two posters delivering at
// bit-identical times into the same Simulator would otherwise resolve by
// FIFO insertion order — which depends on whether each poster is staged
// (cross-LP) or direct (same-LP), i.e. on the LP count. Skewing every
// posted time by a sub-picosecond amount proportional to the poster's
// wiring-order origin id makes the order *timestamp*-determined, and the
// origin numbering is LP-count-invariant because wiring always runs
// single-threaded in the same order. The skew stays ~7 orders of
// magnitude below every modeled cost (microseconds), so it never alters
// which window an event falls into.
constexpr double kOriginTieEps = 1e-13;

Machine::Poster Machine::make_poster(const Location& from, const Location& to) {
  SCSQ_CHECK(domain_ != nullptr) << "make_poster needs the LpDomain constructor";
  const int from_lp = lp_of(from);
  const int to_lp = lp_of(to);
  // Every poster draws an origin id — same-LP ones too — so the
  // numbering (and hence the epsilon skew) is identical at every LP
  // count.
  const std::uint64_t origin = domain_->new_origin();
  const double eps = kOriginTieEps * static_cast<double>(origin);
  if (from_lp == to_lp) {
    // Same LP: schedule directly — no staging, no synchronization. This
    // is also every poster on a 1-LP domain, so the windowed loop runs
    // with zero staged traffic there.
    sim::Simulator* target = &domain_->sim(to_lp);
    return [target, eps](double at, std::function<void()> fn) {
      target->call_at(at + eps, std::move(fn));
    };
  }
  sim::LpDomain* domain = domain_;
  return [domain, to_lp, origin, eps](double at, std::function<void()> fn) {
    domain->post(to_lp, at + eps, origin, std::move(fn));
  };
}

void Machine::freeze_fabric_factors() {
  // Snapshot taken single-threaded (between wiring and the drive phase);
  // drive-phase readers then touch no shared flow state. The snapshot is
  // not refreshed at mid-run disconnects: a run's factors are those of
  // its full wiring, which only matters for queries whose streams end at
  // different times (documented in DESIGN.md §5.9).
  frozen_io_coord_ = io_coordination_factor();
  frozen_mux_.resize(static_cast<std::size_t>(cost_.compute_node_count()));
  for (int r = 0; r < cost_.compute_node_count(); ++r) {
    frozen_mux_[static_cast<std::size_t>(r)] = compute_mux_factor(r);
  }
  frozen_imbalance_.resize(static_cast<std::size_t>(fabric_->host_count()));
  for (int h = 0; h < fabric_->host_count(); ++h) {
    frozen_imbalance_[static_cast<std::size_t>(h)] = fabric_->sender_imbalance_factor(h);
  }
  factors_frozen_ = true;
}

double Machine::sender_imbalance_factor(int host) const {
  if (factors_frozen_) return frozen_imbalance_.at(static_cast<std::size_t>(host));
  return fabric_->sender_imbalance_factor(host);
}

sim::Resource& Machine::cpu_of(const Location& loc) {
  if (loc.cluster == kFrontEnd) return fe_->cpu(loc.node);
  if (loc.cluster == kBackEnd) return be_->cpu(loc.node);
  if (loc.cluster == kBlueGene) return bg_->compute_cpu(loc.node);
  SCSQ_CHECK(false) << "unknown cluster '" << loc.cluster << "'";
  return fe_->cpu(0);
}

const NodeParams& Machine::node_params(const Location& loc) const {
  if (loc.cluster == kBlueGene) return bg_->params();
  if (loc.cluster == kFrontEnd) return fe_->params();
  if (loc.cluster == kBackEnd) return be_->params();
  SCSQ_CHECK(false) << "unknown cluster '" << loc.cluster << "'";
  return fe_->params();
}

int Machine::fabric_host_of(const Location& loc) const {
  if (loc.cluster == kFrontEnd) return fe_->fabric_host(loc.node);
  if (loc.cluster == kBackEnd) return be_->fabric_host(loc.node);
  if (loc.cluster == kBlueGene) return bg_->io_fabric_host(bg_->pset_of(loc.node));
  SCSQ_CHECK(false) << "unknown cluster '" << loc.cluster << "'";
  return 0;
}

void Machine::register_bg_inbound(int rank) {
  bg_inbound_streams_.at(static_cast<std::size_t>(rank)) += 1;
}

void Machine::unregister_bg_inbound(int rank) {
  auto& n = bg_inbound_streams_.at(static_cast<std::size_t>(rank));
  SCSQ_CHECK(n > 0) << "unregister of absent inbound stream at bg rank " << rank;
  n -= 1;
}

double Machine::io_coordination_factor() const {
  if (factors_frozen_) return frozen_io_coord_;
  int senders = fabric_->distinct_senders_to_ionodes();
  if (senders <= 1) return 1.0;
  return 1.0 + cost_.io_coord_coeff * static_cast<double>(senders - 1);
}

transport::FramePool& Machine::pool_of(const Location& loc) {
  if (pools_.size() == 1) return *pools_[0];
  return *pools_[static_cast<std::size_t>(lp_of(loc))];
}

sim::PerfCounters Machine::perf_total() const {
  if (domain_ != nullptr) return domain_->perf_total();
  return sim_->perf();
}

void Machine::publish_metrics() {
  bg_->torus().publish_metrics(metrics_);
  bg_->tree().publish_metrics(metrics_);
  obs::bridge_sim_perf(metrics_, perf_total());
  // Frame recycling health: acquired - reused = frames ever freshly
  // constructed. Flat across steady-state streaming = zero-churn. The
  // unlabeled gauges are exact sums over the per-LP shards.
  std::uint64_t acquired = 0, reused = 0, recycled = 0, free_frames = 0;
  for (const auto& pool : pools_) {
    acquired += pool->acquired();
    reused += pool->reused();
    recycled += pool->recycled();
    free_frames += pool->free_frames();
  }
  metrics_.gauge("transport.frame_pool.acquired", {}).set(static_cast<double>(acquired));
  metrics_.gauge("transport.frame_pool.reused", {}).set(static_cast<double>(reused));
  metrics_.gauge("transport.frame_pool.recycled", {}).set(static_cast<double>(recycled));
  metrics_.gauge("transport.frame_pool.free", {}).set(static_cast<double>(free_frames));
  if (pools_.size() > 1) {
    metrics_.gauge("transport.frame_pool.shards", {}).set(static_cast<double>(pools_.size()));
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      obs::Labels labels{{"lp", std::to_string(i)}};
      metrics_.gauge("transport.frame_pool.shard.acquired", labels)
          .set(static_cast<double>(pools_[i]->acquired()));
      metrics_.gauge("transport.frame_pool.shard.recycled", labels)
          .set(static_cast<double>(pools_[i]->recycled()));
    }
  }
}

void Machine::set_trace(sim::Trace* trace) {
  SCSQ_CHECK(trace == nullptr || domain_ == nullptr || domain_->lp_count() == 1)
      << "tracing needs a single LP: the Trace sink is not thread-safe "
      << "(run with SCSQ_SIM_LPS=1 to record traces)";
  trace_ = trace;
  for (int r = 0; r < bg_->compute_node_count(); ++r) {
    bg_->torus().coproc(r).set_trace(trace);
    bg_->compute_cpu(r).set_trace(trace);
    bg_->tree().compute_ingest(r).set_trace(trace);
  }
  for (int p = 0; p < bg_->pset_count(); ++p) {
    bg_->tree().io_cpu(p).set_trace(trace);
    bg_->tree().tree_link(p).set_trace(trace);
  }
  for (auto* cluster : {fe_.get(), be_.get()}) {
    for (int n = 0; n < cluster->node_count(); ++n) {
      cluster->cpu(n).set_trace(trace);
      fabric_->tx_nic(cluster->fabric_host(n)).set_trace(trace);
      fabric_->rx_nic(cluster->fabric_host(n)).set_trace(trace);
    }
  }
  for (int p = 0; p < bg_->pset_count(); ++p) {
    fabric_->tx_nic(bg_->io_fabric_host(p)).set_trace(trace);
    fabric_->rx_nic(bg_->io_fabric_host(p)).set_trace(trace);
  }
}

double Machine::compute_mux_factor(int rank) const {
  if (factors_frozen_) return frozen_mux_.at(static_cast<std::size_t>(rank));
  int streams = bg_inbound_streams_.at(static_cast<std::size_t>(rank));
  if (streams <= 1) return 1.0;
  return 1.0 + cost_.compute_mux_coeff * static_cast<double>(streams - 1);
}

int LpPartition::lp_of(const Location& loc) const {
  const auto node = static_cast<std::size_t>(loc.node);
  if (loc.cluster == kBlueGene) return bg_compute_lp.at(node);
  if (loc.cluster == kBackEnd) return be_lp.at(node);
  if (loc.cluster == kFrontEnd) return fe_lp.at(node);
  SCSQ_CHECK(false) << "unknown cluster " << loc.cluster;
  return 0;
}

LpPartition make_partition(const CostModel& cost, int lp_count) {
  const int psets = cost.compute_node_count() / cost.pset_size;
  if (lp_count < 1) lp_count = 1;
  // Psets are the unit of partitioning (the tree network must stay
  // inside one LP), so they are also the LP ceiling.
  if (lp_count > psets) lp_count = psets;

  LpPartition part;
  part.lp_count = lp_count;
  part.torus_lookahead_s = cost.torus.min_link_latency();
  part.ethernet_lookahead_s = cost.ethernet.min_link_latency();
  part.tree_lookahead_s = cost.tree.min_link_latency();

  const auto chunk_of = [lp_count](int index, int total) {
    return index * lp_count / total;
  };
  part.bg_compute_lp.resize(static_cast<std::size_t>(cost.compute_node_count()));
  for (int rank = 0; rank < cost.compute_node_count(); ++rank) {
    part.bg_compute_lp[static_cast<std::size_t>(rank)] = chunk_of(cost.pset_of(rank), psets);
  }
  part.bg_io_lp.resize(static_cast<std::size_t>(psets));
  for (int p = 0; p < psets; ++p) {
    part.bg_io_lp[static_cast<std::size_t>(p)] = chunk_of(p, psets);
  }
  part.be_lp.resize(static_cast<std::size_t>(cost.backend_nodes));
  for (int n = 0; n < cost.backend_nodes; ++n) {
    part.be_lp[static_cast<std::size_t>(n)] = chunk_of(n, cost.backend_nodes);
  }
  part.fe_lp.resize(static_cast<std::size_t>(cost.frontend_nodes));
  for (int n = 0; n < cost.frontend_nodes; ++n) {
    part.fe_lp[static_cast<std::size_t>(n)] = chunk_of(n, cost.frontend_nodes);
  }
  return part;
}

int clamp_lp_count(const CostModel& cost, int lp_count) {
  const int psets = cost.compute_node_count() / cost.pset_size;
  if (lp_count < 1) return 1;
  return lp_count > psets ? psets : lp_count;
}

}  // namespace scsq::hw
