// The simulated LOFAR hardware environment (paper Fig. 1): a front-end
// Linux cluster, a back-end Linux cluster, and a BlueGene partition,
// joined by a Gigabit Ethernet fabric. The BlueGene internally has a 3D
// torus between compute nodes and a tree network from each pset's I/O
// node to its compute nodes.
//
// Machine is the single composition root: it owns the simulator-attached
// networks and per-node resources, tracks inbound TCP streams (for the
// I/O coordination and compute-multiplexing factors of Fig. 15), and
// exposes the per-cluster CNDBs used by the coordinators' node
// selection.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/cndb.hpp"
#include "hw/cost_model.hpp"
#include "hw/location.hpp"
#include "net/ethernet.hpp"
#include "obs/metrics.hpp"
#include "net/topology.hpp"
#include "net/torus_net.hpp"
#include "net/tree_net.hpp"
#include "sim/lp_domain.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "transport/frame.hpp"

namespace scsq::hw {

/// A Linux cluster: N dual-CPU hosts on the Ethernet fabric.
/// `node_sim` (optional) places each node's CPU and NIC resources on its
/// owning LP Simulator; empty keeps everything on `sim`.
class LinuxCluster {
 public:
  LinuxCluster(sim::Simulator& sim, net::EthernetFabric& fabric, std::string name,
               int node_count, const NodeParams& params,
               std::function<sim::Simulator&(int)> node_sim = {});

  int node_count() const { return static_cast<int>(cpus_.size()); }
  sim::Resource& cpu(int node) { return *cpus_.at(node); }
  int fabric_host(int node) const { return hosts_.at(node); }
  const NodeParams& params() const { return params_; }
  const std::string& name() const { return name_; }
  Cndb& cndb() { return cndb_; }

 private:
  std::string name_;
  NodeParams params_;
  std::vector<std::unique_ptr<sim::Resource>> cpus_;
  std::vector<int> hosts_;
  Cndb cndb_;
};

/// The BlueGene partition: torus + tree + per-compute-node CPU, plus the
/// fabric hosts of its I/O nodes.
class BlueGene {
 public:
  /// `rank_sim` / `pset_sim` (optional) place per-rank resources (torus
  /// co-processors + outgoing links, compute CPUs, tree ingest) and
  /// per-pset resources (tree I/O CPU + link, I/O-node NICs) on their
  /// owning LP Simulators; empty keeps everything on `sim`.
  BlueGene(sim::Simulator& sim, net::EthernetFabric& fabric, const CostModel& cost,
           std::function<sim::Simulator&(int)> rank_sim = {},
           std::function<sim::Simulator&(int)> pset_sim = {});

  int compute_node_count() const { return static_cast<int>(cpus_.size()); }
  int pset_of(int rank) const { return cndb_.pset_of(rank); }
  int pset_count() const { return static_cast<int>(io_hosts_.size()); }

  net::TorusNetwork& torus() { return *torus_; }
  net::TreeNetwork& tree() { return *tree_; }
  /// The compute CPU of a node (the second CPU is the communication
  /// co-processor owned by TorusNetwork).
  sim::Resource& compute_cpu(int rank) { return *cpus_.at(rank); }
  int io_fabric_host(int pset) const { return io_hosts_.at(pset); }
  const NodeParams& params() const { return params_; }
  Cndb& cndb() { return cndb_; }

 private:
  NodeParams params_;
  std::unique_ptr<net::TorusNetwork> torus_;
  std::unique_ptr<net::TreeNetwork> tree_;
  std::vector<std::unique_ptr<sim::Resource>> cpus_;
  std::vector<int> io_hosts_;
  Cndb cndb_;
};

/// Assignment of the simulated hardware to conservative logical
/// processes (sim/plp.hpp). Psets are kept whole — a pset's compute
/// nodes and its I/O node always share an LP, so the chatty tree network
/// never crosses an LP boundary. The links that do cross boundaries, and
/// therefore bound the channel lookahead, are torus hops between psets
/// and Ethernet transfers between clusters; their strictly positive
/// per-hop latency floors (net/*Params::min_link_latency) are recorded
/// here for the runtime's set_lookahead calls.
struct LpPartition {
  int lp_count = 1;
  double torus_lookahead_s = 0.0;     ///< min torus per-hop latency (pset-to-pset)
  double ethernet_lookahead_s = 0.0;  ///< min LAN transfer latency (cluster-to-bg)
  double tree_lookahead_s = 0.0;      ///< min tree latency (intra-LP by construction)
  std::vector<int> bg_compute_lp;     ///< per compute rank
  std::vector<int> bg_io_lp;          ///< per pset (same LP as its compute nodes)
  std::vector<int> be_lp;             ///< per back-end node
  std::vector<int> fe_lp;             ///< per front-end node

  /// Smallest lookahead of any boundary-crossing link class.
  double min_lookahead_s() const {
    return torus_lookahead_s < ethernet_lookahead_s ? torus_lookahead_s : ethernet_lookahead_s;
  }

  /// The LP owning `loc` (engine RP -> LP affinity).
  int lp_of(const Location& loc) const;
};

/// Partitions the hardware described by `cost` into `lp_count` logical
/// processes (clamped to [1, pset count]): pset p of P maps to LP
/// p*lps/P, its I/O node with it; back-end and front-end nodes are
/// chunked over LPs the same way. Deterministic: depends only on the
/// geometry and lp_count, never on thread count.
LpPartition make_partition(const CostModel& cost, int lp_count);

/// The LP count make_partition would actually use for `lp_count`
/// requested LPs on this geometry (clamped to [1, pset count]). Callers
/// that size an LpDomain before constructing the Machine use this so the
/// domain and the partition agree.
int clamp_lp_count(const CostModel& cost, int lp_count);

class Machine {
 public:
  explicit Machine(sim::Simulator& sim, CostModel cost = CostModel::lofar());

  /// Multi-LP layout: every node's resources are constructed on the LP
  /// Simulator its pset/chunk maps to (make_partition with the domain's
  /// lp_count — size the domain with clamp_lp_count so they agree), the
  /// frame pool is sharded per LP, and the domain's lookahead is set to
  /// the Ethernet per-message overhead — the floor on the latency of
  /// every cross-LP interaction (split TCP links; cross-pset MPI is
  /// refused by the engine when more than one LP drives). A 1-LP domain
  /// behaves exactly like the single-Simulator constructor apart from
  /// using the domain's Simulator 0.
  explicit Machine(sim::LpDomain& domain, CostModel cost = CostModel::lofar());

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Simulator& sim() { return *sim_; }
  const CostModel& cost() const { return cost_; }
  net::EthernetFabric& fabric() { return *fabric_; }
  LinuxCluster& fe() { return *fe_; }
  LinuxCluster& be() { return *be_; }
  BlueGene& bg() { return *bg_; }

  /// True if `cluster` names a known cluster ("fe", "be", "bg").
  bool has_cluster(const std::string& cluster) const;
  Cndb& cndb(const std::string& cluster);
  int node_count(const std::string& cluster) const;

  /// Partitions this machine's topology into `lp_count` logical
  /// processes (see make_partition).
  LpPartition partition(int lp_count) const { return make_partition(cost_, lp_count); }

  // --- Multi-LP layout (LpDomain constructor) ---

  /// The LP domain this machine was laid out over, nullptr for the
  /// single-Simulator constructor.
  sim::LpDomain* domain() { return domain_; }

  /// True when queries drive more than one LP Simulator concurrently —
  /// the condition for split links, deferred metrics and the cross-pset
  /// MPI restriction.
  bool parallel_drive() const { return domain_ != nullptr && domain_->lp_count() > 1; }

  /// The layout partition (lp_count 1 for the single-Simulator ctor).
  const LpPartition& lp_partition() const { return partition_; }

  /// The LP owning `loc` (0 without a domain).
  int lp_of(const Location& loc) const { return partition_.lp_of(loc); }

  /// The Simulator owning `loc`'s resources.
  sim::Simulator& sim_of(const Location& loc);

  /// The Simulator of LP `lp` (the machine's only Simulator without a
  /// domain).
  sim::Simulator& lp_sim(int lp);

  /// A callback poster for events flowing from `from`'s LP to `to`'s LP:
  /// same-LP pairs schedule directly on the target Simulator; cross-LP
  /// pairs stage through the domain's ingress queues under a fresh
  /// origin id (call at wire time — one poster per serialized link
  /// direction). Requires the LpDomain constructor.
  using Poster = std::function<void(double, std::function<void()>)>;
  Poster make_poster(const Location& from, const Location& to);

  // --- Fabric factor snapshot (lookahead-safe coordination factors) ---

  /// Freezes io_coordination_factor(), compute_mux_factor() and the
  /// per-host sender imbalance at their current (post-wiring) values:
  /// reads during the drive phase then touch no shared flow state, which
  /// is what makes them safe from concurrent LPs. The engine calls this
  /// after every statement's streams are wired; thaw_fabric_factors()
  /// returns to live recomputation.
  void freeze_fabric_factors();
  void thaw_fabric_factors() { factors_frozen_ = false; }
  bool fabric_factors_frozen() const { return factors_frozen_; }

  /// Sender-side NIC imbalance factor for a fabric host: the frozen
  /// snapshot when frozen, the fabric's live value otherwise.
  double sender_imbalance_factor(int host) const;

  /// The compute CPU resource an RP at `loc` charges operator work to.
  sim::Resource& cpu_of(const Location& loc);
  /// Node CPU cost parameters at `loc`.
  const NodeParams& node_params(const Location& loc) const;

  /// Fabric host carrying TCP traffic for `loc`: the node's own NIC on
  /// Linux clusters, the pset's I/O node for BlueGene compute nodes
  /// (CNK cannot open sockets; all external traffic goes via the I/O
  /// node, paper §2.1).
  int fabric_host_of(const Location& loc) const;

  // --- Inbound TCP stream tracking (Fig. 15 coordination factors) ---

  /// Registers/unregisters a live inbound TCP stream terminating at
  /// BlueGene compute node `rank`.
  void register_bg_inbound(int rank);
  void unregister_bg_inbound(int rank);

  /// 1 + io_coord_coeff * (distinct external hosts streaming into the
  /// BlueGene - 1).
  double io_coordination_factor() const;

  /// 1 + compute_mux_coeff * (inbound streams at `rank` - 1).
  double compute_mux_factor(int rank) const;

  /// Attaches a trace to the interesting contended resources (BlueGene
  /// co-processors and compute CPUs, I/O-node CPUs, tree links, cluster
  /// CPUs and NICs). Pass nullptr to detach. Busy episodes then appear
  /// on per-resource tracks in the Chrome tracing export. The engine and
  /// transport layer read the attached trace back via trace() to add
  /// stream-process lifecycle instants and frame flow arrows.
  void set_trace(sim::Trace* trace);

  /// The trace attached by set_trace (nullptr when tracing is off).
  sim::Trace* trace() { return trace_; }

  // --- Metrics ---

  /// The environment-wide metrics registry. Always present; instruments
  /// (links, drivers, engine) register labeled counters at wiring time.
  obs::Registry& metrics() { return metrics_; }

  /// The frame recycling pool of LP 0 (the only pool on single-LP
  /// machines — the historical machine-wide pool). Its counters are
  /// published as transport.frame_pool.* — on a steady-state stream,
  /// acquired - reused stays flat: the zero-churn invariant. Multi-LP
  /// machines shard: use pool_of() so each producer acquires from its
  /// own LP's pool.
  transport::FramePool& frame_pool() { return *pools_[0]; }

  /// The frame pool of `loc`'s LP. Frames carry their origin pool, so a
  /// cross-LP consumer recycles into the producer's shard via its
  /// mutex-guarded return mailbox (FramePool shared mode). The
  /// registry's unlabeled transport.frame_pool.* gauges stay exact as
  /// sums over the shards.
  transport::FramePool& pool_of(const Location& loc);
  std::size_t pool_count() const { return pools_.size(); }
  /// The LP `i` shard directly (diagnostics / property tests).
  transport::FramePool& pool(std::size_t i) { return *pools_.at(i); }

  /// Kernel perf counters summed over every LP Simulator (the single
  /// Simulator's counters without a domain).
  sim::PerfCounters perf_total() const;

  /// Publishes the pull-style metrics that are not maintained
  /// incrementally: per-hop torus/tree utilization and busy seconds, and
  /// the simulation kernel's PerfCounters. Call right before
  /// snapshotting the registry (exporters, bench records, \metrics).
  void publish_metrics();

 private:
  void build(sim::Simulator& sim);

  sim::Simulator* sim_;
  CostModel cost_;
  sim::LpDomain* domain_ = nullptr;
  LpPartition partition_;  // lp_count 1 without a domain
  std::unique_ptr<net::EthernetFabric> fabric_;
  std::unique_ptr<LinuxCluster> fe_;
  std::unique_ptr<LinuxCluster> be_;
  std::unique_ptr<BlueGene> bg_;
  std::vector<int> bg_inbound_streams_;  // per compute rank
  // One frame pool per LP (a single pool without a domain); shared mode
  // (cross-thread return mailboxes) is armed only when lp_count > 1.
  std::vector<std::unique_ptr<transport::FramePool>> pools_;
  obs::Registry metrics_;
  sim::Trace* trace_ = nullptr;
  // Frozen fabric coordination factors (freeze_fabric_factors).
  bool factors_frozen_ = false;
  double frozen_io_coord_ = 1.0;
  std::vector<double> frozen_mux_;        // per compute rank
  std::vector<double> frozen_imbalance_;  // per fabric host
};

}  // namespace scsq::hw
