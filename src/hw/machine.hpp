// The simulated LOFAR hardware environment (paper Fig. 1): a front-end
// Linux cluster, a back-end Linux cluster, and a BlueGene partition,
// joined by a Gigabit Ethernet fabric. The BlueGene internally has a 3D
// torus between compute nodes and a tree network from each pset's I/O
// node to its compute nodes.
//
// Machine is the single composition root: it owns the simulator-attached
// networks and per-node resources, tracks inbound TCP streams (for the
// I/O coordination and compute-multiplexing factors of Fig. 15), and
// exposes the per-cluster CNDBs used by the coordinators' node
// selection.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/cndb.hpp"
#include "hw/cost_model.hpp"
#include "hw/location.hpp"
#include "net/ethernet.hpp"
#include "obs/metrics.hpp"
#include "net/topology.hpp"
#include "net/torus_net.hpp"
#include "net/tree_net.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "transport/frame.hpp"

namespace scsq::hw {

/// A Linux cluster: N dual-CPU hosts on the Ethernet fabric.
class LinuxCluster {
 public:
  LinuxCluster(sim::Simulator& sim, net::EthernetFabric& fabric, std::string name,
               int node_count, const NodeParams& params);

  int node_count() const { return static_cast<int>(cpus_.size()); }
  sim::Resource& cpu(int node) { return *cpus_.at(node); }
  int fabric_host(int node) const { return hosts_.at(node); }
  const NodeParams& params() const { return params_; }
  const std::string& name() const { return name_; }
  Cndb& cndb() { return cndb_; }

 private:
  std::string name_;
  NodeParams params_;
  std::vector<std::unique_ptr<sim::Resource>> cpus_;
  std::vector<int> hosts_;
  Cndb cndb_;
};

/// The BlueGene partition: torus + tree + per-compute-node CPU, plus the
/// fabric hosts of its I/O nodes.
class BlueGene {
 public:
  BlueGene(sim::Simulator& sim, net::EthernetFabric& fabric, const CostModel& cost);

  int compute_node_count() const { return static_cast<int>(cpus_.size()); }
  int pset_of(int rank) const { return cndb_.pset_of(rank); }
  int pset_count() const { return static_cast<int>(io_hosts_.size()); }

  net::TorusNetwork& torus() { return *torus_; }
  net::TreeNetwork& tree() { return *tree_; }
  /// The compute CPU of a node (the second CPU is the communication
  /// co-processor owned by TorusNetwork).
  sim::Resource& compute_cpu(int rank) { return *cpus_.at(rank); }
  int io_fabric_host(int pset) const { return io_hosts_.at(pset); }
  const NodeParams& params() const { return params_; }
  Cndb& cndb() { return cndb_; }

 private:
  NodeParams params_;
  std::unique_ptr<net::TorusNetwork> torus_;
  std::unique_ptr<net::TreeNetwork> tree_;
  std::vector<std::unique_ptr<sim::Resource>> cpus_;
  std::vector<int> io_hosts_;
  Cndb cndb_;
};

/// Assignment of the simulated hardware to conservative logical
/// processes (sim/plp.hpp). Psets are kept whole — a pset's compute
/// nodes and its I/O node always share an LP, so the chatty tree network
/// never crosses an LP boundary. The links that do cross boundaries, and
/// therefore bound the channel lookahead, are torus hops between psets
/// and Ethernet transfers between clusters; their strictly positive
/// per-hop latency floors (net/*Params::min_link_latency) are recorded
/// here for the runtime's set_lookahead calls.
struct LpPartition {
  int lp_count = 1;
  double torus_lookahead_s = 0.0;     ///< min torus per-hop latency (pset-to-pset)
  double ethernet_lookahead_s = 0.0;  ///< min LAN transfer latency (cluster-to-bg)
  double tree_lookahead_s = 0.0;      ///< min tree latency (intra-LP by construction)
  std::vector<int> bg_compute_lp;     ///< per compute rank
  std::vector<int> bg_io_lp;          ///< per pset (same LP as its compute nodes)
  std::vector<int> be_lp;             ///< per back-end node
  std::vector<int> fe_lp;             ///< per front-end node

  /// Smallest lookahead of any boundary-crossing link class.
  double min_lookahead_s() const {
    return torus_lookahead_s < ethernet_lookahead_s ? torus_lookahead_s : ethernet_lookahead_s;
  }

  /// The LP owning `loc` (engine RP -> LP affinity).
  int lp_of(const Location& loc) const;
};

/// Partitions the hardware described by `cost` into `lp_count` logical
/// processes (clamped to [1, pset count]): pset p of P maps to LP
/// p*lps/P, its I/O node with it; back-end and front-end nodes are
/// chunked over LPs the same way. Deterministic: depends only on the
/// geometry and lp_count, never on thread count.
LpPartition make_partition(const CostModel& cost, int lp_count);

class Machine {
 public:
  explicit Machine(sim::Simulator& sim, CostModel cost = CostModel::lofar());

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Simulator& sim() { return *sim_; }
  const CostModel& cost() const { return cost_; }
  net::EthernetFabric& fabric() { return *fabric_; }
  LinuxCluster& fe() { return *fe_; }
  LinuxCluster& be() { return *be_; }
  BlueGene& bg() { return *bg_; }

  /// True if `cluster` names a known cluster ("fe", "be", "bg").
  bool has_cluster(const std::string& cluster) const;
  Cndb& cndb(const std::string& cluster);
  int node_count(const std::string& cluster) const;

  /// Partitions this machine's topology into `lp_count` logical
  /// processes (see make_partition).
  LpPartition partition(int lp_count) const { return make_partition(cost_, lp_count); }

  /// The compute CPU resource an RP at `loc` charges operator work to.
  sim::Resource& cpu_of(const Location& loc);
  /// Node CPU cost parameters at `loc`.
  const NodeParams& node_params(const Location& loc) const;

  /// Fabric host carrying TCP traffic for `loc`: the node's own NIC on
  /// Linux clusters, the pset's I/O node for BlueGene compute nodes
  /// (CNK cannot open sockets; all external traffic goes via the I/O
  /// node, paper §2.1).
  int fabric_host_of(const Location& loc) const;

  // --- Inbound TCP stream tracking (Fig. 15 coordination factors) ---

  /// Registers/unregisters a live inbound TCP stream terminating at
  /// BlueGene compute node `rank`.
  void register_bg_inbound(int rank);
  void unregister_bg_inbound(int rank);

  /// 1 + io_coord_coeff * (distinct external hosts streaming into the
  /// BlueGene - 1).
  double io_coordination_factor() const;

  /// 1 + compute_mux_coeff * (inbound streams at `rank` - 1).
  double compute_mux_factor(int rank) const;

  /// Attaches a trace to the interesting contended resources (BlueGene
  /// co-processors and compute CPUs, I/O-node CPUs, tree links, cluster
  /// CPUs and NICs). Pass nullptr to detach. Busy episodes then appear
  /// on per-resource tracks in the Chrome tracing export. The engine and
  /// transport layer read the attached trace back via trace() to add
  /// stream-process lifecycle instants and frame flow arrows.
  void set_trace(sim::Trace* trace);

  /// The trace attached by set_trace (nullptr when tracing is off).
  sim::Trace* trace() { return trace_; }

  // --- Metrics ---

  /// The environment-wide metrics registry. Always present; instruments
  /// (links, drivers, engine) register labeled counters at wiring time.
  obs::Registry& metrics() { return metrics_; }

  /// The machine-wide frame recycling pool shared by every sender/
  /// receiver pair the engine wires up (the simulation is single-
  /// threaded, so one pool serves all simulated nodes). Its counters are
  /// published as transport.frame_pool.* — on a steady-state stream,
  /// acquired - reused stays flat: the zero-churn invariant.
  transport::FramePool& frame_pool() { return frame_pool_; }

  /// Publishes the pull-style metrics that are not maintained
  /// incrementally: per-hop torus/tree utilization and busy seconds, and
  /// the simulation kernel's PerfCounters. Call right before
  /// snapshotting the registry (exporters, bench records, \metrics).
  void publish_metrics();

 private:
  sim::Simulator* sim_;
  CostModel cost_;
  std::unique_ptr<net::EthernetFabric> fabric_;
  std::unique_ptr<LinuxCluster> fe_;
  std::unique_ptr<LinuxCluster> be_;
  std::unique_ptr<BlueGene> bg_;
  std::vector<int> bg_inbound_streams_;  // per compute rank
  transport::FramePool frame_pool_;
  obs::Registry metrics_;
  sim::Trace* trace_ = nullptr;
};

}  // namespace scsq::hw
