#include "lroad/workload.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace scsq::lroad {

std::vector<Report> generate_reports(const WorkloadParams& p) {
  SCSQ_CHECK(p.vehicles >= 1 && p.segments >= 1 && p.ticks >= 1) << "bad workload params";
  util::Rng rng(p.seed);

  struct Vehicle {
    double position;   // miles
    double preferred;  // mph
    bool stopped = false;
  };
  std::vector<Vehicle> fleet;
  fleet.reserve(static_cast<std::size_t>(p.vehicles));
  for (int v = 0; v < p.vehicles; ++v) {
    Vehicle veh;
    veh.position = rng.uniform(0.0, p.road_miles);
    veh.preferred = rng.uniform(p.min_speed, p.max_speed);
    fleet.push_back(veh);
  }

  const double seg_len = p.road_miles / p.segments;
  auto segment_of = [&](double pos) {
    double wrapped = pos - p.road_miles * std::floor(pos / p.road_miles);
    int seg = static_cast<int>(wrapped / seg_len);
    return std::min(seg, p.segments - 1);
  };

  std::vector<Report> out;
  out.reserve(static_cast<std::size_t>(p.vehicles) * static_cast<std::size_t>(p.ticks));
  int crashed_a = -1, crashed_b = -1;

  for (int t = 0; t < p.ticks; ++t) {
    // Script the accident: two random vehicles stop where they are.
    if (t == p.accident_start_tick && p.vehicles >= 2) {
      crashed_a = static_cast<int>(rng.uniform_int(0, p.vehicles - 1));
      do {
        crashed_b = static_cast<int>(rng.uniform_int(0, p.vehicles - 1));
      } while (crashed_b == crashed_a);
      fleet[static_cast<std::size_t>(crashed_a)].stopped = true;
      fleet[static_cast<std::size_t>(crashed_b)].stopped = true;
    }
    if (p.accident_start_tick >= 0 && t == p.accident_start_tick + p.accident_duration_ticks) {
      if (crashed_a >= 0) fleet[static_cast<std::size_t>(crashed_a)].stopped = false;
      if (crashed_b >= 0) fleet[static_cast<std::size_t>(crashed_b)].stopped = false;
    }

    // Congestion per segment for the slowdown rule: segments with a
    // stopped vehicle force traffic down to crawling speed.
    std::set<int> blocked;
    for (std::size_t v = 0; v < fleet.size(); ++v) {
      if (fleet[v].stopped) blocked.insert(segment_of(fleet[v].position));
    }

    for (int v = 0; v < p.vehicles; ++v) {
      auto& veh = fleet[static_cast<std::size_t>(v)];
      const int seg = segment_of(veh.position);
      double speed;
      if (veh.stopped) {
        speed = 0.0;
      } else if (blocked.contains(seg)) {
        speed = std::min(veh.preferred, 10.0);  // crawl through the accident segment
      } else {
        // Small per-tick speed wobble around the preferred speed.
        speed = std::clamp(veh.preferred + rng.normal(0.0, 1.5), p.min_speed * 0.5,
                           p.max_speed);
      }
      out.push_back(Report{t * p.tick_seconds, v, speed, seg});
      veh.position += speed * p.tick_seconds / 3600.0;
    }
  }
  return out;
}

std::vector<double> encode_tick(const std::vector<Report>& tick_reports) {
  std::vector<double> out;
  out.reserve(tick_reports.size() * 4);
  for (const auto& r : tick_reports) {
    out.push_back(r.time);
    out.push_back(static_cast<double>(r.vehicle));
    out.push_back(r.speed);
    out.push_back(static_cast<double>(r.segment));
  }
  return out;
}

std::vector<Report> decode_reports(const std::vector<double>& data) {
  SCSQ_CHECK(data.size() % 4 == 0) << "report array length must be a multiple of 4";
  std::vector<Report> out;
  out.reserve(data.size() / 4);
  for (std::size_t i = 0; i < data.size(); i += 4) {
    Report r;
    r.time = data[i];
    r.vehicle = static_cast<int>(data[i + 1]);
    r.speed = data[i + 2];
    r.segment = static_cast<int>(data[i + 3]);
    out.push_back(r);
  }
  return out;
}

std::vector<std::vector<double>> encode_trace(const WorkloadParams& params) {
  auto reports = generate_reports(params);
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(params.ticks));
  std::size_t i = 0;
  for (int t = 0; t < params.ticks; ++t) {
    std::vector<Report> tick;
    while (i < reports.size() && reports[i].time <= t * params.tick_seconds + 1e-9 &&
           static_cast<int>(reports[i].time / params.tick_seconds + 0.5) == t) {
      tick.push_back(reports[i]);
      ++i;
    }
    out.push_back(encode_tick(tick));
  }
  SCSQ_CHECK(i == reports.size()) << "trace batching lost reports";
  return out;
}

std::vector<std::pair<int, double>> oracle_lav(const std::vector<Report>& reports,
                                               int window_ticks, double tick_seconds) {
  if (reports.empty()) return {};
  double t_max = 0;
  for (const auto& r : reports) t_max = std::max(t_max, r.time);
  const double cutoff = t_max - window_ticks * tick_seconds + 1e-9;
  std::map<int, std::pair<double, int>> acc;  // segment -> (speed sum, count)
  for (const auto& r : reports) {
    if (r.time <= cutoff) continue;
    auto& [sum, count] = acc[r.segment];
    sum += r.speed;
    count += 1;
  }
  std::vector<std::pair<int, double>> out;
  for (const auto& [seg, sc] : acc) out.emplace_back(seg, sc.first / sc.second);
  return out;
}

std::vector<std::pair<int, double>> oracle_tolls(const std::vector<Report>& reports,
                                                 const TollParams& params,
                                                 double tick_seconds) {
  if (reports.empty()) return {};
  double t_max = 0;
  for (const auto& r : reports) t_max = std::max(t_max, r.time);
  const double cutoff = t_max - params.window_ticks * tick_seconds + 1e-9;
  std::map<int, std::pair<double, int>> speed_acc;
  std::map<int, std::set<int>> vehicles_in;
  for (const auto& r : reports) {
    if (r.time <= cutoff) continue;
    auto& [sum, count] = speed_acc[r.segment];
    sum += r.speed;
    count += 1;
    vehicles_in[r.segment].insert(r.vehicle);
  }
  std::vector<std::pair<int, double>> out;
  for (const auto& [seg, sc] : speed_acc) {
    const double lav = sc.first / sc.second;
    const int nv = static_cast<int>(vehicles_in[seg].size());
    if (lav < params.lav_threshold && nv > params.free_vehicles) {
      const double excess = nv - params.free_vehicles;
      out.emplace_back(seg, params.base_toll * excess * excess);
    }
  }
  return out;
}

std::vector<int> oracle_accidents(const std::vector<Report>& reports, int stopped_ticks) {
  // Per vehicle, find runs of consecutive zero-speed reports.
  std::map<int, std::vector<Report>> by_vehicle;
  for (const auto& r : reports) by_vehicle[r.vehicle].push_back(r);
  std::set<int> segs;
  for (auto& [vid, rs] : by_vehicle) {
    std::sort(rs.begin(), rs.end(),
              [](const Report& a, const Report& b) { return a.time < b.time; });
    int run = 0;
    for (const auto& r : rs) {
      run = (r.speed == 0.0) ? run + 1 : 0;
      if (run >= stopped_ticks) segs.insert(r.segment);
    }
  }
  return {segs.begin(), segs.end()};
}

}  // namespace scsq::lroad
