// Linear-Road-inspired traffic workload (paper §5: "further measurements
// could be made using benchmarks such as The Linear Road Benchmark").
//
// This is a deliberately scaled-down cousin of Linear Road [Arasu et al.,
// VLDB 2004]: one expressway, one direction, fixed-length segments.
// Vehicles drive at per-vehicle preferred speeds, slow down behind
// congestion, and an optional scripted accident stops two vehicles for a
// stretch of ticks, congesting their segment. The generator is fully
// deterministic given a seed, so distributed query results can be
// validated against local oracles.
//
// Position reports are encoded into flat numeric arrays (DArray) of
// [time, vehicle, speed, segment] quadruples — the stream payload our
// drivers carry natively.
#pragma once

#include <cstdint>
#include <vector>

namespace scsq::lroad {

struct Report {
  double time = 0;    // seconds since start
  int vehicle = 0;
  double speed = 0;   // mph
  int segment = 0;
  bool operator==(const Report&) const = default;
};

struct WorkloadParams {
  int vehicles = 50;
  int segments = 10;
  int ticks = 60;            // one report per vehicle per tick
  double tick_seconds = 1.0;
  double road_miles = 10.0;  // total length; segments are uniform
  double min_speed = 30.0;
  double max_speed = 70.0;
  /// Scripted accident: two vehicles stop in whatever segment they are
  /// in at accident_start, for accident_duration ticks. -1 disables.
  int accident_start_tick = -1;
  int accident_duration_ticks = 10;
  std::uint64_t seed = 1;
};

/// Generates the full deterministic report trace, tick-major (all
/// reports of tick 0, then tick 1, ...).
std::vector<Report> generate_reports(const WorkloadParams& params);

/// Encodes one tick's reports as a flat array [t, vid, speed, seg]*.
std::vector<double> encode_tick(const std::vector<Report>& tick_reports);

/// Decodes a flat array back into reports (inverse of encode_tick).
std::vector<Report> decode_reports(const std::vector<double>& data);

/// Batches the full trace into per-tick encoded arrays — the stream a
/// source SP emits.
std::vector<std::vector<double>> encode_trace(const WorkloadParams& params);

// --- Reference (oracle) implementations, batch-computed ---
// The streaming operators in plan/lroad_ops are independent incremental
// implementations; tests check they agree with these.

/// Latest average speed per segment: mean speed over the final
/// `window_ticks` ticks, per segment (segments with no reports omitted).
std::vector<std::pair<int, double>> oracle_lav(const std::vector<Report>& reports,
                                               int window_ticks, double tick_seconds);

/// Simplified LRB toll: for each segment, if its LAV < 40 mph and it had
/// more than `free_vehicles` distinct vehicles in the LAV window, toll =
/// base * (count - free_vehicles)^2; otherwise 0. Only nonzero tolls are
/// returned.
struct TollParams {
  int window_ticks = 5;
  double lav_threshold = 40.0;
  int free_vehicles = 5;
  double base_toll = 2.0;
};
std::vector<std::pair<int, double>> oracle_tolls(const std::vector<Report>& reports,
                                                 const TollParams& params,
                                                 double tick_seconds);

/// Accident detection: segments where some vehicle reported speed 0 for
/// at least `stopped_ticks` consecutive ticks.
std::vector<int> oracle_accidents(const std::vector<Report>& reports, int stopped_ticks);

}  // namespace scsq::lroad
