#include "net/ethernet.hpp"

#include <algorithm>
#include <set>

namespace scsq::net {

EthernetFabric::EthernetFabric(sim::Simulator& sim, EthernetParams params)
    : sim_(&sim), params_(params) {}

int EthernetFabric::add_host(std::string name, bool is_ionode, sim::Simulator* sim) {
  Host h;
  h.name = std::move(name);
  h.is_ionode = is_ionode;
  sim::Simulator& owner = sim ? *sim : *sim_;
  h.tx = std::make_unique<sim::Resource>(owner, 1, h.name + ".tx");
  h.rx = std::make_unique<sim::Resource>(owner, 1, h.name + ".rx");
  hosts_.push_back(std::move(h));
  return static_cast<int>(hosts_.size()) - 1;
}

FlowId EthernetFabric::open_flow(int src, int dst) {
  SCSQ_CHECK(src >= 0 && src < host_count()) << "bad src host " << src;
  SCSQ_CHECK(dst >= 0 && dst < host_count()) << "bad dst host " << dst;
  std::lock_guard<std::mutex> lock(flows_mu_);
  FlowId id = next_flow_++;
  flows_[id] = Flow{src, dst};
  hosts_[dst].inbound_flows += 1;
  return id;
}

void EthernetFabric::close_flow(FlowId id) {
  std::lock_guard<std::mutex> lock(flows_mu_);
  auto it = flows_.find(id);
  SCSQ_CHECK(it != flows_.end()) << "close of unknown flow " << id;
  hosts_[it->second.dst].inbound_flows -= 1;
  flows_.erase(it);
}

int EthernetFabric::distinct_senders_to_ionodes() const {
  std::lock_guard<std::mutex> lock(flows_mu_);
  std::set<int> senders;
  for (const auto& [id, flow] : flows_) {
    if (hosts_[flow.dst].is_ionode) senders.insert(flow.src);
  }
  return static_cast<int>(senders.size());
}

double EthernetFabric::sender_imbalance_factor(int src) const {
  std::lock_guard<std::mutex> lock(flows_mu_);
  // Destinations this source currently feeds.
  std::set<int> dsts;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == src) dsts.insert(flow.dst);
  }
  if (dsts.size() < 2) return 1.0;
  int lo = INT32_MAX, hi = 0;
  for (int d : dsts) {
    lo = std::min(lo, hosts_[d].inbound_flows);
    hi = std::max(hi, hosts_[d].inbound_flows);
  }
  return 1.0 + params_.imbalance_coeff * static_cast<double>(hi - lo);
}

sim::Task<void> EthernetFabric::transfer(FlowId id, std::uint64_t bytes) {
  int src = -1;
  int dst = -1;
  {
    std::lock_guard<std::mutex> lock(flows_mu_);
    auto it = flows_.find(id);
    SCSQ_CHECK(it != flows_.end()) << "transfer on unknown flow " << id;
    src = it->second.src;
    dst = it->second.dst;
  }

  const double wire = wire_time(bytes);
  // Sender NIC: per-message overhead plus wire time, inflated by the
  // head-of-line imbalance factor (evaluated per message so it tracks
  // flows opening/closing during a run).
  const double tx_time =
      params_.per_message_overhead_s + wire * sender_imbalance_factor(src);
  co_await tx_nic(src).use(tx_time);
  // Receiver NIC: wire time (the switch is non-blocking; GigE ports are
  // the contended points).
  co_await rx_nic(dst).use(wire);
}

}  // namespace scsq::net
