// Gigabit Ethernet fabric with a TCP throughput model and a flow
// registry (the cluster↔cluster transport of the paper's Fig. 1).
//
// Hosts (back-end nodes, front-end nodes, BlueGene I/O nodes) each own a
// full-duplex NIC modeled as two FIFO resources (tx and rx) held for the
// wire time of each message. TCP protocol overhead is a goodput
// efficiency factor (~0.94 for GigE with standard frames).
//
// Two empirically-motivated penalties reproduce the coordination effects
// the paper reports for Fig. 15 ("coordination problems in the I/O node
// when communicating with many outside nodes"; the n=5 dip for Query 5):
//  * sender imbalance: when one host feeds several receivers whose
//    inbound flow counts are uneven (Query 5 with n=5 streams over 4 I/O
//    nodes), head-of-line blocking among its TCP connections reduces the
//    sender NIC's effective rate by 1/(1 + imbalance_coeff * (max-min));
//  * the global distinct-sender count is exposed so the I/O-node
//    forwarding path (see hw::Machine) can scale its per-byte cost — one
//    back-end sender (Query 5) streams faster than several (Query 6).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace scsq::net {

struct EthernetParams {
  double nic_bandwidth_Bps = 125e6;      // 1 Gbit/s
  double tcp_efficiency = 0.94;          // goodput fraction after TCP/IP overhead
  double per_message_overhead_s = 20e-6; // per stream-buffer syscall + segmentation
  double imbalance_coeff = 0.17;         // sender NIC penalty per unit flow imbalance

  /// Lower bound on the latency of any Ethernet transfer: the
  /// per-message syscall overhead plus one byte of goodput. Strictly
  /// positive — the conservative parallel runtime (sim/plp.hpp) uses it
  /// as the lookahead of LP channels that cross the LAN.
  double min_link_latency() const {
    return per_message_overhead_s + 1.0 / (nic_bandwidth_Bps * tcp_efficiency);
  }
};

using FlowId = std::uint64_t;

class EthernetFabric {
 public:
  EthernetFabric(sim::Simulator& sim, EthernetParams params);

  EthernetFabric(const EthernetFabric&) = delete;
  EthernetFabric& operator=(const EthernetFabric&) = delete;

  /// Registers a host; returns its id. `is_ionode` marks BlueGene I/O
  /// nodes, which participate in the distinct-sender coordination count.
  /// `sim` (optional) places the host's NIC resources on a specific LP
  /// Simulator — multi-LP machines pass the host's owning LP; nullptr
  /// keeps the fabric's construction Simulator (single-LP layout).
  int add_host(std::string name, bool is_ionode = false,
               sim::Simulator* sim = nullptr);
  int host_count() const { return static_cast<int>(hosts_.size()); }
  const std::string& host_name(int host) const { return hosts_.at(host).name; }

  /// Opens a TCP connection from `src` to `dst`; must be closed again.
  FlowId open_flow(int src, int dst);
  void close_flow(FlowId id);

  /// Transfers one message over an open flow; completes when the
  /// destination NIC has received all bytes. Per-flow ordering holds
  /// because NIC resources are FIFO.
  sim::Task<void> transfer(FlowId id, std::uint64_t bytes);

  /// Number of distinct source hosts with open flows into I/O-node
  /// hosts (drives the I/O forwarding coordination factor in hw).
  int distinct_senders_to_ionodes() const;

  /// Open flows into a given host.
  int flows_into(int host) const {
    std::lock_guard<std::mutex> lock(flows_mu_);
    return hosts_.at(host).inbound_flows;
  }

  /// Sender-side imbalance factor for `src` (>= 1): grows when the hosts
  /// it sends to have uneven inbound flow counts.
  double sender_imbalance_factor(int src) const;

  sim::Resource& tx_nic(int host) { return *hosts_.at(host).tx; }
  sim::Resource& rx_nic(int host) { return *hosts_.at(host).rx; }

  const EthernetParams& params() const { return params_; }

  /// Wire time for `bytes` at TCP goodput rate (before penalty factors).
  double wire_time(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / (params_.nic_bandwidth_Bps * params_.tcp_efficiency);
  }

 private:
  struct Host {
    std::string name;
    bool is_ionode = false;
    int inbound_flows = 0;
    std::unique_ptr<sim::Resource> tx;
    std::unique_ptr<sim::Resource> rx;
  };
  struct Flow {
    int src = -1;
    int dst = -1;
  };

  sim::Simulator* sim_;
  EthernetParams params_;
  std::vector<Host> hosts_;
  // Flow registry. On multi-LP machines flows close from whichever LP
  // thread observes a stream's EOS, so the registry (and the per-host
  // inbound counts it maintains) is mutex-guarded; single-LP machines
  // pay one uncontended lock per flow event, never per byte.
  mutable std::mutex flows_mu_;
  std::map<FlowId, Flow> flows_;
  FlowId next_flow_ = 1;
};

}  // namespace scsq::net
