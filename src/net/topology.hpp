// 3D torus topology mathematics (pure, no simulation state).
//
// The BlueGene/L interconnect is a 3D torus; the paper's Fig. 7
// placements depend on node ranks mapping to torus coordinates and on
// messages between non-adjacent nodes being "routed through the
// communication co-processors of the nodes in between". We use the
// standard X-then-Y-then-Z dimension-ordered routing with shortest wrap
// direction per dimension (ties broken toward decreasing coordinate, so
// rank 2 -> rank 0 passes through rank 1 as in the paper's Fig. 7A),
// matching BlueGene's deterministic routing mode.
#pragma once

#include <array>
#include <vector>

#include "util/logging.hpp"

namespace scsq::net {

struct TorusCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const TorusCoord&) const = default;
};

class Torus3D {
 public:
  Torus3D(int dim_x, int dim_y, int dim_z) : dims_{dim_x, dim_y, dim_z} {
    SCSQ_CHECK(dim_x >= 1 && dim_y >= 1 && dim_z >= 1) << "bad torus dims";
  }

  int node_count() const { return dims_[0] * dims_[1] * dims_[2]; }
  int dim(int axis) const { return dims_.at(axis); }

  /// Rank layout: x varies fastest (rank = x + dx*(y + dy*z)), so ranks
  /// 0,1,2 lie along a line in X (the paper's "sequential" placement) and
  /// rank dx is the Y-neighbor of rank 0 (the "balanced" placement).
  TorusCoord coord_of(int rank) const {
    SCSQ_CHECK(rank >= 0 && rank < node_count()) << "rank out of range: " << rank;
    TorusCoord c;
    c.x = rank % dims_[0];
    c.y = (rank / dims_[0]) % dims_[1];
    c.z = rank / (dims_[0] * dims_[1]);
    return c;
  }

  int rank_of(TorusCoord c) const {
    SCSQ_CHECK(c.x >= 0 && c.x < dims_[0] && c.y >= 0 && c.y < dims_[1] && c.z >= 0 &&
               c.z < dims_[2])
        << "coord out of range";
    return c.x + dims_[0] * (c.y + dims_[1] * c.z);
  }

  /// Signed shortest step (-1, 0 or +1 direction) and distance along one
  /// axis with wraparound.
  int axis_distance(int from, int to, int axis) const {
    int d = dims_[axis];
    int fwd = ((to - from) % d + d) % d;
    int bwd = d - fwd;
    return fwd <= bwd ? fwd : bwd;
  }

  /// Minimal hop count between two ranks.
  int hop_distance(int a, int b) const {
    TorusCoord ca = coord_of(a), cb = coord_of(b);
    return axis_distance(ca.x, cb.x, 0) + axis_distance(ca.y, cb.y, 1) +
           axis_distance(ca.z, cb.z, 2);
  }

  /// Dimension-ordered route from a to b, inclusive of both endpoints.
  /// route(a, a) == {a}.
  std::vector<int> route(int a, int b) const {
    std::vector<int> path;
    TorusCoord cur = coord_of(a);
    TorusCoord dst = coord_of(b);
    path.push_back(a);
    auto walk_axis = [&](int axis, int& cur_v, int dst_v) {
      int d = dims_[axis];
      int fwd = ((dst_v - cur_v) % d + d) % d;
      int bwd = d - fwd;
      int step = (fwd < bwd) ? 1 : -1;
      int n = std::min(fwd, bwd);
      if (fwd == 0) n = 0;
      for (int i = 0; i < n; ++i) {
        cur_v = ((cur_v + step) % d + d) % d;
        path.push_back(rank_of(cur));
      }
    };
    walk_axis(0, cur.x, dst.x);
    walk_axis(1, cur.y, dst.y);
    walk_axis(2, cur.z, dst.z);
    SCSQ_CHECK(path.back() == b) << "routing error " << a << "->" << b;
    return path;
  }

 private:
  std::array<int, 3> dims_;
};

}  // namespace scsq::net
