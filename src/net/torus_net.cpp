#include "net/torus_net.hpp"

#include <algorithm>
#include <cmath>

namespace scsq::net {

TorusNetwork::TorusNetwork(sim::Simulator& sim, Torus3D topology, TorusParams params,
                           std::function<sim::Simulator&(int)> node_sim)
    : sim_(&sim), topology_(topology), params_(params), node_sim_(std::move(node_sim)) {
  const int n = topology_.node_count();
  coprocs_.reserve(n);
  for (int i = 0; i < n; ++i) {
    coprocs_.push_back(std::make_unique<sim::Resource>(this->node_sim(i), 1,
                                                       "coproc" + std::to_string(i)));
  }
  inbound_streams_.assign(n, 0);
  tx_.assign(static_cast<std::size_t>(n), TxCounters{});
  switch_seconds_by_dst_.assign(static_cast<std::size_t>(n), 0.0);
}

std::uint32_t TorusNetwork::packets_for(std::uint64_t payload_bytes) const {
  if (payload_bytes == 0) return 1;  // control messages still cost a packet
  return static_cast<std::uint32_t>((payload_bytes + params_.packet_bytes - 1) /
                                    params_.packet_bytes);
}

double TorusNetwork::wire_time(std::uint64_t payload_bytes) const {
  // A partially filled final packet occupies a full packet slot.
  return static_cast<double>(packets_for(payload_bytes)) * params_.packet_bytes /
         params_.link_bandwidth_Bps;
}

double TorusNetwork::effective_wire_time(std::uint64_t payload_bytes) const {
  const double cf = cache_factor(payload_bytes);
  const double ramp = (cf - 1.0) / (params_.cache_max_factor - 1.0 + 1e-300);
  return wire_time(payload_bytes) * (1.0 + params_.memory_slowdown_max * ramp);
}

double TorusNetwork::cache_factor(std::uint64_t payload_bytes) const {
  if (payload_bytes <= params_.cache_knee_bytes) return 1.0;
  double octaves = std::log2(static_cast<double>(payload_bytes) /
                             static_cast<double>(params_.cache_knee_bytes));
  double ramp = std::min(1.0, octaves / params_.cache_ramp_octaves);
  return 1.0 + (params_.cache_max_factor - 1.0) * ramp;
}

sim::Resource& TorusNetwork::link(int from, int to) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(from) * static_cast<std::uint64_t>(topology_.node_count()) +
      static_cast<std::uint64_t>(to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, std::make_unique<sim::Resource>(
                               node_sim(from), 1,
                               "link" + std::to_string(from) + "->" + std::to_string(to)))
             .first;
  }
  return *it->second;
}

void TorusNetwork::prewarm_route(int from, int to) {
  const auto route = topology_.route(from, to);
  sim::Simulator& owner = node_sim(from);
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    SCSQ_CHECK(&node_sim(route[i]) == &owner && &node_sim(route[i + 1]) == &owner)
        << "torus route " << from << "->" << to << " leaves its LP at hop "
        << route[i] << "->" << route[i + 1]
        << " — the partition must keep routes inside one pset";
    link(route[i], route[i + 1]);
  }
}

void TorusNetwork::register_inbound_stream(int node) {
  inbound_streams_.at(node) += 1;
}

void TorusNetwork::unregister_inbound_stream(int node) {
  auto& n = inbound_streams_.at(node);
  SCSQ_CHECK(n > 0) << "unregister of absent inbound stream at node " << node;
  n -= 1;
}

double TorusNetwork::switch_seconds() const {
  double total = 0.0;
  for (double s : switch_seconds_by_dst_) total += s;
  return total;
}

void TorusNetwork::publish_metrics(obs::Registry& registry) const {
  TxCounters total;
  for (const auto& t : tx_) {
    total.messages += t.messages;
    total.packets += t.packets;
    total.rendezvous_messages += t.rendezvous_messages;
    total.payload_bytes += t.payload_bytes;
  }
  registry.counter("torus.messages").set_total(total.messages);
  registry.counter("torus.packets").set_total(total.packets);
  registry.counter("torus.rendezvous_messages").set_total(total.rendezvous_messages);
  registry.counter("torus.payload_bytes").set_total(total.payload_bytes);
  registry.gauge("torus.coproc.switch_s").set(switch_seconds());
  const int n = topology_.node_count();
  for (const auto& [key, link] : links_) {
    // Prewarmed-but-idle links would flood the snapshot with zero rows
    // (and make it depend on the LP count); publish used links only.
    if (link->busy_seconds() <= 0.0) continue;
    const int from = static_cast<int>(key / static_cast<std::uint64_t>(n));
    const int to = static_cast<int>(key % static_cast<std::uint64_t>(n));
    obs::Labels labels{{"from", std::to_string(from)}, {"to", std::to_string(to)}};
    registry.gauge("torus.link.busy_s", labels).set(link->busy_seconds());
    registry.gauge("torus.link.utilization", labels).set(link->utilization());
  }
  for (int node = 0; node < n; ++node) {
    const double busy = coprocs_[static_cast<std::size_t>(node)]->busy_seconds();
    if (busy <= 0.0) continue;  // 512 idle co-processors would drown the snapshot
    obs::Labels labels{{"node", std::to_string(node)}};
    registry.gauge("torus.coproc.busy_s", labels).set(busy);
    registry.gauge("torus.coproc.utilization", labels)
        .set(coprocs_[static_cast<std::size_t>(node)]->utilization());
  }
}

double TorusNetwork::link_busy_seconds(int from, int to) const {
  const std::uint64_t key =
      static_cast<std::uint64_t>(from) * static_cast<std::uint64_t>(topology_.node_count()) +
      static_cast<std::uint64_t>(to);
  auto it = links_.find(key);
  return it == links_.end() ? 0.0 : it->second->busy_seconds();
}

sim::Task<void> TorusNetwork::transmit(int from, int to, std::uint64_t payload_bytes,
                                       std::uint64_t source_tag) {
  co_await transmit_impl(from, to, payload_bytes, source_tag, nullptr, nullptr);
}

void TorusNetwork::transmit_async(int from, int to, std::uint64_t payload_bytes,
                                  std::uint64_t source_tag, sim::Event* sender_free,
                                  sim::Event* delivered) {
  node_sim(from).spawn(
      transmit_impl(from, to, payload_bytes, source_tag, sender_free, delivered));
}

sim::Task<void> TorusNetwork::transmit_impl(int from, int to, std::uint64_t payload_bytes,
                                            std::uint64_t source_tag,
                                            sim::Event* sender_free, sim::Event* delivered) {
  const auto route = topology_.route(from, to);
  const int hops = static_cast<int>(route.size()) - 1;
  const auto npkt = packets_for(payload_bytes);
  const double cf = cache_factor(payload_bytes);
  const double wire = effective_wire_time(payload_bytes);
  const double rendezvous = payload_bytes > params_.eager_limit_bytes
                                ? params_.rendezvous_rtt_per_hop_s * std::max(hops, 1)
                                : 0.0;

  auto& tx = tx_[static_cast<std::size_t>(from)];
  tx.messages += 1;
  tx.packets += npkt;
  tx.payload_bytes += payload_bytes;
  if (rendezvous > 0.0) tx.rendezvous_messages += 1;

  // Sender co-processor: per-message overhead, rendezvous handshake (the
  // co-processor is busy during the handshake), per-packet handling.
  co_await coproc(from).use(params_.per_message_overhead_s + rendezvous +
                            npkt * params_.send_per_packet_s * cf);

  if (hops == 0) {
    // Self-delivery (not used by real queries, but keeps the model total).
    if (sender_free) sender_free->set();
  }

  for (int i = 0; i < hops; ++i) {
    co_await link(route[i], route[i + 1]).use(wire);
    if (i == 0 && sender_free) sender_free->set();
    const bool is_intermediate = (i + 1) < hops;
    if (is_intermediate) {
      // Store-and-forward through the intermediate node's co-processor.
      co_await coproc(route[i + 1]).use(npkt * params_.forward_per_packet_s * cf);
    }
  }

  // Receive handling at the destination. With k live inbound streams,
  // interleaved arrivals make the single-threaded co-processor switch
  // sources on an expected (k-1)/k of the messages.
  (void)source_tag;
  const int streams = std::max(1, inbound_streams_[to]);
  const double switch_cost = params_.source_switch_penalty_s *
                             static_cast<double>(streams - 1) /
                             static_cast<double>(streams);
  switch_seconds_by_dst_[static_cast<std::size_t>(to)] += switch_cost;
  co_await coproc(to).use(npkt * params_.recv_per_packet_s * cf + switch_cost);
  if (delivered) delivered->set();
}

}  // namespace scsq::net
