// Simulated 3D torus interconnect with per-node communication
// co-processors (BlueGene/L compute-node fabric).
//
// Model, per message (one marshaled stream buffer):
//  * the payload is carried in fixed-size torus packets; a partially
//    filled final packet still occupies a full packet slot on the wire
//    (the paper: "1K is the smallest message size that can be exchanged
//    in the BlueGene 3D torus") — this is what collapses bandwidth for
//    sub-1KB stream buffers in Fig. 6;
//  * the sending node's co-processor is held for per-packet send
//    handling; each directed link on the dimension-ordered route is held
//    for the wire time; each intermediate node's co-processor is held
//    for per-packet forwarding (this is the Fig. 7A "sequential"
//    placement penalty); the destination co-processor is held for
//    per-packet receive handling plus a source-switch cost: with k
//    registered inbound streams, interleaved arrivals make the
//    single-threaded co-processor switch sources on an expected
//    (k-1)/k of the messages, so each message is charged that fraction
//    of the switch penalty (the paper's explanation for merge needing
//    large buffers in Fig. 8: "less frequent switching improves
//    communication");
//  * messages above the eager limit pay a rendezvous handshake
//    round-trip (per hop), one contributor to the decline right of the
//    1 KB peak in Fig. 6;
//  * a cache factor > 1 scales per-packet handling for large buffers
//    ("the drop-off above the 1000-byte buffer size is probably due to
//    cache misses").
//
// Resources are FIFO, so contention (two streams sharing a link, a
// co-processor forwarding someone else's traffic) emerges from the
// simulation rather than being hand-coded per experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace scsq::net {

struct TorusParams {
  double link_bandwidth_Bps = 175e6;       // 1.4 Gbit/s per torus link
  std::uint32_t packet_bytes = 1024;       // minimum torus message size
  double send_per_packet_s = 0.6e-6;       // sender co-processor handling
  double forward_per_packet_s = 1.5e-6;    // intermediate co-processor forward
  double recv_per_packet_s = 1.5e-6;       // receiver co-processor handling
  double per_message_overhead_s = 0.5e-6;  // MPI per-send fixed cost
  std::uint32_t eager_limit_bytes = 1024;  // above this: rendezvous handshake
  double rendezvous_rtt_per_hop_s = 4.0e-6;
  double source_switch_penalty_s = 40.0e-6;  // co-processor source switch
  // Cache-miss growth: handling cost factor ramps from 1.0 at
  // cache_knee_bytes up to cache_max_factor over cache_ramp_octaves
  // doublings of the message size.
  std::uint32_t cache_knee_bytes = 1024;
  double cache_max_factor = 2.5;
  double cache_ramp_octaves = 4.0;
  // Injection slowdown for buffers far beyond the cache: the torus DMA
  // feeds from the memory bus once send buffers no longer fit in cache,
  // reducing effective link rate by up to this fraction (scaled by the
  // same cache ramp). Second contributor to the Fig. 6 decline.
  double memory_slowdown_max = 0.18;

  /// Lower bound on the latency of any torus message: fixed MPI send
  /// cost, sender co-processor handling of one packet, and one packet's
  /// wire time on a single link. Strictly positive — the conservative
  /// parallel runtime (sim/plp.hpp) uses it as the lookahead of LP
  /// channels that cross the torus.
  double min_link_latency() const {
    return per_message_overhead_s + send_per_packet_s +
           static_cast<double>(packet_bytes) / link_bandwidth_Bps;
  }
};

class TorusNetwork {
 public:
  /// `node_sim` (optional) maps a node id to the LP Simulator that owns
  /// its resources (co-processor, outgoing links) — multi-LP machines
  /// pass their partition lookup; empty keeps everything on `sim`.
  TorusNetwork(sim::Simulator& sim, Torus3D topology, TorusParams params,
               std::function<sim::Simulator&(int)> node_sim = {});

  TorusNetwork(const TorusNetwork&) = delete;
  TorusNetwork& operator=(const TorusNetwork&) = delete;

  /// Transmits one message of `payload_bytes` from node `from` to node
  /// `to`, completing when the destination co-processor has handled it.
  /// `source_tag` identifies the logical stream (used for the receiver's
  /// source-switch penalty); distinct producers must pass distinct tags.
  sim::Task<void> transmit(int from, int to, std::uint64_t payload_bytes,
                           std::uint64_t source_tag);

  /// Starts a message transfer in the background. `sender_free` (if
  /// non-null) is set once the payload has fully left the sending node
  /// (send buffer reusable — how the MPI driver overlaps marshalling
  /// with transmission when double buffering); `delivered` (if non-null)
  /// is set when the destination co-processor has handled the message.
  /// Both events must outlive the transfer. Messages between the same
  /// pair of calls stay ordered (all resources are FIFO).
  void transmit_async(int from, int to, std::uint64_t payload_bytes,
                      std::uint64_t source_tag, sim::Event* sender_free,
                      sim::Event* delivered);

  /// Number of full torus packets a payload occupies.
  std::uint32_t packets_for(std::uint64_t payload_bytes) const;

  /// Wire time for one message on one link (full packets).
  double wire_time(std::uint64_t payload_bytes) const;

  /// Wire time including the memory-bus injection slowdown for large
  /// buffers (used by transmissions; wire_time() is the raw link rate).
  double effective_wire_time(std::uint64_t payload_bytes) const;

  /// Cache factor applied to per-packet handling for this message size.
  double cache_factor(std::uint64_t payload_bytes) const;

  const Torus3D& topology() const { return topology_; }
  const TorusParams& params() const { return params_; }

  /// The communication co-processor of a node (capacity 1).
  sim::Resource& coproc(int node) { return *coprocs_.at(node); }

  /// The LP Simulator owning a node's resources (the construction
  /// Simulator when no node_sim mapping was given).
  sim::Simulator& node_sim(int node) const {
    return node_sim_ ? node_sim_(node) : *sim_;
  }

  /// Creates every directed link on route(from, to) now, instead of at
  /// first transmission. Multi-LP machines prewarm all routes they will
  /// drive in parallel: the links_ map then never mutates during the
  /// concurrent phase, and the route is checked to stay on `from`'s
  /// Simulator (a route leaving its LP would hold foreign resources).
  void prewarm_route(int from, int to);

  /// Stream registration: links declare a live inbound stream at `node`
  /// so receive handling can charge the expected source-switch cost.
  void register_inbound_stream(int node);
  void unregister_inbound_stream(int node);
  int inbound_streams(int node) const { return inbound_streams_.at(node); }

  /// Busy seconds of a directed link so far (0 if never used).
  double link_busy_seconds(int from, int to) const;

  /// Cumulative receive co-processor source-switch seconds, machine-wide
  /// (the coproc.switch attribution input of the profiler).
  double switch_seconds() const;

  /// Publishes per-hop utilization and message/packet totals into the
  /// registry: torus.link.busy_s / torus.link.utilization gauges per
  /// *used* directed link (labeled from/to), torus.coproc.busy_s per
  /// busy co-processor, and torus.messages / torus.packets /
  /// torus.rendezvous_messages / torus.payload_bytes counters. The
  /// per-message totals are kept as plain members on the transmit path
  /// (single increments) and copied over here, so transmissions never
  /// touch the registry.
  void publish_metrics(obs::Registry& registry) const;

 private:
  sim::Resource& link(int from, int to);
  sim::Task<void> transmit_impl(int from, int to, std::uint64_t payload_bytes,
                                std::uint64_t source_tag, sim::Event* sender_free,
                                sim::Event* delivered);

  sim::Simulator* sim_;
  Torus3D topology_;
  TorusParams params_;
  std::function<sim::Simulator&(int)> node_sim_;
  std::vector<std::unique_ptr<sim::Resource>> coprocs_;
  // Directed links created lazily, keyed by from * node_count + to
  // (multi-LP machines prewarm instead — see prewarm_route).
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Resource>> links_;
  // Live inbound stream count per node (source-switch expectation).
  std::vector<int> inbound_streams_;
  // Cumulative transmit totals, sharded by node so concurrent LPs never
  // share a counter: tx_ is indexed by the sending node (only its LP
  // increments it), switch_seconds_by_dst_ by the receiving node.
  // publish_metrics / switch_seconds() sum over the shards.
  struct TxCounters {
    std::uint64_t messages = 0;
    std::uint64_t packets = 0;
    std::uint64_t rendezvous_messages = 0;
    std::uint64_t payload_bytes = 0;
  };
  std::vector<TxCounters> tx_;
  std::vector<double> switch_seconds_by_dst_;
};

}  // namespace scsq::net
