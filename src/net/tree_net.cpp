#include "net/tree_net.hpp"

namespace scsq::net {

TreeNetwork::TreeNetwork(sim::Simulator& sim, int pset_count, int compute_count,
                         TreeParams params, std::function<sim::Simulator&(int)> pset_sim,
                         std::function<sim::Simulator&(int)> rank_sim)
    : sim_(&sim), params_(params) {
  SCSQ_CHECK(pset_count >= 1) << "need at least one pset";
  SCSQ_CHECK(compute_count >= 1) << "need at least one compute node";
  for (int i = 0; i < pset_count; ++i) {
    sim::Simulator& owner = pset_sim ? pset_sim(i) : sim;
    io_cpus_.push_back(
        std::make_unique<sim::Resource>(owner, 1, "io" + std::to_string(i) + ".cpu"));
    tree_links_.push_back(
        std::make_unique<sim::Resource>(owner, 1, "tree" + std::to_string(i)));
  }
  for (int i = 0; i < compute_count; ++i) {
    sim::Simulator& owner = rank_sim ? rank_sim(i) : sim;
    ingest_.push_back(
        std::make_unique<sim::Resource>(owner, 1, "cn" + std::to_string(i) + ".ingest"));
  }
  counters_.assign(static_cast<std::size_t>(pset_count), PsetCounters{});
}

void TreeNetwork::publish_metrics(obs::Registry& registry) const {
  PsetCounters total;
  for (const auto& c : counters_) {
    total.inbound_messages += c.inbound_messages;
    total.inbound_bytes += c.inbound_bytes;
    total.outbound_messages += c.outbound_messages;
    total.outbound_bytes += c.outbound_bytes;
  }
  registry.counter("tree.inbound_messages").set_total(total.inbound_messages);
  registry.counter("tree.inbound_bytes").set_total(total.inbound_bytes);
  registry.counter("tree.outbound_messages").set_total(total.outbound_messages);
  registry.counter("tree.outbound_bytes").set_total(total.outbound_bytes);
  for (std::size_t p = 0; p < io_cpus_.size(); ++p) {
    if (io_cpus_[p]->busy_seconds() <= 0.0 && tree_links_[p]->busy_seconds() <= 0.0) {
      continue;
    }
    obs::Labels labels{{"pset", std::to_string(p)}};
    registry.gauge("tree.io_cpu.busy_s", labels).set(io_cpus_[p]->busy_seconds());
    registry.gauge("tree.io_cpu.utilization", labels).set(io_cpus_[p]->utilization());
    registry.gauge("tree.link.busy_s", labels).set(tree_links_[p]->busy_seconds());
    registry.gauge("tree.link.utilization", labels).set(tree_links_[p]->utilization());
  }
  for (std::size_t r = 0; r < ingest_.size(); ++r) {
    const double busy = ingest_[r]->busy_seconds();
    if (busy <= 0.0) continue;
    obs::Labels labels{{"node", std::to_string(r)}};
    registry.gauge("tree.ingest.busy_s", labels).set(busy);
    registry.gauge("tree.ingest.utilization", labels).set(ingest_[r]->utilization());
  }
}

sim::Task<void> TreeNetwork::forward_inbound(int pset, int compute_rank,
                                             std::uint64_t bytes, double io_factor,
                                             double compute_factor) {
  SCSQ_CHECK(io_factor >= 1.0 && compute_factor >= 1.0) << "cost factors must be >= 1";
  auto& shard = counters_[static_cast<std::size_t>(pset)];
  shard.inbound_messages += 1;
  shard.inbound_bytes += bytes;
  const double b = static_cast<double>(bytes);
  // CIOD copies the payload from its socket into the tree device.
  co_await io_cpu(pset).use(params_.io_per_message_overhead_s +
                            b * params_.io_forward_per_byte_s * io_factor);
  // Tree wire time to the compute node.
  co_await tree_link(pset).use(b / params_.link_bandwidth_Bps);
  // Compute-node ingest (CNK syscall path + copy into the stream buffer).
  co_await compute_ingest(compute_rank)
      .use(params_.compute_per_message_overhead_s +
           b * params_.compute_recv_per_byte_s * compute_factor);
}

sim::Task<void> TreeNetwork::forward_outbound(int pset, int compute_rank,
                                              std::uint64_t bytes, double io_factor) {
  SCSQ_CHECK(io_factor >= 1.0) << "cost factors must be >= 1";
  auto& shard = counters_[static_cast<std::size_t>(pset)];
  shard.outbound_messages += 1;
  shard.outbound_bytes += bytes;
  const double b = static_cast<double>(bytes);
  co_await compute_ingest(compute_rank)
      .use(params_.compute_per_message_overhead_s + b * params_.compute_recv_per_byte_s);
  co_await tree_link(pset).use(b / params_.link_bandwidth_Bps);
  co_await io_cpu(pset).use(params_.io_per_message_overhead_s +
                            b * params_.io_forward_per_byte_s * io_factor);
}

}  // namespace scsq::net
