#include "net/tree_net.hpp"

namespace scsq::net {

TreeNetwork::TreeNetwork(sim::Simulator& sim, int pset_count, int compute_count,
                         TreeParams params)
    : sim_(&sim), params_(params) {
  SCSQ_CHECK(pset_count >= 1) << "need at least one pset";
  SCSQ_CHECK(compute_count >= 1) << "need at least one compute node";
  for (int i = 0; i < pset_count; ++i) {
    io_cpus_.push_back(
        std::make_unique<sim::Resource>(sim, 1, "io" + std::to_string(i) + ".cpu"));
    tree_links_.push_back(
        std::make_unique<sim::Resource>(sim, 1, "tree" + std::to_string(i)));
  }
  for (int i = 0; i < compute_count; ++i) {
    ingest_.push_back(
        std::make_unique<sim::Resource>(sim, 1, "cn" + std::to_string(i) + ".ingest"));
  }
}

sim::Task<void> TreeNetwork::forward_inbound(int pset, int compute_rank,
                                             std::uint64_t bytes, double io_factor,
                                             double compute_factor) {
  SCSQ_CHECK(io_factor >= 1.0 && compute_factor >= 1.0) << "cost factors must be >= 1";
  const double b = static_cast<double>(bytes);
  // CIOD copies the payload from its socket into the tree device.
  co_await io_cpu(pset).use(params_.io_per_message_overhead_s +
                            b * params_.io_forward_per_byte_s * io_factor);
  // Tree wire time to the compute node.
  co_await tree_link(pset).use(b / params_.link_bandwidth_Bps);
  // Compute-node ingest (CNK syscall path + copy into the stream buffer).
  co_await compute_ingest(compute_rank)
      .use(params_.compute_per_message_overhead_s +
           b * params_.compute_recv_per_byte_s * compute_factor);
}

sim::Task<void> TreeNetwork::forward_outbound(int pset, int compute_rank,
                                              std::uint64_t bytes, double io_factor) {
  SCSQ_CHECK(io_factor >= 1.0) << "cost factors must be >= 1";
  const double b = static_cast<double>(bytes);
  co_await compute_ingest(compute_rank)
      .use(params_.compute_per_message_overhead_s + b * params_.compute_recv_per_byte_s);
  co_await tree_link(pset).use(b / params_.link_bandwidth_Bps);
  co_await io_cpu(pset).use(params_.io_per_message_overhead_s +
                            b * params_.io_forward_per_byte_s * io_factor);
}

}  // namespace scsq::net
