// BlueGene tree (collective) network between I/O nodes and the compute
// nodes of their pset, plus the I/O-node forwarding CPU.
//
// On BlueGene/L all external TCP traffic is forwarded by the pset's I/O
// node (the CIOD daemon) over the 2.8 Gbit/s tree network; compute nodes
// cannot open sockets (CNK has no listen()/accept()/select()). The
// forwarding CPU is the slow element of the inbound path — this is why
// the paper's Queries 1–4 saturate far below the GigE line rate and why
// "a considerable amount of I/O nodes must be designated to handle input
// streams".
//
// The caller supplies two cost factors per message:
//  * io_factor — I/O-node coordination with distinct external senders
//    (Fig. 15: Query 5 beats Query 6, Query 1 beats Query 2);
//  * compute_factor — receive multiplexing on the destination compute
//    node when many streams converge on it (Fig. 15: Queries 3/4 gain a
//    little over 1/2 by spreading receivers).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace scsq::net {

struct TreeParams {
  double link_bandwidth_Bps = 350e6;       // 2.8 Gbit/s tree network
  double io_forward_per_byte_s = 23.8e-9;  // CIOD forwarding (~336 Mbit/s cap)
  double io_per_message_overhead_s = 30e-6;
  double compute_recv_per_byte_s = 26.7e-9;  // compute-side ingest (~300 Mbit/s cap)
  double compute_per_message_overhead_s = 20e-6;

  /// Lower bound on the latency of any tree-network hop: the fixed I/O
  /// node per-message overhead plus one byte on the tree link. Strictly
  /// positive — the conservative parallel runtime (sim/plp.hpp) uses it
  /// as the lookahead of LP channels that cross the tree.
  double min_link_latency() const {
    return io_per_message_overhead_s + 1.0 / link_bandwidth_Bps;
  }
};

class TreeNetwork {
 public:
  /// One I/O node (and one tree subtree) per pset; one ingest processor
  /// per compute node. `pset_sim` / `rank_sim` (optional) place each
  /// pset's I/O CPU + tree link and each compute node's ingest processor
  /// on their owning LP Simulator; empty keeps everything on `sim`.
  TreeNetwork(sim::Simulator& sim, int pset_count, int compute_count, TreeParams params,
              std::function<sim::Simulator&(int)> pset_sim = {},
              std::function<sim::Simulator&(int)> rank_sim = {});

  TreeNetwork(const TreeNetwork&) = delete;
  TreeNetwork& operator=(const TreeNetwork&) = delete;

  /// Forwards one inbound message through pset `pset`'s I/O node to
  /// compute node `compute_rank`. Completes when the compute node has
  /// ingested the message.
  sim::Task<void> forward_inbound(int pset, int compute_rank, std::uint64_t bytes,
                                  double io_factor, double compute_factor);

  /// Forwards one outbound message from `compute_rank` through its
  /// pset's I/O node (compute egress cost, tree, I/O CPU).
  sim::Task<void> forward_outbound(int pset, int compute_rank, std::uint64_t bytes,
                                   double io_factor);

  sim::Resource& io_cpu(int pset) { return *io_cpus_.at(pset); }
  sim::Resource& tree_link(int pset) { return *tree_links_.at(pset); }
  sim::Resource& compute_ingest(int compute_rank) { return *ingest_.at(compute_rank); }

  int pset_count() const { return static_cast<int>(io_cpus_.size()); }
  const TreeParams& params() const { return params_; }

  /// Publishes per-hop utilization into the registry: tree.io_cpu.* and
  /// tree.link.* gauges per pset, tree.ingest.* per compute node with
  /// traffic, and tree.inbound/outbound message+byte counters. Message
  /// totals are plain member increments on the forward path; the
  /// registry is only touched here.
  void publish_metrics(obs::Registry& registry) const;

 private:
  sim::Simulator* sim_;
  TreeParams params_;
  std::vector<std::unique_ptr<sim::Resource>> io_cpus_;
  std::vector<std::unique_ptr<sim::Resource>> tree_links_;
  std::vector<std::unique_ptr<sim::Resource>> ingest_;
  // Message totals sharded per pset: every forward_* call runs entirely
  // on its pset's LP, so each shard has exactly one writing thread.
  // publish_metrics sums over the shards.
  struct PsetCounters {
    std::uint64_t inbound_messages = 0;
    std::uint64_t inbound_bytes = 0;
    std::uint64_t outbound_messages = 0;
    std::uint64_t outbound_bytes = 0;
  };
  std::vector<PsetCounters> counters_;
};

}  // namespace scsq::net
