#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace scsq::obs {

LogHistogram::LogHistogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  SCSQ_CHECK(lo > 0.0 && hi > lo && buckets >= 1) << "bad LogHistogram shape";
  log_lo_ = std::log(lo_);
  inv_log_step_ = static_cast<double>(buckets) / (std::log(hi_) - log_lo_);
  counts_.assign(static_cast<std::size_t>(buckets), 0);
}

void LogHistogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
  sum_ += v;
  std::size_t idx = 0;
  if (v > lo_) {
    const double pos = (std::log(v) - log_lo_) * inv_log_step_;
    idx = std::min(counts_.size() - 1,
                   static_cast<std::size_t>(std::max(0.0, pos)));
  }
  counts_[idx] += 1;
}

void LogHistogram::merge(const LogHistogram& other) {
  SCSQ_CHECK(counts_.size() == other.counts_.size() && lo_ == other.lo_ && hi_ == other.hi_)
      << "merging LogHistograms of different shapes";
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

LogHistogram LogHistogram::delta_since(const LogHistogram& earlier) const {
  SCSQ_CHECK(counts_.size() == earlier.counts_.size() && lo_ == earlier.lo_ &&
             hi_ == earlier.hi_)
      << "delta_since over LogHistograms of different shapes";
  SCSQ_CHECK(count_ >= earlier.count_) << "delta_since: snapshot is newer than *this";
  LogHistogram window(lo_, hi_, static_cast<int>(counts_.size()));
  window.count_ = count_ - earlier.count_;
  window.sum_ = sum_ - earlier.sum_;
  if (window.count_ == 0) {
    window.sum_ = 0.0;  // scrub float residue so mean() stays exactly 0
    return window;
  }
  std::size_t first = counts_.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    SCSQ_CHECK(counts_[i] >= earlier.counts_[i]) << "delta_since: bucket went backwards";
    window.counts_[i] = counts_[i] - earlier.counts_[i];
    if (window.counts_[i] != 0) {
      first = std::min(first, i);
      last = i;
    }
  }
  // Window extrema are unknown exactly; bound them by the occupied
  // buckets and never extrapolate past the lifetime observations.
  window.min_ = std::max(min_, window.bucket_lower(first));
  window.max_ = std::min(max_, window.bucket_upper(last));
  if (window.min_ > window.max_) window.min_ = window.max_;
  return window;
}

double LogHistogram::bucket_lower(std::size_t i) const {
  return std::exp(log_lo_ + static_cast<double>(i) / inv_log_step_);
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based: ceil(q * count), at least 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cumulative + counts_[i] >= rank) {
      // Geometric interpolation inside the bucket: rank position within
      // the bucket maps onto the bucket's log-space extent.
      const double f = static_cast<double>(rank - cumulative) /
                       static_cast<double>(counts_[i]);
      const double lower = bucket_lower(i);
      const double upper = bucket_upper(i);
      const double v = lower * std::pow(upper / lower, f);
      return std::clamp(v, min_, max_);
    }
    cumulative += counts_[i];
  }
  return max_;
}

}  // namespace scsq::obs
