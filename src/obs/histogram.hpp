// Log-bucket latency histogram with quantile extraction.
//
// The registry's fixed-bucket Histogram is an exporter-facing instrument
// (Prometheus le-buckets); LogHistogram is the analysis-facing one: a
// geometric bucket ladder over [lo, hi] whose p50/p95/p99 come out with
// bounded *relative* error (one bucket ratio) at any scale, which is
// what latency attribution needs — a 2 µs local hand-off and a 0.5 s
// backpressured cross-cluster frame live in the same histogram. The
// transport frame-latency path feeds one per link; the profiler reads
// the quantiles into the EXPLAIN ANALYZE report.
//
// observe() is one std::log plus an array increment — fine for the
// per-frame path (a frame transmission dispatches dozens of simulator
// events; the histogram is noise next to that). Exact min/max/sum are
// tracked so quantiles clamp to observed values and never extrapolate
// past the data.
#pragma once

#include <cstdint>
#include <vector>

namespace scsq::obs {

class LogHistogram {
 public:
  /// Buckets span [lo, hi] in `buckets` geometric steps; values below lo
  /// land in the first bucket, above hi in the last. lo must be > 0.
  LogHistogram(double lo, double hi, int buckets);

  /// Default shape for simulated-seconds latencies: 0.1 µs .. 100 s,
  /// 9 decades at 8 buckets per decade (~33% bucket ratio).
  LogHistogram() : LogHistogram(1e-7, 1e2, 72) {}

  void observe(double v);

  /// Merges another histogram with the identical bucket shape.
  void merge(const LogHistogram& other);

  /// The observations recorded since `earlier` (an older snapshot of
  /// *this* histogram — same shape, counts <= ours), as a standalone
  /// histogram whose quantiles cover only that window. Because exact
  /// per-window min/max are not recoverable from bucket deltas, the
  /// window's clamp range is the occupied buckets' edges intersected
  /// with the lifetime [min, max]. An empty window (no new
  /// observations) yields an empty histogram: count() == 0,
  /// quantile() == 0.
  LogHistogram delta_since(const LogHistogram& earlier) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Quantile q in [0,1]: geometric interpolation inside the bucket
  /// holding the rank, clamped to the exact observed [min, max].
  /// Returns 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  /// Lower/upper value edge of bucket i.
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const { return bucket_lower(i + 1); }

 private:
  double lo_;
  double hi_;
  double inv_log_step_;  // buckets per log-unit
  double log_lo_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace scsq::obs
