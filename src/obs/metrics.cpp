#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace scsq::obs {

// Key under which a metric is indexed: name plus canonical label render.
// Labels keep their registration order (instruments are consistent about
// it), so no sorting is needed for a stable key.
std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) key += ',';
    key += labels[i].key;
    key += '=';
    key += labels[i].value;
  }
  key += '}';
  return key;
}

namespace {

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (u < 0x20) {
      const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[(u >> 4) & 0xF] << hex[u & 0xF];
    } else {
      os << c;
    }
  }
}

// JSON numbers must be finite; histogram bounds may legitimately not be,
// and gauges could be fed an inf by a zero-duration run.
void write_json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf")) << '"';
  }
}

// Prometheus metric names use underscores; label values get quoted with
// backslash escapes.
std::string prom_name(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  std::replace(out.begin(), out.end(), '-', '_');
  return out;
}

void write_prom_labels(std::ostream& os, const Labels& labels, const char* extra_key,
                       const std::string& extra_value) {
  if (labels.empty() && extra_key == nullptr) return;
  os << '{';
  bool first = true;
  for (const auto& l : labels) {
    if (!first) os << ',';
    first = false;
    os << l.key << "=\"";
    for (char c : l.value) {
      if (c == '"' || c == '\\') os << '\\';
      if (c == '\n') {
        os << "\\n";
        continue;
      }
      os << c;
    }
    os << '"';
  }
  if (extra_key != nullptr) {
    if (!first) os << ',';
    os << extra_key << "=\"" << extra_value << '"';
  }
  os << '}';
}

std::string format_bound(double b) {
  std::ostringstream os;
  os << b;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SCSQ_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be sorted";
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  // Values exactly on an edge land in that edge's bucket (le semantics):
  // upper_bound yields the first bound > v, but a bound == v belongs to
  // its own bucket, so step back when the previous bound equals v.
  std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  if (idx > 0 && bounds_[idx - 1] == v) idx -= 1;
  counts_[idx] += 1;
  count_ += 1;
  sum_ += v;
}

std::vector<double> Histogram::exp_buckets(double start, double factor, int count) {
  SCSQ_CHECK(start > 0 && factor > 1.0 && count >= 1) << "bad exp_buckets parameters";
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Registry::Entry& Registry::find_or_create(const std::string& name, const Labels& labels,
                                          Kind kind) {
  const std::string key = metric_key(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    SCSQ_CHECK(e.kind == kind) << "metric '" << key << "' re-registered as a different kind";
    return e;
  }
  index_.emplace(key, entries_.size());
  entries_.push_back(Entry{name, labels, kind, nullptr, nullptr, nullptr});
  return entries_.back();
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  Entry& e = find_or_create(name, labels, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  Entry& e = find_or_create(name, labels, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               std::vector<double> bounds) {
  Entry& e = find_or_create(name, labels, Kind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

Registry::EntryView Registry::entry(std::size_t i) const {
  SCSQ_CHECK(i < entries_.size()) << "registry entry index out of range";
  const Entry& e = entries_[i];
  return EntryView{e.name, e.labels, e.counter.get(), e.gauge.get(), e.histogram.get()};
}

void Registry::set_help(const std::string& name, std::string help) {
  help_[name] = std::move(help);
}

std::uint64_t Registry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    if (e.kind == Kind::kCounter && e.name == name) total += e.counter->value();
  }
  return total;
}

void Registry::write_prometheus_entry(std::ostream& os, const Entry& e) const {
  const std::string name = prom_name(e.name);
  switch (e.kind) {
    case Kind::kCounter:
      os << name;
      write_prom_labels(os, e.labels, nullptr, {});
      os << ' ' << e.counter->value() << '\n';
      break;
    case Kind::kGauge:
      os << name;
      write_prom_labels(os, e.labels, nullptr, {});
      os << ' ' << e.gauge->value() << '\n';
      break;
    case Kind::kHistogram: {
      const Histogram& h = *e.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bucket_counts().size(); ++b) {
        cumulative += h.bucket_counts()[b];
        os << name << "_bucket";
        write_prom_labels(os, e.labels, "le",
                          b < h.bounds().size() ? format_bound(h.bounds()[b]) : "+Inf");
        os << ' ' << cumulative << '\n';
      }
      os << name << "_sum";
      write_prom_labels(os, e.labels, nullptr, {});
      os << ' ' << h.sum() << '\n';
      os << name << "_count";
      write_prom_labels(os, e.labels, nullptr, {});
      os << ' ' << h.count() << '\n';
      break;
    }
  }
}

std::size_t Registry::write_prometheus(std::ostream& os, const std::string& filter) const {
  // Exposition-format contract: every series of one metric name sits in
  // a single block headed by exactly one # HELP / # TYPE pair. Group the
  // (filtered) entries by name in first-registration order, then emit
  // block by block.
  std::vector<std::size_t> selected;
  selected.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (!filter.empty() &&
        metric_key(e.name, e.labels).find(filter) == std::string::npos) {
      continue;
    }
    selected.push_back(i);
  }
  std::size_t written = 0;
  std::vector<bool> emitted(entries_.size(), false);
  for (std::size_t gi = 0; gi < selected.size(); ++gi) {
    const std::size_t lead = selected[gi];
    if (emitted[lead]) continue;
    const Entry& e = entries_[lead];
    const std::string name = prom_name(e.name);
    const auto help = help_.find(e.name);
    os << "# HELP " << name << ' ' << (help != help_.end() ? help->second : e.name)
       << '\n';
    os << "# TYPE " << name << ' '
       << (e.kind == Kind::kCounter ? "counter"
                                    : e.kind == Kind::kGauge ? "gauge" : "histogram")
       << '\n';
    for (std::size_t gj = gi; gj < selected.size(); ++gj) {
      const Entry& s = entries_[selected[gj]];
      if (s.name != e.name) continue;
      emitted[selected[gj]] = true;
      write_prometheus_entry(os, s);
      ++written;
    }
  }
  return written;
}

void Registry::write_json(std::ostream& os) const {
  auto write_section = [&](const char* title, Kind kind, auto&& body) {
    os << '"' << title << "\":{";
    bool first = true;
    for (const auto& e : entries_) {
      if (e.kind != kind) continue;
      if (!first) os << ',';
      first = false;
      os << '"';
      write_json_escaped(os, metric_key(e.name, e.labels));
      os << "\":";
      body(e);
    }
    os << '}';
  };
  os << '{';
  write_section("counters", Kind::kCounter,
                [&](const Entry& e) { os << e.counter->value(); });
  os << ',';
  write_section("gauges", Kind::kGauge,
                [&](const Entry& e) { write_json_number(os, e.gauge->value()); });
  os << ',';
  write_section("histograms", Kind::kHistogram, [&](const Entry& e) {
    const Histogram& h = *e.histogram;
    os << "{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ',';
      write_json_number(os, h.bounds()[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (i) os << ',';
      os << h.bucket_counts()[i];
    }
    os << "],\"count\":" << h.count() << ",\"sum\":";
    write_json_number(os, h.sum());
    os << '}';
  });
  os << '}';
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace scsq::obs
