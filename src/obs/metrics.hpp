// Unified metrics registry for the SCSQ stack.
//
// One Registry per simulated environment (the hw::Machine owns it) holds
// every labeled counter, gauge, and histogram the stack reports through:
// per-link transport counters, per-RP engine gauges, per-hop network
// utilization, and the simulation kernel's PerfCounters (bridged via
// obs/sim_bridge.hpp). Benches snapshot it once per sweep point; the
// scsql shell prints it on \metrics.
//
// Hot-path discipline (same as the kernel's PerfCounters): instruments
// resolve name+labels to a stable handle ONCE, at wiring time; the
// per-event operations are a single add (Counter/Gauge) or one
// upper_bound over a small fixed bucket array (Histogram). Nothing in
// the registry allocates or hashes on the per-frame path.
//
// Threading: a Registry belongs to one Simulator and inherits its
// single-threaded discipline. Distinct Registries (one per sweep point)
// are independent and may live on different worker threads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.hpp"

namespace scsq::obs {

/// One key=value metric label. Labels distinguish instances of the same
/// metric name (e.g. transport.link.bytes{type=mpi,src=bg1,dst=bg0}).
struct Label {
  std::string key;
  std::string value;
};

using Labels = std::vector<Label>;

/// Canonical registry key: `name` alone, or `name{k=v,...}` with labels
/// in registration order. This is the key every exporter and the
/// time-series sampler use, exposed so tools can reconstruct it.
std::string metric_key(const std::string& name, const Labels& labels);

/// Monotonic counter (events, bytes, frames...).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }

  /// Replaces the value with a cumulative total from an external source
  /// (e.g. the kernel's PerfCounters). Must not decrease.
  void set_total(std::uint64_t total) {
    SCSQ_CHECK(total >= value_) << "counter total went backwards";
    value_ = total;
  }

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge (utilization, seconds, depths...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are upper bucket edges (inclusive),
/// plus an implicit +inf overflow bucket. Bucket counts are cumulative
/// only in the exporters; observe() touches exactly one slot.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last being the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// `count` exponential bucket edges: start, start*factor, ...
  static std::vector<double> exp_buckets(double start, double factor, int count);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates a metric. The returned reference is stable for the
  /// lifetime of the Registry; instruments cache it and never look up
  /// again. Re-registering the same name+labels returns the same
  /// instance; re-registering under a different metric kind aborts
  /// (programmer error).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels,
                       std::vector<double> bounds);
  Histogram& histogram(const std::string& name, std::vector<double> bounds) {
    return histogram(name, {}, std::move(bounds));
  }

  std::size_t size() const { return entries_.size(); }

  /// Read-only view of one registered metric. Exactly one of the
  /// instrument pointers is non-null. Indices are stable: entries_ is
  /// append-only, so a sampler can remember "I have seen the first N
  /// entries" and treat later indices as new series.
  struct EntryView {
    const std::string& name;
    const Labels& labels;
    const Counter* counter;
    const Gauge* gauge;
    const Histogram* histogram;
  };

  /// The i-th registered metric, in registration order (i < size()).
  EntryView entry(std::size_t i) const;

  /// Sum of every counter whose name equals `name` across all label
  /// sets (tests/diagnostics).
  std::uint64_t counter_total(const std::string& name) const;

  /// Attaches Prometheus `# HELP` text to a metric name (all label sets
  /// share it). Without one the exporter falls back to the dotted
  /// registry name, which at least survives the dot->underscore mangle.
  void set_help(const std::string& name, std::string help);

  /// Prometheus-style text exposition: one `name{labels} value` line per
  /// metric, histograms as _bucket/_sum/_count series with cumulative
  /// le-bucket counts. Dots in names become underscores. Series sharing
  /// a metric name are grouped under a single `# HELP` + `# TYPE` header
  /// pair (the exposition-format contract scrapers rely on); label
  /// values escape backslash, quote, and newline.
  void write_prometheus(std::ostream& os) const { write_prometheus(os, {}); }

  /// Filtered exposition: only metrics whose `name{k=v,...}` key contains
  /// `filter` as a substring (empty filter = everything). Returns the
  /// number of series written (the shell's `\metrics <filter>` summary).
  std::size_t write_prometheus(std::ostream& os, const std::string& filter) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {...}} keyed by "name{k=v,...}". Single line, valid JSON (keys are
  /// escaped), suitable for JSON-lines snapshot files.
  void write_json(std::ostream& os) const;
  std::string json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    // Exactly one is non-null, matching `kind`. unique_ptr keeps the
    // handle addresses stable across entries_ growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels, Kind kind);
  void write_prometheus_entry(std::ostream& os, const Entry& e) const;

  std::vector<Entry> entries_;                     // registration order
  std::unordered_map<std::string, std::size_t> index_;  // key -> entries_ slot
  std::unordered_map<std::string, std::string> help_;   // metric name -> HELP text
};

}  // namespace scsq::obs
