#include "obs/monitor.hpp"

#include <cmath>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>

#include "util/logging.hpp"

namespace scsq::obs {

namespace {

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (u < 0x20) {
      const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[(u >> 4) & 0xF] << hex[u & 0xF];
    } else {
      os << c;
    }
  }
}

void write_json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf")) << '"';
  }
}

}  // namespace

void write_object_json(std::ostream& os, const catalog::Object& value) {
  using catalog::Kind;
  switch (value.kind()) {
    case Kind::kNull:
      os << "null";
      return;
    case Kind::kInt:
      os << value.as_int();
      return;
    case Kind::kReal:
      write_json_number(os, value.as_real());
      return;
    case Kind::kBool:
      os << (value.as_bool() ? "true" : "false");
      return;
    case Kind::kStr:
      os << '"';
      write_json_escaped(os, value.as_str());
      os << '"';
      return;
    case Kind::kBag: {
      os << '[';
      bool first = true;
      for (const auto& el : value.as_bag()) {
        if (!first) os << ',';
        first = false;
        write_object_json(os, el);
      }
      os << ']';
      return;
    }
    case Kind::kDArray: {
      os << '[';
      bool first = true;
      for (double v : value.as_darray()) {
        if (!first) os << ',';
        first = false;
        write_json_number(os, v);
      }
      os << ']';
      return;
    }
    case Kind::kCArray: {
      os << '[';
      bool first = true;
      for (const auto& v : value.as_carray()) {
        if (!first) os << ',';
        first = false;
        os << "{\"re\":";
        write_json_number(os, v.real());
        os << ",\"im\":";
        write_json_number(os, v.imag());
        os << '}';
      }
      os << ']';
      return;
    }
    case Kind::kSynth:
      os << "{\"synth_bytes\":" << value.as_synth().bytes
         << ",\"seq\":" << value.as_synth().seq << '}';
      return;
    case Kind::kSp: {
      const auto sp = value.as_sp();
      os << "{\"sp\":" << sp.id << ",\"cluster\":\"";
      write_json_escaped(os, sp.cluster);
      os << "\"}";
      return;
    }
  }
  os << "null";  // unreachable
}

void write_alerts_jsonl(std::ostream& os, const std::vector<MonitorAlert>& alerts) {
  const auto prev_precision = os.precision(17);
  for (std::size_t n = 0; n < alerts.size(); ++n) {
    const MonitorAlert& a = alerts[n];
    os << "{\"alert\":" << n << ",\"monitor\":\"";
    write_json_escaped(os, a.monitor);
    os << "\",\"window\":" << a.window << ",\"t_start\":" << a.t_start
       << ",\"t_end\":" << a.t_end << ",\"row\":" << a.row << ",\"value\":";
    write_object_json(os, a.value);
    os << ",\"query\":\"";
    write_json_escaped(os, a.query);
    os << "\"}\n";
  }
  os.precision(prev_precision);
}

void append_alerts_file(const std::string& path, const std::vector<MonitorAlert>& alerts) {
  if (alerts.empty()) return;
  // Same truncate-once + append pattern as the bench side channels: the
  // process' first write to a path truncates, later writes (further
  // statements, other sweep points) extend; a mutex serializes writers.
  static std::mutex mutex;
  static std::set<std::string>* truncated = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  const bool first = truncated->insert(path).second;
  std::ofstream out(path, first ? std::ios::trunc : std::ios::app);
  if (!out) {
    SCSQ_LOG(kWarn) << "cannot open SCSQ_MONITOR_OUT path " << path;
    return;
  }
  write_alerts_jsonl(out, alerts);
}

}  // namespace scsq::obs
