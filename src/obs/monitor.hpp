// Monitor-alert records and their JSONL sink.
//
// A monitor query (Engine::register_monitor) re-runs an introspection
// SQEP over every telemetry window the sampler takes; every row the
// plan emits is one MonitorAlert. Alerts are an observability side
// channel like SCSQ_METRICS_OUT/SCSQ_TIMESERIES_OUT: they are collected
// during the statement and written to SCSQ_MONITOR_OUT as JSON lines
// after it completes, leaving stdout and the simulated timeline
// untouched. Each line starts with `{"alert"` (the splice-anchor
// convention of obs::Sampler::write_jsonl) and carries the monitor
// name, its query text, the window it fired in, and the matched row
// serialized as JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "catalog/object.hpp"

namespace scsq::obs {

/// One row matched by a monitor query in one sampler window.
struct MonitorAlert {
  std::string monitor;     ///< monitor name ("m1", "m2", ...)
  std::string query;       ///< the monitor's SCSQL text
  std::size_t window = 0;  ///< sampler window index the row fired in
  double t_start = 0.0;    ///< window bounds (simulated seconds)
  double t_end = 0.0;
  std::size_t row = 0;     ///< row index within this monitor x window run
  catalog::Object value;   ///< the matched row (scalar or bag)
};

/// Serializes a catalog object as a JSON value (bags/arrays as arrays,
/// strings escaped, non-finite reals as quoted "inf"/"nan" — the same
/// convention as the sampler's gauge export).
void write_object_json(std::ostream& os, const catalog::Object& value);

/// One JSONL line per alert:
/// {"alert":N,"monitor":"m1","window":W,"t_start":..,"t_end":..,
///  "row":R,"value":...,"query":"..."}
void write_alerts_jsonl(std::ostream& os, const std::vector<MonitorAlert>& alerts);

/// Appends the alerts to `path` under the shared side-channel contract:
/// the first append of the process truncates the file, later appends
/// extend it, and a mutex serializes writers (bench sweeps run engines
/// on several threads). No-op when `alerts` is empty.
void append_alerts_file(const std::string& path, const std::vector<MonitorAlert>& alerts);

}  // namespace scsq::obs
