#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "util/logging.hpp"

namespace scsq::obs {

namespace {

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (u < 0x20) {
      const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[(u >> 4) & 0xF] << hex[u & 0xF];
    } else {
      os << c;
    }
  }
}

void write_json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf")) << '"';
  }
}

std::string fmt_time(double s) {
  char buf[32];
  if (s >= 1.0 || s == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

std::string fmt_bytes(std::uint64_t b) {
  char buf[32];
  if (b >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(b) / (1024.0 * 1024.0));
  } else if (b >= 10ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(b) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace

double ProfileNode::busy_s() const {
  return std::max(0.0, drive_s - recv_wait_s - demarshal_s);
}

double ProfileNode::active_s() const {
  return std::max(0.0, drive_s - recv_wait_s) + marshal_s + send_stall_s;
}

double ProfileEdge::occupancy_s() const {
  return std::max(0.0, transit_s - window_wait_s);
}

double ProfileEdge::packetization_s() const {
  if (wire_bytes <= payload_bytes || wire_bytes == 0) return 0.0;
  return occupancy_s() * static_cast<double>(wire_bytes - payload_bytes) /
         static_cast<double>(wire_bytes);
}

double Attribution::attributed_total_s() const {
  double total = 0.0;
  for (const auto& s : slices) total += s.attributed_s;
  return total;
}

std::vector<std::uint64_t> Profile::critical_path() const {
  if (nodes.empty()) return {};
  std::map<std::uint64_t, std::size_t> index;
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i].rp, i);

  // Edges whose endpoints both exist (hand-built profiles may be sloppy;
  // the engine never is).
  std::vector<int> in_degree(nodes.size(), 0);
  std::vector<std::vector<std::size_t>> out(nodes.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    auto s = index.find(edges[e].src_rp);
    auto d = index.find(edges[e].dst_rp);
    if (s == index.end() || d == index.end() || s->second == d->second) continue;
    out[s->second].push_back(e);
    ++in_degree[d->second];
  }

  // Kahn topological order; smaller RP id first keeps it deterministic.
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  auto by_rp = [&](std::size_t a, std::size_t b) { return nodes[a].rp > nodes[b].rp; };
  std::sort(ready.begin(), ready.end(), by_rp);  // pop_back yields smallest

  std::vector<double> dist(nodes.size(), 0.0);
  std::vector<std::ptrdiff_t> pred(nodes.size(), -1);
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < nodes.size(); ++i) dist[i] = nodes[i].active_s();
  while (!ready.empty()) {
    const std::size_t n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (std::size_t e : out[n]) {
      const std::size_t d = index.at(edges[e].dst_rp);
      // cand >= the no-predecessor initial dist[d] always (weights are
      // non-negative), so a consumer's path always comes through some
      // producer; ties break toward the smaller producer RP id.
      const double cand = dist[n] + edges[e].occupancy_s() + nodes[d].active_s();
      const bool tie_smaller_rp =
          cand == dist[d] &&
          (pred[d] < 0 || nodes[n].rp < nodes[static_cast<std::size_t>(pred[d])].rp);
      if (cand > dist[d] || tie_smaller_rp) {
        dist[d] = cand;
        pred[d] = static_cast<std::ptrdiff_t>(n);
      }
      if (--in_degree[d] == 0) {
        ready.push_back(d);
        std::sort(ready.begin(), ready.end(), by_rp);
      }
    }
  }
  if (order.size() != nodes.size()) {
    // Cycle (cannot happen for engine-built profiles): fall back to the
    // heaviest single node rather than looping forever.
    SCSQ_LOG(kWarn) << "profile DAG has a cycle; critical path degraded";
  }

  if (order.empty()) return {};
  // Heaviest endpoint wins; ties toward the smaller RP id.
  std::size_t best = order[0];
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t n = order[i];
    if (dist[n] > dist[best] || (dist[n] == dist[best] && nodes[n].rp < nodes[best].rp)) {
      best = n;
    }
  }

  std::vector<std::uint64_t> path;
  for (std::ptrdiff_t n = static_cast<std::ptrdiff_t>(best); n >= 0; n = pred[static_cast<std::size_t>(n)]) {
    path.push_back(nodes[static_cast<std::size_t>(n)].rp);
    if (path.size() > nodes.size()) break;  // defensive (cycle fallback)
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Attribution Profile::attribution() const {
  Attribution a;
  a.elapsed_s = elapsed_s;

  const auto path = critical_path();
  std::set<std::uint64_t> on_path(path.begin(), path.end());
  std::set<std::pair<std::uint64_t, std::uint64_t>> path_hops;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    path_hops.emplace(path[i], path[i + 1]);
  }

  double compute = 0.0, marshal = 0.0, sender_stall = 0.0;
  for (const auto& n : nodes) {
    if (!on_path.contains(n.rp)) continue;
    compute += n.busy_s();
    marshal += n.marshal_s + n.demarshal_s;
    sender_stall += n.send_stall_s;
  }
  double wire = 0.0, packetization = 0.0;
  for (const auto& e : edges) {
    if (!path_hops.contains({e.src_rp, e.dst_rp})) continue;
    packetization += e.packetization_s();
    wire += e.occupancy_s() - e.packetization_s();
    sender_stall += e.window_wait_s;
  }

  const double setup = std::clamp(setup_s, 0.0, std::max(0.0, elapsed_s));
  const double run = std::max(0.0, elapsed_s - setup);

  struct Raw {
    const char* cause;
    double s;
  };
  const Raw raws[] = {
      {"compute", compute},
      {"marshal", marshal},
      {"link.wire", wire},
      {"link.packetization", packetization},
      {"coproc.switch", std::max(0.0, coproc_switch_s)},
      {"sender.stall", sender_stall},
  };
  double raw_total = 0.0;
  for (const auto& r : raws) raw_total += r.s;

  // Pipeline overlap can make raw cause time exceed the run window;
  // scale shares down then. Undershoot becomes explicit idle time.
  const double scale = raw_total > run && raw_total > 0.0 ? run / raw_total : 1.0;
  const double idle = raw_total < run ? run - raw_total : 0.0;

  auto push = [&](const std::string& cause, double raw, double attributed) {
    AttributionSlice s;
    s.cause = cause;
    s.raw_s = raw;
    s.attributed_s = attributed;
    s.share = elapsed_s > 0.0 ? attributed / elapsed_s : 0.0;
    a.slices.push_back(std::move(s));
  };
  push("setup", setup_s, setup);
  for (const auto& r : raws) push(r.cause, r.s, r.s * scale);
  push("idle", idle, idle);
  return a;
}

void Profile::render_text(std::ostream& os) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "-- EXPLAIN ANALYZE: %zu stream process(es), %zu connection(s), elapsed %s "
                "(setup %s)\n",
                nodes.size(), edges.size(), fmt_time(elapsed_s).c_str(),
                fmt_time(setup_s).c_str());
  os << buf;

  const auto path = critical_path();
  std::set<std::uint64_t> on_path(path.begin(), path.end());

  std::map<std::uint64_t, const ProfileNode*> by_rp;
  for (const auto& n : nodes) by_rp.emplace(n.rp, &n);
  std::map<std::uint64_t, std::vector<const ProfileEdge*>> incoming;
  std::set<std::uint64_t> has_outgoing;
  for (const auto& e : edges) {
    incoming[e.dst_rp].push_back(&e);
    has_outgoing.insert(e.src_rp);
  }
  for (auto& [rp, in] : incoming) {
    std::sort(in.begin(), in.end(), [](const ProfileEdge* a, const ProfileEdge* b) {
      return a->src_rp < b->src_rp;
    });
  }

  std::set<std::uint64_t> printed;
  // Recursive sink-down plan tree; a node feeding several consumers
  // prints its subtree once and a back-reference afterwards.
  auto print_node = [&](auto&& self, std::uint64_t rp, int depth) -> void {
    const std::string indent(static_cast<std::size_t>(depth) * 4, ' ');
    auto it = by_rp.find(rp);
    if (it == by_rp.end()) return;
    if (printed.contains(rp)) {
      os << indent << "rp#" << rp << " (shown above)\n";
      return;
    }
    printed.insert(rp);
    const ProfileNode& n = *it->second;
    std::snprintf(buf, sizeof(buf),
                  "%srp#%llu %s%s @ %s%s  out=%llu busy=%s marshal=%s demarshal=%s "
                  "stall=%s wait=%s batches=%llu fill=%.1f\n",
                  indent.c_str(), static_cast<unsigned long long>(n.rp),
                  n.op.empty() ? "" : n.op.c_str(), n.op.empty() ? "" : "",
                  n.loc.c_str(), on_path.contains(n.rp) ? " [critical]" : "",
                  static_cast<unsigned long long>(n.elements_out),
                  fmt_time(n.busy_s()).c_str(), fmt_time(n.marshal_s).c_str(),
                  fmt_time(n.demarshal_s).c_str(), fmt_time(n.send_stall_s).c_str(),
                  fmt_time(n.recv_wait_s).c_str(),
                  static_cast<unsigned long long>(n.batches), n.mean_batch_fill());
    os << buf;
    std::snprintf(buf, sizeof(buf), "%s  query: %s\n", indent.c_str(), n.query.c_str());
    os << buf;
    for (const ProfileEdge* e : incoming[rp]) {
      std::snprintf(buf, sizeof(buf),
                    "%s  <- rp#%llu [%s] %llu frame(s) %s payload / %s wire, occ=%s "
                    "winwait=%s, latency p50=%s p95=%s p99=%s\n",
                    indent.c_str(), static_cast<unsigned long long>(e->src_rp),
                    e->type.c_str(), static_cast<unsigned long long>(e->frames),
                    fmt_bytes(e->payload_bytes).c_str(), fmt_bytes(e->wire_bytes).c_str(),
                    fmt_time(e->occupancy_s()).c_str(), fmt_time(e->window_wait_s).c_str(),
                    fmt_time(e->latency.p50()).c_str(), fmt_time(e->latency.p95()).c_str(),
                    fmt_time(e->latency.p99()).c_str());
      os << buf;
      self(self, e->src_rp, depth + 1);
    }
  };

  std::vector<std::uint64_t> sinks;
  for (const auto& n : nodes) {
    if (!has_outgoing.contains(n.rp)) sinks.push_back(n.rp);
  }
  std::sort(sinks.begin(), sinks.end());
  for (auto rp : sinks) print_node(print_node, rp, 0);
  // Disconnected leftovers (defensive; engine profiles are connected).
  for (const auto& n : nodes) {
    if (!printed.contains(n.rp)) print_node(print_node, n.rp, 0);
  }

  os << "critical path:";
  if (path.empty()) {
    os << " (none)";
  } else {
    for (std::size_t i = 0; i < path.size(); ++i) {
      os << (i ? " -> " : " ") << "rp#" << path[i];
    }
  }
  os << '\n';

  const Attribution attr = attribution();
  os << "attribution (shares of simulated elapsed time):\n";
  for (const auto& s : attr.slices) {
    std::snprintf(buf, sizeof(buf), "  %-20s %12s  %5.1f%%   (raw %s)\n", s.cause.c_str(),
                  fmt_time(s.attributed_s).c_str(), s.share * 100.0,
                  fmt_time(s.raw_s).c_str());
    os << buf;
  }
  double share_total = 0.0;
  for (const auto& s : attr.slices) share_total += s.share;
  std::snprintf(buf, sizeof(buf), "  %-20s %12s  %5.1f%%\n", "total",
                fmt_time(attr.attributed_total_s()).c_str(), share_total * 100.0);
  os << buf;
}

void Profile::write_json(std::ostream& os) const {
  os << "{\"elapsed_s\":";
  write_json_number(os, elapsed_s);
  os << ",\"setup_s\":";
  write_json_number(os, setup_s);
  os << ",\"coproc_switch_s\":";
  write_json_number(os, coproc_switch_s);

  os << ",\"critical_path\":[";
  const auto path = critical_path();
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) os << ',';
    os << path[i];
  }
  os << ']';

  os << ",\"nodes\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    if (i) os << ',';
    os << "{\"rp\":" << n.rp << ",\"loc\":\"";
    write_json_escaped(os, n.loc);
    os << "\",\"op\":\"";
    write_json_escaped(os, n.op);
    os << "\",\"query\":\"";
    write_json_escaped(os, n.query);
    os << "\",\"is_client\":" << (n.is_client ? "true" : "false")
       << ",\"elements_out\":" << n.elements_out << ",\"bytes_sent\":" << n.bytes_sent
       << ",\"bytes_received\":" << n.bytes_received << ",\"drive_s\":";
    write_json_number(os, n.drive_s);
    os << ",\"busy_s\":";
    write_json_number(os, n.busy_s());
    os << ",\"recv_wait_s\":";
    write_json_number(os, n.recv_wait_s);
    os << ",\"demarshal_s\":";
    write_json_number(os, n.demarshal_s);
    os << ",\"marshal_s\":";
    write_json_number(os, n.marshal_s);
    os << ",\"send_stall_s\":";
    write_json_number(os, n.send_stall_s);
    os << ",\"batches\":" << n.batches << ",\"batch_items\":" << n.batch_items
       << ",\"mean_batch_fill\":";
    write_json_number(os, n.mean_batch_fill());
    os << '}';
  }
  os << ']';

  os << ",\"edges\":[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& e = edges[i];
    if (i) os << ',';
    os << "{\"src\":" << e.src_rp << ",\"dst\":" << e.dst_rp << ",\"type\":\"";
    write_json_escaped(os, e.type);
    os << "\",\"frames\":" << e.frames << ",\"payload_bytes\":" << e.payload_bytes
       << ",\"wire_bytes\":" << e.wire_bytes << ",\"transit_s\":";
    write_json_number(os, e.transit_s);
    os << ",\"window_wait_s\":";
    write_json_number(os, e.window_wait_s);
    os << ",\"occupancy_s\":";
    write_json_number(os, e.occupancy_s());
    os << ",\"packetization_s\":";
    write_json_number(os, e.packetization_s());
    os << ",\"latency\":{\"count\":" << e.latency.count() << ",\"min\":";
    write_json_number(os, e.latency.min());
    os << ",\"max\":";
    write_json_number(os, e.latency.max());
    os << ",\"mean\":";
    write_json_number(os, e.latency.mean());
    os << ",\"p50\":";
    write_json_number(os, e.latency.p50());
    os << ",\"p95\":";
    write_json_number(os, e.latency.p95());
    os << ",\"p99\":";
    write_json_number(os, e.latency.p99());
    os << "}}";
  }
  os << ']';

  const Attribution attr = attribution();
  os << ",\"attribution\":{\"slices\":[";
  for (std::size_t i = 0; i < attr.slices.size(); ++i) {
    const auto& s = attr.slices[i];
    if (i) os << ',';
    os << "{\"cause\":\"";
    write_json_escaped(os, s.cause);
    os << "\",\"raw_s\":";
    write_json_number(os, s.raw_s);
    os << ",\"attributed_s\":";
    write_json_number(os, s.attributed_s);
    os << ",\"share\":";
    write_json_number(os, s.share);
    os << '}';
  }
  os << "],\"attributed_total_s\":";
  write_json_number(os, attr.attributed_total_s());
  os << "}}";
}

std::string Profile::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace scsq::obs
