// EXPLAIN ANALYZE for SCSQ continuous queries.
//
// A Profile is the measured dataflow DAG of one query run: one node per
// stream process (RP) with its busy/marshal/wait split, one edge per
// producer→consumer stream connection with payload vs. wire bytes and a
// frame-latency LogHistogram. The analysis layer — critical path and
// per-cause time attribution — is pure functions of that data, so tests
// build Profiles by hand and the execution engine fills them from its
// live drivers (Engine::profile).
//
// Attribution taxonomy (DESIGN.md §5.3). Simulated elapsed time is
// decomposed into named causes:
//   setup               bind + wire phases before streams start
//   compute             SQEP operator work (drive time minus waits)
//   marshal             send-side marshal + receive-side de-marshal CPU
//   link.wire           useful-payload share of link occupancy
//   link.packetization  wire minus payload share (1KB-rounded torus
//                       packets: the paper's sub-1KB bandwidth collapse)
//   coproc.switch       receive co-processor source switching (Fig. 8)
//   sender.stall        waits for a free send buffer or link window
//   idle                elapsed time none of the above explains
//
// Raw cause seconds are measured along the *critical path* (heaviest
// node+edge chain through the DAG); because a pipeline overlaps stages,
// their sum can exceed the run time, in which case the attributed
// shares are scaled down proportionally, and when they undershoot the
// remainder is attributed to idle. Either way the invariant holds
// exactly: attributed seconds sum to the simulated elapsed time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace scsq::obs {

/// One stream process (RP) in the measured dataflow DAG.
struct ProfileNode {
  std::uint64_t rp = 0;
  std::string loc;       // "bg:1", "fe:0", ...
  std::string query;     // pretty-printed subquery
  std::string op;        // root SQEP operator name ("count", "gen_array"...)
  bool is_client = false;
  std::uint64_t elements_out = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  double drive_s = 0.0;      // time inside root->next() (includes waits)
  double recv_wait_s = 0.0;  // blocked on an empty inbox (queue-wait)
  double demarshal_s = 0.0;  // receive-side de-marshal + alloc CPU
  double marshal_s = 0.0;    // send-side marshal CPU
  double send_stall_s = 0.0; // waiting for a free send buffer
  std::uint64_t batches = 0;      // non-empty batches the SQEP root delivered
  std::uint64_t batch_items = 0;  // items across those batches

  /// Items per delivered batch — 1.0 under per-item execution
  /// (SCSQ_BATCH_SIZE=1), larger once batch pulls actually coalesce.
  double mean_batch_fill() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batch_items) / static_cast<double>(batches);
  }

  /// Pure SQEP compute: drive time with the in-drive waits removed.
  double busy_s() const;
  /// Everything this RP actively did — the critical-path node weight.
  double active_s() const;
};

/// One producer→consumer stream connection.
struct ProfileEdge {
  std::uint64_t src_rp = 0;
  std::uint64_t dst_rp = 0;
  std::string type;  // "mpi", "tcp", "tcp_to_bg", "tcp_from_bg", "local"
  std::uint64_t frames = 0;
  std::uint64_t payload_bytes = 0;
  /// Payload rounded up to the wire granularity (full torus packets for
  /// MPI links); wire - payload is the packetization waste.
  std::uint64_t wire_bytes = 0;
  double transit_s = 0.0;      // sum of frame queue-entry -> delivery
  double window_wait_s = 0.0;  // share of transit waiting for the link window
  LogHistogram latency;        // per-frame transit seconds

  /// Link occupancy excluding window queueing — the edge weight.
  double occupancy_s() const;
  /// Share of occupancy spent moving padding rather than payload.
  double packetization_s() const;
};

/// One attribution slice: a cause, its raw measured seconds, and the
/// seconds of elapsed time attributed to it (see file comment for the
/// normalization rule).
struct AttributionSlice {
  std::string cause;
  double raw_s = 0.0;
  double attributed_s = 0.0;
  double share = 0.0;  // attributed_s / elapsed_s
};

struct Attribution {
  std::vector<AttributionSlice> slices;
  double elapsed_s = 0.0;
  double attributed_total_s() const;
};

class Profile {
 public:
  double elapsed_s = 0.0;
  double setup_s = 0.0;
  /// Machine-wide torus receive-side source-switch seconds.
  double coproc_switch_s = 0.0;
  std::vector<ProfileNode> nodes;
  std::vector<ProfileEdge> edges;

  /// RP ids of the heaviest source→sink chain (node active time + edge
  /// occupancy), in flow order. A DAG with no edges yields the single
  /// heaviest node; empty profile yields an empty path. Ties break
  /// toward smaller RP ids for determinism.
  std::vector<std::uint64_t> critical_path() const;

  /// Per-cause decomposition of elapsed_s; attributed seconds sum to
  /// elapsed_s exactly (the --check-profile invariant).
  Attribution attribution() const;

  /// Annotated plan-tree report: the DAG rendered sink-down with
  /// per-node and per-edge measurements, the critical path, and the
  /// attribution table.
  void render_text(std::ostream& os) const;

  /// One JSON object (single line) with nodes, edges (latency quantiles
  /// included), critical path, and attribution.
  void write_json(std::ostream& os) const;
  std::string json() const;
};

}  // namespace scsq::obs
