#include "obs/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "sim/trace.hpp"
#include "util/logging.hpp"

namespace scsq::obs {

namespace {

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (u < 0x20) {
      const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[(u >> 4) & 0xF] << hex[u & 0xF];
    } else {
      os << c;
    }
  }
}

// JSON numbers must be finite; a gauge could legitimately carry an inf
// (e.g. a rate over a zero-duration episode upstream).
void write_json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf")) << '"';
  }
}

}  // namespace

double Sampler::Window::counter_rate_sum(const std::string& substr) const {
  double total = 0.0;
  for (const auto& c : counters) {
    if (c.key.find(substr) != std::string::npos) total += c.rate;
  }
  return total;
}

std::uint64_t Sampler::Window::counter_delta_sum(const std::string& substr) const {
  std::uint64_t total = 0;
  for (const auto& c : counters) {
    if (c.key.find(substr) != std::string::npos) total += c.delta;
  }
  return total;
}

Sampler::Sampler(sim::Simulator& sim, Registry& registry, Options opts)
    : sim_(sim), registry_(registry), opts_(opts) {}

void Sampler::add_publisher(std::function<void()> fn) {
  SCSQ_CHECK(fn != nullptr) << "sampler publisher must be callable";
  publishers_.push_back(std::move(fn));
}

void Sampler::set_window_observer(std::function<void(const Window&, std::size_t)> fn) {
  window_observer_ = std::move(fn);
}

void Sampler::add_log_histogram(std::string key, const LogHistogram* hist) {
  if (!enabled() || !active_) return;
  SCSQ_CHECK(hist != nullptr) << "sampler log-histogram must be non-null";
  log_hists_.push_back(TrackedHist{std::move(key), hist, *hist});
}

void Sampler::begin(sim::Time t0, sim::Trace* trace) {
  if (!enabled()) return;
  finish();  // tolerate a missing finish() from an aborted prior run
  trace_ = trace;
  windows_.clear();
  log_hists_.clear();
  // Fresh counter baselines: run the pull-metrics hooks first so totals
  // accumulated before this statement do not leak into window 0.
  for (const auto& p : publishers_) p();
  prev_counters_.assign(registry_.size(), 0);
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    const auto e = registry_.entry(i);
    if (e.counter) prev_counters_[i] = e.counter->value();
  }
  window_start_ = t0;
  active_ = true;
  timer_ = sim_.call_at(t0 + opts_.interval_s, [this] { tick(); });
  timer_armed_ = true;
}

void Sampler::finish() {
  if (!active_) return;
  if (timer_armed_) {
    sim_.cancel_timer(timer_);
    timer_armed_ = false;
  }
  if (sim_.now() > window_start_) take_window(sim_.now());
  // Registered histograms (per-link latency) die with the statement;
  // drop the pointers before teardown can dangle them.
  log_hists_.clear();
  trace_ = nullptr;
  active_ = false;
}

void Sampler::tick() {
  timer_armed_ = false;
  const sim::Time at = sim_.now();
  take_window(at);
  window_start_ = at;
  // Re-arm only while real events remain. Without the backstop the
  // sampler would chase an otherwise-drained queue forever; with it, the
  // last armed tick parks past the workload's end and finish() cancels
  // it before the clock could reach it.
  if (sim_.next_event_time() != sim::Simulator::kNoLimit) {
    timer_ = sim_.call_at(at + opts_.interval_s, [this] { tick(); });
    timer_armed_ = true;
  }
}

void Sampler::take_window(sim::Time t_end) {
  if (t_end <= window_start_) return;
  for (const auto& p : publishers_) p();
  const double dt = t_end - window_start_;
  Window w;
  w.t_start = window_start_;
  w.t_end = t_end;
  // Series registered since the last window baseline at zero — correct,
  // since every counter starts at zero.
  prev_counters_.resize(registry_.size(), 0);
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    const auto e = registry_.entry(i);
    if (e.counter) {
      const std::uint64_t value = e.counter->value();
      const std::uint64_t delta = value - prev_counters_[i];
      prev_counters_[i] = value;
      if (delta != 0) {
        w.counters.push_back(CounterSample{metric_key(e.name, e.labels), delta,
                                           static_cast<double>(delta) / dt});
      }
    } else if (e.gauge) {
      w.gauges.push_back(GaugeSample{metric_key(e.name, e.labels), e.gauge->value()});
    }
  }
  for (auto& th : log_hists_) {
    const LogHistogram window = th.hist->delta_since(th.baseline);
    th.baseline = *th.hist;
    if (window.count() == 0) {
      // Idle window: keep the entry so consumers see the series exists,
      // with quantiles that write_jsonl emits as nulls.
      w.histograms.push_back(HistWindow{th.key, 0, 0.0, 0.0, 0.0, 0.0});
      continue;
    }
    w.histograms.push_back(HistWindow{th.key, window.count(), window.mean(),
                                      window.p50(), window.p95(), window.p99()});
  }
  if (trace_ != nullptr) {
    // Chrome "C" tracks: one series per metric *name*, rates aggregated
    // across label sets (per-label tracks would drown Perfetto).
    std::vector<std::pair<std::string, double>> by_name;
    for (const auto& c : w.counters) {
      const std::string name = c.key.substr(0, c.key.find('{'));
      auto it = std::find_if(by_name.begin(), by_name.end(),
                             [&](const auto& p) { return p.first == name; });
      if (it == by_name.end()) {
        by_name.emplace_back(name, c.rate);
      } else {
        it->second += c.rate;
      }
    }
    for (const auto& [name, rate] : by_name) {
      trace_->counter("metrics", name + "/s", t_end, rate);
    }
    trace_->counter("sampler", "sim.queue_depth", t_end,
                    static_cast<double>(sim_.queue_depth()));
  }
  windows_.push_back(std::move(w));
  if (window_observer_) window_observer_(windows_.back(), windows_.size() - 1);
}

void Sampler::write_jsonl(std::ostream& os) const {
  const auto prev_precision = os.precision(17);
  for (std::size_t n = 0; n < windows_.size(); ++n) {
    const Window& w = windows_[n];
    os << "{\"window\":" << n << ",\"t_start\":" << w.t_start
       << ",\"t_end\":" << w.t_end << ",\"counters\":{";
    bool first = true;
    for (const auto& c : w.counters) {
      if (!first) os << ',';
      first = false;
      os << '"';
      write_json_escaped(os, c.key);
      os << "\":{\"delta\":" << c.delta << ",\"rate\":" << c.rate << '}';
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& g : w.gauges) {
      if (!first) os << ',';
      first = false;
      os << '"';
      write_json_escaped(os, g.key);
      os << "\":";
      write_json_number(os, g.value);
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& h : w.histograms) {
      if (!first) os << ',';
      first = false;
      os << '"';
      write_json_escaped(os, h.key);
      if (h.count == 0) {
        // No observations: there is no meaningful quantile, and 0.0
        // would be indistinguishable from a genuinely-zero latency.
        os << "\":{\"count\":0,\"mean\":null,\"p50\":null,\"p95\":null,"
           << "\"p99\":null}";
      } else {
        os << "\":{\"count\":" << h.count << ",\"mean\":" << h.mean
           << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99
           << '}';
      }
    }
    os << "}}\n";
  }
  os.precision(prev_precision);
}

}  // namespace scsq::obs
