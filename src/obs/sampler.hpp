// Sim-time telemetry sampler: periodic windowed snapshots of the
// metrics Registry, driven by the simulation clock.
//
// A figure table in this repo answers "what was the steady state"; the
// sampler answers "how did it get there" — per-window counter deltas and
// rates, gauge point samples, and per-window latency quantiles, emitted
// as a JSONL time series (one line per window) and, when a Trace is
// attached, as Chrome-trace "C" counter tracks alongside the existing
// busy/flow events.
//
// Determinism contract (the reason this lives on the kernel's call_at
// timers and not on wall-clock threads): every sample is a zero-duration
// read-only callback. Ticks interleave with real events but delay
// nothing, and the statement's own event order within a timestamp is
// untouched. When the workload drains, the in-flight tick is
// cancel_timer()'d; the kernel consumes the parked node silently — it
// does not advance now(), does not count as a dispatched event, and
// cannot keep run() from returning. Net effect: every figure table and
// every elapsed_s is byte-identical with the sampler on or off, at any
// SCSQ_SIM_LPS / SCSQ_BATCH_SIZE / SCSQ_BENCH_THREADS setting. The only
// sampler-visible perturbations (extra heap pushes, peak queue depth,
// the events/s stderr banner) are confined to side channels.
//
// Windowing model:
//  - Counters: per-window delta + rate (delta / window length), computed
//    against an index-based baseline — Registry entries are append-only,
//    so entry i is the same series across the whole run and a series
//    registered mid-run baselines at zero (counters start at zero).
//    Zero-delta counters are omitted from the window (compactness).
//  - Gauges: point sample at the window boundary, every registered gauge.
//  - LogHistograms (per-link latency etc.) are not Registry entries;
//    interested parties register them with add_log_histogram() and the
//    sampler forms per-window quantiles via LogHistogram::delta_since.
//
// Threading: strictly the owning Simulator's thread, like the Registry.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace scsq::sim {
class Trace;
}

namespace scsq::obs {

class Sampler {
 public:
  struct Options {
    /// Window length in simulated seconds; <= 0 disables the sampler
    /// entirely (begin/finish become no-ops).
    double interval_s = 0.0;
  };

  /// One counter series inside a window. `key` is metric_key(name,labels).
  struct CounterSample {
    std::string key;
    std::uint64_t delta = 0;  // increments inside this window
    double rate = 0.0;        // delta / (t_end - t_start)
  };

  struct GaugeSample {
    std::string key;
    double value = 0.0;
  };

  /// Per-window quantiles of one registered LogHistogram. A window with
  /// no observations still produces an entry (count == 0) so consumers
  /// can tell "link idle this window" from "link not registered"; its
  /// quantile fields are meaningless and write_jsonl emits them as JSON
  /// nulls.
  struct HistWindow {
    std::string key;
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  struct Window {
    double t_start = 0.0;
    double t_end = 0.0;
    std::vector<CounterSample> counters;    // nonzero deltas only
    std::vector<GaugeSample> gauges;        // every registered gauge
    std::vector<HistWindow> histograms;     // every registered histogram

    /// Sum of `rate` over counters whose key contains `substr`
    /// (substring match, same convention as the \metrics filter).
    double counter_rate_sum(const std::string& substr) const;
    std::uint64_t counter_delta_sum(const std::string& substr) const;
  };

  Sampler(sim::Simulator& sim, Registry& registry, Options opts);

  bool enabled() const { return opts_.interval_s > 0.0; }
  double interval_s() const { return opts_.interval_s; }

  /// Registers a hook run immediately before every snapshot, so pull-
  /// model metrics (Machine::publish_metrics and friends) are fresh in
  /// the Registry when the window closes. Survives begin()/finish().
  void add_publisher(std::function<void()> fn);

  /// Installs the window observer: called synchronously right after each
  /// window is appended to windows(), with the window and its index.
  /// Runs on the simulator thread inside the zero-duration sample
  /// callback, so the observer must not advance simulated time. One
  /// observer only (the engine fans out to monitors and listeners);
  /// survives begin()/finish(). Pass nullptr to clear.
  void set_window_observer(std::function<void(const Window&, std::size_t)> fn);

  /// Registers a LogHistogram for per-window quantile extraction under
  /// `key`. The pointer must stay valid until finish() — which clears
  /// all registrations, because the histograms (per-link latency) are
  /// torn down with the statement. Baseline = the histogram's current
  /// contents, so only observations after registration are windowed.
  void add_log_histogram(std::string key, const LogHistogram* hist);

  /// Starts a sampling run at simulated time t0: clears previous
  /// windows, baselines every counter, arms the first tick at
  /// t0 + interval. `trace` (may be null) receives "C" counter events at
  /// each window boundary; it is passed here rather than at construction
  /// because the shell attaches its Trace after the stack is built.
  void begin(sim::Time t0, sim::Trace* trace);

  /// Ends the sampling run: cancels the in-flight tick (the kernel
  /// consumes the parked node without observable effect), takes the
  /// final partial window (skipped when empty), and drops LogHistogram
  /// registrations. Idempotent; safe to call with sampling disabled.
  void finish();

  bool active() const { return active_; }
  const std::vector<Window>& windows() const { return windows_; }

  /// One JSONL line per window:
  /// {"window":N,"t_start":..,"t_end":..,"counters":{key:{"delta":..,
  /// "rate":..}},"gauges":{..},"histograms":{key:{"count":..,..}}}
  /// Every line starts with `{"window"` so harnesses can splice extra
  /// leading fields (the bench run_points tag lines with their point).
  void write_jsonl(std::ostream& os) const;

 private:
  struct TrackedHist {
    std::string key;
    const LogHistogram* hist;
    LogHistogram baseline;
  };

  void tick();
  void take_window(sim::Time t_end);

  sim::Simulator& sim_;
  Registry& registry_;
  Options opts_;
  sim::Trace* trace_ = nullptr;
  std::function<void(const Window&, std::size_t)> window_observer_;
  std::vector<std::function<void()>> publishers_;
  std::vector<TrackedHist> log_hists_;
  std::vector<std::uint64_t> prev_counters_;  // by Registry entry index
  std::vector<Window> windows_;
  sim::Time window_start_ = 0.0;
  sim::Simulator::TimerId timer_;
  bool timer_armed_ = false;
  bool active_ = false;
};

}  // namespace scsq::obs
