#include "obs/sim_bridge.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace scsq::obs {

void bridge_sim_perf(Registry& registry, const sim::PerfCounters& perf) {
  registry.counter("sim.events_dispatched").set_total(perf.events_dispatched);
  registry.counter("sim.heap_pushes").set_total(perf.heap_pushes);
  registry.counter("sim.fifo_pushes").set_total(perf.fifo_pushes);
  registry.counter("sim.callbacks_run").set_total(perf.callbacks_run);
  registry.counter("sim.channel_sends").set_total(perf.channel_sends);
  registry.counter("sim.channel_recvs").set_total(perf.channel_recvs);
  registry.counter("sim.channel_waits").set_total(perf.channel_waits);
  registry.counter("sim.wakeups").set_total(perf.wakeups);
  registry.gauge("sim.peak_queue_depth").set(static_cast<double>(perf.peak_queue_depth));
  // Event-queue internals. These depend on the pending-event-set
  // implementation (SCSQ_EVENT_QUEUE) — rung spills and bottom resorts
  // are zero in heap mode — so metrics_diff exempts the sim.queue.*
  // family from regression gating, like the layout gauges.
  registry.counter("sim.queue.rung_spills").set_total(perf.rung_spills);
  registry.counter("sim.queue.bottom_resorts").set_total(perf.bottom_resorts);
  registry.counter("sim.queue.cancel_consumed").set_total(perf.cancel_consumed);
  // Coroutine-frame pool (process-wide; see sim/task.hpp). Bridged here
  // so frame-recycling health is visible next to the kernel counters.
  const sim::CoroPoolStats pool = sim::coro_pool_stats();
  registry.counter("sim.coro.bucket_reused").set_total(pool.bucket_reused);
  registry.counter("sim.coro.chunk_allocs").set_total(pool.chunk_allocs);
  registry.counter("sim.coro.oversize_allocs").set_total(pool.oversize_allocs);
}

void bridge_plp_stats(Registry& registry, const std::vector<sim::plp::LpStats>& per_lp) {
  sim::plp::LpStats totals;
  for (std::size_t i = 0; i < per_lp.size(); ++i) {
    const auto& s = per_lp[i];
    const Labels labels{{"lp", std::to_string(i)}};
    registry.counter("sim.lp.events", labels).set_total(s.events);
    registry.counter("sim.lp.windows", labels).set_total(s.windows);
    registry.counter("sim.lp.stalls", labels).set_total(s.stalls);
    registry.counter("sim.lp.null_updates", labels).set_total(s.null_updates);
    registry.counter("sim.lp.msgs_sent", labels).set_total(s.msgs_sent);
    registry.counter("sim.lp.msgs_recvd", labels).set_total(s.msgs_recvd);
    registry.counter("sim.lp.mailbox_full", labels).set_total(s.mailbox_full);
    totals.events += s.events;
    totals.windows += s.windows;
    totals.stalls += s.stalls;
    totals.null_updates += s.null_updates;
    totals.msgs_sent += s.msgs_sent;
    totals.msgs_recvd += s.msgs_recvd;
    totals.mailbox_full += s.mailbox_full;
  }
  registry.gauge("sim.lp.count").set(static_cast<double>(per_lp.size()));
  registry.counter("sim.lp.total.events").set_total(totals.events);
  registry.counter("sim.lp.total.windows").set_total(totals.windows);
  registry.counter("sim.lp.total.stalls").set_total(totals.stalls);
  registry.counter("sim.lp.total.null_updates").set_total(totals.null_updates);
  registry.counter("sim.lp.total.msgs_sent").set_total(totals.msgs_sent);
  registry.counter("sim.lp.total.msgs_recvd").set_total(totals.msgs_recvd);
  registry.counter("sim.lp.total.mailbox_full").set_total(totals.mailbox_full);
}

void bridge_plp_live(Registry& registry, const std::vector<sim::plp::LpLiveSample>& live) {
  double min_horizon = 0.0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    min_horizon = i == 0 ? live[i].horizon_s : std::min(min_horizon, live[i].horizon_s);
  }
  for (const auto& s : live) {
    const Labels labels{{"lp", std::to_string(s.lp)}};
    registry.counter("sim.lp.live.events", labels).set_total(s.events);
    registry.counter("sim.lp.live.null_updates", labels).set_total(s.null_updates);
    registry.counter("sim.lp.live.msgs_sent", labels).set_total(s.msgs_sent);
    registry.counter("sim.lp.live.msgs_recvd", labels).set_total(s.msgs_recvd);
    registry.gauge("sim.lp.live.mailbox_depth", labels)
        .set(static_cast<double>(s.inbox_depth));
    const double traffic = static_cast<double>(s.null_updates + s.msgs_sent);
    registry.gauge("sim.lp.live.null_ratio", labels)
        .set(traffic > 0.0 ? static_cast<double>(s.null_updates) / traffic : 0.0);
    registry.gauge("sim.lp.live.running_s", labels).set(s.running_s);
    registry.gauge("sim.lp.live.blocked_s", labels).set(s.blocked_s);
    registry.gauge("sim.lp.live.horizon_s", labels).set(s.horizon_s);
    registry.gauge("sim.lp.live.clock_lag_s", labels).set(s.horizon_s - min_horizon);
  }
}

}  // namespace scsq::obs
