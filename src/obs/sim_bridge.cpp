#include "obs/sim_bridge.hpp"

#include "obs/metrics.hpp"

namespace scsq::obs {

void bridge_sim_perf(Registry& registry, const sim::PerfCounters& perf) {
  registry.counter("sim.events_dispatched").set_total(perf.events_dispatched);
  registry.counter("sim.heap_pushes").set_total(perf.heap_pushes);
  registry.counter("sim.fifo_pushes").set_total(perf.fifo_pushes);
  registry.counter("sim.callbacks_run").set_total(perf.callbacks_run);
  registry.counter("sim.channel_sends").set_total(perf.channel_sends);
  registry.counter("sim.channel_recvs").set_total(perf.channel_recvs);
  registry.counter("sim.channel_waits").set_total(perf.channel_waits);
  registry.counter("sim.wakeups").set_total(perf.wakeups);
  registry.gauge("sim.peak_queue_depth").set(static_cast<double>(perf.peak_queue_depth));
}

}  // namespace scsq::obs
