// Bridges the simulation kernel's inline PerfCounters into the metrics
// registry, so kernel event-loop statistics appear next to the per-link
// and per-RP metrics in every exporter snapshot.
//
// The kernel keeps its counters as plain struct members (a registry
// handle per dispatch would be a pointer chase in the hottest loop of
// the repo); this bridge copies them over on demand — call it right
// before snapshotting. Idempotent: counters are set to the kernel's
// cumulative totals, so bridging twice does not double-count.
#pragma once

#include <vector>

#include "sim/plp.hpp"
#include "sim/simulator.hpp"

namespace scsq::obs {

class Registry;

/// Publishes `perf` into `registry` under sim.* metric names.
void bridge_sim_perf(Registry& registry, const sim::PerfCounters& perf);

/// Publishes the conservative parallel runtime's per-LP counters into
/// `registry` as sim.lp.* metrics, one series per LP (label lp="<id>")
/// plus unlabeled totals. Horizon-stall and null-message counters land
/// here, next to the kernel and engine series. Idempotent like
/// bridge_sim_perf: totals are set, not added.
void bridge_plp_stats(Registry& registry, const std::vector<sim::plp::LpStats>& per_lp);

/// Publishes a live snapshot (Runtime::live_sample()) into `registry`
/// as sim.lp.live.* metrics: per-LP counters for events / null updates /
/// messages (set_total — the live mirrors are monotone, so windowed
/// rates fall out of the telemetry sampler), plus gauges for mailbox
/// depth, null-message ratio (null_updates / (null_updates+msgs_sent)),
/// wall running/blocked seconds, the LP frontier, and clock_lag_s —
/// each LP's frontier minus the global minimum frontier, the
/// "who is holding everyone back" view of the conservative protocol.
/// Safe to call from a monitor thread while the runtime is in flight
/// (the snapshot is plain data; the registry must be monitor-owned).
void bridge_plp_live(Registry& registry, const std::vector<sim::plp::LpLiveSample>& live);

}  // namespace scsq::obs
