// Bridges the simulation kernel's inline PerfCounters into the metrics
// registry, so kernel event-loop statistics appear next to the per-link
// and per-RP metrics in every exporter snapshot.
//
// The kernel keeps its counters as plain struct members (a registry
// handle per dispatch would be a pointer chase in the hottest loop of
// the repo); this bridge copies them over on demand — call it right
// before snapshotting. Idempotent: counters are set to the kernel's
// cumulative totals, so bridging twice does not double-count.
#pragma once

#include <vector>

#include "sim/plp.hpp"
#include "sim/simulator.hpp"

namespace scsq::obs {

class Registry;

/// Publishes `perf` into `registry` under sim.* metric names.
void bridge_sim_perf(Registry& registry, const sim::PerfCounters& perf);

/// Publishes the conservative parallel runtime's per-LP counters into
/// `registry` as sim.lp.* metrics, one series per LP (label lp="<id>")
/// plus unlabeled totals. Horizon-stall and null-message counters land
/// here, next to the kernel and engine series. Idempotent like
/// bridge_sim_perf: totals are set, not added.
void bridge_plp_stats(Registry& registry, const std::vector<sim::plp::LpStats>& per_lp);

}  // namespace scsq::obs
