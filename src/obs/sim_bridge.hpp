// Bridges the simulation kernel's inline PerfCounters into the metrics
// registry, so kernel event-loop statistics appear next to the per-link
// and per-RP metrics in every exporter snapshot.
//
// The kernel keeps its counters as plain struct members (a registry
// handle per dispatch would be a pointer chase in the hottest loop of
// the repo); this bridge copies them over on demand — call it right
// before snapshotting. Idempotent: counters are set to the kernel's
// cumulative totals, so bridging twice does not double-count.
#pragma once

#include "sim/simulator.hpp"

namespace scsq::obs {

class Registry;

/// Publishes `perf` into `registry` under sim.* metric names.
void bridge_sim_perf(Registry& registry, const sim::PerfCounters& perf);

}  // namespace scsq::obs
