#include "plan/builder.hpp"

#include "plan/fusion.hpp"
#include "plan/introspect_ops.hpp"
#include "plan/lroad_ops.hpp"
#include "plan/operators.hpp"
#include "plan/window_ops.hpp"

namespace scsq::plan {
namespace {

using catalog::Kind;
using catalog::Object;
using scsql::Error;
using scsql::ExprKind;
using scsql::ExprPtr;

/// extract(x): x must evaluate to an SP handle.
OperatorPtr build_extract(const scsql::Expr& call, PlanContext& ctx) {
  if (call.args.size() != 1) throw Error("extract() takes one argument", call.pos);
  Object target = ctx.const_eval(call.args[0]);
  if (target.kind() != Kind::kSp) {
    throw Error("extract() argument must be a stream process", call.pos);
  }
  return std::make_unique<ReceiveOp>(ctx.subscribe(target.as_sp()));
}

/// merge(x): x must evaluate to a bag of SP handles (or a single SP).
OperatorPtr build_merge(const scsql::Expr& call, PlanContext& ctx) {
  if (call.args.size() != 1) throw Error("merge() takes one argument", call.pos);
  Object target = ctx.const_eval(call.args[0]);
  std::vector<transport::ReceiverDriver*> drivers;
  if (target.kind() == Kind::kSp) {
    drivers.push_back(&ctx.subscribe(target.as_sp()));
  } else if (target.kind() == Kind::kBag) {
    for (const auto& el : target.as_bag()) {
      if (el.kind() != Kind::kSp) {
        throw Error("merge() bag must contain stream processes", call.pos);
      }
      drivers.push_back(&ctx.subscribe(el.as_sp()));
    }
  } else {
    throw Error("merge() argument must be a bag of stream processes", call.pos);
  }
  if (drivers.empty()) throw Error("merge() of an empty bag", call.pos);
  return std::make_unique<MergeOp>(ctx, std::move(drivers));
}

OperatorPtr build_radixcombine(const scsql::Expr& call, PlanContext& ctx) {
  if (call.args.size() != 1) throw Error("radixcombine() takes one argument", call.pos);
  // The canonical form is radixcombine(merge({odd_sp, even_sp})): we
  // keep the two legs separate so partial FFTs pair positionally.
  const auto& arg = *call.args[0];
  if (arg.kind == ExprKind::kCall && arg.name == "merge" && arg.args.size() == 1) {
    Object target = ctx.const_eval(arg.args[0]);
    if (target.kind() == Kind::kBag && target.as_bag().size() == 2 &&
        target.as_bag()[0].kind() == Kind::kSp && target.as_bag()[1].kind() == Kind::kSp) {
      auto odd_leg =
          std::make_unique<ReceiveOp>(ctx.subscribe(target.as_bag()[0].as_sp()));
      auto even_leg =
          std::make_unique<ReceiveOp>(ctx.subscribe(target.as_bag()[1].as_sp()));
      return std::make_unique<RadixCombineOp>(ctx, std::move(odd_leg), std::move(even_leg));
    }
  }
  throw Error("radixcombine() expects merge({odd_sp, even_sp})", call.pos);
}

OperatorPtr build_gen_array(const scsql::Expr& call, PlanContext& ctx) {
  if (call.args.size() != 2) throw Error("gen_array(bytes, count) takes two arguments",
                                         call.pos);
  Object bytes = ctx.const_eval(call.args[0]);
  Object count = ctx.const_eval(call.args[1]);
  if (bytes.kind() != Kind::kInt || count.kind() != Kind::kInt) {
    throw Error("gen_array() arguments must be integers", call.pos);
  }
  if (bytes.as_int() < 0) throw Error("gen_array() size must be non-negative", call.pos);
  if (count.as_int() < 0) {
    throw Error("gen_array() count must be non-negative (use gen_stream() for an "
                "unbounded stream)",
                call.pos);
  }
  return std::make_unique<GenArrayOp>(ctx, static_cast<std::uint64_t>(bytes.as_int()),
                                      count.as_int());
}

OperatorPtr build_grep(const scsql::Expr& call, PlanContext& ctx) {
  if (call.args.size() != 2) throw Error("grep(pattern, filename) takes two arguments",
                                         call.pos);
  Object pattern = ctx.const_eval(call.args[0]);
  Object file = ctx.const_eval(call.args[1]);
  if (pattern.kind() != Kind::kStr || file.kind() != Kind::kStr) {
    throw Error("grep() arguments must be strings", call.pos);
  }
  return std::make_unique<GrepOp>(ctx, pattern.as_str(), file.as_str());
}

/// system.metrics/gauges/rates([pattern]) and system.lp(): introspection
/// sources, legal only inside a monitor plan (ctx.introspect set by
/// Engine::register_monitor's runner).
OperatorPtr build_introspect(const scsql::Expr& call, PlanContext& ctx) {
  if (ctx.introspect == nullptr) {
    throw Error(call.name + "() is an introspection source and is only available in "
                "monitor queries (\\monitor or Engine::register_monitor)",
                call.pos);
  }
  if (call.name == "system.lp") {
    if (!call.args.empty()) throw Error("system.lp() takes no arguments", call.pos);
    return std::make_unique<LpStreamOp>(ctx);
  }
  std::string pattern;
  if (call.args.size() > 1) {
    throw Error(call.name + "([pattern]) takes at most one argument", call.pos);
  }
  if (call.args.size() == 1) {
    Object p = ctx.const_eval(call.args[0]);
    if (p.kind() != Kind::kStr) {
      throw Error(call.name + "() pattern must be a string", call.pos);
    }
    pattern = p.as_str();
  }
  if (call.name == "system.metrics") {
    return std::make_unique<MetricsStreamOp>(ctx, std::move(pattern));
  }
  if (call.name == "system.gauges") {
    return std::make_unique<GaugeStreamOp>(ctx, std::move(pattern));
  }
  return std::make_unique<RateStreamOp>(ctx, std::move(pattern));
}

}  // namespace

OperatorPtr build_plan(const ExprPtr& expr, PlanContext& ctx) {
  SCSQ_CHECK(expr != nullptr) << "null plan expression";
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return std::make_unique<ConstOp>(ctx, expr->literal);
    case ExprKind::kVar:
    case ExprKind::kBinary:
    case ExprKind::kNeg:
    case ExprKind::kBagCtor:
      // Non-streaming: evaluate against the captured environment.
      return std::make_unique<ConstOp>(ctx, ctx.const_eval(expr));
    case ExprKind::kSelect:
      throw Error("nested select inside a stream process plan is not supported",
                  expr->pos);
    case ExprKind::kCall:
      break;
  }

  // Fusion pass: collapse a stateless chain into one batched operator
  // when batch execution is on. Falls through to the regular per-op
  // build (and its error reporting) whenever the shape doesn't match.
  if (auto fused = try_build_fused(expr, ctx)) return fused;

  const auto& name = expr->name;
  if (name == "extract") return build_extract(*expr, ctx);
  if (name == "merge") return build_merge(*expr, ctx);
  if (name == "radixcombine") return build_radixcombine(*expr, ctx);
  if (name == "gen_array") return build_gen_array(*expr, ctx);
  if (name == "grep") return build_grep(*expr, ctx);
  if (name == "count") {
    if (expr->args.size() != 1) throw Error("count() takes one argument", expr->pos);
    return std::make_unique<CountOp>(ctx, build_plan(expr->args[0], ctx));
  }
  if (name == "sum") {
    if (expr->args.size() != 1) throw Error("sum() takes one argument", expr->pos);
    return std::make_unique<SumOp>(ctx, build_plan(expr->args[0], ctx));
  }
  if (name == "streamof") {
    if (expr->args.size() != 1) throw Error("streamof() takes one argument", expr->pos);
    return std::make_unique<PassOp>(build_plan(expr->args[0], ctx));
  }
  if (name == "odd" || name == "even" || name == "fft") {
    if (expr->args.size() != 1) throw Error(name + "() takes one argument", expr->pos);
    auto fn = name == "odd"    ? ArrayMapOp::Fn::kOdd
              : name == "even" ? ArrayMapOp::Fn::kEven
                               : ArrayMapOp::Fn::kFft;
    return std::make_unique<ArrayMapOp>(ctx, fn, build_plan(expr->args[0], ctx));
  }
  if (name == "lr_source" || name == "lr_source_acc") {
    // lr_source(vehicles, ticks, seed) / lr_source_acc(..., accident_tick)
    const bool with_accident = name == "lr_source_acc";
    if (expr->args.size() != (with_accident ? 4u : 3u)) {
      throw Error(name + "() takes vehicles, ticks, seed" +
                      std::string(with_accident ? ", accident_tick" : ""),
                  expr->pos);
    }
    lroad::WorkloadParams params;
    auto as_int = [&](std::size_t i, const char* what) {
      Object v = ctx.const_eval(expr->args[i]);
      if (v.kind() != Kind::kInt) throw Error(std::string(what) + " must be an integer",
                                              expr->pos);
      return v.as_int();
    };
    params.vehicles = static_cast<int>(as_int(0, "vehicles"));
    params.ticks = static_cast<int>(as_int(1, "ticks"));
    params.seed = static_cast<std::uint64_t>(as_int(2, "seed"));
    if (with_accident) params.accident_start_tick = static_cast<int>(as_int(3, "tick"));
    return std::make_unique<LrSourceOp>(ctx, params);
  }
  if (name == "lr_lav" || name == "lr_tolls" || name == "lr_accidents") {
    if (expr->args.size() != 2) {
      throw Error(name + "() takes a stream and a window/threshold", expr->pos);
    }
    Object arg = ctx.const_eval(expr->args[1]);
    if (arg.kind() != Kind::kInt) throw Error(name + "() parameter must be an integer",
                                              expr->pos);
    auto child = build_plan(expr->args[0], ctx);
    if (name == "lr_lav") {
      return std::make_unique<LrLavOp>(ctx, std::move(child),
                                       static_cast<int>(arg.as_int()));
    }
    if (name == "lr_tolls") {
      lroad::TollParams tp;
      tp.window_ticks = static_cast<int>(arg.as_int());
      return std::make_unique<LrTollOp>(ctx, std::move(child), tp);
    }
    return std::make_unique<LrAccidentOp>(ctx, std::move(child),
                                          static_cast<int>(arg.as_int()));
  }
  if (name == "gen_stream") {
    // gen_stream(bytes): unbounded stream of synthetic arrays.
    if (expr->args.size() != 1) throw Error("gen_stream(bytes) takes one argument",
                                            expr->pos);
    Object bytes = ctx.const_eval(expr->args[0]);
    if (bytes.kind() != Kind::kInt || bytes.as_int() < 0) {
      throw Error("gen_stream() size must be a non-negative integer", expr->pos);
    }
    return std::make_unique<GenArrayOp>(ctx, static_cast<std::uint64_t>(bytes.as_int()),
                                        /*count=*/-1);
  }
  if (name == "cwindow" || name == "swindow") {
    // cwindow(s, n): tumbling count window; swindow(s, n, k): sliding.
    const bool sliding = name == "swindow";
    if (expr->args.size() != (sliding ? 3u : 2u)) {
      throw Error(name + "() takes a stream and window size(s)", expr->pos);
    }
    Object size = ctx.const_eval(expr->args[1]);
    if (size.kind() != Kind::kInt) throw Error("window size must be an integer", expr->pos);
    std::int64_t slide = size.as_int();
    if (sliding) {
      Object s = ctx.const_eval(expr->args[2]);
      if (s.kind() != Kind::kInt) throw Error("window slide must be an integer", expr->pos);
      slide = s.as_int();
    }
    return std::make_unique<WindowOp>(ctx, build_plan(expr->args[0], ctx), size.as_int(),
                                      slide);
  }
  if (name == "bagsum" || name == "bagavg" || name == "bagmax" || name == "bagmin" ||
      name == "bagcount") {
    if (expr->args.size() != 1) throw Error(name + "() takes one argument", expr->pos);
    auto fn = name == "bagsum"   ? BagAggOp::Fn::kSum
              : name == "bagavg" ? BagAggOp::Fn::kAvg
              : name == "bagmax" ? BagAggOp::Fn::kMax
              : name == "bagmin" ? BagAggOp::Fn::kMin
                                 : BagAggOp::Fn::kCount;
    return std::make_unique<BagAggOp>(ctx, fn, build_plan(expr->args[0], ctx));
  }
  if (name == "abs" || name == "sqrtv") {
    if (expr->args.size() != 1) throw Error(name + "() takes one argument", expr->pos);
    auto fn = name == "abs" ? ScalarMapOp::Fn::kAbs : ScalarMapOp::Fn::kSqrt;
    return std::make_unique<ScalarMapOp>(ctx, fn, build_plan(expr->args[0], ctx));
  }
  if (name == "system.metrics" || name == "system.gauges" || name == "system.rates" ||
      name == "system.lp") {
    return build_introspect(*expr, ctx);
  }
  if (name == "above") {
    if (expr->args.size() != 2) {
      throw Error("above(stream, threshold) takes two arguments", expr->pos);
    }
    Object threshold = ctx.const_eval(expr->args[1]);
    if (threshold.kind() != Kind::kInt && threshold.kind() != Kind::kReal) {
      throw Error("above() threshold must be numeric", expr->pos);
    }
    return std::make_unique<AboveOp>(ctx, build_plan(expr->args[0], ctx),
                                     threshold.as_number());
  }
  if (name == "receiver") {
    if (expr->args.size() != 1) throw Error("receiver() takes one argument", expr->pos);
    Object src = ctx.const_eval(expr->args[0]);
    if (src.kind() != Kind::kStr) throw Error("receiver() argument must be a string",
                                              expr->pos);
    return std::make_unique<ReceiverSourceOp>(ctx, src.as_str());
  }
  if (name == "iota") {
    Object bag = ctx.const_eval(expr);
    return std::make_unique<BagStreamOp>(ctx, bag.as_bag());
  }
  if (name == "sp" || name == "spv") {
    throw Error("dynamic " + name + "() inside a stream process is not supported; "
                "create stream processes in the submitted query",
                expr->pos);
  }
  // Unknown call: it may still be a constant-evaluable builtin
  // (filename(i), arithmetic helpers); try the environment evaluator,
  // which reports its own error for genuinely unknown functions.
  return std::make_unique<ConstOp>(ctx, ctx.const_eval(expr));
}

}  // namespace scsq::plan
