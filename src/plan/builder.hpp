// Compiles a subquery expression into a SQEP operator tree.
//
// Expressions arriving here have already been bound at the client
// manager: sp()/spv() calls were evaluated there (spawning RPs), and the
// shipped expression references producers only through captured
// SpHandle values. The builder turns stream function calls into
// operators and constant-folds everything else through
// PlanContext::const_eval.
//
// Dynamic process creation (sp() inside an RP's own plan) is not
// supported by this reproduction: the paper's measured queries create
// all stream processes at submission time, so a nested sp() raises a
// user error rather than silently mis-executing.
#pragma once

#include "plan/operator.hpp"

namespace scsq::plan {

/// Builds the operator tree for `expr`. Throws scsql::Error for
/// unsupported constructs.
OperatorPtr build_plan(const scsql::ExprPtr& expr, PlanContext& ctx);

}  // namespace scsq::plan
