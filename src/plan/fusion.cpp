#include "plan/fusion.hpp"

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "funcs/fft.hpp"
#include "funcs/textgen.hpp"
#include "plan/op_costs.hpp"
#include "plan/operators.hpp"

namespace scsq::plan {
namespace {

using catalog::Kind;
using catalog::Object;
using scsql::ExprKind;
using scsql::ExprPtr;

/// A fused stateless chain: one operator standing in for
/// [count|sum]? (odd|even|fft)* over a batchable source. Per batch it
/// performs ONE aggregated CPU hold whose end time is the left-to-right
/// fold of the per-item cost expressions in per-item order (the same
/// floating-point additions the unfused tower performs), so the
/// simulated clock is bitwise-identical at every batch depth while the
/// host pays one suspension per batch instead of one per operator per
/// item.
class FusedPipelineOp final : public Operator {
 public:
  enum class SourceKind { kReceive, kGen, kBag, kGrep };
  enum class Terminal { kNone, kCount, kSum };

  struct Spec {
    SourceKind source = SourceKind::kGen;
    transport::ReceiverDriver* driver = nullptr;  // kReceive
    std::uint64_t gen_bytes = 0;                  // kGen
    std::int64_t gen_count = 0;                   // kGen; < 0 = unbounded
    catalog::Bag bag;                             // kBag (iota)
    std::string grep_pattern;                     // kGrep
    std::string grep_file;
    /// Array transforms in application order (source-side first).
    std::vector<ArrayMapOp::Fn> stages;
    Terminal terminal = Terminal::kNone;
    std::string name;  // e.g. "fused(count(receive))"
  };

  FusedPipelineOp(PlanContext& ctx, Spec spec) : ctx_(&ctx), spec_(std::move(spec)) {}

  std::string name() const override { return spec_.name; }

  sim::Task<std::optional<Object>> next() override {
    item_scratch_.reset();
    co_await next_batch(item_scratch_, 1);
    if (item_scratch_.empty()) co_return std::nullopt;
    co_return std::optional<Object>(std::move(item_scratch_[0]));
  }

  sim::Task<void> next_batch(ItemBatch& out, std::size_t max) override {
    if (done_) {
      out.mark_eos();
      co_return;
    }
    if (spec_.terminal == Terminal::kNone) {
      src_scratch_.reset();
      co_await fill_source(src_scratch_, max);
      if (!src_scratch_.empty()) {
        co_await charge_and_emit(src_scratch_, &out);
        count_batch(src_scratch_.size());
      }
      if (src_scratch_.eos()) {
        done_ = true;
        out.mark_eos();
      }
      co_return;
    }
    // Aggregating terminal: drain the whole source stream right here,
    // ctx->batch_size items per aggregated hold, regardless of how
    // deeply the engine pulls — a count(extract(...)) consumer stops
    // paying one operator-tower suspension per received item even when
    // it emits a single result.
    while (true) {
      src_scratch_.reset();
      co_await fill_source(src_scratch_, ctx_->batch_size);
      if (!src_scratch_.empty()) {
        co_await charge_and_emit(src_scratch_, nullptr);
        // For an aggregating terminal the consumed side is the
        // interesting fill: items folded per internal drain round
        // (EXPLAIN ANALYZE's batches/fill columns).
        count_batch(src_scratch_.size());
      }
      if (src_scratch_.eos()) break;
    }
    done_ = true;
    if (spec_.terminal == Terminal::kCount) {
      out.push(Object{count_});
    } else if (all_int_) {
      out.push(Object{int_sum_});
    } else {
      out.push(Object{real_sum_});
    }
    out.mark_eos();
  }

 private:
  /// Pulls up to `max` raw source items into `raw` and marks its EOS
  /// flag. Sources whose per-item cost is folded into the batch hold
  /// (gen, bag) charge nothing here; the receiver charges per *frame*
  /// (frame-granular, identical to the per-item path) and grep charges
  /// its one scan pass on first use.
  sim::Task<void> fill_source(ItemBatch& raw, std::size_t max) {
    switch (spec_.source) {
      case SourceKind::kReceive: {
        const std::size_t n = co_await spec_.driver->next_batch(raw, max);
        if (n == 0 || spec_.driver->exhausted()) raw.mark_eos();
        co_return;
      }
      case SourceKind::kGen: {
        if (spec_.gen_count >= 0 && produced_ >= spec_.gen_count) {
          raw.mark_eos();
          co_return;
        }
        std::size_t n = max;
        if (spec_.gen_count >= 0) {
          n = std::min<std::size_t>(n, static_cast<std::size_t>(spec_.gen_count - produced_));
        }
        for (std::size_t i = 0; i < n; ++i) {
          raw.push(Object{catalog::SynthArray{spec_.gen_bytes,
                                              static_cast<std::uint64_t>(produced_)}});
          ++produced_;
        }
        if (spec_.gen_count >= 0 && produced_ >= spec_.gen_count) raw.mark_eos();
        co_return;
      }
      case SourceKind::kBag: {
        const std::size_t n = std::min(max, spec_.bag.size() - bag_index_);
        for (std::size_t i = 0; i < n; ++i) raw.push(Object{spec_.bag[bag_index_++]});
        if (bag_index_ >= spec_.bag.size()) raw.mark_eos();
        co_return;
      }
      case SourceKind::kGrep: {
        if (!scanned_) {
          scanned_ = true;
          std::uint64_t scanned_bytes = 0;
          auto lines = funcs::file_lines(spec_.grep_file);
          for (auto& line : lines) scanned_bytes += line.size();
          co_await ctx_->cpu->use(op_costs::grep_scan(ctx_->node, scanned_bytes));
          for (auto& line : funcs::grep_file(spec_.grep_pattern, spec_.grep_file)) {
            matches_.push_back(std::move(line));
          }
        }
        std::size_t n = 0;
        while (n < max && !matches_.empty()) {
          raw.push(Object{std::move(matches_.front())});
          matches_.pop_front();
          ++n;
        }
        if (matches_.empty()) raw.mark_eos();
        co_return;
      }
    }
  }

  /// The aggregated hold: acquire the CPU once, fold every per-item cost
  /// in per-item order into `end`, transform/accumulate the items on the
  /// host side, then sleep until `end`. The fold additions are the exact
  /// additions n individual use() calls would perform (op_costs.hpp is
  /// the single definition of each expression), so the release lands on
  /// the bitwise-identical timestamp. Safe because nothing else contends
  /// for this CPU inside the window: the RP's receiver charges happen
  /// sequentially in fill_source, and its sender has nothing to marshal
  /// until we emit (aggregating chains emit only at EOS; stateless
  /// chains at sender RPs run at engine depth 1, a one-item fold).
  sim::Task<void> charge_and_emit(ItemBatch& in, ItemBatch* out) {
    co_await ctx_->cpu->acquire();
    {
      sim::ResourceLock lock(*ctx_->cpu);
      sim::Time end = ctx_->sim->now();
      for (std::size_t i = 0; i < in.size(); ++i) {
        Object cur = std::move(in[i]);
        switch (spec_.source) {
          case SourceKind::kGen:
            end += op_costs::gen_array(ctx_->node, spec_.gen_bytes);
            break;
          case SourceKind::kBag:
            end += op_costs::invoke(ctx_->node);
            break;
          default:
            break;  // receive/grep charged in fill_source
        }
        for (auto fn : spec_.stages) {
          const auto& arr = cur.as_darray();
          end += fn == ArrayMapOp::Fn::kFft
                     ? op_costs::array_fft(ctx_->node, arr.size())
                     : op_costs::array_select(ctx_->node, arr.size());
          switch (fn) {
            case ArrayMapOp::Fn::kOdd:
              cur = Object{funcs::odd(arr)};
              break;
            case ArrayMapOp::Fn::kEven:
              cur = Object{funcs::even(arr)};
              break;
            case ArrayMapOp::Fn::kFft:
              cur = Object{funcs::fft(arr)};
              break;
          }
        }
        switch (spec_.terminal) {
          case Terminal::kNone:
            out->push(std::move(cur));
            break;
          case Terminal::kCount:
            end += op_costs::invoke(ctx_->node);
            ++count_;
            break;
          case Terminal::kSum:
            end += op_costs::invoke(ctx_->node);
            // SumOp's exact promotion semantics: integral until the
            // first non-int, then switch to the real accumulator.
            if (cur.kind() == Kind::kInt && all_int_) {
              int_sum_ += cur.as_int();
            } else {
              if (all_int_) {
                real_sum_ = static_cast<double>(int_sum_);
                all_int_ = false;
              }
              real_sum_ += cur.as_number();
            }
            break;
        }
      }
      co_await ctx_->sim->delay_until(end);
    }
  }

  PlanContext* ctx_;
  Spec spec_;
  bool done_ = false;
  std::int64_t produced_ = 0;   // kGen
  std::size_t bag_index_ = 0;   // kBag
  bool scanned_ = false;        // kGrep
  std::deque<std::string> matches_;
  // Terminal accumulators.
  std::int64_t count_ = 0;
  std::int64_t int_sum_ = 0;
  double real_sum_ = 0.0;
  bool all_int_ = true;
  ItemBatch src_scratch_;   // raw source items, recycled per round
  ItemBatch item_scratch_;  // next() adapter scratch
};

bool is_unary_call(const ExprPtr& e, const char* name) {
  return e != nullptr && e->kind == ExprKind::kCall && e->name == name &&
         e->args.size() == 1;
}

const char* fn_token(ArrayMapOp::Fn fn) {
  switch (fn) {
    case ArrayMapOp::Fn::kOdd: return "odd";
    case ArrayMapOp::Fn::kEven: return "even";
    case ArrayMapOp::Fn::kFft: return "fft";
  }
  return "?";
}

}  // namespace

OperatorPtr try_build_fused(const ExprPtr& expr, PlanContext& ctx) {
  if (ctx.batch_size <= 1) return nullptr;
  if (expr == nullptr || expr->kind != ExprKind::kCall) return nullptr;
  const ExprPtr* cur = &expr;

  // streamof() wrappers are timing-free pass-throughs: strip any number
  // of them above the terminal (streamof(count(...)) is the paper's
  // Fig. 6 consumer shape).
  while (is_unary_call(*cur, "streamof")) cur = &(*cur)->args[0];

  auto term = FusedPipelineOp::Terminal::kNone;
  if (is_unary_call(*cur, "count")) {
    term = FusedPipelineOp::Terminal::kCount;
    cur = &(*cur)->args[0];
  } else if (is_unary_call(*cur, "sum")) {
    term = FusedPipelineOp::Terminal::kSum;
    cur = &(*cur)->args[0];
  }

  // Stateless stages between terminal and source, collected outermost
  // first (applied source-side first below).
  std::vector<ArrayMapOp::Fn> outer_stages;
  while (true) {
    if (is_unary_call(*cur, "streamof")) {
      cur = &(*cur)->args[0];
    } else if (is_unary_call(*cur, "odd")) {
      outer_stages.push_back(ArrayMapOp::Fn::kOdd);
      cur = &(*cur)->args[0];
    } else if (is_unary_call(*cur, "even")) {
      outer_stages.push_back(ArrayMapOp::Fn::kEven);
      cur = &(*cur)->args[0];
    } else if (is_unary_call(*cur, "fft")) {
      outer_stages.push_back(ArrayMapOp::Fn::kFft);
      cur = &(*cur)->args[0];
    } else {
      break;
    }
  }
  // Nothing to fuse: a bare source (or source + streamof) gains nothing
  // from a fused operator; its native next_batch already batches.
  if (term == FusedPipelineOp::Terminal::kNone && outer_stages.empty()) return nullptr;

  if (*cur == nullptr || (*cur)->kind != ExprKind::kCall) return nullptr;
  const scsql::Expr& src = **cur;

  // Validate the source completely before committing: ctx.subscribe has
  // a side effect (it wires a stream connection), so it must only run
  // once the whole chain is known fusable. const_eval is side-effect
  // free; where it throws, the regular builder's identical const_eval
  // of the same argument would throw the same error.
  FusedPipelineOp::Spec spec;
  spec.terminal = term;
  spec.stages.assign(outer_stages.rbegin(), outer_stages.rend());
  std::string src_token;
  if (src.name == "extract") {
    if (src.args.size() != 1) return nullptr;
    Object target = ctx.const_eval(src.args[0]);
    if (target.kind() != Kind::kSp) return nullptr;
    spec.source = FusedPipelineOp::SourceKind::kReceive;
    spec.driver = &ctx.subscribe(target.as_sp());
    src_token = "receive";
  } else if (src.name == "gen_array") {
    if (src.args.size() != 2) return nullptr;
    Object bytes = ctx.const_eval(src.args[0]);
    Object count = ctx.const_eval(src.args[1]);
    if (bytes.kind() != Kind::kInt || count.kind() != Kind::kInt) return nullptr;
    if (bytes.as_int() < 0 || count.as_int() < 0) return nullptr;
    spec.source = FusedPipelineOp::SourceKind::kGen;
    spec.gen_bytes = static_cast<std::uint64_t>(bytes.as_int());
    spec.gen_count = count.as_int();
    src_token = "gen_array";
  } else if (src.name == "gen_stream") {
    if (src.args.size() != 1) return nullptr;
    Object bytes = ctx.const_eval(src.args[0]);
    if (bytes.kind() != Kind::kInt || bytes.as_int() < 0) return nullptr;
    spec.source = FusedPipelineOp::SourceKind::kGen;
    spec.gen_bytes = static_cast<std::uint64_t>(bytes.as_int());
    spec.gen_count = -1;
    src_token = "gen_stream";
  } else if (src.name == "iota") {
    Object bag = ctx.const_eval(*cur);
    if (bag.kind() != Kind::kBag) return nullptr;
    spec.source = FusedPipelineOp::SourceKind::kBag;
    spec.bag = bag.as_bag();
    src_token = "iota";
  } else if (src.name == "grep") {
    if (src.args.size() != 2) return nullptr;
    Object pattern = ctx.const_eval(src.args[0]);
    Object file = ctx.const_eval(src.args[1]);
    if (pattern.kind() != Kind::kStr || file.kind() != Kind::kStr) return nullptr;
    spec.source = FusedPipelineOp::SourceKind::kGrep;
    spec.grep_pattern = pattern.as_str();
    spec.grep_file = file.as_str();
    src_token = "grep";
  } else {
    return nullptr;
  }

  std::string nm = src_token;
  for (auto fn : spec.stages) nm = std::string(fn_token(fn)) + "(" + nm + ")";
  if (term == FusedPipelineOp::Terminal::kCount) nm = "count(" + nm + ")";
  if (term == FusedPipelineOp::Terminal::kSum) nm = "sum(" + nm + ")";
  spec.name = "fused(" + nm + ")";
  return std::make_unique<FusedPipelineOp>(ctx, std::move(spec));
}

}  // namespace scsq::plan
