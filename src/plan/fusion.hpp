// Plan-build-time fusion of stateless operator chains.
//
// A chain like streamof(count(extract(a))) — the paper's Fig. 6
// measurement query — executes per-item as a tower of coroutine frames
// (Pass -> Count -> Receive) with one cpu->use(op_invoke_s) suspension
// per stream element. The fusion pass collapses such chains into a
// single FusedPipelineOp that pulls its source batch-at-a-time and
// charges ONE aggregated CPU hold per batch, where the hold's end time
// is the left-to-right fold of the exact per-item cost expressions
// (src/plan/op_costs.hpp) in per-item order. Because the fold performs
// the same floating-point additions the per-item path performs, the
// simulated clock lands on bitwise-identical timestamps at any batch
// depth — the invariant every Fig. 6/8/15 table rests on.
//
// Fusable shape (after stripping streamof wrappers):
//     [count | sum]? (streamof | odd | even | fft)*  source
// with source one of extract(sp), gen_array(b,n), gen_stream(b),
// iota(...), grep(p,f). Anything else — merge, windows, radixcombine,
// linear-road operators — is left to the regular builder and runs
// per-item (their charge patterns interleave with other simulated
// processes, so aggregation would reorder the timeline).
#pragma once

#include "plan/operator.hpp"

namespace scsq::plan {

/// Attempts to build a fused batched pipeline for `expr`. Returns
/// nullptr when the expression does not match a fusable shape or when
/// ctx.batch_size <= 1 (per-item mode) — the regular builder then
/// handles the expression, including all error reporting. Only
/// side-effect-free checks run before the match is committed, so a
/// nullptr return leaves no stray stream subscriptions behind.
OperatorPtr try_build_fused(const scsql::ExprPtr& expr, PlanContext& ctx);

}  // namespace scsq::plan
