#include "plan/introspect_ops.hpp"

#include <utility>

#include "util/logging.hpp"

namespace scsq::plan {

using catalog::Bag;
using catalog::Object;

namespace {

const IntrospectFeed& feed_of(const PlanContext& ctx) {
  SCSQ_CHECK(ctx.introspect != nullptr && ctx.introspect->window != nullptr)
      << "introspection source built without a feed";
  return *ctx.introspect;
}

bool matches(const std::string& key, const std::string& pattern) {
  return pattern.empty() || key.find(pattern) != std::string::npos;
}

}  // namespace

MetricsStreamOp::MetricsStreamOp(PlanContext& ctx, std::string pattern)
    : ctx_(&ctx), pattern_(std::move(pattern)) {}

sim::Task<std::optional<Object>> MetricsStreamOp::next() {
  const auto& feed = feed_of(*ctx_);
  const auto& w = *feed.window;
  while (index_ < w.counters.size()) {
    const auto& c = w.counters[index_++];
    if (!matches(c.key, pattern_)) continue;
    Bag row;
    row.reserve(5);
    row.emplace_back(c.key);
    row.emplace_back(static_cast<std::int64_t>(c.delta));
    row.emplace_back(c.rate);
    row.emplace_back(w.t_start);
    row.emplace_back(w.t_end);
    co_return Object{std::move(row)};
  }
  co_return std::nullopt;
}

GaugeStreamOp::GaugeStreamOp(PlanContext& ctx, std::string pattern)
    : ctx_(&ctx), pattern_(std::move(pattern)) {}

sim::Task<std::optional<Object>> GaugeStreamOp::next() {
  const auto& feed = feed_of(*ctx_);
  const auto& w = *feed.window;
  while (index_ < w.gauges.size()) {
    const auto& g = w.gauges[index_++];
    if (!matches(g.key, pattern_)) continue;
    Bag row;
    row.reserve(3);
    row.emplace_back(g.key);
    row.emplace_back(g.value);
    row.emplace_back(w.t_end);
    co_return Object{std::move(row)};
  }
  co_return std::nullopt;
}

RateStreamOp::RateStreamOp(PlanContext& ctx, std::string pattern)
    : ctx_(&ctx), pattern_(std::move(pattern)) {}

sim::Task<std::optional<Object>> RateStreamOp::next() {
  const auto& feed = feed_of(*ctx_);
  const auto& w = *feed.window;
  while (index_ < w.counters.size()) {
    const auto& c = w.counters[index_++];
    if (!matches(c.key, pattern_)) continue;
    co_return Object{c.rate};
  }
  co_return std::nullopt;
}

LpStreamOp::LpStreamOp(PlanContext& ctx) : ctx_(&ctx) {}

sim::Task<std::optional<Object>> LpStreamOp::next() {
  const auto& feed = feed_of(*ctx_);
  if (index_ >= feed.lps.size()) co_return std::nullopt;
  const auto& s = feed.lps[index_++];
  Bag row;
  row.reserve(7);
  row.emplace_back(static_cast<std::int64_t>(s.lp));
  row.emplace_back(static_cast<std::int64_t>(s.events));
  row.emplace_back(static_cast<std::int64_t>(s.null_updates));
  row.emplace_back(static_cast<std::int64_t>(s.msgs_sent));
  row.emplace_back(static_cast<std::int64_t>(s.msgs_recvd));
  row.emplace_back(static_cast<std::int64_t>(s.inbox_depth));
  row.emplace_back(s.horizon_s);
  co_return Object{std::move(row)};
}

}  // namespace scsq::plan
