// Introspection stream sources: the engine's own telemetry as SCSQL
// streams (the paper's thesis applied to the engine itself — stream
// queries are the measurement instrument, so the measurement instrument
// is itself queryable with stream queries).
//
// A monitor query (Engine::register_monitor) is compiled into a regular
// SQEP whose sources read an IntrospectFeed instead of a network driver:
// one obs::Sampler window per execution, each counter/gauge/LP sample a
// stream element. The plan runs at every sampler window boundary inside
// the zero-duration sampler tick, under a PlanContext whose NodeParams
// are all zero and whose CPU resource is private and uncontended — every
// awaitable in the operator machinery then completes inline
// (Resource::acquire with a free slot, delay_until(now)), so a monitor
// plan never schedules a simulator event and the measured workload's
// timeline is byte-identical with monitors on or off (DESIGN.md §5.8).
//
// Row shapes (catalog::Bag fields, in order):
//   system.metrics([pattern])  {key, delta, rate, t_start, t_end}
//                              one row per counter with a nonzero delta
//                              in the window whose key contains pattern
//   system.gauges([pattern])   {key, value, t_end}
//   system.rates([pattern])    bare real stream of the matching
//                              counters' rates — composes with sum()
//                              (merge across links) and above()
//   system.lp()                {lp, events, null_updates, msgs_sent,
//                               msgs_recvd, inbox_depth, horizon_s}
//                              one row per logical process, fed from
//                              sim::plp::Runtime::live_sample (or the
//                              engine's deterministic default provider)
#pragma once

#include <string>
#include <vector>

#include "obs/sampler.hpp"
#include "plan/operator.hpp"
#include "sim/plp.hpp"

namespace scsq::plan {

/// The data an introspection plan reads: one sampler window plus the
/// per-LP live samples taken at its boundary. Owned by the monitor
/// runner (exec::Engine); valid only for the duration of one plan run.
struct IntrospectFeed {
  const obs::Sampler::Window* window = nullptr;
  std::size_t window_index = 0;
  std::vector<sim::plp::LpLiveSample> lps;
};

/// system.metrics(pattern): one bag row per matching counter sample.
class MetricsStreamOp final : public Operator {
 public:
  MetricsStreamOp(PlanContext& ctx, std::string pattern);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "system.metrics"; }

 private:
  PlanContext* ctx_;
  std::string pattern_;
  std::size_t index_ = 0;
};

/// system.gauges(pattern): one bag row per matching gauge sample.
class GaugeStreamOp final : public Operator {
 public:
  GaugeStreamOp(PlanContext& ctx, std::string pattern);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "system.gauges"; }

 private:
  PlanContext* ctx_;
  std::string pattern_;
  std::size_t index_ = 0;
};

/// system.rates(pattern): bare real stream of matching counters' rates.
class RateStreamOp final : public Operator {
 public:
  RateStreamOp(PlanContext& ctx, std::string pattern);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "system.rates"; }

 private:
  PlanContext* ctx_;
  std::string pattern_;
  std::size_t index_ = 0;
};

/// system.lp(): one bag row per logical process' live sample.
class LpStreamOp final : public Operator {
 public:
  explicit LpStreamOp(PlanContext& ctx);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "system.lp"; }

 private:
  PlanContext* ctx_;
  std::size_t index_ = 0;
};

}  // namespace scsq::plan
