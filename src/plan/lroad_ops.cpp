#include "plan/lroad_ops.hpp"

namespace scsq::plan {

using catalog::Object;

// ---------------------------------------------------------------------
// LrSourceOp
// ---------------------------------------------------------------------

LrSourceOp::LrSourceOp(PlanContext& ctx, lroad::WorkloadParams params)
    : ctx_(&ctx), trace_(lroad::encode_trace(params)) {}

sim::Task<std::optional<Object>> LrSourceOp::next() {
  if (index_ >= trace_.size()) co_return std::nullopt;
  auto& batch = trace_[index_++];
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s +
                          8.0 * static_cast<double>(batch.size()) *
                              ctx_->node.gen_per_byte_s);
  co_return std::optional<Object>(Object{batch});
}

// ---------------------------------------------------------------------
// LrWindowAggOp
// ---------------------------------------------------------------------

LrWindowAggOp::LrWindowAggOp(PlanContext& ctx, OperatorPtr child, int window_ticks)
    : ctx_(&ctx), child_(std::move(child)), window_ticks_(window_ticks) {
  if (window_ticks_ < 1) throw scsql::Error("lr window must be >= 1 tick");
}

sim::Task<std::optional<Object>> LrWindowAggOp::next() {
  if (done_) co_return std::nullopt;
  done_ = true;
  while (auto obj = co_await child_->next()) {
    const auto reports = lroad::decode_reports(obj->as_darray());
    // Incremental per-tick fold; only the trailing window is retained.
    TickAgg agg;
    for (const auto& r : reports) {
      auto& [sum, count] = agg.speed[r.segment];
      sum += r.speed;
      count += 1;
      agg.vehicles[r.segment].insert(r.vehicle);
    }
    window_.push_back(std::move(agg));
    if (static_cast<int>(window_.size()) > window_ticks_) window_.pop_front();
    co_await ctx_->cpu->use(ctx_->node.op_invoke_s +
                            static_cast<double>(reports.size()) * ctx_->node.flop_s * 4.0);
  }
  auto result = finalize(window_);
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
  co_return std::optional<Object>(Object{std::move(result)});
}

std::vector<double> LrLavOp::finalize(const std::deque<TickAgg>& window) {
  std::map<int, std::pair<double, int>> merged;
  for (const auto& tick : window) {
    for (const auto& [seg, sc] : tick.speed) {
      auto& [sum, count] = merged[seg];
      sum += sc.first;
      count += sc.second;
    }
  }
  std::vector<double> out;
  for (const auto& [seg, sc] : merged) {
    out.push_back(static_cast<double>(seg));
    out.push_back(sc.first / sc.second);
  }
  return out;
}

LrTollOp::LrTollOp(PlanContext& ctx, OperatorPtr child, lroad::TollParams params)
    : LrWindowAggOp(ctx, std::move(child), params.window_ticks), params_(params) {}

std::vector<double> LrTollOp::finalize(const std::deque<TickAgg>& window) {
  std::map<int, std::pair<double, int>> merged;
  std::map<int, std::set<int>> vehicles;
  for (const auto& tick : window) {
    for (const auto& [seg, sc] : tick.speed) {
      auto& [sum, count] = merged[seg];
      sum += sc.first;
      count += sc.second;
    }
    for (const auto& [seg, vids] : tick.vehicles) {
      vehicles[seg].insert(vids.begin(), vids.end());
    }
  }
  std::vector<double> out;
  for (const auto& [seg, sc] : merged) {
    const double lav = sc.first / sc.second;
    const int nv = static_cast<int>(vehicles[seg].size());
    if (lav < params_.lav_threshold && nv > params_.free_vehicles) {
      const double excess = nv - params_.free_vehicles;
      out.push_back(static_cast<double>(seg));
      out.push_back(params_.base_toll * excess * excess);
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// LrAccidentOp
// ---------------------------------------------------------------------

LrAccidentOp::LrAccidentOp(PlanContext& ctx, OperatorPtr child, int stopped_ticks)
    : ctx_(&ctx), child_(std::move(child)), stopped_ticks_(stopped_ticks) {
  if (stopped_ticks_ < 1) throw scsql::Error("lr_accidents threshold must be >= 1");
}

sim::Task<std::optional<Object>> LrAccidentOp::next() {
  if (done_) co_return std::nullopt;
  done_ = true;
  while (auto obj = co_await child_->next()) {
    const auto reports = lroad::decode_reports(obj->as_darray());
    for (const auto& r : reports) {
      int& run = run_[r.vehicle];
      run = (r.speed == 0.0) ? run + 1 : 0;
      if (run >= stopped_ticks_) segments_.insert(r.segment);
    }
    co_await ctx_->cpu->use(ctx_->node.op_invoke_s +
                            static_cast<double>(reports.size()) * ctx_->node.flop_s * 2.0);
  }
  std::vector<double> out;
  for (int seg : segments_) out.push_back(static_cast<double>(seg));
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
  co_return std::optional<Object>(Object{std::move(out)});
}

}  // namespace scsq::plan
