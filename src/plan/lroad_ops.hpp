// Streaming operators for the Linear-Road-inspired workload.
//
// SCSQL builtins:
//   lr_source(vehicles, ticks, seed)        source of per-tick report
//                                           arrays (accident-free)
//   lr_source_acc(vehicles, ticks, seed, t) same, accident scripted at
//                                           tick t
//   lr_lav(s, window)                       latest average speed per
//                                           segment (emits [seg, lav]*
//                                           at end of stream)
//   lr_tolls(s, window)                     simplified LRB tolls (emits
//                                           [seg, toll]* at end)
//   lr_accidents(s, k)                      segments with a vehicle
//                                           stopped >= k consecutive
//                                           ticks (emits [seg]* at end)
//
// The aggregating operators are *incremental*: they fold per-tick
// partial aggregates as batches arrive and keep only the trailing
// window, rather than buffering the raw trace — tests validate them
// against the batch oracles in lroad/workload.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "lroad/workload.hpp"
#include "plan/operator.hpp"

namespace scsq::plan {

/// Source: emits one DArray of encoded reports per tick.
class LrSourceOp final : public Operator {
 public:
  LrSourceOp(PlanContext& ctx, lroad::WorkloadParams params);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "lr_source"; }

 private:
  PlanContext* ctx_;
  std::vector<std::vector<double>> trace_;
  std::size_t index_ = 0;
};

/// Shared base for the windowed segment aggregators: consumes the child
/// stream of report batches, maintaining per-tick partial aggregates.
class LrWindowAggOp : public Operator {
 public:
  LrWindowAggOp(PlanContext& ctx, OperatorPtr child, int window_ticks);
  sim::Task<std::optional<catalog::Object>> next() override;

 protected:
  struct TickAgg {
    std::map<int, std::pair<double, int>> speed;  // seg -> (sum, count)
    std::map<int, std::set<int>> vehicles;        // seg -> vids
  };

  /// Computes the final emission from the trailing-window aggregates.
  virtual std::vector<double> finalize(const std::deque<TickAgg>& window) = 0;

  PlanContext* ctx_;
  OperatorPtr child_;
  int window_ticks_;

 private:
  std::deque<TickAgg> window_;
  bool done_ = false;
};

/// Latest average speed per segment: emits [seg, lav] pairs (flattened).
class LrLavOp final : public LrWindowAggOp {
 public:
  using LrWindowAggOp::LrWindowAggOp;
  std::string name() const override { return "lr_lav"; }

 protected:
  std::vector<double> finalize(const std::deque<TickAgg>& window) override;
};

/// Simplified LRB tolls: emits [seg, toll] pairs (flattened).
class LrTollOp final : public LrWindowAggOp {
 public:
  LrTollOp(PlanContext& ctx, OperatorPtr child, lroad::TollParams params);
  std::string name() const override { return "lr_tolls"; }

 protected:
  std::vector<double> finalize(const std::deque<TickAgg>& window) override;

 private:
  lroad::TollParams params_;
};

/// Accident detection: emits the affected segment ids.
class LrAccidentOp final : public Operator {
 public:
  LrAccidentOp(PlanContext& ctx, OperatorPtr child, int stopped_ticks);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "lr_accidents"; }

 private:
  PlanContext* ctx_;
  OperatorPtr child_;
  int stopped_ticks_;
  std::map<int, int> run_;  // vehicle -> consecutive stopped reports
  std::set<int> segments_;
  bool done_ = false;
};

}  // namespace scsq::plan
