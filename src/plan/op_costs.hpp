// Per-item CPU cost expressions of the SQEP operators, shared between
// the per-item execution path (operators.cpp) and the fused/batched
// path (fusion.cpp).
//
// Batch execution must stay byte-identical to per-item execution at any
// batch depth, which means the *expressions* feeding the simulated CPU
// charges must be the exact same floating-point computations in both
// paths — a fused operator folding `op_invoke_s + n * flop_s` may not
// restate it as `op_invoke_s + flop_s * n`. Centralizing every per-item
// charge here is the audit: operators.cpp contains no inline cost
// arithmetic for the fusable operators, so the regression test
// (batch_test.cpp) asserting equal accumulated CPU seconds pins both
// paths to one definition.
#pragma once

#include <cmath>
#include <cstdint>

#include "hw/cost_model.hpp"

namespace scsq::plan::op_costs {

/// ConstOp / BagStreamOp / the per-consumed-item charge of CountOp and
/// SumOp: one operator invocation.
inline double invoke(const hw::NodeParams& node) { return node.op_invoke_s; }

/// GenArrayOp: invocation plus generating `bytes` of array content.
inline double gen_array(const hw::NodeParams& node, std::uint64_t bytes) {
  return node.op_invoke_s + static_cast<double>(bytes) * node.gen_per_byte_s;
}

/// ArrayMapOp odd/even over an `n`-element array: one pass.
inline double array_select(const hw::NodeParams& node, std::size_t n) {
  return node.op_invoke_s + static_cast<double>(n) * node.flop_s;
}

/// ArrayMapOp fft over an `n`-element array: ~5 n log2 n flops for a
/// radix-2 FFT (1 flop floor for degenerate inputs).
inline double array_fft(const hw::NodeParams& node, std::size_t n) {
  const double dn = static_cast<double>(n);
  const double flops = n <= 1 ? 1.0 : 5.0 * dn * std::log2(dn);
  return node.op_invoke_s + flops * node.flop_s;
}

/// RadixCombineOp over legs totalling `n` elements.
inline double radix_combine(const hw::NodeParams& node, std::size_t n) {
  return node.op_invoke_s + 6.0 * static_cast<double>(n) * node.flop_s;
}

/// GrepOp: one scan pass over the whole file content (charged once per
/// stream, not per item; matches emit for free afterwards).
inline double grep_scan(const hw::NodeParams& node, std::uint64_t scanned_bytes) {
  return node.op_invoke_s +
         static_cast<double>(scanned_bytes) * node.marshal_per_byte_s;
}

/// ReceiverSourceOp: invocation plus ingesting one signal array of
/// `samples` doubles.
inline double receiver_ingest(const hw::NodeParams& node, std::size_t samples) {
  return node.op_invoke_s +
         8.0 * static_cast<double>(samples) * node.gen_per_byte_s;
}

}  // namespace scsq::plan::op_costs
