#include "plan/operator.hpp"

namespace scsq::plan {

// Conservative default batch adapter: one item per call. See the header
// comment — looping next() here would be wrong for operators whose
// children interleave CPU charges with other simulated processes. The
// engine's drive loop simply calls next_batch repeatedly, so a
// one-item implementation is always *correct*; batch-native operators
// override for throughput.
sim::Task<void> Operator::next_batch(ItemBatch& out, std::size_t max) {
  (void)max;
  auto obj = co_await next();
  if (!obj) {
    out.mark_eos();
    co_return;
  }
  out.push(std::move(*obj));
  count_batch(1);
}

}  // namespace scsq::plan
