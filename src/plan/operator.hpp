// SQEP (Stream Query Execution Plan) operator interface.
//
// An RP "compil[es] its subquery into a local Stream Query Execution
// Plan and interpret[s] it" (paper §2.3). Operators form a pull-based
// pipeline: next() is a simulation coroutine that may suspend on network
// receives and charges CPU time for the work it models. The stream ends
// with nullopt.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/object.hpp"
#include "hw/cost_model.hpp"
#include "hw/location.hpp"
#include "scsql/ast.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "transport/driver.hpp"

namespace scsq::plan {

/// Everything an operator needs about the RP it runs in. Owned by the
/// RP; must outlive the plan.
struct PlanContext {
  sim::Simulator* sim = nullptr;
  hw::Location loc;
  sim::Resource* cpu = nullptr;  // compute CPU of the RP's node
  hw::NodeParams node;

  /// Evaluates a non-streaming expression (literal, captured variable,
  /// arithmetic, iota, bag constructor) to a value. Supplied by the
  /// execution engine; throws scsql::Error if the expression would need
  /// streaming.
  std::function<catalog::Object(const scsql::ExprPtr&)> const_eval;

  /// Subscribes this RP to a producer's output stream and returns the
  /// receiver driver for it. Supplied by the execution engine.
  std::function<transport::ReceiverDriver&(const catalog::SpHandle&)> subscribe;

  /// Named external signal sources for receiver(name): each call returns
  /// the full finite sequence of signal arrays for that source.
  std::function<std::vector<std::vector<double>>(const std::string&)> stream_source;
};

class Operator {
 public:
  virtual ~Operator() = default;
  Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Pulls the next stream element, or nullopt at end of stream.
  /// Must not be called again after it returned nullopt.
  virtual sim::Task<std::optional<catalog::Object>> next() = 0;

  /// Operator name for plan dumps ("count", "gen_array", ...).
  virtual std::string name() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace scsq::plan
