// SQEP (Stream Query Execution Plan) operator interface.
//
// An RP "compil[es] its subquery into a local Stream Query Execution
// Plan and interpret[s] it" (paper §2.3). Operators form a pull-based
// pipeline: next() is a simulation coroutine that may suspend on network
// receives and charges CPU time for the work it models. The stream ends
// with nullopt.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/batch.hpp"
#include "catalog/object.hpp"
#include "hw/cost_model.hpp"
#include "hw/location.hpp"
#include "scsql/ast.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "transport/driver.hpp"

namespace scsq::plan {

/// Batch of stream objects flowing between operators (see catalog/batch.hpp).
using ItemBatch = catalog::ItemBatch;

/// One telemetry window handed to an introspection (monitor) plan; see
/// plan/introspect_ops.hpp. Null outside monitor contexts.
struct IntrospectFeed;

/// Everything an operator needs about the RP it runs in. Owned by the
/// RP; must outlive the plan.
struct PlanContext {
  sim::Simulator* sim = nullptr;
  hw::Location loc;
  sim::Resource* cpu = nullptr;  // compute CPU of the RP's node
  hw::NodeParams node;
  /// Batch depth for batch-at-a-time execution. 1 = per-item execution
  /// (the exact pre-batching pipeline, and no fusion pass); the engine
  /// plumbs ExecOptions::batch_size / SCSQ_BATCH_SIZE here.
  std::size_t batch_size = 1;

  /// Introspection feed for monitor queries over system.metrics /
  /// system.gauges / system.rates / system.lp. Non-null only inside a
  /// monitor plan context (Engine::register_monitor); the system.*
  /// sources refuse to build without it.
  const IntrospectFeed* introspect = nullptr;

  /// Evaluates a non-streaming expression (literal, captured variable,
  /// arithmetic, iota, bag constructor) to a value. Supplied by the
  /// execution engine; throws scsql::Error if the expression would need
  /// streaming.
  std::function<catalog::Object(const scsql::ExprPtr&)> const_eval;

  /// Subscribes this RP to a producer's output stream and returns the
  /// receiver driver for it. Supplied by the execution engine.
  std::function<transport::ReceiverDriver&(const catalog::SpHandle&)> subscribe;

  /// Named external signal sources for receiver(name): each call returns
  /// the full finite sequence of signal arrays for that source.
  std::function<std::vector<std::vector<double>>(const std::string&)> stream_source;
};

class Operator {
 public:
  virtual ~Operator() = default;
  Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Pulls the next stream element, or nullopt at end of stream.
  /// Must not be called again after it returned nullopt.
  virtual sim::Task<std::optional<catalog::Object>> next() = 0;

  /// Batch pull: appends up to `max` (>= 1) elements to `out` and marks
  /// `out` EOS once the stream has ended (a batch may carry final items
  /// and the EOS flag together). Must not be called again after an EOS
  /// batch. The base implementation delivers exactly ONE item per call
  /// via next() — deliberately, not a loop: pulling an arbitrary child
  /// several times without returning control could reorder its CPU
  /// charges against other processes contending for the same simulated
  /// resources (a merge pump, a sender drain), and the batch contract
  /// is that the simulated timeline is bit-identical at every depth.
  /// Operators whose charge pattern provably commutes override this
  /// with a real batched path.
  virtual sim::Task<void> next_batch(ItemBatch& out, std::size_t max);

  /// Items delivered / batches counted by next_batch (empty EOS-only
  /// pulls are not counted, so items/batches is the mean batch fill).
  struct BatchCounters {
    std::uint64_t batches = 0;
    std::uint64_t items = 0;
    double mean_fill() const {
      return batches == 0 ? 0.0 : static_cast<double>(items) / static_cast<double>(batches);
    }
  };
  const BatchCounters& batch_counters() const { return batch_counters_; }

  /// Operator name for plan dumps ("count", "gen_array", ...).
  virtual std::string name() const = 0;

 protected:
  /// Accounting hook for next_batch implementations; call once per
  /// non-empty delivered batch.
  void count_batch(std::size_t items) {
    ++batch_counters_.batches;
    batch_counters_.items += items;
  }

 private:
  BatchCounters batch_counters_;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace scsq::plan
