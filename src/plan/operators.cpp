#include "plan/operators.hpp"

#include <cmath>

#include "funcs/fft.hpp"
#include "funcs/textgen.hpp"
#include "plan/op_costs.hpp"

namespace scsq::plan {

using catalog::Object;

// ---------------------------------------------------------------------
// ConstOp / BagStreamOp
// ---------------------------------------------------------------------

ConstOp::ConstOp(PlanContext& ctx, Object value) : ctx_(&ctx), value_(std::move(value)) {}

sim::Task<std::optional<Object>> ConstOp::next() {
  if (emitted_) co_return std::nullopt;
  emitted_ = true;
  co_await ctx_->cpu->use(op_costs::invoke(ctx_->node));
  co_return std::optional<Object>(value_);
}

BagStreamOp::BagStreamOp(PlanContext& ctx, catalog::Bag values)
    : ctx_(&ctx), values_(std::move(values)) {}

sim::Task<std::optional<Object>> BagStreamOp::next() {
  if (index_ >= values_.size()) co_return std::nullopt;
  co_await ctx_->cpu->use(op_costs::invoke(ctx_->node));
  co_return std::optional<Object>(values_[index_++]);
}

sim::Task<void> BagStreamOp::next_batch(ItemBatch& out, std::size_t max) {
  if (index_ >= values_.size()) {
    out.mark_eos();
    co_return;
  }
  const std::size_t n = std::min(max, values_.size() - index_);
  // The per-item cost is the same constant for every element, so one
  // aggregated hold folding it n times reproduces the per-item clock
  // bitwise (use_repeated's left-to-right addition chain).
  co_await ctx_->cpu->use_repeated(op_costs::invoke(ctx_->node), n);
  for (std::size_t i = 0; i < n; ++i) out.push(Object{values_[index_++]});
  if (index_ >= values_.size()) out.mark_eos();
  count_batch(n);
}

// ---------------------------------------------------------------------
// GenArrayOp
// ---------------------------------------------------------------------

GenArrayOp::GenArrayOp(PlanContext& ctx, std::uint64_t bytes, std::int64_t count)
    : ctx_(&ctx), bytes_(bytes), count_(count) {}

sim::Task<std::optional<Object>> GenArrayOp::next() {
  if (count_ >= 0 && produced_ >= count_) co_return std::nullopt;
  // Producing the array content costs CPU on the generating node.
  co_await ctx_->cpu->use(op_costs::gen_array(ctx_->node, bytes_));
  catalog::SynthArray arr{bytes_, static_cast<std::uint64_t>(produced_)};
  ++produced_;
  co_return std::optional<Object>(Object{arr});
}

sim::Task<void> GenArrayOp::next_batch(ItemBatch& out, std::size_t max) {
  if (count_ >= 0 && produced_ >= count_) {
    out.mark_eos();
    co_return;
  }
  std::size_t n = max;
  if (count_ >= 0) {
    n = std::min<std::size_t>(n, static_cast<std::size_t>(count_ - produced_));
  }
  // Constant per-item cost: one aggregated hold lands on the bitwise
  // per-item end time (see BagStreamOp::next_batch).
  co_await ctx_->cpu->use_repeated(op_costs::gen_array(ctx_->node, bytes_), n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push(Object{catalog::SynthArray{bytes_, static_cast<std::uint64_t>(produced_)}});
    ++produced_;
  }
  if (count_ >= 0 && produced_ >= count_) out.mark_eos();
  count_batch(n);
}

// ---------------------------------------------------------------------
// ReceiveOp / MergeOp
// ---------------------------------------------------------------------

sim::Task<std::optional<Object>> ReceiveOp::next() { return driver_->next(); }

sim::Task<void> ReceiveOp::next_batch(ItemBatch& out, std::size_t max) {
  const std::size_t n = co_await driver_->next_batch(out, max);
  // A zero-item pull means the stream ended; a non-empty batch may also
  // exhaust the driver, in which case the EOS flag rides along (the
  // extra per-item next() returning nullopt had no simulated effect).
  if (n == 0 || driver_->exhausted()) out.mark_eos();
  if (n > 0) count_batch(n);
}

MergeOp::MergeOp(PlanContext& ctx, std::vector<transport::ReceiverDriver*> drivers)
    : ctx_(&ctx), drivers_(std::move(drivers)), out_(*ctx.sim, 1) {
  SCSQ_CHECK(!drivers_.empty()) << "merge of zero streams";
}

sim::Task<void> MergeOp::pump(transport::ReceiverDriver* driver) {
  while (auto obj = co_await driver->next()) {
    co_await out_.send(std::move(*obj));
  }
  if (--live_ == 0) out_.close();
}

void MergeOp::ensure_started() {
  if (started_) return;
  started_ = true;
  live_ = static_cast<int>(drivers_.size());
  for (auto* d : drivers_) ctx_->sim->spawn(pump(d));
}

sim::Task<std::optional<Object>> MergeOp::next() {
  ensure_started();
  co_return co_await out_.recv();
}

sim::Task<void> MergeOp::next_batch(ItemBatch& out, std::size_t max) {
  ensure_started();
  auto first = co_await out_.recv();
  if (!first) {
    out.mark_eos();
    co_return;
  }
  out.push(std::move(*first));
  std::size_t n = 1;
  // Drain whatever the pumps already buffered without suspending. The
  // out_ channel keeps capacity 1 — widening it would change pump
  // backpressure and thus the simulated interleaving — so this drain
  // takes at most what individual next() calls at the same timestamp
  // would have taken, in the same arrival order.
  while (n < max) {
    auto more = out_.try_recv();
    if (!more) break;
    out.push(std::move(*more));
    ++n;
  }
  count_batch(n);
}

// ---------------------------------------------------------------------
// CountOp / SumOp
// ---------------------------------------------------------------------

CountOp::CountOp(PlanContext& ctx, OperatorPtr child) : ctx_(&ctx), child_(std::move(child)) {}

sim::Task<std::optional<Object>> CountOp::next() {
  if (done_) co_return std::nullopt;
  done_ = true;
  std::int64_t n = 0;
  while (auto obj = co_await child_->next()) {
    co_await ctx_->cpu->use(op_costs::invoke(ctx_->node));
    ++n;
  }
  co_return std::optional<Object>(Object{n});
}

SumOp::SumOp(PlanContext& ctx, OperatorPtr child) : ctx_(&ctx), child_(std::move(child)) {}

sim::Task<std::optional<Object>> SumOp::next() {
  if (done_) co_return std::nullopt;
  done_ = true;
  std::int64_t int_sum = 0;
  double real_sum = 0.0;
  bool all_int = true;
  while (auto obj = co_await child_->next()) {
    co_await ctx_->cpu->use(op_costs::invoke(ctx_->node));
    if (obj->kind() == catalog::Kind::kInt && all_int) {
      int_sum += obj->as_int();
    } else {
      if (all_int) {
        real_sum = static_cast<double>(int_sum);
        all_int = false;
      }
      real_sum += obj->as_number();
    }
  }
  if (all_int) co_return std::optional<Object>(Object{int_sum});
  co_return std::optional<Object>(Object{real_sum});
}

// ---------------------------------------------------------------------
// ArrayMapOp
// ---------------------------------------------------------------------

ArrayMapOp::ArrayMapOp(PlanContext& ctx, Fn fn, OperatorPtr child)
    : ctx_(&ctx), fn_(fn), child_(std::move(child)) {}

std::string ArrayMapOp::name() const {
  switch (fn_) {
    case Fn::kOdd: return "odd";
    case Fn::kEven: return "even";
    case Fn::kFft: return "fft";
  }
  return "?";
}

sim::Task<std::optional<Object>> ArrayMapOp::next() {
  auto obj = co_await child_->next();
  if (!obj) co_return std::nullopt;
  const auto& in = obj->as_darray();
  switch (fn_) {
    case Fn::kOdd: {
      co_await ctx_->cpu->use(op_costs::array_select(ctx_->node, in.size()));
      co_return std::optional<Object>(Object{funcs::odd(in)});
    }
    case Fn::kEven: {
      co_await ctx_->cpu->use(op_costs::array_select(ctx_->node, in.size()));
      co_return std::optional<Object>(Object{funcs::even(in)});
    }
    case Fn::kFft: {
      co_await ctx_->cpu->use(op_costs::array_fft(ctx_->node, in.size()));
      co_return std::optional<Object>(Object{funcs::fft(in)});
    }
  }
  co_return std::nullopt;  // unreachable
}

// ---------------------------------------------------------------------
// RadixCombineOp
// ---------------------------------------------------------------------

RadixCombineOp::RadixCombineOp(PlanContext& ctx, OperatorPtr odd_leg, OperatorPtr even_leg)
    : ctx_(&ctx), odd_leg_(std::move(odd_leg)), even_leg_(std::move(even_leg)) {}

sim::Task<std::optional<Object>> RadixCombineOp::next() {
  auto odd_obj = co_await odd_leg_->next();
  auto even_obj = co_await even_leg_->next();
  if (!odd_obj && !even_obj) co_return std::nullopt;
  if (!odd_obj || !even_obj) {
    throw scsql::Error("radixcombine legs ended unevenly");
  }
  const auto& o = odd_obj->as_carray();
  const auto& e = even_obj->as_carray();
  co_await ctx_->cpu->use(op_costs::radix_combine(ctx_->node, o.size() + e.size()));
  co_return std::optional<Object>(Object{funcs::radix_combine(e, o)});
}

// ---------------------------------------------------------------------
// GrepOp
// ---------------------------------------------------------------------

GrepOp::GrepOp(PlanContext& ctx, std::string pattern, std::string filename)
    : ctx_(&ctx), pattern_(std::move(pattern)), filename_(std::move(filename)) {}

sim::Task<void> GrepOp::scan() {
  scanned_ = true;
  std::uint64_t scanned_bytes = 0;
  auto lines = funcs::file_lines(filename_);
  for (auto& line : lines) scanned_bytes += line.size();
  // Scanning cost: one pass over the file content.
  co_await ctx_->cpu->use(op_costs::grep_scan(ctx_->node, scanned_bytes));
  for (auto& line : funcs::grep_file(pattern_, filename_)) {
    matches_.push_back(std::move(line));
  }
}

sim::Task<std::optional<Object>> GrepOp::next() {
  if (!scanned_) co_await scan();
  if (matches_.empty()) co_return std::nullopt;
  auto line = std::move(matches_.front());
  matches_.pop_front();
  co_return std::optional<Object>(Object{std::move(line)});
}

sim::Task<void> GrepOp::next_batch(ItemBatch& out, std::size_t max) {
  if (!scanned_) co_await scan();
  // Matches emit for free (the one scan charge covered them), so the
  // whole result set can stream out in batches with no timing effect.
  std::size_t n = 0;
  while (n < max && !matches_.empty()) {
    out.push(Object{std::move(matches_.front())});
    matches_.pop_front();
    ++n;
  }
  if (matches_.empty()) out.mark_eos();
  if (n > 0) count_batch(n);
}

// ---------------------------------------------------------------------
// ReceiverSourceOp
// ---------------------------------------------------------------------

ReceiverSourceOp::ReceiverSourceOp(PlanContext& ctx, std::string source_name)
    : ctx_(&ctx), source_(std::move(source_name)) {}

sim::Task<std::optional<Object>> ReceiverSourceOp::next() {
  if (!loaded_) {
    loaded_ = true;
    SCSQ_CHECK(ctx_->stream_source != nullptr) << "no stream source hook installed";
    for (auto& arr : ctx_->stream_source(source_)) arrays_.push_back(std::move(arr));
  }
  if (arrays_.empty()) co_return std::nullopt;
  auto arr = std::move(arrays_.front());
  arrays_.pop_front();
  co_await ctx_->cpu->use(op_costs::receiver_ingest(ctx_->node, arr.size()));
  co_return std::optional<Object>(Object{std::move(arr)});
}

}  // namespace scsq::plan
