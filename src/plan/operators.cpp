#include "plan/operators.hpp"

#include <cmath>

#include "funcs/fft.hpp"
#include "funcs/textgen.hpp"

namespace scsq::plan {

using catalog::Object;

// ---------------------------------------------------------------------
// ConstOp / BagStreamOp
// ---------------------------------------------------------------------

ConstOp::ConstOp(PlanContext& ctx, Object value) : ctx_(&ctx), value_(std::move(value)) {}

sim::Task<std::optional<Object>> ConstOp::next() {
  if (emitted_) co_return std::nullopt;
  emitted_ = true;
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
  co_return std::optional<Object>(value_);
}

BagStreamOp::BagStreamOp(PlanContext& ctx, catalog::Bag values)
    : ctx_(&ctx), values_(std::move(values)) {}

sim::Task<std::optional<Object>> BagStreamOp::next() {
  if (index_ >= values_.size()) co_return std::nullopt;
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
  co_return std::optional<Object>(values_[index_++]);
}

// ---------------------------------------------------------------------
// GenArrayOp
// ---------------------------------------------------------------------

GenArrayOp::GenArrayOp(PlanContext& ctx, std::uint64_t bytes, std::int64_t count)
    : ctx_(&ctx), bytes_(bytes), count_(count) {}

sim::Task<std::optional<Object>> GenArrayOp::next() {
  if (count_ >= 0 && produced_ >= count_) co_return std::nullopt;
  // Producing the array content costs CPU on the generating node.
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s +
                          static_cast<double>(bytes_) * ctx_->node.gen_per_byte_s);
  catalog::SynthArray arr{bytes_, static_cast<std::uint64_t>(produced_)};
  ++produced_;
  co_return std::optional<Object>(Object{arr});
}

// ---------------------------------------------------------------------
// ReceiveOp / MergeOp
// ---------------------------------------------------------------------

sim::Task<std::optional<Object>> ReceiveOp::next() { return driver_->next(); }

MergeOp::MergeOp(PlanContext& ctx, std::vector<transport::ReceiverDriver*> drivers)
    : ctx_(&ctx), drivers_(std::move(drivers)), out_(*ctx.sim, 1) {
  SCSQ_CHECK(!drivers_.empty()) << "merge of zero streams";
}

sim::Task<void> MergeOp::pump(transport::ReceiverDriver* driver) {
  while (auto obj = co_await driver->next()) {
    co_await out_.send(std::move(*obj));
  }
  if (--live_ == 0) out_.close();
}

void MergeOp::ensure_started() {
  if (started_) return;
  started_ = true;
  live_ = static_cast<int>(drivers_.size());
  for (auto* d : drivers_) ctx_->sim->spawn(pump(d));
}

sim::Task<std::optional<Object>> MergeOp::next() {
  ensure_started();
  co_return co_await out_.recv();
}

// ---------------------------------------------------------------------
// CountOp / SumOp
// ---------------------------------------------------------------------

CountOp::CountOp(PlanContext& ctx, OperatorPtr child) : ctx_(&ctx), child_(std::move(child)) {}

sim::Task<std::optional<Object>> CountOp::next() {
  if (done_) co_return std::nullopt;
  done_ = true;
  std::int64_t n = 0;
  while (auto obj = co_await child_->next()) {
    co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
    ++n;
  }
  co_return std::optional<Object>(Object{n});
}

SumOp::SumOp(PlanContext& ctx, OperatorPtr child) : ctx_(&ctx), child_(std::move(child)) {}

sim::Task<std::optional<Object>> SumOp::next() {
  if (done_) co_return std::nullopt;
  done_ = true;
  std::int64_t int_sum = 0;
  double real_sum = 0.0;
  bool all_int = true;
  while (auto obj = co_await child_->next()) {
    co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
    if (obj->kind() == catalog::Kind::kInt && all_int) {
      int_sum += obj->as_int();
    } else {
      if (all_int) {
        real_sum = static_cast<double>(int_sum);
        all_int = false;
      }
      real_sum += obj->as_number();
    }
  }
  if (all_int) co_return std::optional<Object>(Object{int_sum});
  co_return std::optional<Object>(Object{real_sum});
}

// ---------------------------------------------------------------------
// ArrayMapOp
// ---------------------------------------------------------------------

ArrayMapOp::ArrayMapOp(PlanContext& ctx, Fn fn, OperatorPtr child)
    : ctx_(&ctx), fn_(fn), child_(std::move(child)) {}

std::string ArrayMapOp::name() const {
  switch (fn_) {
    case Fn::kOdd: return "odd";
    case Fn::kEven: return "even";
    case Fn::kFft: return "fft";
  }
  return "?";
}

sim::Task<std::optional<Object>> ArrayMapOp::next() {
  auto obj = co_await child_->next();
  if (!obj) co_return std::nullopt;
  const auto& in = obj->as_darray();
  const double n = static_cast<double>(in.size());
  switch (fn_) {
    case Fn::kOdd: {
      co_await ctx_->cpu->use(ctx_->node.op_invoke_s + n * ctx_->node.flop_s);
      co_return std::optional<Object>(Object{funcs::odd(in)});
    }
    case Fn::kEven: {
      co_await ctx_->cpu->use(ctx_->node.op_invoke_s + n * ctx_->node.flop_s);
      co_return std::optional<Object>(Object{funcs::even(in)});
    }
    case Fn::kFft: {
      // ~5 n log2 n flops for a radix-2 FFT.
      const double flops = in.size() <= 1 ? 1.0 : 5.0 * n * std::log2(n);
      co_await ctx_->cpu->use(ctx_->node.op_invoke_s + flops * ctx_->node.flop_s);
      co_return std::optional<Object>(Object{funcs::fft(in)});
    }
  }
  co_return std::nullopt;  // unreachable
}

// ---------------------------------------------------------------------
// RadixCombineOp
// ---------------------------------------------------------------------

RadixCombineOp::RadixCombineOp(PlanContext& ctx, OperatorPtr odd_leg, OperatorPtr even_leg)
    : ctx_(&ctx), odd_leg_(std::move(odd_leg)), even_leg_(std::move(even_leg)) {}

sim::Task<std::optional<Object>> RadixCombineOp::next() {
  auto odd_obj = co_await odd_leg_->next();
  auto even_obj = co_await even_leg_->next();
  if (!odd_obj && !even_obj) co_return std::nullopt;
  if (!odd_obj || !even_obj) {
    throw scsql::Error("radixcombine legs ended unevenly");
  }
  const auto& o = odd_obj->as_carray();
  const auto& e = even_obj->as_carray();
  const double n = static_cast<double>(o.size() + e.size());
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s + 6.0 * n * ctx_->node.flop_s);
  co_return std::optional<Object>(Object{funcs::radix_combine(e, o)});
}

// ---------------------------------------------------------------------
// GrepOp
// ---------------------------------------------------------------------

GrepOp::GrepOp(PlanContext& ctx, std::string pattern, std::string filename)
    : ctx_(&ctx), pattern_(std::move(pattern)), filename_(std::move(filename)) {}

sim::Task<std::optional<Object>> GrepOp::next() {
  if (!scanned_) {
    scanned_ = true;
    std::uint64_t scanned_bytes = 0;
    auto lines = funcs::file_lines(filename_);
    for (auto& line : lines) scanned_bytes += line.size();
    // Scanning cost: one pass over the file content.
    co_await ctx_->cpu->use(ctx_->node.op_invoke_s +
                            static_cast<double>(scanned_bytes) *
                                ctx_->node.marshal_per_byte_s);
    for (auto& line : funcs::grep_file(pattern_, filename_)) {
      matches_.push_back(std::move(line));
    }
  }
  if (matches_.empty()) co_return std::nullopt;
  auto line = std::move(matches_.front());
  matches_.pop_front();
  co_return std::optional<Object>(Object{std::move(line)});
}

// ---------------------------------------------------------------------
// ReceiverSourceOp
// ---------------------------------------------------------------------

ReceiverSourceOp::ReceiverSourceOp(PlanContext& ctx, std::string source_name)
    : ctx_(&ctx), source_(std::move(source_name)) {}

sim::Task<std::optional<Object>> ReceiverSourceOp::next() {
  if (!loaded_) {
    loaded_ = true;
    SCSQ_CHECK(ctx_->stream_source != nullptr) << "no stream source hook installed";
    for (auto& arr : ctx_->stream_source(source_)) arrays_.push_back(std::move(arr));
  }
  if (arrays_.empty()) co_return std::nullopt;
  auto arr = std::move(arrays_.front());
  arrays_.pop_front();
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s +
                          8.0 * static_cast<double>(arr.size()) * ctx_->node.gen_per_byte_s);
  co_return std::optional<Object>(Object{std::move(arr)});
}

}  // namespace scsq::plan
