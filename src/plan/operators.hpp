// Concrete SQEP operators.
#pragma once

#include <deque>

#include "plan/operator.hpp"
#include "sim/channel.hpp"

namespace scsq::plan {

/// Emits one constant value, then EOS. Compiled from literals, captured
/// variables and scalar expressions.
class ConstOp final : public Operator {
 public:
  ConstOp(PlanContext& ctx, catalog::Object value);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "const"; }

 private:
  PlanContext* ctx_;
  catalog::Object value_;
  bool emitted_ = false;
};

/// Emits each element of a bag (iota(1,n) as a stream source).
class BagStreamOp final : public Operator {
 public:
  BagStreamOp(PlanContext& ctx, catalog::Bag values);
  sim::Task<std::optional<catalog::Object>> next() override;
  sim::Task<void> next_batch(ItemBatch& out, std::size_t max) override;
  std::string name() const override { return "bag"; }

 private:
  PlanContext* ctx_;
  catalog::Bag values_;
  std::size_t index_ = 0;
};

/// gen_array(bytes, count): the paper's workload generator — a finite
/// stream of `count` synthetic arrays of `bytes` bytes each. A negative
/// count (the gen_stream(bytes) builtin) produces an unbounded stream;
/// such continuous queries end via a stop condition (max_results) or
/// explicit user intervention (the engine's time limit).
class GenArrayOp final : public Operator {
 public:
  GenArrayOp(PlanContext& ctx, std::uint64_t bytes, std::int64_t count);
  sim::Task<std::optional<catalog::Object>> next() override;
  sim::Task<void> next_batch(ItemBatch& out, std::size_t max) override;
  std::string name() const override { return "gen_array"; }

 private:
  PlanContext* ctx_;
  std::uint64_t bytes_;
  std::int64_t count_;
  std::int64_t produced_ = 0;
};

/// extract(p): pulls materialized objects from one producer.
class ReceiveOp final : public Operator {
 public:
  explicit ReceiveOp(transport::ReceiverDriver& driver) : driver_(&driver) {}
  sim::Task<std::optional<catalog::Object>> next() override;
  sim::Task<void> next_batch(ItemBatch& out, std::size_t max) override;
  std::string name() const override { return "receive"; }

 private:
  transport::ReceiverDriver* driver_;
};

/// merge(bag-of-sp): pulls from several producers; "terminates when (if
/// ever) the last stream process terminates" (paper §2.4). Arrival order
/// across producers follows simulated delivery time.
class MergeOp final : public Operator {
 public:
  MergeOp(PlanContext& ctx, std::vector<transport::ReceiverDriver*> drivers);
  sim::Task<std::optional<catalog::Object>> next() override;
  sim::Task<void> next_batch(ItemBatch& out, std::size_t max) override;
  std::string name() const override { return "merge"; }

 private:
  sim::Task<void> pump(transport::ReceiverDriver* driver);
  void ensure_started();

  PlanContext* ctx_;
  std::vector<transport::ReceiverDriver*> drivers_;
  sim::Channel<catalog::Object> out_;
  int live_ = 0;
  bool started_ = false;
};

/// count(child): consumes the child stream, emits its cardinality.
class CountOp final : public Operator {
 public:
  CountOp(PlanContext& ctx, OperatorPtr child);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "count"; }

 private:
  PlanContext* ctx_;
  OperatorPtr child_;
  bool done_ = false;
};

/// sum(child): numeric sum of the child stream (ints stay integral).
class SumOp final : public Operator {
 public:
  SumOp(PlanContext& ctx, OperatorPtr child);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "sum"; }

 private:
  PlanContext* ctx_;
  OperatorPtr child_;
  bool done_ = false;
};

/// streamof(e): the paper's stream-from-expression adapter. Operator
/// pipelines already represent everything as streams, so this forwards.
class PassOp final : public Operator {
 public:
  explicit PassOp(OperatorPtr child) : child_(std::move(child)) {}
  sim::Task<std::optional<catalog::Object>> next() override { return child_->next(); }
  /// Forwarding is batch-transparent: the child's batch is our batch.
  sim::Task<void> next_batch(ItemBatch& out, std::size_t max) override {
    const std::size_t before = out.size();
    co_await child_->next_batch(out, max);
    if (out.size() > before) count_batch(out.size() - before);
  }
  std::string name() const override { return "streamof"; }

 private:
  OperatorPtr child_;
};

/// odd(x) / even(x) / fft(x): per-element array transforms.
class ArrayMapOp final : public Operator {
 public:
  enum class Fn { kOdd, kEven, kFft };
  ArrayMapOp(PlanContext& ctx, Fn fn, OperatorPtr child);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override;

 private:
  PlanContext* ctx_;
  Fn fn_;
  OperatorPtr child_;
};

/// radixcombine over exactly two producer legs, pairing the k-th element
/// of the odd-FFT leg with the k-th element of the even-FFT leg (the
/// paper's radix2 query binds leg order via the bag {a, b} with a = odd
/// half, b = even half).
class RadixCombineOp final : public Operator {
 public:
  RadixCombineOp(PlanContext& ctx, OperatorPtr odd_leg, OperatorPtr even_leg);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "radixcombine"; }

 private:
  PlanContext* ctx_;
  OperatorPtr odd_leg_;
  OperatorPtr even_leg_;
};

/// grep(pattern, filename): scans the (synthetic) file, emits matching
/// lines (paper §2.4 mapreduce example).
class GrepOp final : public Operator {
 public:
  GrepOp(PlanContext& ctx, std::string pattern, std::string filename);
  sim::Task<std::optional<catalog::Object>> next() override;
  sim::Task<void> next_batch(ItemBatch& out, std::size_t max) override;
  std::string name() const override { return "grep"; }

 private:
  sim::Task<void> scan();

  PlanContext* ctx_;
  std::string pattern_;
  std::string filename_;
  bool scanned_ = false;
  std::deque<std::string> matches_;
};

/// receiver(name): source of real signal arrays from a registered
/// external stream source (the radix2 example's antenna feed).
class ReceiverSourceOp final : public Operator {
 public:
  ReceiverSourceOp(PlanContext& ctx, std::string source_name);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "receiver"; }

 private:
  PlanContext* ctx_;
  std::string source_;
  bool loaded_ = false;
  std::deque<std::vector<double>> arrays_;
};

}  // namespace scsq::plan
