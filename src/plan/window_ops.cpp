#include "plan/window_ops.hpp"

#include <cmath>

namespace scsq::plan {

using catalog::Bag;
using catalog::Kind;
using catalog::Object;

// ---------------------------------------------------------------------
// WindowOp
// ---------------------------------------------------------------------

WindowOp::WindowOp(PlanContext& ctx, OperatorPtr child, std::int64_t size,
                   std::int64_t slide)
    : ctx_(&ctx), child_(std::move(child)) {
  if (size < 1) throw scsql::Error("window size must be >= 1");
  if (slide < 1 || slide > size) {
    throw scsql::Error("window slide must be in [1, size]");
  }
  size_ = static_cast<std::size_t>(size);
  slide_ = static_cast<std::size_t>(slide);
}

sim::Task<std::optional<Object>> WindowOp::next() {
  while (true) {
    if (eos_) {
      // Emit one final partial window when elements arrived after the
      // last full emission (or the stream was shorter than one window).
      if (!flushed_ && !buffer_.empty() && (pending_ > 0 || !emitted_any_)) {
        flushed_ = true;
        Bag out(buffer_.begin(), buffer_.end());
        co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
        co_return std::optional<Object>(Object{std::move(out)});
      }
      co_return std::nullopt;
    }
    auto obj = co_await child_->next();
    if (!obj) {
      eos_ = true;
      continue;
    }
    buffer_.push_back(std::move(*obj));
    if (buffer_.size() > size_) buffer_.pop_front();
    ++pending_;
    if (buffer_.size() == size_ && pending_ >= slide_) {
      pending_ = 0;
      emitted_any_ = true;
      Bag out(buffer_.begin(), buffer_.end());
      co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
      // Tumbling windows do not retain emitted elements.
      if (slide_ == size_) buffer_.clear();
      co_return std::optional<Object>(Object{std::move(out)});
    }
  }
}

// ---------------------------------------------------------------------
// BagAggOp
// ---------------------------------------------------------------------

BagAggOp::BagAggOp(PlanContext& ctx, Fn fn, OperatorPtr child)
    : ctx_(&ctx), fn_(fn), child_(std::move(child)) {}

std::string BagAggOp::name() const {
  switch (fn_) {
    case Fn::kSum: return "bagsum";
    case Fn::kAvg: return "bagavg";
    case Fn::kMax: return "bagmax";
    case Fn::kMin: return "bagmin";
    case Fn::kCount: return "bagcount";
  }
  return "?";
}

sim::Task<std::optional<Object>> BagAggOp::next() {
  auto obj = co_await child_->next();
  if (!obj) co_return std::nullopt;
  if (obj->kind() != Kind::kBag) {
    throw scsql::Error(name() + "() expects a stream of bags (use cwindow/swindow)");
  }
  const auto& bag = obj->as_bag();
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s +
                          static_cast<double>(bag.size()) * ctx_->node.flop_s);
  if (fn_ == Fn::kCount) {
    co_return std::optional<Object>(Object{static_cast<std::int64_t>(bag.size())});
  }
  if (bag.empty()) {
    throw scsql::Error(name() + "() of an empty window");
  }
  double acc = fn_ == Fn::kMin ? bag[0].as_number()
               : fn_ == Fn::kMax ? bag[0].as_number()
                                 : 0.0;
  for (const auto& el : bag) {
    const double v = el.as_number();
    switch (fn_) {
      case Fn::kSum:
      case Fn::kAvg:
        acc += v;
        break;
      case Fn::kMax:
        acc = std::max(acc, v);
        break;
      case Fn::kMin:
        acc = std::min(acc, v);
        break;
      case Fn::kCount:
        break;
    }
  }
  if (fn_ == Fn::kAvg) acc /= static_cast<double>(bag.size());
  co_return std::optional<Object>(Object{acc});
}

// ---------------------------------------------------------------------
// ScalarMapOp
// ---------------------------------------------------------------------

ScalarMapOp::ScalarMapOp(PlanContext& ctx, Fn fn, OperatorPtr child)
    : ctx_(&ctx), fn_(fn), child_(std::move(child)) {}

std::string ScalarMapOp::name() const {
  switch (fn_) {
    case Fn::kAbs: return "abs";
    case Fn::kSqrt: return "sqrtv";
  }
  return "?";
}

sim::Task<std::optional<Object>> ScalarMapOp::next() {
  auto obj = co_await child_->next();
  if (!obj) co_return std::nullopt;
  co_await ctx_->cpu->use(ctx_->node.op_invoke_s + ctx_->node.flop_s);
  const double v = obj->as_number();
  switch (fn_) {
    case Fn::kAbs:
      co_return std::optional<Object>(Object{std::fabs(v)});
    case Fn::kSqrt:
      if (v < 0.0) throw scsql::Error("sqrtv() of a negative value");
      co_return std::optional<Object>(Object{std::sqrt(v)});
  }
  co_return std::nullopt;  // unreachable
}

// ---------------------------------------------------------------------
// AboveOp
// ---------------------------------------------------------------------

AboveOp::AboveOp(PlanContext& ctx, OperatorPtr child, double threshold)
    : ctx_(&ctx), child_(std::move(child)), threshold_(threshold) {}

sim::Task<std::optional<Object>> AboveOp::next() {
  while (true) {
    auto obj = co_await child_->next();
    if (!obj) co_return std::nullopt;
    if (obj->kind() != Kind::kInt && obj->kind() != Kind::kReal) {
      throw scsql::Error("above() expects a numeric stream (got " +
                         std::string(catalog::kind_name(obj->kind())) + ")");
    }
    co_await ctx_->cpu->use(ctx_->node.op_invoke_s);
    if (obj->as_number() > threshold_) co_return obj;
  }
}

}  // namespace scsq::plan
