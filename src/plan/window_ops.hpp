// Window aggregation and per-element math operators.
//
// The paper positions SCSQ against Sawzall by noting that "SCSQ features
// all common stream operators including window aggregation" (§4). These
// operators provide the count-based window family:
//
//   cwindow(s, n)        tumbling window: every n consecutive elements
//                        emitted as one bag
//   swindow(s, n, k)     sliding window: bag of the latest n elements,
//                        emitted every k arrivals (k <= n)
//   bagsum/bagavg/bagmax/bagmin/bagcount(s)
//                        per-bag aggregates over a stream of bags
//   abs/sqrtv(s)         per-element scalar maps over numeric streams
//   above(s, x)          threshold filter: numeric elements > x pass
//
// Windows operate over any object kind; the bag aggregates require
// numeric elements (int or real).
#pragma once

#include <deque>

#include "plan/operator.hpp"

namespace scsq::plan {

/// Count-based window: emits bags of `size` elements, advancing by
/// `slide` elements per emission (slide == size -> tumbling). A final
/// partial window is emitted at end of stream if any elements remain
/// un-emitted.
class WindowOp final : public Operator {
 public:
  WindowOp(PlanContext& ctx, OperatorPtr child, std::int64_t size, std::int64_t slide);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "window"; }

 private:
  PlanContext* ctx_;
  OperatorPtr child_;
  std::size_t size_;
  std::size_t slide_;
  std::deque<catalog::Object> buffer_;
  std::size_t pending_ = 0;  // arrivals since last emission
  bool eos_ = false;
  bool emitted_any_ = false;
  bool flushed_ = false;
};

/// Per-bag aggregate over a stream of bags.
class BagAggOp final : public Operator {
 public:
  enum class Fn { kSum, kAvg, kMax, kMin, kCount };
  BagAggOp(PlanContext& ctx, Fn fn, OperatorPtr child);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override;

 private:
  PlanContext* ctx_;
  Fn fn_;
  OperatorPtr child_;
};

/// Per-element scalar math over numeric streams.
class ScalarMapOp final : public Operator {
 public:
  enum class Fn { kAbs, kSqrt };
  ScalarMapOp(PlanContext& ctx, Fn fn, OperatorPtr child);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override;

 private:
  PlanContext* ctx_;
  Fn fn_;
  OperatorPtr child_;
};

/// Threshold filter over a numeric stream: elements strictly greater
/// than the threshold pass; everything else is dropped. The threshold
/// grep of monitor queries (above(system.rates(...), limit)), but a
/// regular stream operator usable in any plan.
class AboveOp final : public Operator {
 public:
  AboveOp(PlanContext& ctx, OperatorPtr child, double threshold);
  sim::Task<std::optional<catalog::Object>> next() override;
  std::string name() const override { return "above"; }

 private:
  PlanContext* ctx_;
  OperatorPtr child_;
  double threshold_;
};

}  // namespace scsq::plan
