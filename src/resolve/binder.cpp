#include "resolve/binder.hpp"

#include <map>

#include "util/logging.hpp"

namespace scsq::resolve {
namespace {

using scsql::Error;
using scsql::Expr;
using scsql::ExprKind;
using scsql::ExprPtr;
using scsql::Predicate;
using scsql::PredKind;
using scsql::Select;

void collect_vars(const ExprPtr& expr, std::set<std::string>& bound,
                  std::set<std::string>& free) {
  if (!expr) return;
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kVar:
      if (!bound.contains(expr->name)) free.insert(expr->name);
      return;
    case ExprKind::kCall:
    case ExprKind::kBagCtor:
    case ExprKind::kBinary:
    case ExprKind::kNeg:
      for (const auto& a : expr->args) collect_vars(a, bound, free);
      return;
    case ExprKind::kSelect: {
      // A nested select introduces its own declarations; they shadow the
      // outer scope within the select.
      std::set<std::string> inner_bound = bound;
      for (const auto& d : expr->select->decls) inner_bound.insert(d.name);
      for (const auto& e : expr->select->exprs) collect_vars(e, inner_bound, free);
      for (const auto& p : expr->select->predicates) {
        collect_vars(p.lhs, inner_bound, free);
        collect_vars(p.rhs, inner_bound, free);
      }
      return;
    }
  }
}

}  // namespace

std::set<std::string> free_vars(const ExprPtr& expr) {
  std::set<std::string> bound;
  std::set<std::string> free;
  collect_vars(expr, bound, free);
  return free;
}

BoundQuery bind(const Select& select, const std::set<std::string>& pre_bound) {
  BoundQuery out;
  out.select = &select;

  std::set<std::string> declared;
  for (const auto& d : select.decls) {
    if (declared.contains(d.name)) {
      throw Error("variable '" + d.name + "' declared twice", d.pos);
    }
    if (pre_bound.contains(d.name)) {
      throw Error("variable '" + d.name + "' shadows an outer binding", d.pos);
    }
    declared.insert(d.name);
  }

  // Pre-pass: collect enumerated variables so that an equality on an
  // enumerated variable classifies as a per-row filter, not a binding
  // (e.g. `i in iota(1,4) and i/2*2 = i`).
  std::set<std::string> enumerated;
  for (const auto& p : select.predicates) {
    if (p.kind != PredKind::kIn) continue;
    if (p.lhs->kind != ExprKind::kVar) {
      throw Error("left side of 'in' must be a variable", p.pos);
    }
    const auto& var = p.lhs->name;
    if (!declared.contains(var)) {
      throw Error("'in' variable '" + var + "' is not declared in the from clause", p.pos);
    }
    if (enumerated.contains(var)) {
      throw Error("variable '" + var + "' is enumerated twice", p.pos);
    }
    enumerated.insert(var);
  }

  // Classify predicates.
  std::map<std::string, const Predicate*> binding_of;  // var -> its equation
  std::vector<const Predicate*> enumerations;
  std::vector<const Predicate*> filters;
  auto bindable = [&](const ExprPtr& side) {
    return side->kind == ExprKind::kVar && declared.contains(side->name) &&
           !enumerated.contains(side->name) && !binding_of.contains(side->name);
  };
  for (const auto& p : select.predicates) {
    if (p.kind == PredKind::kIn) {
      enumerations.push_back(&p);
      continue;
    }
    // Equality with a declared, not-yet-bound, non-enumerated variable
    // on one side is a binding equation; prefer the left side (the
    // paper always writes `var = expr`).
    if (p.op == scsql::BinOp::kEq && bindable(p.lhs)) {
      binding_of[p.lhs->name] = &p;
    } else if (p.op == scsql::BinOp::kEq && bindable(p.rhs)) {
      binding_of[p.rhs->name] = &p;
    } else {
      filters.push_back(&p);
    }
  }

  // Every declared variable must be bound or enumerated.
  for (const auto& d : select.decls) {
    if (!binding_of.contains(d.name) && !enumerated.contains(d.name)) {
      throw Error("variable '" + d.name + "' is never bound", d.pos);
    }
  }

  // Topologically order the bindings by variable dependencies.
  std::set<std::string> ready = pre_bound;
  for (const auto& v : enumerated) ready.insert(v);

  auto deps_satisfied = [&](const Predicate* p, const std::string& var) {
    const ExprPtr& rhs = (p->lhs->kind == ExprKind::kVar && p->lhs->name == var) ? p->rhs
                                                                                 : p->lhs;
    for (const auto& dep : free_vars(rhs)) {
      if (declared.contains(dep) && !ready.contains(dep)) return false;
    }
    return true;
  };

  std::map<std::string, const Predicate*> remaining = binding_of;
  while (!remaining.empty()) {
    bool progressed = false;
    for (auto it = remaining.begin(); it != remaining.end();) {
      if (deps_satisfied(it->second, it->first)) {
        out.bindings.push_back(it->second);
        ready.insert(it->first);
        it = remaining.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (!progressed) {
      throw Error("cyclic dependency among bindings (starting at '" +
                      remaining.begin()->first + "')",
                  remaining.begin()->second->pos);
    }
  }

  // Enumeration expressions may reference bound variables (iota(1,n));
  // check those are resolvable too.
  for (const auto* p : enumerations) {
    for (const auto& dep : free_vars(p->rhs)) {
      if (declared.contains(dep) && !ready.contains(dep) && !enumerated.contains(dep)) {
        throw Error("enumeration of '" + p->lhs->name + "' depends on unbound '" + dep + "'",
                    p->pos);
      }
    }
  }

  out.enumerations = std::move(enumerations);
  out.filters = std::move(filters);
  return out;
}

}  // namespace scsq::resolve
