// Query binding: classifying and ordering where-clause predicates.
//
// SCSQL where clauses are conjunctions of equations. The paper's queries
// bind declared variables with `var = expr` (e.g. `b=sp(...)`), iterate
// with `var in collection` (e.g. `i in iota(1,n)`, `p in a`), and may
// filter with general comparisons. The binder:
//   * classifies each predicate as a binding, an enumeration or a filter;
//   * orders bindings so that every expression is evaluated after the
//     variables it references (`c=sp(count(merge(a)),...)` runs after
//     `a=spv(...)`), which is exactly the order RPs must be spawned in;
//   * reports unbound variables, double bindings and dependency cycles
//     as user errors with source positions.
//
// It also provides free-variable analysis, used when sp()/spv() capture
// the environment of a shipped subquery.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "scsql/ast.hpp"

namespace scsq::resolve {

struct BoundQuery {
  const scsql::Select* select = nullptr;
  /// Equality bindings in dependency order (evaluate lhs := rhs).
  std::vector<const scsql::Predicate*> bindings;
  /// `var in expr` enumerations (iteration generators).
  std::vector<const scsql::Predicate*> enumerations;
  /// Remaining predicates, applied as filters per row.
  std::vector<const scsql::Predicate*> filters;
};

/// Binds a select. `pre_bound` names variables already in scope (outer
/// environment / function parameters). Throws scsql::Error on unbound
/// variables, conflicting bindings, or cyclic dependencies.
BoundQuery bind(const scsql::Select& select, const std::set<std::string>& pre_bound = {});

/// Names of all variables referenced by `expr` that are not bound within
/// it (by a nested select's own declarations).
std::set<std::string> free_vars(const scsql::ExprPtr& expr);

}  // namespace scsq::resolve
