#include "scsql/ast.hpp"

#include <sstream>

namespace scsq::scsql {

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
  }
  return "?";
}

std::string TypeRef::to_string() const {
  const char* base = "object";
  switch (name) {
    case TypeName::kInteger: base = "integer"; break;
    case TypeName::kReal: base = "real"; break;
    case TypeName::kString: base = "string"; break;
    case TypeName::kBoolean: base = "boolean"; break;
    case TypeName::kSp: base = "sp"; break;
    case TypeName::kStream: base = "stream"; break;
    case TypeName::kObject: base = "object"; break;
  }
  return is_bag ? std::string("bag of ") + base : std::string(base);
}

std::string Expr::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.kind() == catalog::Kind::kStr) {
        os << '\'' << literal.as_str() << '\'';
      } else {
        os << literal.to_string();
      }
      break;
    case ExprKind::kVar:
      os << name;
      break;
    case ExprKind::kCall: {
      os << name << '(';
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) os << ", ";
        os << args[i]->to_string();
      }
      os << ')';
      break;
    }
    case ExprKind::kBagCtor: {
      os << '{';
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) os << ", ";
        os << args[i]->to_string();
      }
      os << '}';
      break;
    }
    case ExprKind::kSelect:
      os << '(' << select_to_string(*select) << ')';
      break;
    case ExprKind::kBinary:
      os << '(' << args[0]->to_string() << ' ' << binop_name(op) << ' '
         << args[1]->to_string() << ')';
      break;
    case ExprKind::kNeg:
      os << "-" << args[0]->to_string();
      break;
  }
  return os.str();
}

std::string select_to_string(const Select& sel) {
  std::ostringstream os;
  os << "select ";
  for (std::size_t i = 0; i < sel.exprs.size(); ++i) {
    if (i > 0) os << ", ";
    os << sel.exprs[i]->to_string();
  }
  if (!sel.decls.empty()) {
    os << " from ";
    for (std::size_t i = 0; i < sel.decls.size(); ++i) {
      if (i > 0) os << ", ";
      os << sel.decls[i].type.to_string() << ' ' << sel.decls[i].name;
    }
  }
  if (!sel.predicates.empty()) {
    os << " where ";
    for (std::size_t i = 0; i < sel.predicates.size(); ++i) {
      if (i > 0) os << " and ";
      const auto& p = sel.predicates[i];
      if (p.kind == PredKind::kIn) {
        os << p.lhs->to_string() << " in " << p.rhs->to_string();
      } else {
        os << p.lhs->to_string() << ' ' << binop_name(p.op) << ' ' << p.rhs->to_string();
      }
    }
  }
  return os.str();
}

namespace {
std::shared_ptr<Expr> blank(ExprKind kind, SourcePos pos) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->pos = pos;
  return e;
}
}  // namespace

ExprPtr make_literal(catalog::Object value, SourcePos pos) {
  auto e = blank(ExprKind::kLiteral, pos);
  e->literal = std::move(value);
  return e;
}

ExprPtr make_var(std::string name, SourcePos pos) {
  auto e = blank(ExprKind::kVar, pos);
  e->name = std::move(name);
  return e;
}

ExprPtr make_call(std::string name, std::vector<ExprPtr> args, SourcePos pos) {
  auto e = blank(ExprKind::kCall, pos);
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr make_bag(std::vector<ExprPtr> elems, SourcePos pos) {
  auto e = blank(ExprKind::kBagCtor, pos);
  e->args = std::move(elems);
  return e;
}

ExprPtr make_select(SelectPtr select, SourcePos pos) {
  auto e = blank(ExprKind::kSelect, pos);
  e->select = std::move(select);
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourcePos pos) {
  auto e = blank(ExprKind::kBinary, pos);
  e->op = op;
  e->args = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr make_neg(ExprPtr operand, SourcePos pos) {
  auto e = blank(ExprKind::kNeg, pos);
  e->args = {std::move(operand)};
  return e;
}

}  // namespace scsq::scsql
