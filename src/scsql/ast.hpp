// SCSQL abstract syntax.
//
// The AST is immutable after parsing and shared via shared_ptr<const>:
// sp()/spv() ship subquery expressions (plus captured variable values)
// to remote running processes, so subtrees are referenced from several
// places without copying.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/object.hpp"
#include "scsql/error.hpp"

namespace scsq::scsql {

enum class TypeName : std::uint8_t {
  kInteger,
  kReal,
  kString,
  kBoolean,
  kSp,      // stream process — first-class, the paper's contribution
  kStream,
  kObject,  // any
};

struct TypeRef {
  TypeName name = TypeName::kObject;
  bool is_bag = false;  // "bag of sp a"

  std::string to_string() const;
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind : std::uint8_t {
  kLiteral,  // 42, 3.5, 'bg'
  kVar,      // a
  kCall,     // sp(...), count(...), iota(1, n)
  kBagCtor,  // {a, b}
  kSelect,   // select ... from ... where ...
  kBinary,   // e1 + e2, e1 < e2
  kNeg,      // -e
};

enum class BinOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kAdd, kSub, kMul, kDiv };

const char* binop_name(BinOp op);

/// A from-clause variable declaration: `sp a`, `bag of sp b`, `integer n`.
struct Decl {
  TypeRef type;
  std::string name;
  SourcePos pos;
};

enum class PredKind : std::uint8_t {
  kCompare,  // lhs op rhs; with op '=' and a declared variable on one
             // side this is a binding equation (classified by the binder)
  kIn,       // var in collection
};

struct Predicate {
  PredKind kind = PredKind::kCompare;
  BinOp op = BinOp::kEq;
  ExprPtr lhs;
  ExprPtr rhs;
  SourcePos pos;
};

struct Select {
  std::vector<ExprPtr> exprs;  // select list (usually one expression)
  std::vector<Decl> decls;
  std::vector<Predicate> predicates;
  SourcePos pos;
};
using SelectPtr = std::shared_ptr<const Select>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  SourcePos pos;

  catalog::Object literal;      // kLiteral
  std::string name;             // kVar: variable; kCall: function name
  std::vector<ExprPtr> args;    // kCall args, kBagCtor elements,
                                // kBinary {lhs, rhs}, kNeg {operand}
  SelectPtr select;             // kSelect
  BinOp op = BinOp::kEq;        // kBinary

  std::string to_string() const;
};

/// `create function name(params) -> type as <query>`.
struct FunctionDef {
  std::string name;
  std::vector<Decl> params;
  TypeRef return_type;
  ExprPtr body;
  SourcePos pos;
};

/// One parsed statement: exactly one of `query` / `function` is set.
struct Statement {
  ExprPtr query;
  std::shared_ptr<const FunctionDef> function;
};

// --- construction helpers (used by parser and tests) ---

ExprPtr make_literal(catalog::Object value, SourcePos pos = {});
ExprPtr make_var(std::string name, SourcePos pos = {});
ExprPtr make_call(std::string name, std::vector<ExprPtr> args, SourcePos pos = {});
ExprPtr make_bag(std::vector<ExprPtr> elems, SourcePos pos = {});
ExprPtr make_select(SelectPtr select, SourcePos pos = {});
ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourcePos pos = {});
ExprPtr make_neg(ExprPtr operand, SourcePos pos = {});

/// Renders a Select back to SCSQL text (used by the pretty-printer
/// round-trip tests and for logging shipped subqueries).
std::string select_to_string(const Select& sel);

}  // namespace scsq::scsql
