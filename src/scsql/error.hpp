// User-visible SCSQL errors (lexing, parsing, binding, execution).
//
// These are the one category of failure that throws rather than
// SCSQ_CHECKs: queries come from users, so malformed input must surface
// as a catchable error with a source position.
#pragma once

#include <stdexcept>
#include <string>

namespace scsq::scsql {

struct SourcePos {
  int line = 1;  // 1-based
  int column = 1;

  std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

class Error : public std::runtime_error {
 public:
  Error(std::string message, SourcePos pos)
      : std::runtime_error(pos.to_string() + ": " + message), pos_(pos) {}

  explicit Error(std::string message)
      : std::runtime_error(std::move(message)), pos_{0, 0} {}

  const SourcePos& pos() const { return pos_; }

 private:
  SourcePos pos_;
};

}  // namespace scsq::scsql
