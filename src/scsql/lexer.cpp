#include "scsql/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "util/strings.hpp"

namespace scsq::scsql {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEnd: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kInt: return "integer literal";
    case Tok::kReal: return "real literal";
    case Tok::kString: return "string literal";
    case Tok::kSelect: return "'select'";
    case Tok::kFrom: return "'from'";
    case Tok::kWhere: return "'where'";
    case Tok::kAnd: return "'and'";
    case Tok::kIn: return "'in'";
    case Tok::kCreate: return "'create'";
    case Tok::kFunction: return "'function'";
    case Tok::kAs: return "'as'";
    case Tok::kBag: return "'bag'";
    case Tok::kOf: return "'of'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kComma: return "','";
    case Tok::kSemicolon: return "';'";
    case Tok::kEq: return "'='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kArrow: return "'->'";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kMap = {
      {"select", Tok::kSelect}, {"from", Tok::kFrom},     {"where", Tok::kWhere},
      {"and", Tok::kAnd},       {"in", Tok::kIn},         {"create", Tok::kCreate},
      {"function", Tok::kFunction}, {"as", Tok::kAs},     {"bag", Tok::kBag},
      {"of", Tok::kOf},
  };
  return kMap;
}
}  // namespace

Lexer::Lexer(std::string_view source) : source_(source) {}

char Lexer::peek(int ahead) const {
  std::size_t i = offset_ + static_cast<std::size_t>(ahead);
  return i < source_.size() ? source_[i] : '\0';
}

char Lexer::advance() {
  char c = source_[offset_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::skip_space_and_comments() {
  while (!at_end()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '-' && peek(1) == '-') {
      while (!at_end() && peek() != '\n') advance();
    } else {
      return;
    }
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  while (true) {
    Token t = next();
    out.push_back(t);
    if (t.kind == Tok::kEnd) return out;
  }
}

Token Lexer::next() {
  skip_space_and_comments();
  Token t;
  t.pos = pos();
  if (at_end()) {
    t.kind = Tok::kEnd;
    return t;
  }
  char c = peek();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string word;
    // Identifiers are [alpha_][alnum_]*, plus '.'-joined segments for
    // namespaced call names (system.metrics). The dot is consumed only
    // when it starts another identifier segment, so `count(s).` still
    // reports the stray dot instead of silently eating it.
    while (!at_end()) {
      const char p = peek();
      if (std::isalnum(static_cast<unsigned char>(p)) || p == '_') {
        word.push_back(advance());
      } else if (p == '.' && (std::isalpha(static_cast<unsigned char>(peek(1))) ||
                              peek(1) == '_')) {
        word.push_back(advance());
      } else {
        break;
      }
    }
    auto lower = util::to_lower(word);
    auto it = keywords().find(lower);
    if (it != keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = Tok::kIdent;
      t.text = std::move(word);
    }
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num;
    bool is_real = false;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) num.push_back(advance());
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_real = true;
      num.push_back(advance());
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) num.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
      int look = 1;
      if (peek(look) == '+' || peek(look) == '-') ++look;
      if (std::isdigit(static_cast<unsigned char>(peek(look)))) {
        is_real = true;
        num.push_back(advance());  // e
        if (peek() == '+' || peek() == '-') num.push_back(advance());
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) num.push_back(advance());
      }
    }
    if (is_real) {
      t.kind = Tok::kReal;
      t.real_val = std::strtod(num.c_str(), nullptr);
    } else {
      t.kind = Tok::kInt;
      t.int_val = std::strtoll(num.c_str(), nullptr, 10);
    }
    return t;
  }

  if (c == '\'' || c == '"') {
    char quote = advance();
    std::string s;
    while (!at_end() && peek() != quote) s.push_back(advance());
    if (at_end()) throw Error("unterminated string literal", t.pos);
    advance();  // closing quote
    t.kind = Tok::kString;
    t.text = std::move(s);
    return t;
  }

  advance();
  switch (c) {
    case '(': t.kind = Tok::kLParen; return t;
    case ')': t.kind = Tok::kRParen; return t;
    case '{': t.kind = Tok::kLBrace; return t;
    case '}': t.kind = Tok::kRBrace; return t;
    case ',': t.kind = Tok::kComma; return t;
    case ';': t.kind = Tok::kSemicolon; return t;
    case '=': t.kind = Tok::kEq; return t;
    case '+': t.kind = Tok::kPlus; return t;
    case '*': t.kind = Tok::kStar; return t;
    case '/': t.kind = Tok::kSlash; return t;
    case '-':
      if (peek() == '>') {
        advance();
        t.kind = Tok::kArrow;
      } else {
        t.kind = Tok::kMinus;
      }
      return t;
    case '!':
      if (peek() == '=') {
        advance();
        t.kind = Tok::kNe;
        return t;
      }
      throw Error("unexpected character '!'", t.pos);
    case '<':
      if (peek() == '=') {
        advance();
        t.kind = Tok::kLe;
      } else {
        t.kind = Tok::kLt;
      }
      return t;
    case '>':
      if (peek() == '=') {
        advance();
        t.kind = Tok::kGe;
      } else {
        t.kind = Tok::kGt;
      }
      return t;
    default:
      throw Error(std::string("unexpected character '") + c + "'", t.pos);
  }
}

}  // namespace scsq::scsql
