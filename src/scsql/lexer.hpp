// SCSQL lexer: turns query text into a token stream.
//
// Keywords are case-insensitive (the paper mixes "Select" and "select").
// Strings accept both single quotes ('bg') and double quotes ("pattern"),
// matching the paper's listings. Comments: -- to end of line.
#pragma once

#include <string_view>
#include <vector>

#include "scsql/token.hpp"

namespace scsq::scsql {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Lexes the whole input; the last token is always kEnd.
  /// Throws scsql::Error on bad characters or unterminated strings.
  std::vector<Token> lex_all();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool at_end() const { return offset_ >= source_.size(); }
  void skip_space_and_comments();
  SourcePos pos() const { return SourcePos{line_, column_}; }

  std::string_view source_;
  std::size_t offset_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace scsq::scsql
