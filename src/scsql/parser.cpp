#include "scsql/parser.hpp"

#include <optional>

#include "scsql/lexer.hpp"

namespace scsq::scsql {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) {
    Lexer lexer(source);
    tokens_ = lexer.lex_all();
  }

  std::vector<Statement> script() {
    std::vector<Statement> out;
    while (!check(Tok::kEnd)) {
      out.push_back(statement());
    }
    return out;
  }

  Statement one_statement() {
    Statement s = statement();
    expect(Tok::kEnd, "expected end of input after statement");
    return s;
  }

  ExprPtr one_expression() {
    ExprPtr e = expr();
    expect(Tok::kEnd, "expected end of input after expression");
    return e;
  }

 private:
  // --- token helpers ---

  const Token& peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool check(Tok kind) const { return peek().kind == kind; }

  bool match(Tok kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }

  Token expect(Tok kind, const std::string& what) {
    if (!check(kind)) {
      throw Error(what + " (found " + tok_name(peek().kind) + ")", peek().pos);
    }
    return tokens_[pos_++];
  }

  [[noreturn]] void fail(const std::string& message) { throw Error(message, peek().pos); }

  // --- grammar ---

  Statement statement() {
    Statement s;
    if (check(Tok::kCreate)) {
      s.function = create_function();
    } else {
      s.query = expr();
    }
    expect(Tok::kSemicolon, "expected ';' after statement");
    return s;
  }

  std::shared_ptr<const FunctionDef> create_function() {
    auto fn = std::make_shared<FunctionDef>();
    fn->pos = peek().pos;
    expect(Tok::kCreate, "expected 'create'");
    expect(Tok::kFunction, "expected 'function'");
    fn->name = expect(Tok::kIdent, "expected function name").text;
    expect(Tok::kLParen, "expected '(' after function name");
    if (!check(Tok::kRParen)) {
      do {
        Decl d;
        d.pos = peek().pos;
        d.type = type_ref();
        d.name = expect(Tok::kIdent, "expected parameter name").text;
        fn->params.push_back(std::move(d));
      } while (match(Tok::kComma));
    }
    expect(Tok::kRParen, "expected ')' after parameters");
    expect(Tok::kArrow, "expected '->' before return type");
    fn->return_type = type_ref();
    expect(Tok::kAs, "expected 'as' before function body");
    fn->body = expr();
    return fn;
  }

  TypeRef type_ref() {
    TypeRef t;
    if (match(Tok::kBag)) {
      expect(Tok::kOf, "expected 'of' after 'bag'");
      t.is_bag = true;
    }
    Token name = expect(Tok::kIdent, "expected type name");
    if (name.text == "integer" || name.text == "int") {
      t.name = TypeName::kInteger;
    } else if (name.text == "real" || name.text == "double") {
      t.name = TypeName::kReal;
    } else if (name.text == "string" || name.text == "charstring") {
      t.name = TypeName::kString;
    } else if (name.text == "boolean") {
      t.name = TypeName::kBoolean;
    } else if (name.text == "sp") {
      t.name = TypeName::kSp;
    } else if (name.text == "stream") {
      t.name = TypeName::kStream;
    } else if (name.text == "object") {
      t.name = TypeName::kObject;
    } else {
      throw Error("unknown type '" + name.text + "'", name.pos);
    }
    return t;
  }

  static std::optional<BinOp> comparison_op(Tok kind) {
    switch (kind) {
      case Tok::kEq: return BinOp::kEq;
      case Tok::kNe: return BinOp::kNe;
      case Tok::kLt: return BinOp::kLt;
      case Tok::kLe: return BinOp::kLe;
      case Tok::kGt: return BinOp::kGt;
      case Tok::kGe: return BinOp::kGe;
      default: return std::nullopt;
    }
  }

  ExprPtr expr() {
    ExprPtr lhs = additive();
    if (auto op = comparison_op(peek().kind)) {
      SourcePos pos = peek().pos;
      ++pos_;
      ExprPtr rhs = additive();
      return make_binary(*op, std::move(lhs), std::move(rhs), pos);
    }
    return lhs;
  }

  ExprPtr additive() {
    ExprPtr lhs = multiplicative();
    while (check(Tok::kPlus) || check(Tok::kMinus)) {
      BinOp op = check(Tok::kPlus) ? BinOp::kAdd : BinOp::kSub;
      SourcePos pos = peek().pos;
      ++pos_;
      lhs = make_binary(op, std::move(lhs), multiplicative(), pos);
    }
    return lhs;
  }

  ExprPtr multiplicative() {
    ExprPtr lhs = unary();
    while (check(Tok::kStar) || check(Tok::kSlash)) {
      BinOp op = check(Tok::kStar) ? BinOp::kMul : BinOp::kDiv;
      SourcePos pos = peek().pos;
      ++pos_;
      lhs = make_binary(op, std::move(lhs), unary(), pos);
    }
    return lhs;
  }

  ExprPtr unary() {
    if (check(Tok::kMinus)) {
      SourcePos pos = peek().pos;
      ++pos_;
      return make_neg(unary(), pos);
    }
    return primary();
  }

  ExprPtr primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::kInt:
        ++pos_;
        return make_literal(catalog::Object{t.int_val}, t.pos);
      case Tok::kReal:
        ++pos_;
        return make_literal(catalog::Object{t.real_val}, t.pos);
      case Tok::kString:
        ++pos_;
        return make_literal(catalog::Object{t.text}, t.pos);
      case Tok::kIdent: {
        ++pos_;
        if (match(Tok::kLParen)) {
          std::vector<ExprPtr> args;
          if (!check(Tok::kRParen)) {
            do {
              args.push_back(expr());
            } while (match(Tok::kComma));
          }
          expect(Tok::kRParen, "expected ')' after arguments");
          return make_call(t.text, std::move(args), t.pos);
        }
        return make_var(t.text, t.pos);
      }
      case Tok::kLBrace: {
        ++pos_;
        std::vector<ExprPtr> elems;
        if (!check(Tok::kRBrace)) {
          do {
            elems.push_back(expr());
          } while (match(Tok::kComma));
        }
        expect(Tok::kRBrace, "expected '}' after bag elements");
        return make_bag(std::move(elems), t.pos);
      }
      case Tok::kLParen: {
        ++pos_;
        ExprPtr e = expr();
        expect(Tok::kRParen, "expected ')'");
        return e;
      }
      case Tok::kSelect:
        return select_expr();
      default:
        fail(std::string("expected expression, found ") + tok_name(t.kind));
    }
  }

  ExprPtr select_expr() {
    SourcePos pos = peek().pos;
    auto sel = std::make_shared<Select>();
    sel->pos = pos;
    expect(Tok::kSelect, "expected 'select'");
    do {
      sel->exprs.push_back(expr());
    } while (match(Tok::kComma));
    if (match(Tok::kFrom)) {
      do {
        Decl d;
        d.pos = peek().pos;
        d.type = type_ref();
        d.name = expect(Tok::kIdent, "expected variable name in from clause").text;
        sel->decls.push_back(std::move(d));
      } while (match(Tok::kComma));
    }
    if (match(Tok::kWhere)) {
      do {
        sel->predicates.push_back(predicate());
      } while (match(Tok::kAnd));
    }
    return make_select(std::move(sel), pos);
  }

  Predicate predicate() {
    Predicate p;
    p.pos = peek().pos;
    p.lhs = additive();  // no comparison inside the lhs itself
    if (match(Tok::kIn)) {
      p.kind = PredKind::kIn;
      p.rhs = expr();
      return p;
    }
    if (auto op = comparison_op(peek().kind)) {
      ++pos_;
      p.kind = PredKind::kCompare;
      p.op = *op;
      p.rhs = expr();
      return p;
    }
    fail("expected '=', comparison or 'in' in predicate");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<Statement> parse_script(std::string_view source) {
  return Parser(source).script();
}

Statement parse_statement(std::string_view source) { return Parser(source).one_statement(); }

ExprPtr parse_expression(std::string_view source) { return Parser(source).one_expression(); }

}  // namespace scsq::scsql
