// SCSQL recursive-descent parser.
//
// Grammar (the subset the paper uses, plus arithmetic):
//
//   script      := statement*
//   statement   := (create_fn | expr) ';'
//   create_fn   := 'create' 'function' IDENT '(' params? ')' '->' type
//                  'as' expr
//   params      := type IDENT (',' type IDENT)*
//   type        := ('bag' 'of')? base_type
//   base_type   := 'integer'|'real'|'string'|'boolean'|'sp'|'stream'|'object'
//   expr        := additive (cmp_op additive)?
//   additive    := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := unary (('*'|'/') unary)*
//   unary       := '-' unary | primary
//   primary     := literal | IDENT ('(' args? ')')? | '{' args '}'
//                | '(' expr ')' | select
//   select      := 'select' expr (',' expr)*
//                  ('from' decl (',' decl)*)? ('where' predicate
//                  ('and' predicate)*)?
//   predicate   := expr (('='|'!='|'<'|'<='|'>'|'>=') expr | 'in' expr)?
//
// A select may appear anywhere a primary may (the paper passes bare
// selects as spv() arguments).
#pragma once

#include <string_view>
#include <vector>

#include "scsql/ast.hpp"
#include "scsql/token.hpp"

namespace scsq::scsql {

/// Parses a whole script (one or more ';'-terminated statements).
/// Throws scsql::Error with a source position on syntax errors.
std::vector<Statement> parse_script(std::string_view source);

/// Parses exactly one statement; errors if trailing input remains.
Statement parse_statement(std::string_view source);

/// Parses a single expression (no trailing ';'). For tests and
/// programmatic query construction.
ExprPtr parse_expression(std::string_view source);

}  // namespace scsq::scsql
