// SCSQL token model.
#pragma once

#include <cstdint>
#include <string>

#include "scsql/error.hpp"

namespace scsq::scsql {

enum class Tok : std::uint8_t {
  kEnd,
  kIdent,     // identifiers and non-reserved names
  kInt,       // integer literal
  kReal,      // real literal
  kString,    // 'str' or "str"
  // Keywords (case-insensitive in source).
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kIn,
  kCreate,
  kFunction,
  kAs,
  kBag,
  kOf,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kArrow,  // ->
};

/// Token name for diagnostics ("'select'", "identifier", ...).
const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;        // identifier/string content
  std::int64_t int_val = 0;
  double real_val = 0.0;
  SourcePos pos;
};

}  // namespace scsq::scsql
