// Bounded single-threaded channel between simulated processes.
//
// Channels model SCSQ's inter-RP flow control: the paper's running
// processes "regularly exchange control messages, which are used to
// regulate the stream flow between them" — here, a bounded buffer whose
// full condition suspends the sender is the equivalent backpressure
// mechanism.
//
// Send/recv/wait counts feed the kernel's PerfCounters so benches can
// report channel traffic per wall second alongside raw event throughput.
//
// send() and recv() return custom awaitables with an inline fast path:
// when the operation can complete without parking (buffer has room /
// data, or the channel is closed), await_ready() performs it directly
// and the co_await costs no coroutine frame at all. Only a send into a
// full buffer or a recv from an empty one falls back to a slow-path
// Task coroutine that parks on the wait queue — semantically identical
// to running the whole operation as a coroutine (the fast path is
// exactly the no-suspension execution of the old Task body), but the
// steady-state streaming case skips frame allocation and the coroutine
// state machine entirely.
#pragma once

#include <coroutine>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace scsq::sim {

template <class T>
class Channel {
 public:
  /// Capacity must be >= 1 (a zero-capacity rendezvous is not supported).
  /// The buffer is a fixed ring of `capacity` default-constructed slots:
  /// deliver/take are an index bump and a move-assign, and slots keep
  /// whatever heap capacity their last occupant left behind (a recycled
  /// Frame slot re-fills without allocating).
  Channel(Simulator& sim, std::size_t capacity)
      : sim_(&sim), capacity_(capacity), buffer_(capacity), senders_(sim), receivers_(sim) {
    SCSQ_CHECK(capacity_ >= 1) << "channel capacity must be >= 1";
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  class [[nodiscard]] SendAwaiter {
   public:
    SendAwaiter(Channel& ch, T value) : ch_(&ch), value_(std::move(value)) {}
    SendAwaiter(const SendAwaiter&) = delete;
    SendAwaiter& operator=(const SendAwaiter&) = delete;
    ~SendAwaiter() {
      if (handle_) handle_.destroy();
    }

    bool await_ready() {
      if (ch_->count_ < ch_->capacity_ || ch_->closed_) {
        ch_->deliver(std::move(value_));
        return true;
      }
      return false;
    }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      handle_ = ch_->send_slow(std::move(value_)).release();
      handle_.promise().continuation = parent;
      return handle_;  // symmetric transfer into the parking coroutine
    }
    void await_resume() {
      if (handle_ && handle_.promise().exception) {
        std::rethrow_exception(handle_.promise().exception);
      }
    }

   private:
    Channel* ch_;
    T value_;
    std::coroutine_handle<typename Task<void>::promise_type> handle_{};
  };

  class [[nodiscard]] RecvAwaiter {
   public:
    explicit RecvAwaiter(Channel& ch) : ch_(&ch) {}
    RecvAwaiter(const RecvAwaiter&) = delete;
    RecvAwaiter& operator=(const RecvAwaiter&) = delete;
    ~RecvAwaiter() {
      if (handle_) handle_.destroy();
    }

    bool await_ready() {
      if (ch_->count_ > 0) {
        result_ = ch_->take();
        return true;
      }
      return ch_->closed_;  // closed and drained: result_ stays nullopt
    }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      handle_ = ch_->recv_slow().release();
      handle_.promise().continuation = parent;
      return handle_;
    }
    std::optional<T> await_resume() {
      if (!handle_) return std::move(result_);
      auto& p = handle_.promise();
      if (p.exception) std::rethrow_exception(p.exception);
      SCSQ_CHECK(p.value.has_value()) << "channel recv finished without a value";
      return std::move(*p.value);
    }

   private:
    Channel* ch_;
    std::optional<T> result_;
    std::coroutine_handle<typename Task<std::optional<T>>::promise_type> handle_{};
  };

  /// Sends a value, suspending while the buffer is full. Sending on a
  /// closed channel silently discards the value ("receiver gone" —
  /// query-stop teardown drops in-flight stream data this way).
  SendAwaiter send(T value) { return SendAwaiter(*this, std::move(value)); }

  /// Attempts to send without suspending. Returns false when full;
  /// discards (returning true) when closed.
  bool try_send(T value) {
    if (closed_) return true;
    if (count_ >= capacity_) return false;
    deliver(std::move(value));
    return true;
  }

  /// Receives the next value; nullopt once the channel is closed and
  /// drained (remaining buffered values are still delivered after close).
  RecvAwaiter recv() { return RecvAwaiter(*this); }

  /// Attempts to receive without suspending: the batch-draining fast
  /// path. Returns the next buffered value, or nullopt when the buffer
  /// is empty (whether or not the channel is closed — callers that need
  /// to distinguish end-of-stream fall back to recv()). Like take(),
  /// this notifies one blocked sender at the current simulated time, so
  /// draining k buffered values wakes senders exactly as k individual
  /// recv() calls at the same instant would.
  std::optional<T> try_recv() {
    if (count_ == 0) return std::nullopt;
    return std::optional<T>(take());
  }

  /// Closes the channel: future recv() calls drain the buffer then yield
  /// nullopt; blocked senders/receivers are woken. Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    receivers_.notify_all();
    senders_.notify_all();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return capacity_; }

 private:
  /// Completes a send on a channel with room (or discards on closed).
  void deliver(T&& value) {
    if (closed_) return;  // discard: the consumer has gone away
    sim_->count_channel_send();
    std::size_t tail = head_ + count_;
    if (tail >= capacity_) tail -= capacity_;
    buffer_[tail] = std::move(value);
    ++count_;
    receivers_.notify_one();
  }

  /// Takes the front value from a non-empty buffer.
  T take() {
    T value = std::move(buffer_[head_]);
    if (++head_ == capacity_) head_ = 0;
    --count_;
    sim_->count_channel_recv();
    senders_.notify_one();
    return value;
  }

  /// Slow path: park until the buffer has room, then deliver.
  Task<void> send_slow(T value) {
    while (count_ >= capacity_ && !closed_) {
      sim_->count_channel_wait();
      co_await senders_.wait();
    }
    deliver(std::move(value));
  }

  /// Slow path: park until a value arrives or the channel closes.
  Task<std::optional<T>> recv_slow() {
    while (count_ == 0) {
      if (closed_) co_return std::nullopt;
      sim_->count_channel_wait();
      co_await receivers_.wait();
    }
    co_return std::optional<T>(take());
  }

  Simulator* sim_;
  std::size_t capacity_;
  bool closed_ = false;
  std::vector<T> buffer_;  // fixed ring of capacity_ slots
  std::size_t head_ = 0;   // index of the oldest buffered value
  std::size_t count_ = 0;  // buffered values
  WaitQueue senders_;
  WaitQueue receivers_;
};

}  // namespace scsq::sim
