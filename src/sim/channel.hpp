// Bounded single-threaded channel between simulated processes.
//
// Channels model SCSQ's inter-RP flow control: the paper's running
// processes "regularly exchange control messages, which are used to
// regulate the stream flow between them" — here, a bounded buffer whose
// full condition suspends the sender is the equivalent backpressure
// mechanism.
//
// Send/recv/wait counts feed the kernel's PerfCounters so benches can
// report channel traffic per wall second alongside raw event throughput.
#pragma once

#include <deque>
#include <optional>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace scsq::sim {

template <class T>
class Channel {
 public:
  /// Capacity must be >= 1 (a zero-capacity rendezvous is not supported).
  Channel(Simulator& sim, std::size_t capacity)
      : sim_(&sim), capacity_(capacity), senders_(sim), receivers_(sim) {
    SCSQ_CHECK(capacity_ >= 1) << "channel capacity must be >= 1";
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Sends a value, suspending while the buffer is full. Sending on a
  /// closed channel silently discards the value ("receiver gone" —
  /// query-stop teardown drops in-flight stream data this way).
  Task<void> send(T value) {
    while (buffer_.size() >= capacity_ && !closed_) {
      sim_->count_channel_wait();
      co_await senders_.wait();
    }
    if (closed_) co_return;  // discard: the consumer has gone away
    sim_->count_channel_send();
    buffer_.push_back(std::move(value));
    receivers_.notify_one();
    co_return;
  }

  /// Attempts to send without suspending. Returns false when full;
  /// discards (returning true) when closed.
  bool try_send(T value) {
    if (closed_) return true;
    if (buffer_.size() >= capacity_) return false;
    sim_->count_channel_send();
    buffer_.push_back(std::move(value));
    receivers_.notify_one();
    return true;
  }

  /// Receives the next value; nullopt once the channel is closed and
  /// drained (remaining buffered values are still delivered after close).
  Task<std::optional<T>> recv() {
    while (buffer_.empty()) {
      if (closed_) co_return std::nullopt;
      sim_->count_channel_wait();
      co_await receivers_.wait();
    }
    T value = std::move(buffer_.front());
    buffer_.pop_front();
    sim_->count_channel_recv();
    senders_.notify_one();
    co_return std::optional<T>(std::move(value));
  }

  /// Closes the channel: future recv() calls drain the buffer then yield
  /// nullopt; blocked senders/receivers are woken. Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    receivers_.notify_all();
    senders_.notify_all();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  Simulator* sim_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  WaitQueue senders_;
  WaitQueue receivers_;
};

}  // namespace scsq::sim
