#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "util/logging.hpp"

namespace scsq::sim {

namespace {
// Descending by event_less: the strict minimum ends up at back().
inline bool event_greater(const QueuedEvent& a, const QueuedEvent& b) {
  return event_less(b, a);
}
}  // namespace

EventQueue::Mode EventQueue::mode_from_env() {
  static const Mode mode = [] {
    const char* env = std::getenv("SCSQ_EVENT_QUEUE");
    if (env == nullptr || *env == '\0') return Mode::kLadder;
    const std::string_view v(env);
    if (v == "ladder") return Mode::kLadder;
    if (v == "heap") return Mode::kHeap;
    SCSQ_CHECK(false) << "SCSQ_EVENT_QUEUE must be 'heap' or 'ladder', got '" << v << "'";
    return Mode::kLadder;
  }();
  return mode;
}

void EventQueue::push_heap(const QueuedEvent& ev) {
  heap_.push_back(ev);
  // Hole-insertion sift-up: shift larger parents down, place once.
  const std::size_t start = heap_.size() - 1;
  std::size_t i = start;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!event_less(ev, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  if (i != start) heap_[i] = ev;
}

void EventQueue::push_nonempty(const QueuedEvent& ev) {
  if (mode_ == Mode::kHeap) {
    push_heap(ev);
    return;
  }
  if (ev.at >= top_start_) {
    top_.push_back(ev);
    if (ev.at < top_min_) top_min_ = ev.at;
    if (ev.at > top_max_) top_max_ = ev.at;
    return;
  }
  push_below_top(ev);
}

void EventQueue::pop_heap_root() {
  const std::size_t n = heap_.size() - 1;
  if (n == 0) {
    heap_.pop_back();
    return;
  }
  // Hole-insertion sift-down: pull smaller children up, place the
  // displaced last element once at the end.
  const QueuedEvent last = heap_[n];
  heap_.pop_back();
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    std::size_t c = l;
    const std::size_t r = l + 1;
    if (r < n && event_less(heap_[r], heap_[l])) c = r;
    if (!event_less(heap_[c], last)) break;
    heap_[i] = heap_[c];
    i = c;
  }
  heap_[i] = last;
}

void EventQueue::push_below_top(const QueuedEvent& ev) {
  // Walk coarsest -> finest; the first rung whose undrained range covers
  // ev.at takes it. The fall-through test and the bucket choice both
  // derive from the same value d = (at - start) / width. d is a monotone
  // non-decreasing function of at, so the partition it induces (d < cur
  // falls through, floor(d) picks the bucket) can never invert the order
  // of two events even when FP rounding perturbs d near a bucket edge —
  // which a separate `at >= start + cur*width` comparison could.
  for (std::size_t r = 0; r < active_rungs_; ++r) {
    Rung& rg = rungs_[r];
    // A spent rung (cur == nbuckets, empty, awaiting retirement at the
    // next refill) takes nothing: clamping into its last bucket would
    // hide the event behind the drain cursor.
    if (rg.cur >= rg.nbuckets) continue;
    const Time d = (ev.at - rg.start) / rg.width;
    if (d < static_cast<Time>(rg.cur)) continue;  // below the undrained range
    // The guarded comparison doubles as overflow protection: d can be
    // astronomically large for an outlier timestamp, and the direct
    // float->size_t cast of such a value is UB.
    std::size_t idx = d >= static_cast<Time>(rg.nbuckets) ? rg.nbuckets - 1
                                                          : static_cast<std::size_t>(d);
    if (idx < rg.cur) idx = rg.cur;  // d == cur exactly, truncation slack
    rg.buckets[idx].push_back(ev);
    ++rg.count;
    return;
  }
  bottom_insert(ev);
}

void EventQueue::bottom_insert(const QueuedEvent& ev) {
  const auto it = std::lower_bound(bottom_.begin(), bottom_.end(), ev, event_greater);
  bottom_.insert(it, ev);
  if (bottom_.size() > bottom_spawn_at_) spawn_from_bottom();
}

void EventQueue::spawn_from_bottom() {
  // Keep the kThres smallest (the tail of the descending vector) for O(1)
  // pops; respread the larger remainder into a rung so each direct insert
  // stays cheap. Everything respread is strictly below every active
  // rung's drain range (it was below them when first pushed), so the new
  // rung is appended as the next-to-drain level.
  const std::size_t n = bottom_.size() - kThres;
  scratch_.assign(bottom_.begin(), bottom_.begin() + n);
  if (!spread_into_new_rung(scratch_)) {
    // Unsplittable (rungs exhausted or one timestamp): keep the sorted
    // vector but back off the retry threshold, so a degenerate flood
    // pays the min/max scan O(log) times instead of per insert. The
    // staged copies must be dropped — bottom_ still owns the events.
    scratch_.clear();
    bottom_spawn_at_ *= 2;
    return;
  }
  bottom_.erase(bottom_.begin(), bottom_.begin() + n);
  bottom_spawn_at_ = kBottomOverflow;
}

bool EventQueue::spread_into_new_rung(std::vector<QueuedEvent>& src) {
  if (active_rungs_ >= kMaxRungs) return false;
  Time lo = kInf;
  Time hi = -kInf;
  for (const QueuedEvent& ev : src) {
    if (ev.at < lo) lo = ev.at;
    if (ev.at > hi) hi = ev.at;
  }
  if (!(hi > lo)) return false;  // single timestamp: time cannot subdivide
  const std::size_t nb = std::min(src.size(), kMaxBuckets);
  const Time width = (hi - lo) / static_cast<Time>(nb);
  if (!(width > 0.0)) return false;  // range below FP resolution
  if (active_rungs_ == rungs_.size()) rungs_.emplace_back();
  Rung& rg = rungs_[active_rungs_++];
  rg.start = lo;
  rg.width = width;
  rg.nbuckets = nb;
  rg.cur = 0;
  rg.count = src.size();
  if (rg.buckets.size() < nb) rg.buckets.resize(nb);
  for (const QueuedEvent& ev : src) {
    const Time d = (ev.at - lo) / width;
    const std::size_t idx =
        d >= static_cast<Time>(nb) ? nb - 1 : static_cast<std::size_t>(d);
    rg.buckets[idx].push_back(ev);
  }
  *rung_spills_ += src.size();
  src.clear();
  return true;
}

void EventQueue::sort_into_bottom(std::vector<QueuedEvent>& batch) {
  // bottom_ is empty here (refills only happen on drain); swap donates
  // the batch's storage and reclaims bottom_'s for the batch's owner.
  bottom_.swap(batch);
  batch.clear();
  std::sort(bottom_.begin(), bottom_.end(), event_greater);
  ++*bottom_resorts_;
}

void EventQueue::refill_bottom() {
  bottom_spawn_at_ = kBottomOverflow;
  for (;;) {
    if (active_rungs_ != 0) {
      Rung& rg = rungs_[active_rungs_ - 1];
      if (rg.count == 0) {
        --active_rungs_;
        continue;
      }
      while (rg.cur < rg.nbuckets && rg.buckets[rg.cur].empty()) ++rg.cur;
      if (rg.cur >= rg.nbuckets) {
        std::size_t held = 0;
        for (const auto& b : rg.buckets) held += b.size();
        SCSQ_CHECK(false) << "rung drain overrun: cur=" << rg.cur << " nbuckets=" << rg.nbuckets
                          << " count=" << rg.count << " held=" << held
                          << " buckets.size=" << rg.buckets.size()
                          << " active=" << active_rungs_ << " size_=" << size_
                          << " top=" << top_.size() << " start=" << rg.start
                          << " width=" << rg.width;
      }
      std::vector<QueuedEvent>& bucket = rg.buckets[rg.cur];
      rg.count -= bucket.size();
      if (bucket.size() > kThres && active_rungs_ < kMaxRungs) {
        // Oversized bucket: respread into a finer rung instead of paying
        // an O(k log k) sort. The cursor moves first so the finer rung
        // becomes the new lowest level.
        scratch_.swap(bucket);
        ++rg.cur;
        if (spread_into_new_rung(scratch_)) continue;
        sort_into_bottom(scratch_);  // single-timestamp clump: seq-sort
        return;
      }
      ++rg.cur;
      sort_into_bottom(bucket);
      return;
    }
    if (!top_.empty()) {
      // New arrivals from here on are "far future" relative to what the
      // old top held; anchor the threshold at its observed max.
      top_start_ = top_max_;
      const bool spread = top_.size() > kThres && spread_into_new_rung(top_);
      if (!spread) sort_into_bottom(top_);
      top_min_ = kInf;
      top_max_ = -kInf;
      if (spread) continue;
      return;
    }
    return;  // fully empty (size_ said otherwise: caller bug)
  }
}

void EventQueue::clear() {
  heap_.clear();
  bottom_.clear();
  top_.clear();
  scratch_.clear();
  for (Rung& rg : rungs_) {
    for (std::vector<QueuedEvent>& b : rg.buckets) b.clear();
    rg.count = 0;
    rg.cur = 0;
    rg.nbuckets = 0;
  }
  active_rungs_ = 0;
  size_ = 0;
  bottom_spawn_at_ = kBottomOverflow;
  top_start_ = 0.0;
  top_min_ = kInf;
  top_max_ = -kInf;
}

}  // namespace scsq::sim
