// Pending-event set for the simulation kernel: ladder queue with a
// binary-heap reference implementation behind one front/pop interface.
//
// Both modes dispatch in the exact (time, seq) total order event_less
// defines, so a Simulator run is event-for-event identical under either
// — `SCSQ_EVENT_QUEUE=heap` keeps the old heap as a byte-diffable
// reference against the ladder default.
//
// Ladder structure (Tang/Goh/Thng, adapted to the (time, seq) key):
//
//   top     unsorted vector of far-future events (at >= top_start_)
//   rungs   a stack of progressively finer bucket arrays; rungs_[0] is
//           the coarsest, the last active rung is the one being drained
//   bottom  a vector sorted DESCENDING by event_less — the strict
//           minimum lives at back(), so front() and pop_front() are O(1)
//
// Invariant: whenever the queue is non-empty, bottom_ is non-empty and
// bottom_.back() is the global minimum. Pushes below the active drain
// range insert into bottom_ directly (binary search), so late events are
// never lost; pushes at or above top_start_ are O(1) appends. Refilling
// an empty bottom sorts one bucket (or the whole top when it is small);
// buckets that exceed kThres respread into a finer rung with
// content-derived [min, max] geometry, which confines outliers (e.g. a
// sampler timer parked at 1e300) to one coarse bucket instead of
// stretching every rung. A bucket whose events all share one timestamp
// cannot be subdivided by time and is sorted directly — seq is the only
// remaining key, so the sort is exact and recursion terminates.
//
// Amortized cost per event is O(1) for the usual arrival patterns
// (each event is touched a bounded number of times: one push, at most
// kMaxRungs respreads, one sort in a bounded-size batch), versus the
// heap's O(log n) compares per push *and* per pop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scsq::sim {

/// Simulated time in seconds (same alias as simulator.hpp).
using Time = double;

// Low payload bit set => callback slab slot (index << 1 | 1);
// clear => coroutine frame address (aligned, low bit free).
struct QueuedEvent {
  Time at;
  std::uint64_t seq;  // tie-break: FIFO within equal timestamps
  std::uintptr_t payload;
};

inline bool event_less(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

class EventQueue {
 public:
  enum class Mode { kHeap, kLadder };

  /// Reads SCSQ_EVENT_QUEUE ("heap" | "ladder"); defaults to ladder.
  /// The value is read once per process and cached.
  static Mode mode_from_env();

  /// The two counter slots belong to the owning Simulator's PerfCounters;
  /// the queue increments them in place (rung respreads / bottom sorts).
  EventQueue(Mode mode, std::uint64_t* rung_spills, std::uint64_t* bottom_resorts)
      : mode_(mode), rung_spills_(rung_spills), bottom_resorts_(bottom_resorts) {}

  Mode mode() const { return mode_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Strict (time, seq) minimum. Precondition: !empty().
  const QueuedEvent& front() const {
    return mode_ == Mode::kHeap ? heap_[0] : bottom_.back();
  }

  void push(const QueuedEvent& ev) {
    ++size_;
    if (mode_ == Mode::kLadder && size_ == 1) [[likely]] {
      // Queue was empty: the event is trivially the minimum. This is THE
      // hot case of a run-to-completion kernel (one pending wake-up at a
      // time), so it is the only vector append in the inline body —
      // more call sites and the compiler outlines push_back, costing an
      // extra call per event on the delay fast path. Re-anchor the top
      // threshold here so a long-drained queue does not keep routing
      // everything through an ancient top_start_.
      bottom_.push_back(ev);
      top_start_ = ev.at;
      return;
    }
    push_nonempty(ev);
  }

  /// Removes front(). Precondition: !empty().
  void pop_front() {
    --size_;
    if (mode_ == Mode::kHeap) {
      pop_heap_root();
      return;
    }
    bottom_.pop_back();
    // size_ first: the run-to-completion hot case just emptied the queue,
    // and the counter test short-circuits without touching the vector.
    if (size_ != 0 && bottom_.empty()) refill_bottom();
  }

  /// Empties the queue, keeping heap/rung/bucket storage for reuse
  /// (Simulator::reset leans on this: a warm queue re-runs a workload
  /// with zero allocations).
  void clear();

 private:
  // Ladder geometry. kThres bounds the batch a single sort handles (and
  // the bucket size that triggers a respread); kBottomOverflow bounds
  // direct sorted inserts into bottom_ before the excess is respread.
  static constexpr std::size_t kThres = 64;
  static constexpr std::size_t kBottomOverflow = 192;
  static constexpr std::size_t kMaxRungs = 8;
  static constexpr std::size_t kMaxBuckets = 4096;

  struct Rung {
    Time start = 0.0;          // timestamp of bucket 0's left edge
    Time width = 0.0;          // bucket width (> 0 for any active rung)
    std::size_t nbuckets = 0;  // logical bucket count (<= buckets.size())
    std::size_t cur = 0;       // next bucket to drain; earlier ones are spent
    std::size_t count = 0;     // events remaining in this rung
    std::vector<std::vector<QueuedEvent>> buckets;  // storage reused
  };

  // Heap reference implementation (the pre-ladder kernel, verbatim).
  void push_heap(const QueuedEvent& ev);
  void pop_heap_root();

  // Every push except the empty-queue ladder case: heap sift-up, top
  // append, or below-top routing.
  void push_nonempty(const QueuedEvent& ev);

  // Ladder cold paths.
  void push_below_top(const QueuedEvent& ev);
  void bottom_insert(const QueuedEvent& ev);
  void refill_bottom();
  void sort_into_bottom(std::vector<QueuedEvent>& batch);
  bool spread_into_new_rung(std::vector<QueuedEvent>& src);
  void spawn_from_bottom();

  Mode mode_;
  std::uint64_t* rung_spills_;
  std::uint64_t* bottom_resorts_;
  std::size_t size_ = 0;

  std::vector<QueuedEvent> heap_;  // binary min-heap (heap mode only)

  std::vector<QueuedEvent> bottom_;  // sorted descending; min at back()
  std::vector<Rung> rungs_;          // pool; [0, active_rungs_) are live
  std::size_t active_rungs_ = 0;
  std::size_t bottom_spawn_at_ = kBottomOverflow;  // respread retry threshold
  std::vector<QueuedEvent> top_;  // unsorted, all at >= top_start_
  Time top_start_ = 0.0;
  Time top_min_ = kInf;
  Time top_max_ = -kInf;
  std::vector<QueuedEvent> scratch_;  // respread staging, storage reused

  static constexpr Time kInf = 1e308;
};

}  // namespace scsq::sim
