#include "sim/lp_domain.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace scsq::sim {

LpDomain::LpDomain(int lp_count) {
  SCSQ_CHECK(lp_count >= 1) << "LpDomain needs at least one LP, got " << lp_count;
  sims_.reserve(static_cast<std::size_t>(lp_count));
  ingress_.reserve(static_cast<std::size_t>(lp_count));
  for (int i = 0; i < lp_count; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
    ingress_.push_back(std::make_unique<Ingress>());
  }
  window_errors_.resize(static_cast<std::size_t>(lp_count));
  if (lp_count > 1) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<unsigned>(lp_count - 1));
  }
}

LpDomain::~LpDomain() = default;

void LpDomain::set_lookahead(double seconds) {
  SCSQ_CHECK(seconds >= 0.0) << "negative lookahead: " << seconds;
  SCSQ_CHECK(lp_count() == 1 || seconds > 0.0)
      << "parallel windows need a positive lookahead";
  lookahead_ = seconds;
}

std::uint32_t LpDomain::new_origin() {
  origin_seq_.push_back(0);
  return static_cast<std::uint32_t>(origin_seq_.size() - 1);
}

void LpDomain::post(int lp, double at, std::uint32_t origin, std::function<void()> fn) {
  if (sequenced_) {
    // Sequenced mode is single-threaded: apply directly to the target,
    // exactly where a same-LP poster would schedule. The event draws its
    // seq from the shared counter at this very point of execution, which
    // is what keeps the global dispatch order identical to lp_count 1.
    sims_[static_cast<std::size_t>(lp)]->call_at(at, std::move(fn));
    return;
  }
  // The per-origin counter is touched by exactly one thread during a
  // window (an origin is one serialized link direction), so it needs no
  // synchronization of its own; the ingress mutex orders the push
  // against the drain.
  const std::uint64_t seq = origin_seq_[origin]++;
  auto& ing = *ingress_[static_cast<std::size_t>(lp)];
  std::lock_guard<std::mutex> lock(ing.mu);
  ing.entries.push_back(Entry{at, origin, lp, seq, std::move(fn)});
}

void LpDomain::drain_staged() {
  scratch_.clear();
  for (auto& ing_ptr : ingress_) {
    auto& ing = *ing_ptr;
    std::lock_guard<std::mutex> lock(ing.mu);
    for (auto& e : ing.entries) scratch_.push_back(std::move(e));
    ing.entries.clear();
  }
  if (scratch_.empty()) return;
  std::sort(scratch_.begin(), scratch_.end(), [](const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.seq < b.seq;
  });
  for (auto& e : scratch_) {
    sims_[static_cast<std::size_t>(e.lp)]->call_at(e.at, std::move(e.fn));
  }
  scratch_.clear();
}

template <class Fn>
void LpDomain::run_window(Fn&& fn) {
  const int k = lp_count();
  for (int lp = 1; lp < k; ++lp) {
    pool_->submit([this, lp, &fn] {
      try {
        fn(*sims_[static_cast<std::size_t>(lp)]);
      } catch (...) {
        window_errors_[static_cast<std::size_t>(lp)] = std::current_exception();
      }
    });
  }
  try {
    fn(*sims_[0]);
  } catch (...) {
    window_errors_[0] = std::current_exception();
  }
  pool_->wait_idle();
  for (auto& err : window_errors_) {
    if (err) std::rethrow_exception(std::exchange(err, nullptr));
  }
}

double LpDomain::run_windowed(double limit) {
  const int k = lp_count();
  for (;;) {
    drain_staged();
    double m = Simulator::kNoLimit;
    for (const auto& s : sims_) m = std::min(m, s->next_event_time());
    if (m >= Simulator::kNoLimit || m > limit) break;
    if (k == 1) {
      // Sequential fast path: no window chopping, one run per drain
      // round (staged entries only exist here transiently, between a
      // run that posted them and this drain).
      sims_[0]->run(limit);
      continue;
    }
    const double h = m + lookahead_;
    if (h > limit) {
      // Final window: every event with t <= limit < h is safe to run —
      // a cross-LP post from t >= m arrives at t + L >= h > limit.
      run_window([limit](Simulator& s) { s.run(limit); });
    } else {
      run_window([h](Simulator& s) { s.run_before(h); });
    }
  }
  double t = 0.0;
  for (const auto& s : sims_) t = std::max(t, s->now());
  return t;
}

void LpDomain::begin_sequenced() {
  if (lp_count() == 1 || sequenced_) return;
  SCSQ_CHECK(staged() == 0) << "begin_sequenced with staged posts pending";
  shared_seq_ = 0;
  for (const auto& s : sims_) shared_seq_ = std::max(shared_seq_, s->seq_value());
  for (auto& s : sims_) s->share_seq_counter(&shared_seq_);
  sequenced_ = true;
}

void LpDomain::end_sequenced() {
  if (!sequenced_) return;
  for (auto& s : sims_) s->unshare_seq_counter();
  sequenced_ = false;
}

double LpDomain::run_sequenced(double limit) {
  const int k = lp_count();
  if (k == 1) {
    sims_[0]->run(limit);
    return sims_[0]->now();
  }
  SCSQ_CHECK(sequenced_) << "run_sequenced without begin_sequenced";
  for (;;) {
    // Global front: minimal (time, seq) over the shards. seqs from the
    // shared counter are unique; events predating begin_sequenced can
    // collide across shards, so the LP index is the final tie-break.
    int best = -1;
    double best_at = 0.0;
    std::uint64_t best_seq = 0;
    for (int lp = 0; lp < k; ++lp) {
      double at;
      std::uint64_t seq;
      if (!sims_[static_cast<std::size_t>(lp)]->next_event_key(&at, &seq)) continue;
      if (best < 0 || at < best_at || (at == best_at && seq < best_seq)) {
        best = lp;
        best_at = at;
        best_seq = seq;
      }
    }
    if (best < 0 || best_at > limit) break;
    Simulator& shard = *sims_[static_cast<std::size_t>(best)];
    if (shard.front_cancelled()) {
      // Silent pop, no clock touched anywhere — a cancelled node parked
      // past the last real event must not drag any now() forward.
      shard.run_one();
      continue;
    }
    // Lockstep clocks: any cross-shard now() read inside the dispatched
    // event must see the global time. best_at is <= every pending
    // event's timestamp, so this never advances a shard past work.
    for (auto& s : sims_) s->advance_now(best_at);
    shard.run_one();
  }
  double t = 0.0;
  for (const auto& s : sims_) t = std::max(t, s->now());
  return t;
}

PerfCounters LpDomain::perf_total() const {
  PerfCounters total;
  for (const auto& s : sims_) {
    const PerfCounters& p = s->perf();
    total.events_dispatched += p.events_dispatched;
    total.heap_pushes += p.heap_pushes;
    total.fifo_pushes += p.fifo_pushes;
    total.callbacks_run += p.callbacks_run;
    total.channel_sends += p.channel_sends;
    total.channel_recvs += p.channel_recvs;
    total.channel_waits += p.channel_waits;
    total.wakeups += p.wakeups;
    total.peak_queue_depth = std::max(total.peak_queue_depth, p.peak_queue_depth);
    total.rung_spills += p.rung_spills;
    total.bottom_resorts += p.bottom_resorts;
    total.cancel_consumed += p.cancel_consumed;
  }
  return total;
}

std::size_t LpDomain::staged() const {
  std::size_t n = 0;
  for (const auto& ing : ingress_) n += ing->entries.size();
  return n;
}

}  // namespace scsq::sim
