// Conservative safe-window domain over a fixed set of LP Simulators.
//
// An LpDomain owns k independent Simulator instances (one per logical
// process) and advances them together in barrier-synchronized windows:
// each round computes the global minimum next-event time m over all LPs
// and runs every LP concurrently up to the horizon h = m + L, where L is
// the domain's uniform lookahead. Any event executing at time t >= m
// that wants to affect *another* LP must do so with a delivery delay of
// at least L, so its earliest cross-LP effect lands at t + L >= h —
// strictly outside the window every peer is concurrently executing
// (run_before(h) dispatches strictly below h). Cross-LP effects are
// therefore never injected into a foreign Simulator directly; they are
// staged through post() into per-LP ingress queues and drained at the
// next window boundary, single-threaded.
//
// Determinism: staged entries are globally sorted by (at, origin, seq)
// before being scheduled. `origin` identifies the staging source (one
// direction of one link — allocated via new_origin() at wire time) and
// `seq` is the per-origin submission counter, so two entries from the
// same origin keep submission order and entries from different origins
// tie-break by a k-independent key. Per-LP subsets of one globally
// sorted sequence preserve their relative order, which is why the same
// workload produces byte-identical results at every lp_count — the
// partition only selects which Simulator an entry lands in, never the
// order entries with equal timestamps are scheduled in.
//
// k == 1 degenerates gracefully: run_windowed() skips window chopping
// entirely (one run(limit) per drain round), so the sequential path pays
// neither barriers nor lookahead granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace scsq::sim {

class LpDomain {
 public:
  /// Constructs `lp_count` >= 1 independent Simulators. lp_count > 1
  /// also spins up a persistent pool of lp_count - 1 worker threads (LP
  /// 0 always runs on the caller's thread during a window).
  explicit LpDomain(int lp_count);
  ~LpDomain();
  LpDomain(const LpDomain&) = delete;
  LpDomain& operator=(const LpDomain&) = delete;

  int lp_count() const { return static_cast<int>(sims_.size()); }
  Simulator& sim(int lp) { return *sims_[static_cast<std::size_t>(lp)]; }
  const Simulator& sim(int lp) const { return *sims_[static_cast<std::size_t>(lp)]; }

  /// Sets the uniform conservative lookahead L (simulated seconds): the
  /// minimum delivery delay every cross-LP post() promises relative to
  /// the posting event's timestamp. Must be > 0 when lp_count > 1.
  void set_lookahead(double seconds);
  double lookahead() const { return lookahead_; }

  /// Allocates a staging origin id. Each origin is one serialized source
  /// of cross-LP posts (one direction of one link): during the parallel
  /// phase exactly one thread may post under a given origin. Call only
  /// while no window is running (wire time).
  std::uint32_t new_origin();

  /// Stages `fn` to run at simulated time `at` on LP `lp`. Thread-safe
  /// across distinct origins. The caller promises at >= t_post + L where
  /// t_post is the posting event's timestamp (the conservative
  /// contract); entries are scheduled into the target Simulator at the
  /// next window boundary.
  void post(int lp, double at, std::uint32_t origin, std::function<void()> fn);

  /// Drives every LP until global quiescence (no pending events, no
  /// staged entries) or until the next event would exceed `limit`.
  /// Returns the global maximum now() over the LPs.
  double run_windowed(double limit = Simulator::kNoLimit);

  // --- Sequenced (zero-lookahead) fallback drive ---
  //
  // Workloads with cross-LP interactions *below* the lookahead — the
  // torus MPI path, whose per-hop state spans LPs with no minimum
  // latency — cannot run under windows. begin_sequenced() turns the
  // domain into shards of one logical event queue: every Simulator draws
  // event seqs from one shared counter, cross-LP post() applies directly
  // to the target (legal: everything is single-threaded in this mode),
  // and run_sequenced() dispatches the globally minimal (time, seq)
  // event one at a time with all shard clocks advanced in lockstep.
  // The dispatch sequence is bit-for-bit what one Simulator holding the
  // union of events would produce, so results stay byte-identical to
  // lp_count == 1 — trading parallelism for generality, never
  // correctness.

  /// Enters sequenced mode (no-op at lp_count 1). Call at quiescence,
  /// before scheduling the work that will run sequenced, so those
  /// events already draw from the shared counter.
  void begin_sequenced();

  /// Leaves sequenced mode; per-Simulator counters continue from the
  /// shared value. Call at quiescence.
  void end_sequenced();

  /// Single-threaded global-order drive (requires begin_sequenced at
  /// lp_count > 1). Stops at quiescence or once the global front event
  /// would exceed `limit`; returns the global maximum now().
  double run_sequenced(double limit = Simulator::kNoLimit);

  bool sequenced() const { return sequenced_; }

  /// Sum of the kernel perf counters over all LPs (peak_queue_depth is
  /// the max, not the sum — it is a high-water mark, not a total).
  PerfCounters perf_total() const;

  /// Outstanding staged entries across all ingress queues (diagnostics;
  /// call only while no window is running).
  std::size_t staged() const;

 private:
  struct Entry {
    double at = 0.0;
    std::uint32_t origin = 0;
    int lp = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct Ingress {
    std::mutex mu;
    std::vector<Entry> entries;
  };

  /// Moves every staged entry into its target Simulator, globally sorted
  /// by (at, origin, seq). Single-threaded (window boundary only).
  void drain_staged();

  /// Runs `fn(sim)` for every LP concurrently: LPs 1..k-1 on the pool,
  /// LP 0 on the caller. Rethrows the lowest-LP worker exception.
  template <class Fn>
  void run_window(Fn&& fn);

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<Ingress>> ingress_;  // indexed by dst LP
  std::vector<std::uint64_t> origin_seq_;          // per-origin post counter
  std::vector<std::exception_ptr> window_errors_;  // per-LP, checked per window
  std::vector<Entry> scratch_;                     // drain_staged working set
  double lookahead_ = 0.0;
  bool sequenced_ = false;         // begin_sequenced..end_sequenced
  std::uint64_t shared_seq_ = 0;   // the one counter all shards draw from
  std::unique_ptr<util::ThreadPool> pool_;  // last member: joins before sims die
};

}  // namespace scsq::sim
