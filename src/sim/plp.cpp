#include "sim/plp.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace scsq::sim::plp {
namespace {

// Staging overflow is a min-heap by recv_time: only the minimum matters
// (it clamps the channel-clock promise), and receivers re-order by the
// full message key anyway, so ring insertion order is irrelevant.
bool staged_after(const Message& a, const Message& b) { return a.recv_time > b.recv_time; }

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// A worker that makes no *global* progress for this many passes is a
// protocol bug (e.g. an undeclared LP pair or a zero lookahead), not a
// slow simulation: fail loudly instead of spinning forever.
constexpr std::uint64_t kLivelockPasses = 10'000'000;

}  // namespace

// ---------------------------------------------------------------------------
// Mailbox

Mailbox::Mailbox(int src_lp, int dst_lp, Time lookahead, std::size_t capacity)
    : src_lp_(src_lp),
      dst_lp_(dst_lp),
      lookahead_(lookahead),
      ring_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(ring_.size() - 1) {
  SCSQ_CHECK(lookahead > 0.0) << "lookahead must be strictly positive";
}

bool Mailbox::try_push(const Message& m) {
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= ring_.size()) return false;
  ring_[tail & mask_] = m;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

void Mailbox::post(const Message& m, LpStats& stats) {
  // Sender invariant behind the receiver's drain protocol: nothing is
  // ever posted below the already-published channel clock.
  SCSQ_CHECK(m.recv_time >= clock_shadow_)
      << "post below published channel clock: " << m.recv_time << " < " << clock_shadow_;
  if (!staged_.empty() || !try_push(m)) {
    staged_.push_back(m);
    std::push_heap(staged_.begin(), staged_.end(), staged_after);
    staged_count_.store(staged_.size(), std::memory_order_relaxed);
    ++stats.mailbox_full;
  }
}

bool Mailbox::flush() {
  bool moved = false;
  while (!staged_.empty()) {
    std::pop_heap(staged_.begin(), staged_.end(), staged_after);
    if (!try_push(staged_.back())) {
      std::push_heap(staged_.begin(), staged_.end(), staged_after);
      break;
    }
    staged_.pop_back();
    moved = true;
  }
  if (moved) staged_count_.store(staged_.size(), std::memory_order_relaxed);
  return moved;
}

bool Mailbox::advance_clock(Time promise) {
  // Staged messages are not yet visible in the ring, so the promise may
  // not overtake the oldest of them.
  if (!staged_.empty() && staged_.front().recv_time < promise) {
    promise = staged_.front().recv_time;
  }
  if (promise <= clock_shadow_) return false;
  clock_shadow_ = promise;
  // Release pairs with the receiver's acquire in clock(): every ring
  // push sequenced before this store is visible to a drain that follows
  // a read of this clock value.
  clock_.store(promise, std::memory_order_release);
  return true;
}

std::size_t Mailbox::drain(std::vector<Message>& out) {
  const std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  const std::size_t n = tail - head;
  if (n == 0) return 0;
  // Bulk two-span copy: the occupied range is at most two contiguous
  // ring segments (it wraps once at the end of the storage), so the
  // whole ready span moves with memcpy-able copies instead of one
  // push_back per message.
  const std::size_t base = out.size();
  out.resize(base + n);
  const std::size_t first_idx = head & mask_;
  const std::size_t first_len = std::min(n, (mask_ + 1) - first_idx);
  std::copy_n(ring_.begin() + static_cast<std::ptrdiff_t>(first_idx), first_len,
              out.begin() + static_cast<std::ptrdiff_t>(base));
  std::copy_n(ring_.begin(), n - first_len,
              out.begin() + static_cast<std::ptrdiff_t>(base + first_len));
  head_.store(tail, std::memory_order_release);
  return n;
}

// ---------------------------------------------------------------------------
// Runtime

Runtime::Runtime(int lp_count, Options options) : options_(options) {
  SCSQ_CHECK(lp_count >= 1) << "need at least one logical process";
  lps_.reserve(static_cast<std::size_t>(lp_count));
  for (int i = 0; i < lp_count; ++i) {
    lps_.push_back(std::make_unique<Lp>(i));
  }
  mailboxes_.resize(static_cast<std::size_t>(lp_count) * static_cast<std::size_t>(lp_count));
}

Runtime::~Runtime() = default;

Time Runtime::Context::now() const { return lp_->sim.now(); }

void Runtime::Context::send(NodeId dst, Time recv_time, std::uint32_t tag, double value) {
  rt_->send_from(*lp_, id_, dst, recv_time, tag, value);
}

NodeId Runtime::add_node(int lp, Handler handler) {
  SCSQ_CHECK(!ran_) << "add_node after run";
  SCSQ_CHECK(lp >= 0 && lp < lp_count()) << "bad LP index " << lp;
  SCSQ_CHECK(handler != nullptr) << "node needs a handler";
  nodes_.push_back(NodeState{lp, 0, std::move(handler), {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Runtime::set_lookahead(int src_lp, int dst_lp, Time lookahead) {
  SCSQ_CHECK(!ran_) << "set_lookahead after run";
  SCSQ_CHECK(src_lp >= 0 && src_lp < lp_count()) << "bad LP index " << src_lp;
  SCSQ_CHECK(dst_lp >= 0 && dst_lp < lp_count()) << "bad LP index " << dst_lp;
  if (src_lp == dst_lp) return;  // local sends bypass mailboxes
  SCSQ_CHECK(lookahead > 0.0) << "lookahead must be strictly positive";
  auto& slot =
      mailboxes_[static_cast<std::size_t>(src_lp) * lps_.size() + static_cast<std::size_t>(dst_lp)];
  if (slot) {
    // Multiple simulated links between one LP pair: the channel promise
    // must honor the tightest (smallest) per-hop latency.
    if (lookahead < slot->lookahead()) slot->set_lookahead(lookahead);
    return;
  }
  slot = std::make_unique<Mailbox>(src_lp, dst_lp, lookahead, options_.mailbox_capacity);
  lps_[static_cast<std::size_t>(src_lp)]->out.push_back(slot.get());
  lps_[static_cast<std::size_t>(dst_lp)]->in.push_back(slot.get());
}

void Runtime::set_uniform_lookahead(Time lookahead) {
  for (int s = 0; s < lp_count(); ++s) {
    for (int d = 0; d < lp_count(); ++d) {
      if (s != d) set_lookahead(s, d, lookahead);
    }
  }
}

void Runtime::post_initial(NodeId dst, Time at, std::uint32_t tag, double value) {
  SCSQ_CHECK(!ran_) << "post_initial after run";
  SCSQ_CHECK(dst < nodes_.size()) << "bad node id " << dst;
  SCSQ_CHECK(at >= 0.0) << "initial event in the past";
  NodeState& node = nodes_[dst];
  // Origin = the destination itself: initial stimuli sort among later
  // traffic under the same (recv_time, src, seq) key, and their relative
  // order is fixed by post_initial call order — identical at every LP
  // count by construction.
  Message m{at, at, dst, dst, tag, 0, node.next_seq++, value};
  deliver_local(*lps_[static_cast<std::size_t>(node.lp)], m);
}

void Runtime::deliver_local(Lp& lp, const Message& m) {
  NodeState& node = nodes_[m.dst];
  node.inbox.push_back(m);
  std::push_heap(node.inbox.begin(), node.inbox.end(), message_after);
  // The delivery event pops the *inbox minimum*, not `m` itself: several
  // same-time deliveries each pop the key-smallest pending message, which
  // is what makes handling order independent of arrival order. Capture is
  // two words so std::function stays on its inline buffer.
  const std::uint64_t idx = m.dst;
  lp.sim.call_at(m.recv_time, [this, idx] {
    NodeState& n = nodes_[idx];
    pop_and_handle(*lps_[static_cast<std::size_t>(n.lp)], n);
  });
}

void Runtime::pop_and_handle(Lp& lp, NodeState& node) {
  SCSQ_CHECK(!node.inbox.empty()) << "delivery event with empty inbox";
  std::pop_heap(node.inbox.begin(), node.inbox.end(), message_after);
  const Message m = node.inbox.back();
  node.inbox.pop_back();
  ++lp.deliveries;
  Context ctx(this, &lp, m.dst);
  node.handler(ctx, m);
}

void Runtime::send_from(Lp& src_lp, NodeId src, NodeId dst, Time recv_time, std::uint32_t tag,
                        double value) {
  SCSQ_CHECK(dst < nodes_.size()) << "bad node id " << dst;
  NodeState& origin = nodes_[src];
  Message m{src_lp.sim.now(), recv_time, src, dst, tag, 0, origin.next_seq++, value};
  NodeState& target = nodes_[dst];
  if (target.lp == src_lp.id) {
    SCSQ_CHECK(recv_time > src_lp.sim.now())
        << "same-LP send must be strictly in the future: " << recv_time;
    deliver_local(src_lp, m);
    return;
  }
  Mailbox* mb = mailbox(src_lp.id, target.lp);
  SCSQ_CHECK(mb != nullptr) << "no lookahead declared for LP pair " << src_lp.id << " -> "
                            << target.lp;
  SCSQ_CHECK(recv_time >= src_lp.sim.now() + mb->lookahead())
      << "cross-LP send violates lookahead: " << recv_time << " < now + " << mb->lookahead();
  // Count before the ring push: a drained message always has its posted_
  // increment behind it, so delivered_ can never overtake posted_ and
  // posted_ == delivered_ (read delivered first) means no message is in
  // flight.
  posted_.fetch_add(1, std::memory_order_seq_cst);
  mb->post(m, src_lp.stats);
  ++src_lp.stats.msgs_sent;
}

bool Runtime::step_lp(Lp& lp) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = live_timing_ ? Clock::now() : Clock::time_point{};
  bool ran_window = false;
  bool stalled = false;
  bool progressed = false;
  // 1. Staged overflow first: frees promises clamped by the staging floor.
  for (Mailbox* m : lp.out) progressed |= m->flush();
  // 2. Snapshot input clocks *before* draining: the acquire read
  //    guarantees every message below the snapshot is already in its
  //    ring, so the drain that follows cannot miss one inside the window.
  Time safe = Simulator::kNoLimit;
  for (Mailbox* m : lp.in) safe = std::min(safe, m->clock());
  // 3. Drain inputs into per-node inboxes.
  std::uint64_t drained = 0;
  for (Mailbox* m : lp.in) {
    lp.drain_buf.clear();
    m->drain(lp.drain_buf);
    for (const Message& msg : lp.drain_buf) deliver_local(lp, msg);
    drained += lp.drain_buf.size();
  }
  if (drained != 0) {
    lp.stats.msgs_recvd += drained;
    progressed = true;
  }
  // 4. Execute the safe window: strictly below the horizon.
  const Time next = lp.sim.next_event_time();
  if (next < safe) {
    const std::uint64_t before = lp.sim.events_dispatched();
    lp.sim.run_before(safe);
    lp.stats.events += lp.sim.events_dispatched() - before;
    ++lp.stats.windows;
    ran_window = true;
    progressed = true;
  } else if (next < Simulator::kNoLimit) {
    ++lp.stats.stalls;  // pending work blocked by a neighbor's clock
    stalled = true;
  }
  // 5. Republish output promises. `base` lower-bounds every future local
  //    send time: pending events are at >= next_event_time(), and any
  //    event a future message creates lands at >= safe (its recv_time is
  //    at or above every input clock we just read).
  const Time base = std::min(lp.sim.next_event_time(), safe);
  for (Mailbox* m : lp.out) {
    if (m->advance_clock(base + m->lookahead())) ++lp.stats.null_updates;
  }
  if (progressed) {
    // Publication order (state before delivered_) is what the quiescence
    // detector's collect -> counts -> re-collect sequence relies on: if
    // it observed this step's deliveries in the counters, a re-read of
    // lp.state must observe at least this serial.
    const std::uint64_t serial = (lp.state.load(std::memory_order_relaxed) >> 1) + 1;
    const std::uint64_t idle = lp.sim.next_event_time() == Simulator::kNoLimit ? 1u : 0u;
    lp.state.store((serial << 1) | idle, std::memory_order_seq_cst);
    if (drained != 0) delivered_.fetch_add(drained, std::memory_order_seq_cst);
    progress_beat_.fetch_add(1, std::memory_order_relaxed);
    // Live-gauge mirrors: one relaxed store each per progress step, read
    // by live_sample() from monitor threads.
    lp.live_events.store(lp.stats.events, std::memory_order_relaxed);
    lp.live_null_updates.store(lp.stats.null_updates, std::memory_order_relaxed);
    lp.live_msgs_sent.store(lp.stats.msgs_sent, std::memory_order_relaxed);
    lp.live_msgs_recvd.store(lp.stats.msgs_recvd, std::memory_order_relaxed);
  }
  // The frontier gauge: where this LP's clock stands. When the LP has
  // fully drained (base unbounded), report its local now() instead of
  // the kNoLimit sentinel so clock-lag math stays meaningful.
  lp.live_horizon.store(base >= Simulator::kNoLimit ? lp.sim.now() : base,
                        std::memory_order_relaxed);
  if (live_timing_) {
    const auto dt = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
    if (ran_window) {
      lp.running_ns.fetch_add(dt, std::memory_order_relaxed);
    } else if (stalled) {
      lp.blocked_ns.fetch_add(dt, std::memory_order_relaxed);
    }
  }
  return progressed;
}

std::vector<LpLiveSample> Runtime::live_sample() const {
  std::vector<LpLiveSample> out;
  out.reserve(lps_.size());
  for (const auto& lp : lps_) {
    LpLiveSample s;
    s.lp = lp->id;
    s.events = lp->live_events.load(std::memory_order_relaxed);
    s.null_updates = lp->live_null_updates.load(std::memory_order_relaxed);
    s.msgs_sent = lp->live_msgs_sent.load(std::memory_order_relaxed);
    s.msgs_recvd = lp->live_msgs_recvd.load(std::memory_order_relaxed);
    s.horizon_s = lp->live_horizon.load(std::memory_order_relaxed);
    s.running_s = static_cast<double>(lp->running_ns.load(std::memory_order_relaxed)) * 1e-9;
    s.blocked_s = static_cast<double>(lp->blocked_ns.load(std::memory_order_relaxed)) * 1e-9;
    for (const Mailbox* m : lp->in) s.inbox_depth += m->depth();
    out.push_back(s);
  }
  return out;
}

bool Runtime::quiescent() {
  // Double collect with version numbers. Pass iff: every LP reports an
  // empty event queue, no cross-LP message is in flight (delivered read
  // before posted, then equal), and no LP completed a progress step while
  // we looked. Any in-flight activity either flips an idle bit, bumps a
  // serial between the two collects, or leaves posted_ ahead of
  // delivered_ — each of which fails a check below.
  collect_.resize(lps_.size());
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    const std::uint64_t s = lps_[i]->state.load(std::memory_order_seq_cst);
    if ((s & 1u) == 0) return false;
    collect_[i] = s;
  }
  const std::uint64_t d = delivered_.load(std::memory_order_seq_cst);
  const std::uint64_t p = posted_.load(std::memory_order_seq_cst);
  if (p != d) return false;
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    if (lps_[i]->state.load(std::memory_order_seq_cst) != collect_[i]) return false;
  }
  return true;
}

void Runtime::worker_loop(std::size_t worker, std::size_t begin, std::size_t end) {
  std::uint64_t idle_passes = 0;
  std::uint64_t last_beat = progress_beat_.load(std::memory_order_relaxed);
  while (!done_.load(std::memory_order_acquire)) {
    bool progressed = false;
    for (std::size_t i = begin; i < end; ++i) progressed |= step_lp(*lps_[i]);
    if (progressed) {
      idle_passes = 0;
      continue;
    }
    const std::uint64_t beat = progress_beat_.load(std::memory_order_relaxed);
    if (beat != last_beat) {
      last_beat = beat;
      idle_passes = 0;
    }
    ++idle_passes;
    if (worker == 0 && quiescent()) {
      done_.store(true, std::memory_order_release);
      return;
    }
    SCSQ_CHECK(idle_passes < kLivelockPasses)
        << "conservative runtime livelocked: no global progress in " << kLivelockPasses
        << " passes (undeclared LP pair or non-positive lookahead?)";
    std::this_thread::yield();
  }
}

void Runtime::run(unsigned workers) {
  SCSQ_CHECK(!ran_) << "Runtime::run may only be called once";
  ran_ = true;
  const auto lp_n = static_cast<unsigned>(lps_.size());
  if (workers == 0 || workers > lp_n) workers = lp_n;
  // Seed the idle bits the detector reads before any worker publishes.
  for (auto& lp : lps_) {
    const std::uint64_t idle = lp->sim.next_event_time() == Simulator::kNoLimit ? 1u : 0u;
    lp->state.store(idle, std::memory_order_relaxed);
  }
  if (workers <= 1) {
    worker_loop(0, 0, lps_.size());
  } else {
    // One chunk per worker: the LP -> worker assignment is the stable
    // contiguous split of parallel_chunks, identical for every run.
    util::parallel_chunks(lps_.size(), workers, workers,
                          [this](std::size_t c, std::size_t b, std::size_t e) {
                            worker_loop(c, b, e);
                          });
  }
  const std::uint64_t p = posted_.load(std::memory_order_seq_cst);
  const std::uint64_t d = delivered_.load(std::memory_order_seq_cst);
  SCSQ_CHECK(p == d) << "messages lost in flight: posted " << p << ", delivered " << d;
  total_deliveries_ = 0;
  for (auto& lp : lps_) total_deliveries_ += lp->deliveries;
}

const LpStats& Runtime::lp_stats(int lp) const {
  SCSQ_CHECK(lp >= 0 && lp < lp_count()) << "bad LP index " << lp;
  return lps_[static_cast<std::size_t>(lp)]->stats;
}

const PerfCounters& Runtime::lp_perf(int lp) const {
  SCSQ_CHECK(lp >= 0 && lp < lp_count()) << "bad LP index " << lp;
  return lps_[static_cast<std::size_t>(lp)]->sim.perf();
}

LpStats Runtime::total_stats() const {
  LpStats total;
  for (const auto& lp : lps_) {
    total.events += lp->stats.events;
    total.windows += lp->stats.windows;
    total.stalls += lp->stats.stalls;
    total.null_updates += lp->stats.null_updates;
    total.msgs_sent += lp->stats.msgs_sent;
    total.msgs_recvd += lp->stats.msgs_recvd;
    total.mailbox_full += lp->stats.mailbox_full;
  }
  return total;
}

Time Runtime::end_time() const {
  Time t = 0.0;
  for (const auto& lp : lps_) t = std::max(t, lp.get()->sim.now());
  return t;
}

}  // namespace scsq::sim::plp
