// Parallel discrete-event simulation: conservative logical processes.
//
// The sequential kernel (simulator.hpp) runs one event loop per
// Simulator. This layer partitions a simulated system into *logical
// processes* (LPs), each owning a private Simulator, and advances them
// concurrently under the classic Chandy–Misra–Bryant conservative
// protocol:
//
//  * Simulated entities ("nodes") are assigned to LPs by a partitioner
//    (for SCSQ hardware: hw::make_partition groups BlueGene compute
//    nodes per pset — see hw/machine.hpp). Nodes interact only through
//    timestamped messages.
//  * Cross-LP messages travel through bounded lock-free SPSC mailboxes,
//    one per directed LP pair, carrying (send_time, recv_time, event)
//    tuples. Each mailbox also holds the *channel clock*: a monotone
//    promise that no future message on this link will be delivered
//    before it — the null-message mechanism, implemented as an atomic
//    clock advance rather than queued null events.
//  * Each LP repeatedly: reads its input channel clocks, drains its
//    input mailboxes, runs every local event *strictly earlier* than
//    the minimum input clock (its safe horizon), then republishes its
//    own output clocks as min(next local event, safe horizon) +
//    per-link lookahead. Lookahead comes from the simulated network's
//    per-hop link latencies (net/*: TorusParams/TreeParams/
//    EthernetParams::min_link_latency()), which are strictly positive —
//    that strict positivity is what makes the protocol deadlock-free.
//
// Determinism contract (the whole point): results are bitwise identical
// for every LP count and every worker-thread count. Two mechanisms
// deliver this:
//
//  1. Total message order. Every message carries a partition-independent
//     key (recv_time, origin node id, per-origin sequence number). Each
//     destination node owns an inbox ordered by that key; a delivery
//     event pops the inbox minimum, so same-timestamp messages are
//     handled in key order no matter which mailbox, thread or drain
//     batch carried them. This is the stable tie-break the sequential
//     kernel's global FIFO seq provides within one Simulator, extended
//     across Simulators.
//  2. Strict horizons. An LP never executes an event at its safe
//     horizon, only strictly before it, because a neighbor may still
//     deliver a message *at* the horizon that must be merged by key.
//
// LP count is a semantic knob; worker count is a performance knob. k
// LPs can be multiplexed cooperatively on any number of workers 1..k
// (the sweep harness's oversubscription guard caps workers, never LPs),
// and with one worker no thread is spawned at all. Mailbox overflow
// never blocks a worker: excess messages park in a sender-local staging
// heap and the link clock is clamped to the staged minimum until the
// ring drains, preserving bounded buffers without cross-LP deadlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace scsq::sim::plp {

using NodeId = std::uint32_t;

/// A timestamped event crossing LP boundaries. POD; 48 bytes.
struct Message {
  Time send_time = 0.0;   ///< sender's clock when the send happened
  Time recv_time = 0.0;   ///< delivery timestamp (>= send_time + lookahead)
  NodeId src = 0;         ///< origin node (tie-break key, partition-independent)
  NodeId dst = 0;
  std::uint32_t tag = 0;  ///< workload-defined event kind
  std::uint32_t pad = 0;
  std::uint64_t seq = 0;  ///< per-origin sequence (tie-break key)
  double value = 0.0;     ///< workload payload
};

/// Ordering key: (recv_time, src, seq). Total (seq unique per src).
inline bool message_after(const Message& a, const Message& b) {
  if (a.recv_time != b.recv_time) return a.recv_time > b.recv_time;
  if (a.src != b.src) return a.src > b.src;
  return a.seq > b.seq;
}

/// Per-LP runtime counters, exported via obs::bridge_plp_stats as
/// sim.lp.* metrics.
struct LpStats {
  std::uint64_t events = 0;        ///< events dispatched by the local kernel
  std::uint64_t windows = 0;       ///< safe-horizon windows executed
  std::uint64_t stalls = 0;        ///< passes with pending events blocked by the horizon
  std::uint64_t null_updates = 0;  ///< output channel-clock advances (null messages)
  std::uint64_t msgs_sent = 0;     ///< cross-LP messages posted
  std::uint64_t msgs_recvd = 0;    ///< cross-LP messages drained
  std::uint64_t mailbox_full = 0;  ///< posts that overflowed into staging
};

/// Bounded SPSC mailbox for one directed LP pair, plus the link's
/// channel clock and lookahead. The sender LP's worker is the only
/// producer; the receiver LP's worker the only consumer (workers never
/// share an LP, so SPSC holds under any LP->worker multiplexing).
class Mailbox {
 public:
  Mailbox(int src_lp, int dst_lp, Time lookahead, std::size_t capacity);

  int src_lp() const { return src_lp_; }
  int dst_lp() const { return dst_lp_; }
  Time lookahead() const { return lookahead_; }
  /// Tightens the link latency (setup only, before any traffic).
  void set_lookahead(Time lookahead) { lookahead_ = lookahead; }

  // --- sender side ---

  /// Enqueues a message; parks it in the staging heap when the ring is
  /// full (counted in `stats.mailbox_full`). Never blocks.
  void post(const Message& m, LpStats& stats);

  /// Moves staged messages into the ring as space allows. Returns true
  /// if any message moved.
  bool flush();

  /// Publishes a channel-clock promise: no future message on this link
  /// will be delivered before min(promise, oldest staged recv_time).
  /// Monotone; returns true when the published clock advanced.
  bool advance_clock(Time promise);

  // --- receiver side ---

  /// The channel clock (acquire). Every message with recv_time < clock()
  /// is visible to a subsequent drain().
  Time clock() const { return clock_.load(std::memory_order_acquire); }

  /// Messages currently buffered on this link: ring occupancy plus the
  /// sender's staged overflow. Readable from ANY thread while the
  /// runtime is in flight (the live-gauge sampler's view); the two
  /// components are read atomically but not as a pair, so the value is
  /// an instantaneous approximation, which is all a depth gauge needs.
  std::size_t depth() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return (tail - head) + staged_count_.load(std::memory_order_relaxed);
  }

  /// Appends all available messages to `out` as one batched span copy
  /// (at most two contiguous ring segments); returns how many. One
  /// acquire load covers the whole batch, so a quiescence check costs
  /// O(1) synchronization regardless of how many messages were ready.
  std::size_t drain(std::vector<Message>& out);

 private:
  bool try_push(const Message& m);

  int src_lp_;
  int dst_lp_;
  Time lookahead_;
  std::vector<Message> ring_;  // power-of-two slots, indexes free-run
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
  // Sender-local state (no concurrent access).
  std::vector<Message> staged_;  // min-heap by recv_time (overflow)
  Time clock_shadow_ = 0.0;      // last published clock value
  alignas(64) std::atomic<double> clock_{0.0};
  // Mirror of staged_.size() for depth(); written only by the sender.
  std::atomic<std::size_t> staged_count_{0};
};

/// Point-in-time view of one LP while run() is in flight, safe to read
/// from any thread (a wall-clock monitor / the telemetry sampler). All
/// fields come from atomics published by the owning worker; cheap,
/// relaxed, and monotone per field, but not a consistent cross-field
/// snapshot — exactly what live gauges need and no more.
struct LpLiveSample {
  int lp = 0;
  std::uint64_t events = 0;        ///< kernel events dispatched so far
  std::uint64_t null_updates = 0;  ///< output channel-clock advances so far
  std::uint64_t msgs_sent = 0;     ///< cross-LP messages posted so far
  std::uint64_t msgs_recvd = 0;    ///< cross-LP messages drained so far
  Time horizon_s = 0.0;            ///< LP frontier: min(next local event, safe horizon)
  double running_s = 0.0;          ///< wall time executing safe windows (needs live timing)
  double blocked_s = 0.0;          ///< wall time in passes stalled on neighbors' clocks
  std::size_t inbox_depth = 0;     ///< buffered messages across this LP's input links
};

/// The conservative parallel runtime: nodes, LPs, mailboxes, workers.
///
/// Usage: add_node() simulated entities with handlers, declare
/// set_lookahead() for every directed LP pair that will communicate,
/// seed the simulation with post_initial(), then run(workers). Handlers
/// receive a Context to read the clock and send further messages.
class Runtime {
  struct Lp;  // per-LP state, private (defined below)

 public:
  struct Options {
    std::size_t mailbox_capacity = 1024;  ///< ring slots per directed LP pair
  };

  /// A handler's view of its node during a delivery.
  class Context {
   public:
    NodeId id() const { return id_; }
    Time now() const;
    /// Sends a message delivered at `recv_time`. Same-LP destinations
    /// require recv_time > now(); cross-LP destinations require
    /// recv_time >= now() + lookahead(src LP, dst LP).
    void send(NodeId dst, Time recv_time, std::uint32_t tag, double value);

   private:
    friend class Runtime;
    Context(Runtime* rt, Lp* lp, NodeId id) : rt_(rt), lp_(lp), id_(id) {}
    Runtime* rt_;
    Lp* lp_;
    NodeId id_;
  };

  using Handler = std::function<void(Context&, const Message&)>;

  explicit Runtime(int lp_count) : Runtime(lp_count, Options{}) {}
  Runtime(int lp_count, Options options);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int lp_count() const { return static_cast<int>(lps_.size()); }

  /// Registers a simulated node owned by LP `lp`. Handlers run on the
  /// owning LP's worker thread and must touch only node-local state.
  NodeId add_node(int lp, Handler handler);

  /// Declares the lookahead (strictly positive) for the directed LP
  /// pair, creating its mailbox. Must cover every pair that
  /// communicates; src_lp == dst_lp is ignored (local sends need no
  /// mailbox).
  void set_lookahead(int src_lp, int dst_lp, Time lookahead);

  /// Convenience: set_lookahead for every ordered LP pair.
  void set_uniform_lookahead(Time lookahead);

  /// Seeds a message to `dst` at absolute time `at` (>= 0), origin =
  /// dst itself. Only before run(); call order is part of the
  /// deterministic input.
  void post_initial(NodeId dst, Time at, std::uint32_t tag, double value);

  /// Runs the simulation to global quiescence (no local events, no
  /// in-flight messages anywhere). `workers` = worker threads to
  /// multiplex LPs onto, clamped to [1, lp_count]; 0 = one per LP.
  /// workers == 1 runs inline on the caller (no threads). Results are
  /// identical for every worker count. May be called once.
  void run(unsigned workers = 0);

  // --- live inspection (any thread, during run) ---

  /// Turns on wall-clock accounting of running vs blocked time per LP
  /// (two steady_clock reads per scheduler pass). Off by default so the
  /// hot loop stays free of clock syscalls; call before run().
  void enable_live_timing(bool on) { live_timing_ = on; }

  /// Snapshot of every LP's live gauges. Callable from any thread at
  /// any time — including while run() is in flight on other threads —
  /// without perturbing the simulation (TSAN-clean relaxed/acquire
  /// reads). running_s/blocked_s stay zero unless live timing is on.
  std::vector<LpLiveSample> live_sample() const;

  // --- post-run inspection ---

  const LpStats& lp_stats(int lp) const;
  const PerfCounters& lp_perf(int lp) const;
  LpStats total_stats() const;
  /// Total messages handled (local + cross-LP): every delivery event.
  std::uint64_t total_deliveries() const { return total_deliveries_; }
  /// Latest local clock over all LPs (time of the last event anywhere).
  Time end_time() const;

 private:
  struct NodeState {
    int lp = 0;
    std::uint64_t next_seq = 0;
    Handler handler;
    std::vector<Message> inbox;  // min-heap by message_after
  };

  struct Lp {
    explicit Lp(int id_in) : id(id_in) {}
    int id;
    Simulator sim;
    LpStats stats;
    std::vector<Mailbox*> in;   // mailboxes this LP consumes
    std::vector<Mailbox*> out;  // mailboxes this LP produces
    std::vector<Message> drain_buf;
    std::uint64_t deliveries = 0;  // delivery events executed
    // (serial << 1) | idle, published (release) at the end of every step
    // that made progress; read by the quiescence detector.
    alignas(64) std::atomic<std::uint64_t> state{0};
    // Live-gauge mirrors of stats/sim state, relaxed-stored by the
    // owning worker once per progress step, read by live_sample() from
    // anywhere. Grouped on their own line so monitor reads do not
    // bounce the quiescence-critical `state` cache line.
    alignas(64) std::atomic<std::uint64_t> live_events{0};
    std::atomic<std::uint64_t> live_null_updates{0};
    std::atomic<std::uint64_t> live_msgs_sent{0};
    std::atomic<std::uint64_t> live_msgs_recvd{0};
    std::atomic<Time> live_horizon{0.0};
    std::atomic<std::uint64_t> running_ns{0};
    std::atomic<std::uint64_t> blocked_ns{0};
  };

  Mailbox* mailbox(int src_lp, int dst_lp) const {
    return mailboxes_[static_cast<std::size_t>(src_lp) * lps_.size() +
                      static_cast<std::size_t>(dst_lp)]
        .get();
  }

  void send_from(Lp& src_lp, NodeId src, NodeId dst, Time recv_time, std::uint32_t tag,
                 double value);
  void deliver_local(Lp& lp, const Message& m);
  void pop_and_handle(Lp& lp, NodeState& node);
  bool step_lp(Lp& lp);
  void worker_loop(std::size_t worker, std::size_t begin, std::size_t end);
  bool quiescent();

  Options options_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // dense lp*lp grid
  std::vector<NodeState> nodes_;
  bool ran_ = false;
  bool live_timing_ = false;
  std::uint64_t total_deliveries_ = 0;
  std::vector<std::uint64_t> collect_;  // quiescence-detector scratch (worker 0 only)
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> posted_{0};     // cross-LP messages entering mailboxes
  std::atomic<std::uint64_t> delivered_{0};  // cross-LP messages drained
  std::atomic<std::uint64_t> progress_beat_{0};  // bumped by every progress step
};

}  // namespace scsq::sim::plp
