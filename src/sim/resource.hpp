// FIFO-fair counted resource for the simulation kernel.
//
// Resources model contended hardware: a BlueGene communication
// co-processor is a Resource of capacity 1, a NIC is a capacity-1
// resource whose hold time is the wire time of a frame, a dual-CPU node
// exposes a compute Resource per CPU. Grants are strictly FIFO — a
// release hands the slot directly to the oldest waiter, so later
// arrivals can never barge (matching the in-order servicing of a
// single-threaded co-processor).
#pragma once

#include <coroutine>
#include <deque>
#include <string>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace scsq::sim {

class Resource {
 public:
  Resource(Simulator& sim, int capacity, std::string name = {})
      : sim_(&sim), capacity_(capacity), name_(std::move(name)) {
    SCSQ_CHECK(capacity_ >= 1) << "resource capacity must be >= 1";
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable acquire; FIFO under contention.
  auto acquire() {
    struct Awaiter {
      Resource* res;
      bool await_ready() {
        if (res->in_use_ < res->capacity_) {
          res->note_change();
          ++res->in_use_;
          if (res->in_use_ == 1) res->episode_start_ = res->sim_->now();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { res->waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

  /// Releases one slot. If waiters exist the slot transfers directly to
  /// the oldest one (in_use stays constant across the hand-off).
  void release() {
    SCSQ_CHECK(in_use_ > 0) << "release of idle resource " << name_;
    if (waiters_.empty()) {
      note_change();
      --in_use_;
      if (in_use_ == 0 && trace_ != nullptr) {
        trace_->interval(name_.empty() ? "resource" : name_, "busy", episode_start_,
                         sim_->now());
      }
      return;
    }
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_now(h);
  }

  /// Convenience: acquire, hold for `duration` simulated seconds, release.
  Task<void> use(Time duration) {
    co_await acquire();
    co_await sim_->delay(duration);
    release();
  }

  /// Batched convenience: acquire once, hold for the sequential fold of
  /// `n` holds of `per` seconds each, release. The end time is computed
  /// by the same left-to-right addition chain n back-to-back use(per)
  /// calls would produce, so the clock lands on the bitwise-identical
  /// timestamp — with one scheduler event instead of n. Only safe when
  /// no other process would contend for this resource between the
  /// individual holds (FIFO barging would otherwise reorder grants).
  Task<void> use_repeated(Time per, std::uint64_t n) {
    if (n == 0) co_return;
    co_await acquire();
    Time end = sim_->now();
    for (std::uint64_t i = 0; i < n; ++i) end += per;
    co_await sim_->delay_until(end);
    release();
  }

  /// Reserves the next FIFO slot of a capacity-1 resource and returns the
  /// exact simulated time a use(hold) enqueued *now* will complete. Valid
  /// only when every user of the resource pairs claim(hold) with an
  /// immediately following use(hold) in the same event (no suspension in
  /// between), so claim order equals grant order. The returned time is
  /// bitwise-identical to the clock after the matching use(): a FIFO
  /// grant resumes at its predecessor's release time, so completion is
  /// max(now, previous completion) + hold in both computations. The
  /// parallel LP runtime uses this to announce a cross-LP delivery a full
  /// hold-time ahead of the delivery event — the lookahead that keeps
  /// conservative windows safe.
  Time claim(Time hold) {
    SCSQ_CHECK(capacity_ == 1) << "claim() needs FIFO capacity 1: " << name_;
    Time start = claim_until_ > sim_->now() ? claim_until_ : sim_->now();
    claim_until_ = start + hold;
    return claim_until_;
  }

  int capacity() const { return capacity_; }
  int in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }
  const std::string& name() const { return name_; }

  /// Integral of in_use over time divided by capacity: the mean
  /// utilization of this resource since construction (or since
  /// reset_stats()). Used for the per-link utilization in RunReport.
  double utilization() const {
    double total = sim_->now() - stats_start_;
    if (total <= 0.0) return 0.0;
    double busy = busy_integral_ + in_use_ * (sim_->now() - last_change_);
    return busy / (total * capacity_);
  }

  /// Total resource-busy seconds accumulated (per slot-second).
  double busy_seconds() const {
    return busy_integral_ + in_use_ * (sim_->now() - last_change_);
  }

  void reset_stats() {
    busy_integral_ = 0.0;
    stats_start_ = last_change_ = sim_->now();
  }

  /// Attaches a trace: every busy episode (in_use > 0) is recorded as an
  /// interval on a track named after the resource. Pass nullptr to
  /// detach.
  void set_trace(Trace* trace) { trace_ = trace; }

 private:
  void note_change() {
    busy_integral_ += in_use_ * (sim_->now() - last_change_);
    last_change_ = sim_->now();
  }

  Simulator* sim_;
  int capacity_;
  std::string name_;
  int in_use_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
  double busy_integral_ = 0.0;
  double last_change_ = 0.0;
  double stats_start_ = 0.0;
  Time claim_until_ = 0.0;
  Trace* trace_ = nullptr;
  double episode_start_ = 0.0;
};

/// RAII guard releasing a Resource on scope exit. Use as:
///   co_await res.acquire();
///   ResourceLock lock(res);
class ResourceLock {
 public:
  explicit ResourceLock(Resource& res) : res_(&res) {}
  ResourceLock(ResourceLock&& other) noexcept : res_(other.res_) { other.res_ = nullptr; }
  ResourceLock(const ResourceLock&) = delete;
  ResourceLock& operator=(const ResourceLock&) = delete;
  ResourceLock& operator=(ResourceLock&&) = delete;
  ~ResourceLock() {
    if (res_) res_->release();
  }

 private:
  Resource* res_;
};

}  // namespace scsq::sim
