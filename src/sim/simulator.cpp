#include "sim/simulator.hpp"

#include <algorithm>

namespace scsq::sim {

Simulator::Simulator() {
  util::set_log_time_source([this] { return now_; });
}

Simulator::~Simulator() {
  util::set_log_time_source(nullptr);
  // Destroy surviving root coroutines (e.g. when a run was truncated by a
  // time limit). Frames own their locals via RAII, so destroying the
  // handles releases everything they hold.
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

void Simulator::spawn(Task<void> task) {
  SCSQ_CHECK(task.valid()) << "spawn of empty task";
  auto handle = task.release();
  roots_.push_back(handle);
  schedule_now(handle);
}

void Simulator::schedule_at(Time at, std::coroutine_handle<> h) {
  SCSQ_CHECK(at >= now_) << "scheduling into the past: " << at << " < " << now_;
  queue_.push(Event{at, next_seq_++, h, nullptr});
}

void Simulator::call_at(Time at, std::function<void()> fn) {
  SCSQ_CHECK(at >= now_) << "scheduling into the past: " << at << " < " << now_;
  queue_.push(Event{at, next_seq_++, nullptr, std::move(fn)});
}

Time Simulator::run(Time until) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (ev.at > until) break;
    queue_.pop();
    now_ = ev.at;
    ++events_dispatched_;
    if (ev.handle) {
      ev.handle.resume();
    } else if (ev.callback) {
      ev.callback();
    }
    // Cheap periodic sweep so long simulations do not accumulate frames
    // of completed root processes.
    if ((events_dispatched_ & 0x3FF) == 0) sweep_finished_roots();
  }
  sweep_finished_roots();
  return now_;
}

std::size_t Simulator::live_root_tasks() const {
  std::size_t live = 0;
  for (auto h : roots_) {
    if (h && !h.done()) ++live;
  }
  return live;
}

void Simulator::sweep_finished_roots() {
  auto it = std::remove_if(roots_.begin(), roots_.end(), [](auto h) {
    if (h && h.done()) {
      // Surface exceptions escaping root processes: they indicate bugs in
      // the simulation harness, never expected user errors.
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      h.destroy();
      return true;
    }
    return false;
  });
  roots_.erase(it, roots_.end());
}

}  // namespace scsq::sim
