#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace scsq::sim {

Simulator::Simulator() : Simulator(EventQueue::mode_from_env()) {}

Simulator::Simulator(EventQueue::Mode queue_mode)
    : timed_(queue_mode, &perf_.rung_spills, &perf_.bottom_resorts) {
  util::set_log_time_source([this] { return now_; });
}

Simulator::~Simulator() {
  util::set_log_time_source(nullptr);
  // Destroy surviving root coroutines (e.g. when a run was truncated by a
  // time limit). Frames own their locals via RAII, so destroying the
  // handles releases everything they hold.
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

void Simulator::reset() {
  SCSQ_CHECK(seq_ == &next_seq_) << "reset while the seq counter is shared";
  for (auto h : roots_) {
    if (h) h.destroy();
  }
  roots_.clear();
  timed_.clear();
  fifo_.clear();
  fifo_head_ = 0;
  // Keep the callback slab allocated; null the bodies and bump every
  // generation so TimerIds issued before the reset can never cancel a
  // post-reset timer that recycles their slot.
  free_slots_.clear();
  for (std::size_t i = callbacks_.size(); i-- > 0;) {
    callbacks_[i] = nullptr;
    ++callback_gens_[i];
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
  now_ = 0.0;
  next_seq_ = 0;
}

void Simulator::spawn(Task<void> task) {
  SCSQ_CHECK(task.valid()) << "spawn of empty task";
  auto handle = task.release();
  roots_.push_back(handle);
  schedule_now(handle);
}

Simulator::TimerId Simulator::call_at(Time at, std::function<void()> fn) {
  SCSQ_CHECK(at >= now_) << "scheduling into the past: " << at << " < " << now_;
  SCSQ_CHECK(fn != nullptr) << "call_at with empty callback";
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    callbacks_[slot] = std::move(fn);
    ++callback_gens_[slot];
  } else {
    slot = static_cast<std::uint32_t>(callbacks_.size());
    callbacks_.push_back(std::move(fn));
    callback_gens_.push_back(0);
  }
  const auto payload = (static_cast<std::uintptr_t>(slot) << 1) | 1u;
  if (at == now_) {
    push_fifo(payload);
  } else {
    push_timed(at, payload);
  }
  return TimerId{slot, callback_gens_[slot]};
}

bool Simulator::cancel_timer(TimerId id) {
  // The slot stays allocated (not on free_slots_) until its queue node
  // pops: a recycled slot before the pop would let the stale node fire a
  // *different* callback. Nulling the body is what marks cancellation;
  // consume_cancelled releases the slot at pop time.
  if (id.slot >= callbacks_.size()) return false;
  if (callback_gens_[id.slot] != id.gen) return false;
  if (!callbacks_[id.slot]) return false;
  callbacks_[id.slot] = nullptr;
  return true;
}

void Simulator::run_callback(std::uintptr_t payload) {
  const auto slot = static_cast<std::uint32_t>(payload >> 1);
  auto fn = std::move(callbacks_[slot]);
  callbacks_[slot] = nullptr;
  free_slots_.push_back(slot);
  ++perf_.callbacks_run;
  if (fn) fn();
}

template <bool Strict>
Time Simulator::run_loop(Time limit) {
  for (;;) {
    const std::size_t fifo_live = fifo_.size() - fifo_head_;
    const std::size_t timed_size = timed_.size();
    const std::uint64_t depth = timed_size + fifo_live;
    if (depth > perf_.peak_queue_depth) perf_.peak_queue_depth = depth;
    std::uintptr_t payload;
    if (fifo_live != 0) {
      // The FIFO only ever holds events stamped at now_, so it drains
      // before time advances; a timed event at the same timestamp runs
      // first only when it was scheduled earlier (smaller seq) —
      // preserving the global FIFO order within a timestamp that the old
      // single priority_queue provided.
      if (Strict ? now_ >= limit : now_ > limit) break;
      if (timed_size != 0 && timed_.front().at == now_ &&
          timed_.front().seq < fifo_[fifo_head_].seq) {
        payload = timed_.front().payload;
        timed_.pop_front();
      } else {
        payload = fifo_[fifo_head_].payload;
        if (++fifo_head_ == fifo_.size()) {
          fifo_.clear();
          fifo_head_ = 0;
        }
      }
      if (consume_cancelled(payload)) continue;
    } else if (timed_size != 0) {
      const Time at = timed_.front().at;
      if (Strict ? at >= limit : at > limit) break;
      payload = timed_.front().payload;
      timed_.pop_front();
      // Cancelled timers vanish here, *before* the clock advances: a
      // cancelled node parked past the last real event must not drag
      // now() forward (the sampler's determinism contract rides on this).
      if (consume_cancelled(payload)) continue;
      now_ = at;
    } else {
      break;
    }
    ++perf_.events_dispatched;
    if (payload & 1u) {
      run_callback(payload);
    } else {
      std::coroutine_handle<>::from_address(reinterpret_cast<void*>(payload)).resume();
    }
    // Cheap periodic sweep so long simulations do not accumulate frames
    // of completed root processes.
    if ((perf_.events_dispatched & 0x3FF) == 0) sweep_finished_roots();
  }
  sweep_finished_roots();
  return now_;
}

bool Simulator::run_one() {
  // One iteration of run_loop's body, without the limit checks — the
  // multiplexer already established that this shard holds the global
  // front. The bookkeeping (peak-depth sample, cancelled-node
  // consumption, clock advance on the timed path, periodic root sweep)
  // mirrors run_loop exactly so a multiplexed drive is event-for-event
  // identical to a single-Simulator run.
  const std::size_t fifo_live = fifo_.size() - fifo_head_;
  const std::uint64_t depth = timed_.size() + fifo_live;
  if (depth > perf_.peak_queue_depth) perf_.peak_queue_depth = depth;
  std::uintptr_t payload;
  if (fifo_live != 0) {
    if (!timed_.empty() && timed_.front().at == now_ &&
        timed_.front().seq < fifo_[fifo_head_].seq) {
      payload = timed_.front().payload;
      timed_.pop_front();
    } else {
      payload = fifo_[fifo_head_].payload;
      if (++fifo_head_ == fifo_.size()) {
        fifo_.clear();
        fifo_head_ = 0;
      }
    }
    if (consume_cancelled(payload)) return false;
  } else if (!timed_.empty()) {
    const Time at = timed_.front().at;
    payload = timed_.front().payload;
    timed_.pop_front();
    if (consume_cancelled(payload)) return false;
    now_ = at;
  } else {
    return false;
  }
  ++perf_.events_dispatched;
  if (payload & 1u) {
    run_callback(payload);
  } else {
    std::coroutine_handle<>::from_address(reinterpret_cast<void*>(payload)).resume();
  }
  if ((perf_.events_dispatched & 0x3FF) == 0) sweep_finished_roots();
  return true;
}

Time Simulator::run(Time until) { return run_loop<false>(until); }

Time Simulator::run_before(Time horizon) { return run_loop<true>(horizon); }

std::size_t Simulator::live_root_tasks() const {
  std::size_t live = 0;
  for (auto h : roots_) {
    if (h && !h.done()) ++live;
  }
  return live;
}

void Simulator::sweep_finished_roots() {
  auto it = std::remove_if(roots_.begin(), roots_.end(), [](auto h) {
    if (h && h.done()) {
      // Surface exceptions escaping root processes: they indicate bugs in
      // the simulation harness, never expected user errors.
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      h.destroy();
      return true;
    }
    return false;
  });
  roots_.erase(it, roots_.end());
}

}  // namespace scsq::sim
