// Discrete-event simulation kernel.
//
// The Simulator owns a priority queue of timestamped events (coroutine
// resumptions or plain callbacks) and drives spawned root tasks until no
// events remain. All SCSQ "hardware" (networks, CPUs, co-processors) is
// modeled on top of this kernel; simulated time stands in for the
// wall-clock measurements of the paper.
//
// Threading model: strictly single-threaded, run-to-completion. A resumed
// coroutine runs until its next suspension; wake-ups always go through
// schedule_* so there are no re-entrant resumptions.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "util/logging.hpp"

namespace scsq::sim {

/// Simulated time in seconds.
using Time = double;

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds since simulation start).
  Time now() const { return now_; }

  /// Starts a root process. The task begins executing at the current time
  /// (it is scheduled, not run inline). The simulator keeps the coroutine
  /// alive until it completes.
  void spawn(Task<void> task);

  /// Schedules `h` to resume at absolute time `at` (>= now()).
  void schedule_at(Time at, std::coroutine_handle<> h);

  /// Schedules `h` to resume at the current time, after already-queued
  /// same-time events (FIFO within a timestamp).
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Schedules a plain callback at absolute time `at`.
  void call_at(Time at, std::function<void()> fn);

  /// Awaitable: suspends the awaiting coroutine for `dt` seconds
  /// (dt <= 0 completes immediately without suspension).
  auto delay(Time dt) {
    struct Awaiter {
      Simulator* sim;
      Time dt;
      bool await_ready() const { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { sim->schedule_at(sim->now_ + dt, h); }
      void await_resume() const {}
    };
    return Awaiter{this, dt};
  }

  /// Runs until the event queue is empty or `until` is exceeded.
  /// Returns the final simulated time.
  Time run(Time until = kNoLimit);

  /// Number of root tasks spawned that have not yet completed. After
  /// run() returns with an empty queue, a nonzero value means deadlock
  /// (processes waiting on channels/resources that will never signal).
  std::size_t live_root_tasks() const;

  /// Total events dispatched so far (diagnostics / tests).
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  static constexpr Time kNoLimit = 1e300;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO within equal timestamps
    std::coroutine_handle<> handle;
    std::function<void()> callback;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void sweep_finished_roots();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
};

/// One-shot broadcast event (like a latch): wait() suspends until set()
/// is called; set() wakes all current and future waiters.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Condition-variable-like wait queue used to build channels.
/// wait() suspends until notify_one()/notify_all(); waiters must re-check
/// their condition after resuming (standard cv loop discipline).
class WaitQueue {
 public:
  explicit WaitQueue(Simulator& sim) : sim_(&sim) {}

  auto wait() {
    struct Awaiter {
      WaitQueue* wq;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) { wq->waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

  void notify_one() {
    if (waiters_.empty()) return;
    sim_->schedule_now(waiters_.front());
    waiters_.erase(waiters_.begin());
  }

  void notify_all() {
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace scsq::sim
