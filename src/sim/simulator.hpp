// Discrete-event simulation kernel.
//
// The Simulator owns a timestamped event queue (coroutine resumptions or
// plain callbacks) and drives spawned root tasks until no events remain.
// All SCSQ "hardware" (networks, CPUs, co-processors) is modeled on top
// of this kernel; simulated time stands in for the wall-clock
// measurements of the paper.
//
// Hot-path layout: a queued event is 24 bytes of POD — timestamp, FIFO
// sequence number, and a type-punned payload word. Coroutine frame
// addresses are at least 2-byte aligned, so the low payload bit tags the
// rare plain-callback events, whose std::function lives in a reusable
// side slab instead of inside every queue node. Events land either in
// the timed pending-event set (sim/event_queue.hpp: a ladder queue by
// default, the old binary min-heap behind SCSQ_EVENT_QUEUE=heap as a
// byte-diffable reference — both dispatch in the identical (time, seq)
// order) or in an index-advancing FIFO ring (events at exactly now(),
// the common case for channel wake-ups), so the usual
// schedule_now/resume cycle never touches the timed structure at all.
//
// Threading model: one Simulator is strictly single-threaded,
// run-to-completion. A resumed coroutine runs until its next suspension;
// wake-ups always go through schedule_* so there are no re-entrant
// resumptions. *Distinct* Simulator instances are independent and may
// run concurrently on different threads (the parallel sweep harness
// relies on this).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"  // Time, QueuedEvent, EventQueue
#include "sim/task.hpp"
#include "util/logging.hpp"

namespace scsq::sim {

/// Event-loop statistics, maintained inline by the kernel. Every counter
/// is a single register increment on a cache line the dispatch loop
/// already owns, so keeping them always on costs nothing measurable; the
/// accessor itself is a free inline reference. Benches divide
/// events_dispatched by wall time to report simulated events per second.
struct PerfCounters {
  std::uint64_t events_dispatched = 0;  ///< total events run (timed + fifo)
  std::uint64_t heap_pushes = 0;        ///< timed events (future timestamps)
  std::uint64_t fifo_pushes = 0;        ///< same-timestamp fast-path events
  std::uint64_t callbacks_run = 0;      ///< call_at dispatches (slab path)
  std::uint64_t channel_sends = 0;      ///< Channel::send/try_send accepted
  std::uint64_t channel_recvs = 0;      ///< Channel::recv values delivered
  std::uint64_t channel_waits = 0;      ///< suspensions on full/empty channels
  std::uint64_t wakeups = 0;            ///< WaitQueue/Event notify resumptions
  std::uint64_t peak_queue_depth = 0;   ///< max outstanding events (timed+fifo)
  std::uint64_t rung_spills = 0;        ///< events respread into a ladder rung
  std::uint64_t bottom_resorts = 0;     ///< bucket/top batches sorted to bottom
  std::uint64_t cancel_consumed = 0;    ///< cancelled timer nodes popped silently
};

class Simulator {
 public:
  /// Default: pending-event set mode from SCSQ_EVENT_QUEUE (ladder
  /// unless overridden).
  Simulator();
  /// Explicit pending-event-set mode (tests and benches compare both).
  explicit Simulator(EventQueue::Mode queue_mode);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds since simulation start).
  Time now() const { return now_; }

  /// Pending-event-set mode this kernel runs with.
  EventQueue::Mode queue_mode() const { return timed_.mode(); }

  /// Returns the kernel to its initial state — clock at 0, seq counter at
  /// 0, no queued events, no live roots — while keeping every piece of
  /// warm storage (event-queue rungs and vectors, FIFO ring, callback
  /// slab). Re-running a workload on a reset Simulator allocates nothing
  /// in steady state. PerfCounters are cumulative across resets.
  /// Outstanding TimerIds are invalidated (their slots' generations
  /// advance). Illegal while the seq counter is shared.
  void reset();

  /// Starts a root process. The task begins executing at the current time
  /// (it is scheduled, not run inline). The simulator keeps the coroutine
  /// alive until it completes.
  void spawn(Task<void> task);

  /// Schedules `h` to resume at absolute time `at` (>= now()). Events at
  /// the current time take the FIFO fast path and skip the timed set.
  void schedule_at(Time at, std::coroutine_handle<> h) {
    SCSQ_CHECK(at >= now_) << "scheduling into the past: " << at << " < " << now_;
    if (at == now_) {
      push_fifo(encode(h));
    } else {
      push_timed(at, encode(h));
    }
  }

  /// Schedules `h` to resume at the current time, after already-queued
  /// same-time events (FIFO within a timestamp).
  void schedule_now(std::coroutine_handle<> h) { push_fifo(encode(h)); }

  /// Handle to a pending call_at timer, usable with cancel_timer. The
  /// generation counter makes stale handles harmless: a slot recycled to
  /// a newer timer no longer matches an old TimerId.
  struct TimerId {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  /// Schedules a plain callback at absolute time `at`. The callable is
  /// parked in a reusable slab; the queue node stays 24-byte POD. The
  /// returned TimerId can cancel the callback before it fires.
  TimerId call_at(Time at, std::function<void()> fn);

  /// Cancels a pending call_at timer. Returns true when the callback was
  /// still pending (it will never run); false for a timer that already
  /// fired, was already cancelled, or whose slot was recycled. A
  /// cancelled queue node is consumed silently when its timestamp is
  /// reached: it does not advance now(), does not count as a dispatched
  /// event, and never keeps run() from returning — so a periodic sampler
  /// can park a timer past the end of a run without perturbing the
  /// simulation's observable timing.
  bool cancel_timer(TimerId id);

  /// Awaitable: suspends the awaiting coroutine for `dt` seconds
  /// (dt <= 0 completes immediately without suspension).
  auto delay(Time dt) {
    struct Awaiter {
      Simulator* sim;
      Time dt;
      bool await_ready() const noexcept { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { sim->schedule_at(sim->now_ + dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: suspends until absolute simulated time `at` (at <= now()
  /// completes immediately without suspension). Batched cost charges use
  /// this to land the clock on an exact fold of per-item costs: k
  /// sequential delay(d) calls advance time as ((t+d)+d)+... which is
  /// not bitwise t + k*d, so an aggregated charge computes the same
  /// sequential fold and schedules at that absolute instant.
  auto delay_until(Time at) {
    struct Awaiter {
      Simulator* sim;
      Time at;
      bool await_ready() const noexcept { return at <= sim->now_; }
      void await_suspend(std::coroutine_handle<> h) { sim->schedule_at(at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, at};
  }

  /// Runs until the event queue is empty or `until` is exceeded.
  /// Returns the final simulated time.
  Time run(Time until = kNoLimit);

  /// Runs every event with timestamp strictly below `horizon` and stops
  /// without dispatching anything at or beyond it. This is the window
  /// primitive of the conservative parallel runtime (sim/plp.hpp): a
  /// logical process may only execute events strictly earlier than the
  /// minimum of its input channel clocks, because a neighbor is still
  /// allowed to deliver an event *at* that clock value and same-time
  /// events must be merged under the deterministic tie-break. Returns
  /// the final simulated time (now() stays at the last dispatched event;
  /// it does not jump to `horizon`).
  Time run_before(Time horizon);

  /// Timestamp of the next pending event: now() when same-time FIFO
  /// events are queued, the timed front's timestamp otherwise, kNoLimit
  /// when the queue is empty. Conservative LPs use this to compute the
  /// null-message promise (earliest possible next send) for neighbors.
  Time next_event_time() const {
    if (fifo_.size() != fifo_head_) return now_;
    if (!timed_.empty()) return timed_.front().at;
    return kNoLimit;
  }

  // --- Globally-sequenced multiplexing (LpDomain::run_sequenced) ---
  //
  // Several Simulators can be driven as shards of one logical event
  // queue: share one seq counter across them, then repeatedly dispatch
  // the shard whose front event has the globally minimal (time, seq).
  // With identical code executing in identical order, the dispatch
  // sequence is bit-for-bit the one a single Simulator holding the union
  // of events would produce — which shard an event lands in is invisible.
  // Strictly single-threaded.

  /// (timestamp, seq) of the event run_one() would dispatch next — the
  /// same front run_loop would pick (a timed event beats the FIFO at an
  /// equal timestamp only with a smaller seq). False when the queue is
  /// empty. Cancelled timer nodes are reported like live events;
  /// run_one() consumes them silently.
  bool next_event_key(Time* at, std::uint64_t* seq) const {
    const bool fifo_live = fifo_.size() != fifo_head_;
    if (fifo_live && !timed_.empty() && timed_.front().at == now_ &&
        timed_.front().seq < fifo_[fifo_head_].seq) {
      *at = timed_.front().at;
      *seq = timed_.front().seq;
      return true;
    }
    if (fifo_live) {
      *at = fifo_[fifo_head_].at;
      *seq = fifo_[fifo_head_].seq;
      return true;
    }
    if (!timed_.empty()) {
      *at = timed_.front().at;
      *seq = timed_.front().seq;
      return true;
    }
    return false;
  }

  /// Dispatches exactly the front event (the one next_event_key names)
  /// with run_loop's bookkeeping. Returns false when the front was a
  /// cancelled timer node (consumed, clock untouched) or the queue was
  /// empty — the caller re-picks the global minimum either way.
  bool run_one();

  /// True when the front event is a cancelled timer node. The
  /// multiplexer uses this to pop such nodes (run_one) *without* first
  /// advancing any shard clock — mirroring run_loop, where a cancelled
  /// node parked past the last real event never drags now() forward.
  bool front_cancelled() const {
    const bool fifo_live = fifo_.size() != fifo_head_;
    std::uintptr_t payload;
    if (fifo_live && !timed_.empty() && timed_.front().at == now_ &&
        timed_.front().seq < fifo_[fifo_head_].seq) {
      payload = timed_.front().payload;
    } else if (fifo_live) {
      payload = fifo_[fifo_head_].payload;
    } else if (!timed_.empty()) {
      payload = timed_.front().payload;
    } else {
      return false;
    }
    return (payload & 1u) && !callbacks_[static_cast<std::uint32_t>(payload >> 1)];
  }

  /// Advances now() without dispatching — the multiplexer's clock
  /// lockstep, so code reading a *different* shard's now() mid-event sees
  /// the global time, exactly as it would on a single Simulator. Only
  /// legal up to the global front timestamp: a pending FIFO event (always
  /// stamped at now()) would be the front, so the FIFO must be empty
  /// whenever the clock actually moves.
  void advance_now(Time t) {
    SCSQ_CHECK(t >= now_) << "clock moving backwards: " << t << " < " << now_;
    if (t == now_) return;
    SCSQ_CHECK(fifo_.size() == fifo_head_) << "advancing past pending same-time events";
    now_ = t;
  }

  /// Draws future event seqs from `shared` (>= the current private
  /// counter) instead of the private counter. unshare_seq_counter()
  /// reverts, continuing from the shared value so per-Simulator seqs stay
  /// monotonic across mode switches.
  void share_seq_counter(std::uint64_t* shared) {
    SCSQ_CHECK(*shared >= next_seq_) << "shared seq counter behind this simulator";
    seq_ = shared;
  }
  void unshare_seq_counter() {
    if (seq_ == &next_seq_) return;
    next_seq_ = *seq_;
    seq_ = &next_seq_;
  }

  /// Current seq-counter value (for seeding a shared counter).
  std::uint64_t seq_value() const { return *seq_; }

  /// Number of root tasks spawned that have not yet completed. After
  /// run() returns with an empty queue, a nonzero value means deadlock
  /// (processes waiting on channels/resources that will never signal).
  std::size_t live_root_tasks() const;

  /// Total events dispatched so far (diagnostics / tests).
  std::uint64_t events_dispatched() const { return perf_.events_dispatched; }

  /// Outstanding queued events (timed + same-time FIFO), including any
  /// cancelled-but-unpopped timer nodes. Live observability gauge; O(1).
  std::size_t queue_depth() const { return timed_.size() + (fifo_.size() - fifo_head_); }

  /// Kernel event-loop counters (see PerfCounters). Zero-cost accessor.
  const PerfCounters& perf() const { return perf_; }

  // Instrumentation hooks for the sim primitives (Channel, WaitQueue).
  // Inline single increments; not part of the user-facing API.
  void count_channel_send() { ++perf_.channel_sends; }
  void count_channel_recv() { ++perf_.channel_recvs; }
  void count_channel_wait() { ++perf_.channel_waits; }
  void count_wakeup() { ++perf_.wakeups; }

  static constexpr Time kNoLimit = 1e300;

 private:
  static std::uintptr_t encode(std::coroutine_handle<> h) {
    return reinterpret_cast<std::uintptr_t>(h.address());
  }

  // Peak queue depth is sampled at the top of the run() loop rather than
  // on every push: depth only grows between two pops, so it is maximal
  // exactly when the next event is about to be popped, and the loop top
  // already has both container sizes in registers.
  void push_fifo(std::uintptr_t payload) {
    ++perf_.fifo_pushes;
    fifo_.push_back(QueuedEvent{now_, (*seq_)++, payload});
  }

  // `heap_pushes` keeps its historical name: it counts pushes into the
  // timed pending-event set, whichever structure backs it.
  void push_timed(Time at, std::uintptr_t payload) {
    ++perf_.heap_pushes;
    timed_.push(QueuedEvent{at, (*seq_)++, payload});
  }

  // Shared dispatch loop: Strict=false stops once the next event is past
  // `limit` (run), Strict=true stops at or past it (run_before).
  template <bool Strict>
  Time run_loop(Time limit);

  void run_callback(std::uintptr_t payload);
  void sweep_finished_roots();

  // True (and the slot released) when `payload` is a cancelled callback
  // node: the dispatch loop consumes it without any observable effect
  // beyond the cancel_consumed diagnostic counter.
  bool consume_cancelled(std::uintptr_t payload) {
    if (!(payload & 1u)) return false;
    const auto slot = static_cast<std::uint32_t>(payload >> 1);
    if (callbacks_[slot]) return false;
    free_slots_.push_back(slot);
    ++perf_.cancel_consumed;
    return true;
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t* seq_ = &next_seq_;  // shared across shards while multiplexed
  PerfCounters perf_;                // must precede timed_ (it points in)
  EventQueue timed_;                 // pending-event set for at > now()
  std::vector<QueuedEvent> fifo_;  // events at now_, drained by fifo_head_
  std::size_t fifo_head_ = 0;
  std::vector<std::function<void()>> callbacks_;  // slab for call_at bodies
  std::vector<std::uint32_t> callback_gens_;      // slot generation (TimerId check)
  std::vector<std::uint32_t> free_slots_;         // recycled slab indices
  std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
};

/// One-shot broadcast event (like a latch): wait() suspends until set()
/// is called; set() wakes all current and future waiters.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) {
      sim_->count_wakeup();
      sim_->schedule_now(h);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Condition-variable-like wait queue used to build channels.
/// wait() suspends until notify_one()/notify_all(); waiters must re-check
/// their condition after resuming (standard cv loop discipline).
///
/// The waiter list is an index-advancing ring: notify_one hands out
/// waiters_[head_++] in O(1) instead of erasing the vector front, and the
/// storage resets once the ring drains, so no wake-up path in the kernel
/// is linear in the number of waiters.
class WaitQueue {
 public:
  explicit WaitQueue(Simulator& sim) : sim_(&sim) {}

  auto wait() {
    struct Awaiter {
      WaitQueue* wq;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { wq->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void notify_one() {
    if (head_ == waiters_.size()) return;
    sim_->count_wakeup();
    sim_->schedule_now(waiters_[head_++]);
    if (head_ == waiters_.size()) {
      waiters_.clear();
      head_ = 0;
    }
  }

  void notify_all() {
    for (std::size_t i = head_; i < waiters_.size(); ++i) {
      sim_->count_wakeup();
      sim_->schedule_now(waiters_[i]);
    }
    waiters_.clear();
    head_ = 0;
  }

  std::size_t waiting() const { return waiters_.size() - head_; }

 private:
  Simulator* sim_;
  std::size_t head_ = 0;  // oldest live waiter; entries before it are spent
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace scsq::sim
