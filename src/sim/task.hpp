// Coroutine task type for simulated processes.
//
// A sim::Task<T> is a lazily-started coroutine. It can be:
//  * co_await-ed from another task (nested call; the child runs to its
//    first suspension inside the parent's resume, and resumes the parent
//    on completion via symmetric transfer), or
//  * handed to Simulator::spawn() as a root process (Task<void> only).
//
// Tasks are single-threaded: the whole simulation is cooperative and all
// coroutines are driven by the Simulator's event loop.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <optional>
#include <utility>

#include "util/logging.hpp"

namespace scsq::sim {

namespace detail {

// Pooled coroutine-frame allocation. Every simulated message crossing a
// Channel and every Resource::use() spins up a short-lived coroutine;
// at steady state the same handful of frame sizes are allocated and
// freed millions of times per run. Frames are recycled through
// thread-local free lists bucketed in 64-byte size classes (the
// simulator is single-threaded, but sweep workers run one simulation
// per thread), so after warm-up the hot path never reaches malloc.
// Oversized frames (> kCoroBucketCount classes) fall through to the
// global heap. The lists free their cached blocks at thread exit, so
// leak checkers stay quiet.
inline constexpr std::size_t kCoroBucketShift = 6;  // 64-byte classes
inline constexpr std::size_t kCoroBucketCount = 16;  // covers up to 1 KiB
inline constexpr std::size_t kCoroMaxCachedPerBucket = 128;

struct CoroFreeLists {
  void* head[kCoroBucketCount] = {};
  std::size_t count[kCoroBucketCount] = {};

  ~CoroFreeLists() {
    for (std::size_t b = 0; b < kCoroBucketCount; ++b) {
      void* p = head[b];
      while (p != nullptr) {
        void* next = *static_cast<void**>(p);
        ::operator delete(p);
        p = next;
      }
    }
  }

  static CoroFreeLists& tls() {
    static thread_local CoroFreeLists lists;
    return lists;
  }
};

inline void* coro_alloc(std::size_t n) {
  const std::size_t b = (n - 1) >> kCoroBucketShift;
  if (b < kCoroBucketCount) {
    auto& fl = CoroFreeLists::tls();
    if (void* p = fl.head[b]) {
      fl.head[b] = *static_cast<void**>(p);
      --fl.count[b];
      return p;
    }
    // Round up to the class size so any same-class frame can reuse it.
    return ::operator new((b + 1) << kCoroBucketShift);
  }
  return ::operator new(n);
}

inline void coro_free(void* p, std::size_t n) noexcept {
  const std::size_t b = (n - 1) >> kCoroBucketShift;
  if (b < kCoroBucketCount) {
    auto& fl = CoroFreeLists::tls();
    if (fl.count[b] < kCoroMaxCachedPerBucket) {
      *static_cast<void**>(p) = fl.head[b];
      fl.head[b] = p;
      ++fl.count[b];
      return;
    }
  }
  ::operator delete(p);
}

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed at final suspend, if set
  std::exception_ptr exception;

  // Route all Task coroutine frames through the per-thread pool.
  static void* operator new(std::size_t n) { return coro_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept { coro_free(p, n); }
  // Unsized fallback (no size ⇒ no bucket): the block came from
  // ::operator new either way, so releasing it there is always sound.
  static void operator delete(void* p) noexcept { ::operator delete(p); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <class T = void>
class [[nodiscard]] Task;

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a task starts it; the awaiting coroutine resumes when the
  /// task completes, receiving its value (or rethrowing its exception).
  /// The awaiter's ready/suspend steps are noexcept so the compiler can
  /// elide exception plumbing on every nested co_await (hot path: one
  /// awaited child task per simulated message).
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        SCSQ_CHECK(p.value.has_value()) << "task finished without a value";
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace scsq::sim
