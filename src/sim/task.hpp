// Coroutine task type for simulated processes.
//
// A sim::Task<T> is a lazily-started coroutine. It can be:
//  * co_await-ed from another task (nested call; the child runs to its
//    first suspension inside the parent's resume, and resumes the parent
//    on completion via symmetric transfer), or
//  * handed to Simulator::spawn() as a root process (Task<void> only).
//
// Tasks are single-threaded: the whole simulation is cooperative and all
// coroutines are driven by the Simulator's event loop.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace scsq::sim {

/// Diagnostic counters for the coroutine-frame pool (coro_pool_stats()).
struct CoroPoolStats {
  std::uint64_t bucket_reused = 0;   ///< frames served from a warm free list
  std::uint64_t chunk_allocs = 0;    ///< ::operator new chunk refills
  std::uint64_t oversize_allocs = 0; ///< frames beyond the pooled classes
};

namespace detail {

// Pooled coroutine-frame allocation. Every simulated message crossing a
// Channel and every Resource::use() spins up a short-lived coroutine;
// at steady state the same handful of frame sizes are allocated and
// freed millions of times per run. Frames are recycled through
// thread-local free lists bucketed in 64-byte size classes (the
// simulator is single-threaded, but sweep workers run one simulation
// per thread). A free-list miss carves kCoroChunkBlocks blocks out of
// one ::operator new — so even cold starts and deep workloads (tens of
// thousands of live frames) reach malloc once per chunk, not per frame,
// and the lists are uncapped: steady state performs zero ::operator new
// calls. Oversized frames (> kCoroBucketCount classes) fall through to
// the global heap.
//
// Chunk ownership is process-global, not per-thread: a frame allocated
// by one LP worker can be freed on another when a logical process
// migrates between windows, so a block may outlive the thread whose
// list first carved it. Chunks are therefore registered in a global
// registry (always reachable — leak checkers stay quiet) and released
// only at process exit.
inline constexpr std::size_t kCoroBucketShift = 6;  // 64-byte classes
inline constexpr std::size_t kCoroBucketCount = 16;  // covers up to 1 KiB
inline constexpr std::size_t kCoroChunkBlocks = 64;  // blocks per refill

struct CoroChunkRegistry {
  std::mutex mu;
  std::vector<void*> chunks;
  // Stats of exited threads, folded in at thread-local destruction.
  std::atomic<std::uint64_t> retired_reused{0};
  std::atomic<std::uint64_t> retired_chunks{0};
  std::atomic<std::uint64_t> retired_oversize{0};

  ~CoroChunkRegistry() {
    for (void* c : chunks) ::operator delete(c);
  }

  void add(void* chunk) {
    const std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  }

  static CoroChunkRegistry& instance() {
    static CoroChunkRegistry registry;
    return registry;
  }
};

struct CoroFreeLists {
  void* head[kCoroBucketCount] = {};
  CoroPoolStats stats;

  // Touch the registry first so it is constructed before (and therefore
  // destroyed after) every thread-local list, including main's.
  CoroFreeLists() { (void)CoroChunkRegistry::instance(); }

  ~CoroFreeLists() {
    auto& reg = CoroChunkRegistry::instance();
    reg.retired_reused.fetch_add(stats.bucket_reused, std::memory_order_relaxed);
    reg.retired_chunks.fetch_add(stats.chunk_allocs, std::memory_order_relaxed);
    reg.retired_oversize.fetch_add(stats.oversize_allocs, std::memory_order_relaxed);
  }

  static CoroFreeLists& tls() {
    static thread_local CoroFreeLists lists;
    return lists;
  }
};

// Cold path: carve one chunk into class-size blocks, thread all but the
// returned one onto the free list.
inline void* coro_refill(CoroFreeLists& fl, std::size_t b) {
  const std::size_t block = (b + 1) << kCoroBucketShift;
  char* chunk = static_cast<char*>(::operator new(block * kCoroChunkBlocks));
  CoroChunkRegistry::instance().add(chunk);
  ++fl.stats.chunk_allocs;
  for (std::size_t i = 1; i < kCoroChunkBlocks; ++i) {
    void* p = chunk + i * block;
    *static_cast<void**>(p) = fl.head[b];
    fl.head[b] = p;
  }
  return chunk;
}

inline void* coro_alloc(std::size_t n) {
  const std::size_t b = (n - 1) >> kCoroBucketShift;
  if (b < kCoroBucketCount) {
    auto& fl = CoroFreeLists::tls();
    if (void* p = fl.head[b]) {
      fl.head[b] = *static_cast<void**>(p);
      ++fl.stats.bucket_reused;
      return p;
    }
    return coro_refill(fl, b);
  }
  ++CoroFreeLists::tls().stats.oversize_allocs;
  return ::operator new(n);
}

inline void coro_free(void* p, std::size_t n) noexcept {
  const std::size_t b = (n - 1) >> kCoroBucketShift;
  if (b < kCoroBucketCount) {
    // Always recycle: the block is a chunk interior and must never reach
    // ::operator delete individually.
    auto& fl = CoroFreeLists::tls();
    *static_cast<void**>(p) = fl.head[b];
    fl.head[b] = p;
    return;
  }
  ::operator delete(p);
}

}  // namespace detail

/// This thread's coroutine-pool counters plus those of exited threads.
/// With single-threaded use (tests), deltas across a workload are exact:
/// equal chunk_allocs before/after proves steady-state zero-malloc.
inline CoroPoolStats coro_pool_stats() {
  const auto& fl = detail::CoroFreeLists::tls();
  const auto& reg = detail::CoroChunkRegistry::instance();
  CoroPoolStats s = fl.stats;
  s.bucket_reused += reg.retired_reused.load(std::memory_order_relaxed);
  s.chunk_allocs += reg.retired_chunks.load(std::memory_order_relaxed);
  s.oversize_allocs += reg.retired_oversize.load(std::memory_order_relaxed);
  return s;
}

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed at final suspend, if set
  std::exception_ptr exception;

  // Route all Task coroutine frames through the per-thread pool. Only
  // the sized form is declared: frame deallocation must know the class
  // size because pooled blocks are chunk interiors that can never be
  // released to ::operator delete individually ([dcl.fct.def.coroutine]
  // selects the sized overload whenever it is declared).
  static void* operator new(std::size_t n) { return coro_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept { coro_free(p, n); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <class T = void>
class [[nodiscard]] Task;

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a task starts it; the awaiting coroutine resumes when the
  /// task completes, receiving its value (or rethrowing its exception).
  /// The awaiter's ready/suspend steps are noexcept so the compiler can
  /// elide exception plumbing on every nested co_await (hot path: one
  /// awaited child task per simulated message).
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        SCSQ_CHECK(p.value.has_value()) << "task finished without a value";
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace scsq::sim
