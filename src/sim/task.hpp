// Coroutine task type for simulated processes.
//
// A sim::Task<T> is a lazily-started coroutine. It can be:
//  * co_await-ed from another task (nested call; the child runs to its
//    first suspension inside the parent's resume, and resumes the parent
//    on completion via symmetric transfer), or
//  * handed to Simulator::spawn() as a root process (Task<void> only).
//
// Tasks are single-threaded: the whole simulation is cooperative and all
// coroutines are driven by the Simulator's event loop.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/logging.hpp"

namespace scsq::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed at final suspend, if set
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <class T = void>
class [[nodiscard]] Task;

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a task starts it; the awaiting coroutine resumes when the
  /// task completes, receiving its value (or rethrowing its exception).
  /// The awaiter's ready/suspend steps are noexcept so the compiler can
  /// elide exception plumbing on every nested co_await (hot path: one
  /// awaited child task per simulated message).
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        SCSQ_CHECK(p.value.has_value()) << "task finished without a value";
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace scsq::sim
