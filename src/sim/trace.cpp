#include "sim/trace.hpp"

#include <map>
#include <ostream>

#include "util/logging.hpp"

namespace scsq::sim {

void Trace::interval(std::string track, std::string name, Time start, Time end) {
  SCSQ_CHECK(end >= start) << "negative trace interval";
  events_.push_back(Event{std::move(track), std::move(name), start, end - start, true});
}

void Trace::instant(std::string track, std::string name, Time at) {
  events_.push_back(Event{std::move(track), std::move(name), at, 0.0, false});
}

double Trace::track_busy_seconds(const std::string& track) const {
  double total = 0;
  for (const auto& e : events_) {
    if (e.is_interval && e.track == track) total += e.duration;
  }
  return total;
}

namespace {
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

void Trace::write_json(std::ostream& os) const {
  // Stable tid per track, in first-appearance order.
  std::map<std::string, int> tids;
  for (const auto& e : events_) {
    tids.emplace(e.track, static_cast<int>(tids.size()) + 1);
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << R"({"ph":"M","pid":1,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")";
    write_escaped(os, track);
    os << "\"}}";
  }
  for (const auto& e : events_) {
    os << ",";
    os << "{\"ph\":\"" << (e.is_interval ? 'X' : 'i') << "\",\"pid\":1,\"tid\":"
       << tids.at(e.track) << ",\"ts\":" << e.start * 1e6;
    if (e.is_interval) os << ",\"dur\":" << e.duration * 1e6;
    if (!e.is_interval) os << ",\"s\":\"t\"";
    os << ",\"name\":\"";
    write_escaped(os, e.name);
    os << "\"}";
  }
  os << "]}";
}

}  // namespace scsq::sim
