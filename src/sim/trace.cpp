#include "sim/trace.hpp"

#include <map>
#include <ostream>

#include "util/logging.hpp"

namespace scsq::sim {

void Trace::interval(std::string track, std::string name, Time start, Time end) {
  SCSQ_CHECK(end >= start) << "negative trace interval";
  events_.push_back(Event{std::move(track), std::move(name), start, end - start, 0.0, 0,
                          Kind::kInterval});
}

void Trace::instant(std::string track, std::string name, Time at) {
  events_.push_back(Event{std::move(track), std::move(name), at, 0.0, 0.0, 0, Kind::kInstant});
}

void Trace::flow(std::string from_track, std::string to_track, std::string name, Time start,
                 Time end) {
  SCSQ_CHECK(end >= start) << "negative flow duration";
  const std::uint64_t id = next_flow_id_++;
  events_.push_back(
      Event{std::move(from_track), name, start, 0.0, 0.0, id, Kind::kFlowStart});
  events_.push_back(
      Event{std::move(to_track), std::move(name), end, 0.0, 0.0, id, Kind::kFlowEnd});
}

void Trace::counter(std::string track, std::string name, Time at, double value) {
  events_.push_back(
      Event{std::move(track), std::move(name), at, 0.0, value, 0, Kind::kCounter});
}

double Trace::track_busy_seconds(const std::string& track) const {
  double total = 0;
  for (const auto& e : events_) {
    if (e.kind == Kind::kInterval && e.track == track) total += e.duration;
  }
  return total;
}

namespace {
// JSON string escaping. Control characters must become \uXXXX escapes —
// a raw newline or tab inside a track/event name would otherwise emit
// invalid JSON that chrome://tracing refuses to load.
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (u < 0x20) {
      static const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[(u >> 4) & 0xF] << hex[u & 0xF];
    } else {
      os << c;
    }
  }
}
}  // namespace

void Trace::write_json(std::ostream& os) const {
  // Stable tid per track, in first-appearance order.
  std::map<std::string, int> tids;
  for (const auto& e : events_) {
    tids.emplace(e.track, static_cast<int>(tids.size()) + 1);
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << R"({"ph":"M","pid":1,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")";
    write_escaped(os, track);
    os << "\"}}";
  }
  for (const auto& e : events_) {
    os << ",";
    const int tid = tids.at(e.track);
    switch (e.kind) {
      case Kind::kInterval:
        os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << e.start * 1e6
           << ",\"dur\":" << e.duration * 1e6;
        break;
      case Kind::kInstant:
        os << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << e.start * 1e6
           << ",\"s\":\"t\"";
        break;
      case Kind::kFlowStart:
        os << "{\"ph\":\"s\",\"cat\":\"stream\",\"pid\":1,\"tid\":" << tid
           << ",\"ts\":" << e.start * 1e6 << ",\"id\":" << e.id;
        break;
      case Kind::kFlowEnd:
        // bp:"e" binds the arrow to the enclosing slice at the arrival
        // timestamp instead of the next slice.
        os << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"stream\",\"pid\":1,\"tid\":" << tid
           << ",\"ts\":" << e.start * 1e6 << ",\"id\":" << e.id;
        break;
      case Kind::kCounter:
        os << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << e.start * 1e6
           << ",\"args\":{\"value\":" << e.value << "}";
        break;
    }
    os << ",\"name\":\"";
    write_escaped(os, e.name);
    os << "\"}";
  }
  os << "]}";
}

}  // namespace scsq::sim
