// Simulation tracing: records timestamped intervals/instants and exports
// them in the Chrome tracing (catapult) JSON format, so a query run can
// be inspected in chrome://tracing or Perfetto — which resource was busy
// when, where a stream stalled, how placements collide.
//
// Resources integrate directly: Resource::set_trace() records one
// "busy" interval per busy episode (a capacity-k resource is "busy"
// while at least one slot is held; hand-offs extend the episode). The
// execution engine adds instant events for stream-process lifecycle,
// flow events (producer→consumer arrows between stream-process tracks,
// one per delivered frame) and counter tracks (per-RP element counts),
// so Perfetto shows stream hand-offs, not just busy resources.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace scsq::sim {

using Time = double;

class Trace {
 public:
  /// A completed interval on a named track.
  void interval(std::string track, std::string name, Time start, Time end);

  /// An instantaneous event on a named track.
  void instant(std::string track, std::string name, Time at);

  /// A flow arrow from `from_track` at `start` to `to_track` at `end`
  /// (Chrome "s"/"f" event pair sharing an id). Perfetto draws these as
  /// arrows between the two tracks — used for stream frame hand-offs.
  void flow(std::string from_track, std::string to_track, std::string name, Time start,
            Time end);

  /// A counter sample: the value of series `name` on `track` at `at`
  /// (Chrome "C" event; rendered as a stacked counter track).
  void counter(std::string track, std::string name, Time at, double value);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Number of flow arrows recorded (each counts once, not per endpoint).
  std::size_t flow_count() const { return next_flow_id_; }

  /// Sum of interval durations on one track (tests/diagnostics).
  double track_busy_seconds(const std::string& track) const;

  /// Writes Chrome tracing JSON ({"traceEvents": [...]}); timestamps in
  /// microseconds, one tid per track.
  void write_json(std::ostream& os) const;

 private:
  enum class Kind : std::uint8_t {
    kInterval,
    kInstant,
    kFlowStart,
    kFlowEnd,
    kCounter,
  };

  struct Event {
    std::string track;
    std::string name;
    Time start = 0;
    Time duration = 0;       // intervals only
    double value = 0;        // counters only
    std::uint64_t id = 0;    // flow start/end pairing
    Kind kind = Kind::kInstant;
  };
  std::vector<Event> events_;
  std::uint64_t next_flow_id_ = 0;
};

}  // namespace scsq::sim
