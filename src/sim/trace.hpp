// Simulation tracing: records timestamped intervals/instants and exports
// them in the Chrome tracing (catapult) JSON format, so a query run can
// be inspected in chrome://tracing or Perfetto — which resource was busy
// when, where a stream stalled, how placements collide.
//
// Resources integrate directly: Resource::set_trace() records one
// "busy" interval per busy episode (a capacity-k resource is "busy"
// while at least one slot is held; hand-offs extend the episode). The
// execution engine adds instant events for stream-process lifecycle.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scsq::sim {

using Time = double;

class Trace {
 public:
  /// A completed interval on a named track.
  void interval(std::string track, std::string name, Time start, Time end);

  /// An instantaneous event on a named track.
  void instant(std::string track, std::string name, Time at);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Sum of interval durations on one track (tests/diagnostics).
  double track_busy_seconds(const std::string& track) const;

  /// Writes Chrome tracing JSON ({"traceEvents": [...]}); timestamps in
  /// microseconds, one tid per track.
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    std::string track;
    std::string name;
    Time start = 0;
    Time duration = 0;  // 0 for instants
    bool is_interval = false;
  };
  std::vector<Event> events_;
};

}  // namespace scsq::sim
