#include "transport/driver.hpp"

#include <memory>

namespace scsq::transport {

void Link::start_transmit(Frame frame, std::function<void()> on_sender_free) {
  if (split()) {
    sim_->spawn(run_split(std::move(frame), std::move(on_sender_free)));
    return;
  }
  sim_->spawn(run(std::move(frame), std::move(on_sender_free)));
}

void Link::enable_split(sim::Simulator& dst_sim, Poster post_dst, Poster post_src,
                        double credit_latency_s, bool deferred_metrics) {
  SCSQ_CHECK(post_dst != nullptr && post_src != nullptr) << "split link needs posters";
  SCSQ_CHECK(credit_latency_s > 0.0) << "split link needs a positive credit latency";
  dst_sim_ = &dst_sim;
  post_dst_ = std::move(post_dst);
  post_src_ = std::move(post_src);
  credit_latency_s_ = credit_latency_s;
  deferred_ = deferred_metrics;
}

sim::Task<void> Link::run(Frame frame, std::function<void()> on_sender_free) {
  const bool eos = frame.eos;
  const std::uint64_t payload = frame.bytes;
  const double t0 = sim_->now();
  if (window_.in_use() >= window_.capacity()) ++batch_.stalls;
  co_await window_.acquire();
  const double window_wait = sim_->now() - t0;
  co_await transmit_one(std::move(frame), std::move(on_sender_free));
  window_.release();
  const double t1 = sim_->now();
  // Scalar accounting batches across the burst of in-flight frames; the
  // histogram observes stay per-frame (quantiles need every sample).
  batch_.frames += 1;
  batch_.payload_bytes += payload;
  batch_.wire_bytes += wire_bytes_for(payload);
  batch_.transit_s += t1 - t0;
  batch_.window_wait_s += window_wait;
  if (metrics_.frame_latency) metrics_.frame_latency->observe(t1 - t0);
  stats_.latency.observe(t1 - t0);
  if (flow_trace_ && !eos) flow_trace_->flow(flow_from_, flow_to_, "frame", t0, t1);
  if (eos) {
    flush_batch();
    stream_ended();
    drained_.set();
  } else if (window_.in_use() == 0) {
    // The burst has fully drained — settle the books while idle.
    flush_batch();
  }
}

void Link::flush_batch() const {
  if (batch_.frames == 0 && batch_.stalls == 0) return;
  stats_.frames += batch_.frames;
  stats_.payload_bytes += batch_.payload_bytes;
  stats_.wire_bytes += batch_.wire_bytes;
  stats_.stalls += batch_.stalls;
  stats_.transit_s += batch_.transit_s;
  stats_.window_wait_s += batch_.window_wait_s;
  if (!deferred_) {
    if (metrics_.frames) metrics_.frames->inc(batch_.frames);
    if (metrics_.bytes) metrics_.bytes->inc(batch_.payload_bytes);
    if (metrics_.stalls && batch_.stalls) metrics_.stalls->inc(batch_.stalls);
    if (metrics_.stall_seconds) metrics_.stall_seconds->add(batch_.window_wait_s);
  }
  batch_ = StatsBatch{};
}

void Link::publish_deferred() const {
  if (!deferred_) return;
  flush_batch();
  if (metrics_.frames) metrics_.frames->inc(stats_.frames - published_.frames);
  if (metrics_.bytes) metrics_.bytes->inc(stats_.payload_bytes - published_.payload_bytes);
  if (metrics_.stalls && stats_.stalls > published_.stalls) {
    metrics_.stalls->inc(stats_.stalls - published_.stalls);
  }
  if (metrics_.stall_seconds) {
    metrics_.stall_seconds->add(stats_.window_wait_s - published_.window_wait_s);
  }
  published_.frames = stats_.frames;
  published_.payload_bytes = stats_.payload_bytes;
  published_.stalls = stats_.stalls;
  published_.window_wait_s = stats_.window_wait_s;
  if (metrics_.frame_latency) {
    for (double s : deferred_latency_) metrics_.frame_latency->observe(s);
  }
  deferred_latency_.clear();
}

sim::Task<void> Link::src_transmit(Frame, std::function<void()>, double, double, bool) {
  SCSQ_CHECK(false) << "link type '" << type_ << "' does not support split transmit";
  co_return;
}

sim::Task<void> Link::dst_receive(Frame) {
  SCSQ_CHECK(false) << "link type '" << type_ << "' does not support split receive";
  co_return;
}

void Link::announce_delivery(double at, Frame frame, double t0, double window_wait,
                             bool stalled) {
  // Frame rides to the destination LP inside a copyable closure; the
  // shared_ptr avoids deep-copying the object payload.
  auto carried = std::make_shared<Frame>(std::move(frame));
  post_dst_(at, [this, carried, t0, window_wait, stalled] {
    dst_sim_->spawn(dst_run(std::move(*carried), t0, window_wait, stalled));
  });
}

sim::Task<void> Link::run_split(Frame frame, std::function<void()> on_sender_free) {
  const double t0 = sim_->now();
  // Same stall truth-value as the sequential path — computed here on the
  // source LP, accounted in dst_run where batch_ lives.
  const bool stalled = window_.in_use() >= window_.capacity();
  co_await window_.acquire();
  const double window_wait = sim_->now() - t0;
  co_await src_transmit(std::move(frame), std::move(on_sender_free), t0, window_wait,
                        stalled);
}

sim::Task<void> Link::dst_run(Frame frame, double t0, double window_wait, bool stalled) {
  const bool eos = frame.eos;
  const std::uint64_t payload = frame.bytes;
  co_await dst_receive(std::move(frame));
  const double t1 = dst_sim_->now();
  batch_.frames += 1;
  batch_.payload_bytes += payload;
  batch_.wire_bytes += wire_bytes_for(payload);
  if (stalled) ++batch_.stalls;
  batch_.transit_s += t1 - t0;
  batch_.window_wait_s += window_wait;
  if (deferred_) {
    if (metrics_.frame_latency) deferred_latency_.push_back(t1 - t0);
  } else if (metrics_.frame_latency) {
    metrics_.frame_latency->observe(t1 - t0);
  }
  stats_.latency.observe(t1 - t0);
  if (flow_trace_ && !eos) flow_trace_->flow(flow_from_, flow_to_, "frame", t0, t1);
  // Flow-control credit back to the source LP: the window slot frees one
  // modeled round-trip after delivery. The drained event (EOS) rides the
  // same credit — both are source-LP-owned state.
  post_src_(t1 + credit_latency_s_, [this, eos] {
    window_.release();
    if (eos) drained_.set();
  });
  if (eos) {
    flush_batch();
    stream_ended();
  } else if (batch_.frames >= 16) {
    // Bounded batching: split links never see the window drain to zero
    // on the delivery side (the credit round-trip keeps slots in
    // flight), so settle the books every 16 frames instead.
    flush_batch();
  }
}

SenderDriver::SenderDriver(sim::Simulator& sim, DriverParams params, sim::Resource& cpu,
                           std::unique_ptr<Link> link, std::uint64_t producer_tag)
    : sim_(&sim),
      params_(params),
      cpu_(&cpu),
      link_(std::move(link)),
      tag_(producer_tag),
      cutter_(params.buffer_bytes, params.frame_pool),
      slots_(sim, params.send_buffers, "sendbuf"),
      outbox_(sim, 1) {
  SCSQ_CHECK(link_ != nullptr) << "sender driver needs a link";
  SCSQ_CHECK(params_.send_buffers >= 1) << "need at least one send buffer";
}

void SenderDriver::ensure_drain() {
  // Lazy: spawned at the first push/finish instead of at construction.
  // Construction happens while streams are wired — on a multi-LP machine
  // that may be a *remote* Simulator that has not started running yet,
  // and an error between wiring and the drive would otherwise strand an
  // un-dispatched coroutine start in its queue. The drain's first action
  // is to park on an empty outbox either way, so the simulated timeline
  // is unchanged.
  if (drain_started_) return;
  drain_started_ = true;
  sim_->spawn(drain());
}

sim::Task<void> SenderDriver::push(catalog::Object obj) {
  SCSQ_CHECK(!finishing_) << "push after finish";
  ensure_drain();
  // Entering active production invalidates any armed linger flush (the
  // cut in the timer callback must never interleave with a push).
  ++linger_generation_;
  // Pushes on one sender are sequential (the producing RP awaits each),
  // so the cut scratch vector is reusable — its capacity persists for
  // the life of the stream and the no-cut common case costs nothing.
  cut_scratch_.clear();
  cutter_.push(std::move(obj), cut_scratch_);
  for (auto& frame : cut_scratch_) {
    co_await outbox_.send(std::move(frame));
  }
  arm_linger();
}

void SenderDriver::arm_linger() {
  const std::uint64_t generation = ++linger_generation_;
  if (params_.linger_s <= 0.0 || cutter_.pending_bytes() == 0) return;
  sim_->call_at(sim_->now() + params_.linger_s, [this, generation] {
    if (generation != linger_generation_ || finishing_) return;
    if (cutter_.pending_bytes() == 0) return;
    if (outbox_.size() > 0 || outbox_.closed()) {
      // Downstream is backed up; retry after another linger period.
      sim_->call_at(sim_->now() + params_.linger_s, [this, generation] {
        if (generation == linger_generation_ && !finishing_) arm_linger_fire();
      });
      return;
    }
    arm_linger_fire();
  });
}

void SenderDriver::arm_linger_fire() {
  if (cutter_.pending_bytes() == 0 || outbox_.size() > 0 || outbox_.closed()) {
    arm_linger();  // conditions changed: start over
    return;
  }
  auto frame = cutter_.cut_partial();
  SCSQ_CHECK(frame.has_value()) << "linger flush with no pending bytes";
  ++linger_generation_;
  // Capacity-1 outbox with size 0 and not closed: cannot fail.
  SCSQ_CHECK(outbox_.try_send(std::move(*frame))) << "linger flush enqueue failed";
}

sim::Task<void> SenderDriver::finish() {
  ensure_drain();
  finishing_ = true;
  ++linger_generation_;  // cancel pending flushes
  co_await outbox_.send(cutter_.finish());
  outbox_.close();
  co_await link_->drained().wait();
}

sim::Task<void> SenderDriver::drain() {
  while (auto frame = co_await outbox_.recv()) {
    frame->producer = tag_;
    // Wait for a free send buffer: with a single buffer this serializes
    // marshal and transmit; with two, marshal of frame i+1 overlaps the
    // transmission of frame i.
    const double wait_start = sim_->now();
    co_await slots_.acquire();
    stall_seconds_ += sim_->now() - wait_start;
    const double marshal_cost = static_cast<double>(frame->bytes) *
                                params_.marshal_per_byte_s * params_.factor(frame->bytes);
    marshal_seconds_ += marshal_cost;
    co_await cpu_->use(marshal_cost);
    link_->start_transmit(std::move(*frame), [this] { slots_.release(); });
  }
}

ReceiverDriver::ReceiverDriver(sim::Simulator& sim, DriverParams params, sim::Resource& cpu)
    : sim_(&sim),
      params_(params),
      cpu_(&cpu),
      inbox_(sim, static_cast<std::size_t>(std::max(params.recv_buffers, 1))) {}

sim::Task<std::optional<catalog::Object>> ReceiverDriver::next() {
  while (ready_head_ == ready_.size()) {
    if (eos_) co_return std::nullopt;
    const double wait_start = sim_->now();
    auto frame = co_await inbox_.recv();
    wait_seconds_ += sim_->now() - wait_start;
    if (!frame) {  // channel force-closed (teardown)
      eos_ = true;
      co_return std::nullopt;
    }
    bytes_ += frame->bytes;
    const double cost =
        static_cast<double>(frame->bytes) * params_.marshal_per_byte_s *
            params_.factor(frame->bytes) +
        static_cast<double>(frame->objects.size()) * params_.alloc_per_object_s;
    demarshal_seconds_ += cost;
    co_await cpu_->use(cost);
    // ready_ is fully drained here: take the frame's object vector
    // wholesale (O(1) swap) and give the frame our spent one — the two
    // vectors ping-pong their capacity for the life of the stream.
    ready_.clear();
    ready_head_ = 0;
    std::swap(ready_, frame->objects);
    if (frame->eos) eos_ = true;
    if (frame->pool) frame->pool->recycle(std::move(*frame));
  }
  auto obj = std::move(ready_[ready_head_]);
  ++ready_head_;
  if (ready_head_ == ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  co_return std::optional<catalog::Object>(std::move(obj));
}

sim::Task<std::size_t> ReceiverDriver::next_batch(catalog::ItemBatch& out,
                                                  std::size_t max) {
  std::size_t delivered = 0;
  while (delivered < max) {
    if (ready_head_ < ready_.size()) {
      out.push(std::move(ready_[ready_head_]));
      ++ready_head_;
      ++delivered;
      if (ready_head_ == ready_.size()) {
        ready_.clear();
        ready_head_ = 0;
      }
      continue;
    }
    // Nothing materialized. Stop at a frame boundary once anything was
    // delivered (see header: taking the next frame early would release
    // sender backpressure ahead of the per-item timeline); otherwise
    // pull frames — identical to next()'s inner loop, including pulling
    // *several* frames back-to-back when a frame completes no object
    // (large arrays spanning many buffers).
    if (delivered > 0 || eos_) break;
    const double wait_start = sim_->now();
    auto frame = co_await inbox_.recv();
    wait_seconds_ += sim_->now() - wait_start;
    if (!frame) {  // channel force-closed (teardown)
      eos_ = true;
      break;
    }
    bytes_ += frame->bytes;
    const double cost =
        static_cast<double>(frame->bytes) * params_.marshal_per_byte_s *
            params_.factor(frame->bytes) +
        static_cast<double>(frame->objects.size()) * params_.alloc_per_object_s;
    demarshal_seconds_ += cost;
    co_await cpu_->use(cost);
    ready_.clear();
    ready_head_ = 0;
    std::swap(ready_, frame->objects);
    if (frame->eos) eos_ = true;
    if (frame->pool) frame->pool->recycle(std::move(*frame));
  }
  co_return delivered;
}

}  // namespace scsq::transport
