// Stream carrier drivers (paper Fig. 3).
//
// Every RP has a sender driver per subscriber and a receiver driver per
// producer. The sender driver marshals result objects into fixed-size
// send buffers and transmits full buffers over a Link (MPI inside the
// BlueGene, TCP between clusters); with double buffering (the default,
// as in the paper's MPI drivers) one buffer is marshaled while the
// other is in flight. The receiver driver buffers incoming frames in a
// bounded inbox (backpressure = flow-control messages) and materializes
// objects for the SQEP operators, charging de-marshal and allocation
// costs to the node's compute CPU.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "catalog/batch.hpp"
#include "catalog/object.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "transport/frame.hpp"

namespace scsq::transport {

struct DriverParams {
  /// Size of one stream buffer — the x-axis of the paper's Fig. 6/8.
  std::uint64_t buffer_bytes = 64 * 1024;
  /// 1 = single buffering, 2 = double buffering (paper §2.3).
  int send_buffers = 2;
  /// Receiver inbox capacity in frames.
  int recv_buffers = 2;
  /// Marshal/de-marshal CPU cost per byte on this node.
  double marshal_per_byte_s = 1.0e-9;
  /// Cost to materialize one received object.
  double alloc_per_object_s = 1.0e-6;
  /// Buffer-size-dependent CPU cost factor (cache misses); null = 1.0.
  std::function<double(std::uint64_t)> cache_factor;
  /// Linger: a partially filled send buffer is flushed after this much
  /// simulated idle time, so sparse streams (one aggregate per window)
  /// are delivered promptly. 0 disables (flush only when full / at EOS).
  double linger_s = 10e-3;
  /// Frame recycling pool (owned by the simulated machine); null = every
  /// cut frame is a fresh allocation, as in directly-wired test rigs.
  FramePool* frame_pool = nullptr;

  double factor(std::uint64_t bytes) const {
    return cache_factor ? cache_factor(bytes) : 1.0;
  }
};

/// Registry handles one Link reports through — resolved once when the
/// connection is wired (make_link labels them by link type and endpoint
/// locations), then every delivered frame is a few plain adds.
struct LinkMetrics {
  obs::Counter* frames = nullptr;        ///< frames delivered (incl. EOS)
  obs::Counter* bytes = nullptr;         ///< payload bytes delivered
  obs::Counter* stalls = nullptr;        ///< transmissions that found the window full
  obs::Gauge* stall_seconds = nullptr;   ///< total time spent waiting for the window
  obs::Histogram* frame_latency = nullptr;  ///< queue-entry -> inbox-delivery seconds
};

/// Per-link running totals the profiler reads back after a run (the
/// registry metrics above are exporter-facing; these are analysis-facing
/// and include the wire-byte accounting and the LogHistogram the
/// EXPLAIN ANALYZE latency quantiles come from). Scalar fields are
/// updated from a per-burst batch that Link::run flushes when the link
/// window drains or the stream ends (stats() also flushes lazily, so
/// readers always see exact totals); only the histogram observes stay
/// per-frame — quantiles need every sample.
struct LinkStats {
  std::uint64_t frames = 0;         ///< frames delivered (incl. EOS)
  std::uint64_t payload_bytes = 0;  ///< stream payload bytes
  std::uint64_t wire_bytes = 0;     ///< payload rounded to wire granularity
  std::uint64_t stalls = 0;         ///< transmissions that found the window full
  double transit_s = 0.0;           ///< sum of queue-entry -> delivery times
  double window_wait_s = 0.0;       ///< share of transit_s queued on the window
  obs::LogHistogram latency;        ///< per-frame transit seconds
};

/// A transport connection carrying frames from one producer RP to one
/// consumer RP's inbox, in order. Implementations (MPI over the torus,
/// TCP via I/O nodes, node-local) live in transport/links.hpp.
///
/// `window` bounds the frames in flight end-to-end (posted MPI receives
/// / the TCP window): when the consumer stops draining, the pipeline
/// stalls all the way back to the producer instead of queueing unbounded
/// frames inside the network resources.
class Link {
 public:
  explicit Link(sim::Simulator& sim, int window = kDefaultWindow)
      : sim_(&sim), drained_(sim), window_(sim, window, "linkwin") {}

  static constexpr int kDefaultWindow = 4;
  virtual ~Link() = default;
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Starts transmitting a frame in the background. `on_sender_free` is
  /// invoked when the send buffer becomes reusable. Frames are delivered
  /// to the consumer inbox in start order.
  void start_transmit(Frame frame, std::function<void()> on_sender_free);

  /// Schedules a callback onto a (possibly remote) LP Simulator at an
  /// absolute simulated time (hw::Machine::make_poster).
  using Poster = std::function<void(double, std::function<void()>)>;

  /// Splits this link's transmit pipeline across two LP Simulators for
  /// the parallel engine drive. The source half keeps running on the
  /// constructing Simulator (window admission and source-side resource
  /// holds); it *claims* the completion time of its final source
  /// resource and posts the destination half onto `dst_sim` via
  /// `post_dst` a full resource-hold ahead of that time — the lookahead
  /// that keeps conservative LP windows safe. The destination half
  /// performs the receive-side holds and the inbox delivery, then posts
  /// the flow-control credit back via `post_src` after
  /// `credit_latency_s` (releasing the window and, at EOS, the drained
  /// event — both source-owned). With `deferred_metrics` (LP count > 1)
  /// the shared registry is never touched during the drive; the engine
  /// calls publish_deferred() once the domain is quiescent. stats()
  /// totals stay exact throughout — they are destination-LP-owned.
  void enable_split(sim::Simulator& dst_sim, Poster post_dst, Poster post_src,
                    double credit_latency_s, bool deferred_metrics);

  /// True once enable_split() has been called.
  bool split() const { return dst_sim_ != nullptr; }

  /// Applies registry updates withheld during a parallel drive (counter
  /// increments and buffered latency samples). Idempotent: a cursor
  /// remembers what was already published. Safe only at quiescence.
  void publish_deferred() const;

  /// Set once the EOS frame has been delivered (safe to tear down).
  sim::Event& drained() { return drained_; }

  /// Attaches registry handles; every delivered frame then updates them.
  void set_metrics(const LinkMetrics& metrics) { metrics_ = metrics; }

  /// Protocol tag ("mpi", "tcp", ...), set by make_link.
  void set_type(std::string type) { type_ = std::move(type); }
  const std::string& type() const { return type_; }

  /// Running per-link totals for the profiler. Flushes any batched
  /// updates first, so the returned totals are always exact.
  const LinkStats& stats() const {
    flush_batch();
    return stats_;
  }

  /// Attaches a trace: every delivered data frame records a flow arrow
  /// from `from_track` (at transmission start) to `to_track` (at inbox
  /// delivery) — the producer→consumer stream hand-off in Perfetto.
  void set_flow_trace(sim::Trace* trace, std::string from_track, std::string to_track) {
    flow_trace_ = trace;
    flow_from_ = std::move(from_track);
    flow_to_ = std::move(to_track);
  }

 protected:
  virtual sim::Task<void> transmit_one(Frame frame,
                                       std::function<void()> on_sender_free) = 0;

  /// Split mode, source half: source-side resource holds only.
  /// Implementations claim() their final capacity-1 source resource,
  /// call announce_delivery() with the claimed completion time *before
  /// suspending* (the claim and the announce must share one event — that
  /// is what makes the announced time at least one lookahead ahead of
  /// every LP's clock), then co_await the actual holds. Links that never
  /// split (MPI, local) keep the default, which aborts.
  virtual sim::Task<void> src_transmit(Frame frame, std::function<void()> on_sender_free,
                                       double t0, double window_wait, bool stalled);

  /// Split mode, destination half: receive-side resource holds plus the
  /// inbox delivery. Runs on the destination LP.
  virtual sim::Task<void> dst_receive(Frame frame);

  /// Posts the destination half of a split transmit onto the destination
  /// LP at absolute time `at` (the claimed source completion time).
  void announce_delivery(double at, Frame frame, double t0, double window_wait,
                         bool stalled);

  /// Called after the EOS frame is delivered; close flows etc. In split
  /// mode this runs on the destination LP — implementations may only
  /// touch mutex-guarded or destination-owned state there.
  virtual void stream_ended() {}

  /// Bytes a payload occupies on the wire. The default is the payload
  /// itself; the MPI link rounds up to full torus packets (a partially
  /// filled final packet still burns a full packet slot) — the
  /// packetization-waste input to the profiler's attribution.
  virtual std::uint64_t wire_bytes_for(std::uint64_t payload_bytes) const {
    return payload_bytes;
  }

  sim::Simulator& sim() { return *sim_; }

 private:
  sim::Task<void> run(Frame frame, std::function<void()> on_sender_free);
  /// Split-mode source half: window admission on the source LP, then
  /// src_transmit (which announces the destination half).
  sim::Task<void> run_split(Frame frame, std::function<void()> on_sender_free);
  /// Split-mode destination half: dst_receive, then accounting (batch_,
  /// stats_ and the latency samples are destination-LP-owned in split
  /// mode) and the window credit back to the source LP.
  sim::Task<void> dst_run(Frame frame, double t0, double window_wait, bool stalled);

  /// Scalar stats accumulated across a burst of in-flight frames and
  /// applied to stats_/metrics_ in one shot — per-frame delivery used
  /// to pay five counter/gauge updates each; a burst now pays them
  /// once. mutable: stats() flushes lazily from const context.
  struct StatsBatch {
    std::uint64_t frames = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t stalls = 0;
    double transit_s = 0.0;
    double window_wait_s = 0.0;
  };
  void flush_batch() const;

  sim::Simulator* sim_;
  sim::Event drained_;
  sim::Resource window_;
  LinkMetrics metrics_;
  mutable LinkStats stats_;
  mutable StatsBatch batch_;
  std::string type_;
  sim::Trace* flow_trace_ = nullptr;
  std::string flow_from_;
  std::string flow_to_;
  // --- split-mode state (enable_split) ---
  sim::Simulator* dst_sim_ = nullptr;
  Poster post_dst_;
  Poster post_src_;
  double credit_latency_s_ = 0.0;
  bool deferred_ = false;
  /// What publish_deferred() has already pushed into the registry.
  struct PublishedCursor {
    std::uint64_t frames = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t stalls = 0;
    double window_wait_s = 0.0;
  };
  mutable PublishedCursor published_;
  /// Latency samples awaiting publish_deferred() (deferred mode only —
  /// stats_.latency always observes every sample immediately).
  mutable std::vector<double> deferred_latency_;
};

class SenderDriver {
 public:
  /// `cpu` is the compute CPU marshal work is charged to; `producer_tag`
  /// identifies the producing RP (network source tag).
  SenderDriver(sim::Simulator& sim, DriverParams params, sim::Resource& cpu,
               std::unique_ptr<Link> link, std::uint64_t producer_tag);

  /// Appends one object to the stream; suspends for marshal cost and for
  /// buffer availability (this is where single vs. double buffering
  /// changes the timing).
  sim::Task<void> push(catalog::Object obj);

  /// Flushes the partial buffer, sends EOS, and waits until the link has
  /// delivered everything (so the RP may be torn down afterwards).
  sim::Task<void> finish();

  std::uint64_t bytes_sent() const { return cutter_.total_emitted_bytes(); }

  /// Time this sender spent waiting for a free send buffer — the
  /// per-RP stall gauge (nonzero = the stream is transmit-bound).
  double stall_seconds() const { return stall_seconds_; }

  /// Marshal CPU time charged by this sender (profiler input).
  double marshal_seconds() const { return marshal_seconds_; }

  /// The underlying connection (profiler reads its stats/type).
  const Link& link() const { return *link_; }

 private:
  /// Single drainer coroutine: emits frames in cut order (marshal on the
  /// CPU, then hand to the link), serializing pushes and linger flushes.
  /// Spawned lazily at the first push()/finish() — see ensure_drain().
  sim::Task<void> drain();
  void ensure_drain();
  void arm_linger();
  void arm_linger_fire();

  sim::Simulator* sim_;
  DriverParams params_;
  sim::Resource* cpu_;
  std::unique_ptr<Link> link_;
  std::uint64_t tag_;
  FrameCutter cutter_;
  sim::Resource slots_;  // send buffers: capacity 1 (single) or 2 (double)
  sim::Channel<Frame> outbox_;
  std::vector<Frame> cut_scratch_;  // reused across pushes (see push())
  std::uint64_t linger_generation_ = 0;
  bool drain_started_ = false;
  bool finishing_ = false;
  double stall_seconds_ = 0.0;
  double marshal_seconds_ = 0.0;
};

class ReceiverDriver {
 public:
  ReceiverDriver(sim::Simulator& sim, DriverParams params, sim::Resource& cpu);

  /// The inbox a Link delivers into.
  sim::Channel<Frame>& inbox() { return inbox_; }

  /// Next materialized object, or nullopt at end of stream. Charges
  /// de-marshal + allocation cost per received frame.
  sim::Task<std::optional<catalog::Object>> next();

  /// Batch pull: appends up to `max` materialized objects to `out` and
  /// returns how many were delivered (0 only at end of stream). The
  /// batch is *frame-granular*: it hands back everything already
  /// materialized from previously received frames, pulls further frames
  /// from the inbox only while it has nothing to deliver, and never
  /// takes a frame beyond the one that produced the batch — taking
  /// extra frames early would free inbox slots (and thus release sender
  /// backpressure) before the per-item path would, shifting the
  /// simulated timeline. Charge order is exactly the per-item order:
  /// demarshal(frame), then its objects, then — on the *next* call —
  /// demarshal of the following frame.
  sim::Task<std::size_t> next_batch(catalog::ItemBatch& out, std::size_t max);

  bool eos_seen() const { return eos_; }

  /// True once the stream has ended AND every materialized object has
  /// been handed out: the next pull would yield nothing.
  bool exhausted() const { return eos_ && ready_head_ == ready_.size(); }
  std::uint64_t bytes_received() const { return bytes_; }

  /// Time spent blocked on an empty inbox (queue-wait; profiler input).
  double wait_seconds() const { return wait_seconds_; }

  /// De-marshal + allocation CPU time charged by this receiver.
  double demarshal_seconds() const { return demarshal_seconds_; }

 private:
  sim::Simulator* sim_;
  DriverParams params_;
  sim::Resource* cpu_;
  sim::Channel<Frame> inbox_;
  // Materialized objects not yet handed to the operators. Vector + head
  // index instead of a deque: a frame's objects arrive as one bulk
  // move, and the storage resets (keeping capacity) whenever drained.
  std::vector<catalog::Object> ready_;
  std::size_t ready_head_ = 0;
  bool eos_ = false;
  std::uint64_t bytes_ = 0;
  double wait_seconds_ = 0.0;
  double demarshal_seconds_ = 0.0;
};

}  // namespace scsq::transport
