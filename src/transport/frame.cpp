#include "transport/frame.hpp"

#include <iterator>

namespace scsq::transport {

std::optional<Frame> FrameCutter::cut_partial() {
  SCSQ_CHECK(!finished_) << "cut_partial after finish";
  if (pending_bytes() == 0) return std::nullopt;
  return cut(pending_bytes());
}

Frame FrameCutter::finish() {
  SCSQ_CHECK(!finished_) << "double finish";
  finished_ = true;
  Frame f = cut(pushed_bytes_ - emitted_bytes_);
  f.eos = true;
  SCSQ_CHECK(head_ == pending_.size()) << "objects left behind at stream end";
  return f;
}

Frame FrameCutter::cut(std::uint64_t frame_bytes) {
  Frame f = pool_ ? pool_->acquire() : Frame{};
  f.bytes = frame_bytes;
  f.seq = next_seq_++;
  emitted_bytes_ += frame_bytes;
  // All objects whose final byte now falls inside an emitted frame move
  // to this frame in one bulk splice.
  std::size_t split = head_;
  while (split < pending_end_.size() && pending_end_[split] <= emitted_bytes_) ++split;
  if (split > head_) {
    f.objects.insert(f.objects.end(),
                     std::make_move_iterator(pending_.begin() + static_cast<std::ptrdiff_t>(head_)),
                     std::make_move_iterator(pending_.begin() + static_cast<std::ptrdiff_t>(split)));
    head_ = split;
    if (head_ == pending_.size()) {
      pending_.clear();
      pending_end_.clear();
      head_ = 0;
    }
  }
  return f;
}

}  // namespace scsq::transport
