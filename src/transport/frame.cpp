#include "transport/frame.hpp"

namespace scsq::transport {

std::vector<Frame> FrameCutter::push(catalog::Object obj) {
  SCSQ_CHECK(!finished_) << "push after finish";
  pushed_bytes_ += obj.marshaled_size();
  pending_.emplace_back(std::move(obj), pushed_bytes_);
  std::vector<Frame> out;
  while (pushed_bytes_ - emitted_bytes_ >= buffer_bytes_) {
    out.push_back(cut(buffer_bytes_));
  }
  return out;
}

std::optional<Frame> FrameCutter::cut_partial() {
  SCSQ_CHECK(!finished_) << "cut_partial after finish";
  if (pending_bytes() == 0) return std::nullopt;
  return cut(pending_bytes());
}

Frame FrameCutter::finish() {
  SCSQ_CHECK(!finished_) << "double finish";
  finished_ = true;
  Frame f = cut(pushed_bytes_ - emitted_bytes_);
  f.eos = true;
  SCSQ_CHECK(pending_.empty()) << "objects left behind at stream end";
  return f;
}

Frame FrameCutter::cut(std::uint64_t frame_bytes) {
  Frame f;
  f.bytes = frame_bytes;
  f.seq = next_seq_++;
  emitted_bytes_ += frame_bytes;
  while (!pending_.empty() && pending_.front().second <= emitted_bytes_) {
    f.objects.push_back(std::move(pending_.front().first));
    pending_.pop_front();
  }
  return f;
}

}  // namespace scsq::transport
