// Stream framing: cutting a continuous marshaled object stream into
// fixed-size send buffers.
//
// The paper's RP "marshals [objects] into a send buffer and transmits
// the send buffers when they are full" (§3.1) — objects larger than the
// buffer (a 3 MB array over 1000-byte buffers!) span many frames, and a
// frame may complete several small objects. FrameCutter tracks the byte
// offsets: each emitted Frame carries exactly `buffer_bytes` of stream
// payload plus the objects whose final byte falls inside it (those are
// the objects the receiver can materialize after this frame arrives).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "catalog/object.hpp"

namespace scsq::transport {

struct Frame {
  std::uint64_t bytes = 0;  // marshaled payload bytes carried by this buffer
  std::vector<catalog::Object> objects;  // objects completed by this frame
  bool eos = false;         // final frame of the stream
  std::uint64_t producer = 0;  // source RP id (network source tag)
  std::uint64_t seq = 0;       // frame sequence number within the stream
};

class FrameCutter {
 public:
  explicit FrameCutter(std::uint64_t buffer_bytes) : buffer_bytes_(buffer_bytes) {
    SCSQ_CHECK(buffer_bytes_ >= 1) << "buffer size must be >= 1 byte";
  }

  /// Adds an object to the stream; returns the frames that became full.
  std::vector<Frame> push(catalog::Object obj);

  /// Cuts the currently pending partial buffer into a frame (non-EOS).
  /// Returns nullopt when nothing is pending. Used by the sender
  /// driver's linger flush so sparse result streams (e.g. one count per
  /// window) are delivered promptly instead of waiting for a full
  /// buffer.
  std::optional<Frame> cut_partial();

  /// Ends the stream: returns the final frame (partial buffer or empty)
  /// with eos set. Must be called exactly once, after the last push().
  Frame finish();

  /// Bytes pushed but not yet cut into frames.
  std::uint64_t pending_bytes() const { return pushed_bytes_ - emitted_bytes_; }

  std::uint64_t total_pushed_bytes() const { return pushed_bytes_; }
  std::uint64_t total_emitted_bytes() const { return emitted_bytes_; }

 private:
  Frame cut(std::uint64_t frame_bytes);

  std::uint64_t buffer_bytes_;
  std::uint64_t pushed_bytes_ = 0;   // total marshaled bytes pushed
  std::uint64_t emitted_bytes_ = 0;  // total bytes already cut into frames
  std::uint64_t next_seq_ = 0;
  bool finished_ = false;
  // Objects whose final byte has not yet been emitted, with the stream
  // offset just past their encoding.
  std::deque<std::pair<catalog::Object, std::uint64_t>> pending_;
};

}  // namespace scsq::transport
