// Stream framing: cutting a continuous marshaled object stream into
// fixed-size send buffers.
//
// The paper's RP "marshals [objects] into a send buffer and transmits
// the send buffers when they are full" (§3.1) — objects larger than the
// buffer (a 3 MB array over 1000-byte buffers!) span many frames, and a
// frame may complete several small objects. FrameCutter tracks the byte
// offsets: each emitted Frame carries exactly `buffer_bytes` of stream
// payload plus the objects whose final byte falls inside it (those are
// the objects the receiver can materialize after this frame arrives).
//
// Frames are pooled: a FramePool free-list hands out recycled Frames
// whose `objects` vectors keep their capacity, so the steady-state
// cut → transmit → deliver → materialize cycle performs no heap
// allocation at all for SynthArray/scalar streams (a 3 MB array over
// 1 KB buffers is ~3000 frames per object — per-frame mallocs were the
// dominant host-side cost of the Fig. 6 sweeps). The pool is per
// simulated machine and single-threaded, like the simulator it serves.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "catalog/object.hpp"

namespace scsq::transport {

class FramePool;

struct Frame {
  std::uint64_t bytes = 0;  // marshaled payload bytes carried by this buffer
  std::vector<catalog::Object> objects;  // objects completed by this frame
  bool eos = false;         // final frame of the stream
  std::uint64_t producer = 0;  // source RP id (network source tag)
  std::uint64_t seq = 0;       // frame sequence number within the stream
  FramePool* pool = nullptr;   // origin pool; the consumer recycles into it
};

/// Free-list slab of Frames. acquire() pops a recycled Frame (its
/// objects vector retains capacity) or default-constructs one; the
/// final consumer calls recycle() once the frame's objects have been
/// moved out. Frames that never come back (e.g. dropped on a closed
/// channel at teardown) are simply destroyed — the pool does not track
/// outstanding frames.
///
/// Sharded (multi-LP) operation: each LP owns one pool and only that
/// LP's thread ever calls acquire() on it, but a frame sent across LPs
/// is recycled by its *consumer's* thread into the producer's pool. In
/// shared mode (set_shared) recycle() therefore lands in a mutex-guarded
/// return mailbox instead of the free list; the owning thread drains the
/// mailbox into the free list at its next acquire() miss. acquired_ and
/// reused_ stay owner-thread-only; recycled_ moves under the mailbox
/// mutex so `Σ shard counters` stays exact.
class FramePool {
 public:
  Frame acquire() {
    ++acquired_;
    if (free_.empty() && shared_) drain_returns();
    if (free_.empty()) {
      Frame f;
      f.pool = this;
      return f;
    }
    ++reused_;
    Frame f = std::move(free_.back());
    free_.pop_back();
    return f;
  }

  void recycle(Frame&& f) {
    f.bytes = 0;
    f.objects.clear();  // keeps capacity — the point of the pool
    f.eos = false;
    f.producer = 0;
    f.seq = 0;
    f.pool = this;
    if (shared_) {
      std::lock_guard<std::mutex> lock(returns_mu_);
      ++recycled_;
      returns_.push_back(std::move(f));
      return;
    }
    ++recycled_;
    free_.push_back(std::move(f));
  }

  /// Arms the cross-thread return mailbox (multi-LP machines). Call
  /// before any concurrent use; single-threaded pools skip the lock
  /// entirely.
  void set_shared(bool shared) { shared_ = shared; }
  bool shared() const { return shared_; }

  /// Total acquire() calls; `reused()` of them were served from the
  /// free list. acquired() - reused() = frames ever default-constructed
  /// — flat across steady-state streaming (the zero-churn invariant the
  /// obs registry exposes as transport.frame_pool.*).
  std::uint64_t acquired() const { return acquired_; }
  std::uint64_t reused() const { return reused_; }
  std::uint64_t recycled() const {
    if (!shared_) return recycled_;
    std::lock_guard<std::mutex> lock(returns_mu_);
    return recycled_;
  }
  std::uint64_t free_frames() const {
    if (!shared_) return free_.size();
    std::lock_guard<std::mutex> lock(returns_mu_);
    return free_.size() + returns_.size();
  }

 private:
  void drain_returns() {
    std::lock_guard<std::mutex> lock(returns_mu_);
    for (auto& f : returns_) free_.push_back(std::move(f));
    returns_.clear();
  }

  std::vector<Frame> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t recycled_ = 0;
  bool shared_ = false;
  mutable std::mutex returns_mu_;
  std::vector<Frame> returns_;  // cross-thread recycle mailbox
};

class FrameCutter {
 public:
  /// `pool` (optional) supplies recycled Frames for every cut.
  explicit FrameCutter(std::uint64_t buffer_bytes, FramePool* pool = nullptr)
      : buffer_bytes_(buffer_bytes), pool_(pool) {
    SCSQ_CHECK(buffer_bytes_ >= 1) << "buffer size must be >= 1 byte";
    // One up-front reservation instead of a ladder of small regrows as
    // the first buffer's worth of objects accumulates.
    pending_.reserve(16);
    pending_end_.reserve(16);
  }

  /// Adds an object to the stream; appends the frames that became full
  /// to `out` (caller-owned scratch — reuse it across pushes so the
  /// common no-cut case does no work at all). Inline: the no-cut path
  /// is three appends and a compare, executed once per stream object.
  void push(catalog::Object obj, std::vector<Frame>& out) {
    SCSQ_CHECK(!finished_) << "push after finish";
    pushed_bytes_ += obj.marshaled_size();
    pending_.push_back(std::move(obj));
    pending_end_.push_back(pushed_bytes_);
    // Objects spanning many buffers (a 3 MB SynthArray over 1 KB
    // frames) loop here: every full frame before the one carrying the
    // object's final byte is pure byte accounting — cut() finds no
    // completed objects and ships an empty (pooled) objects vector.
    while (pushed_bytes_ - emitted_bytes_ >= buffer_bytes_) {
      out.push_back(cut(buffer_bytes_));
    }
  }

  /// Cuts the currently pending partial buffer into a frame (non-EOS).
  /// Returns nullopt when nothing is pending. Used by the sender
  /// driver's linger flush so sparse result streams (e.g. one count per
  /// window) are delivered promptly instead of waiting for a full
  /// buffer.
  std::optional<Frame> cut_partial();

  /// Ends the stream: returns the final frame (partial buffer or empty)
  /// with eos set. Must be called exactly once, after the last push().
  Frame finish();

  /// Bytes pushed but not yet cut into frames.
  std::uint64_t pending_bytes() const { return pushed_bytes_ - emitted_bytes_; }

  std::uint64_t total_pushed_bytes() const { return pushed_bytes_; }
  std::uint64_t total_emitted_bytes() const { return emitted_bytes_; }

 private:
  Frame cut(std::uint64_t frame_bytes);

  std::uint64_t buffer_bytes_;
  FramePool* pool_;
  std::uint64_t pushed_bytes_ = 0;   // total marshaled bytes pushed
  std::uint64_t emitted_bytes_ = 0;  // total bytes already cut into frames
  std::uint64_t next_seq_ = 0;
  bool finished_ = false;
  // Objects whose final byte has not yet been emitted (parallel arrays:
  // scanning end offsets touches only the u64 vector, and completed
  // objects bulk-move out of the contiguous object vector). head_
  // indexes the first live entry; both vectors reset when drained, so
  // their capacity is reused for the whole stream.
  std::vector<catalog::Object> pending_;
  std::vector<std::uint64_t> pending_end_;  // stream offset past each encoding
  std::size_t head_ = 0;
};

}  // namespace scsq::transport
