#include "transport/links.hpp"

namespace scsq::transport {

// ---------------------------------------------------------------------
// MpiLink
// ---------------------------------------------------------------------

MpiLink::MpiLink(hw::Machine& machine, int src_rank, int dst_rank,
                 sim::Channel<Frame>& inbox, std::uint64_t source_tag)
    : Link(machine.sim_of(hw::Location{hw::kBlueGene, src_rank})),
      machine_(&machine),
      src_(src_rank),
      dst_(dst_rank),
      inbox_(&inbox),
      tag_(source_tag) {
  machine_->bg().torus().register_inbound_stream(dst_);
  registered_ = true;
}

MpiLink::~MpiLink() { unregister(); }

void MpiLink::stream_ended() { unregister(); }

void MpiLink::unregister() {
  if (!registered_) return;
  registered_ = false;
  machine_->bg().torus().unregister_inbound_stream(dst_);
}

std::uint64_t MpiLink::wire_bytes_for(std::uint64_t payload_bytes) const {
  const auto& torus = machine_->bg().torus();
  return static_cast<std::uint64_t>(torus.packets_for(payload_bytes)) *
         torus.params().packet_bytes;
}

sim::Task<void> MpiLink::transmit_one(Frame frame, std::function<void()> on_sender_free) {
  sim::Event freed(sim());
  sim::Event delivered(sim());
  machine_->bg().torus().transmit_async(src_, dst_, frame.bytes, tag_, &freed, &delivered);
  co_await freed.wait();
  if (on_sender_free) on_sender_free();
  co_await delivered.wait();
  co_await inbox_->send(std::move(frame));
}

// ---------------------------------------------------------------------
// TcpToBgLink
// ---------------------------------------------------------------------

TcpToBgLink::TcpToBgLink(hw::Machine& machine, const hw::Location& src, int dst_rank,
                         sim::Channel<Frame>& inbox)
    : Link(machine.sim_of(src)),
      machine_(&machine),
      dst_rank_(dst_rank),
      pset_(machine.bg().pset_of(dst_rank)),
      src_host_(machine.fabric_host_of(src)),
      io_host_(machine.bg().io_fabric_host(pset_)),
      inbox_(&inbox) {
  flow_ = machine.fabric().open_flow(src_host_, io_host_);
  flow_open_ = true;
  machine.register_bg_inbound(dst_rank_);
}

TcpToBgLink::~TcpToBgLink() { close_flow(); }

void TcpToBgLink::stream_ended() { close_flow(); }

void TcpToBgLink::close_flow() {
  if (!flow_open_) return;
  flow_open_ = false;
  machine_->fabric().close_flow(flow_);
  machine_->unregister_bg_inbound(dst_rank_);
}

sim::Task<void> TcpToBgLink::transmit_one(Frame frame,
                                          std::function<void()> on_sender_free) {
  co_await machine_->fabric().transfer(flow_, frame.bytes);
  if (on_sender_free) on_sender_free();
  // Coordination factors: on a classic (single-Simulator) machine these
  // are recomputed per message, walking the live flow table under its
  // mutex so concurrently opening/closing streams are reflected (Fig. 15
  // mechanisms). On an LpDomain machine the engine freezes them to their
  // post-wiring values before the drive (hw::Machine::
  // freeze_fabric_factors) — a per-run snapshot read lock-free from any
  // LP, which also drops the two mutexed flow-table walks from the
  // per-frame hot path (see DESIGN.md §5.9).
  co_await machine_->bg().tree().forward_inbound(pset_, dst_rank_, frame.bytes,
                                                 machine_->io_coordination_factor(),
                                                 machine_->compute_mux_factor(dst_rank_));
  co_await inbox_->send(std::move(frame));
}

sim::Task<void> TcpToBgLink::src_transmit(Frame frame, std::function<void()> on_sender_free,
                                          double t0, double window_wait, bool stalled) {
  auto& fabric = machine_->fabric();
  const double wire = fabric.wire_time(frame.bytes);
  const double tx_time = fabric.params().per_message_overhead_s +
                         wire * machine_->sender_imbalance_factor(src_host_);
  // Claim + announce + use share this event: the claimed completion time
  // is bitwise-identical to the clock after use(), and it is at least
  // one per-message overhead (= the domain lookahead) in the future.
  auto& tx = fabric.tx_nic(src_host_);
  const double t1 = tx.claim(tx_time);
  announce_delivery(t1, std::move(frame), t0, window_wait, stalled);
  co_await tx.use(tx_time);
  if (on_sender_free) on_sender_free();
}

sim::Task<void> TcpToBgLink::dst_receive(Frame frame) {
  co_await machine_->fabric().rx_nic(io_host_).use(
      machine_->fabric().wire_time(frame.bytes));
  co_await machine_->bg().tree().forward_inbound(pset_, dst_rank_, frame.bytes,
                                                 machine_->io_coordination_factor(),
                                                 machine_->compute_mux_factor(dst_rank_));
  co_await inbox_->send(std::move(frame));
}

// ---------------------------------------------------------------------
// TcpFromBgLink
// ---------------------------------------------------------------------

TcpFromBgLink::TcpFromBgLink(hw::Machine& machine, int src_rank, const hw::Location& dst,
                             sim::Channel<Frame>& inbox)
    : Link(machine.sim_of(hw::Location{hw::kBlueGene, src_rank})),
      machine_(&machine),
      src_rank_(src_rank),
      pset_(machine.bg().pset_of(src_rank)),
      io_host_(machine.bg().io_fabric_host(pset_)),
      dst_host_(machine.fabric_host_of(dst)),
      inbox_(&inbox) {
  flow_ = machine.fabric().open_flow(io_host_, dst_host_);
  flow_open_ = true;
}

TcpFromBgLink::~TcpFromBgLink() { close_flow(); }

void TcpFromBgLink::stream_ended() { close_flow(); }

void TcpFromBgLink::close_flow() {
  if (!flow_open_) return;
  flow_open_ = false;
  machine_->fabric().close_flow(flow_);
}

sim::Task<void> TcpFromBgLink::transmit_one(Frame frame,
                                            std::function<void()> on_sender_free) {
  co_await machine_->bg().tree().forward_outbound(pset_, src_rank_, frame.bytes,
                                                  /*io_factor=*/1.0);
  if (on_sender_free) on_sender_free();
  co_await machine_->fabric().transfer(flow_, frame.bytes);
  co_await inbox_->send(std::move(frame));
}

sim::Task<void> TcpFromBgLink::src_transmit(Frame frame,
                                            std::function<void()> on_sender_free,
                                            double t0, double window_wait, bool stalled) {
  // The whole outbound tree path (compute egress, tree link, I/O CPU)
  // and the I/O node's GigE NIC all belong to the source pset's LP, so
  // the split boundary sits between the I/O node's transmit and the
  // destination host's receive.
  co_await machine_->bg().tree().forward_outbound(pset_, src_rank_, frame.bytes,
                                                  /*io_factor=*/1.0);
  if (on_sender_free) on_sender_free();
  auto& fabric = machine_->fabric();
  const double wire = fabric.wire_time(frame.bytes);
  const double tx_time = fabric.params().per_message_overhead_s +
                         wire * machine_->sender_imbalance_factor(io_host_);
  auto& tx = fabric.tx_nic(io_host_);
  const double t1 = tx.claim(tx_time);
  announce_delivery(t1, std::move(frame), t0, window_wait, stalled);
  co_await tx.use(tx_time);
}

sim::Task<void> TcpFromBgLink::dst_receive(Frame frame) {
  co_await machine_->fabric().rx_nic(dst_host_).use(
      machine_->fabric().wire_time(frame.bytes));
  co_await inbox_->send(std::move(frame));
}

// ---------------------------------------------------------------------
// TcpPlainLink
// ---------------------------------------------------------------------

TcpPlainLink::TcpPlainLink(hw::Machine& machine, const hw::Location& src,
                           const hw::Location& dst, sim::Channel<Frame>& inbox)
    : Link(machine.sim_of(src)),
      machine_(&machine),
      src_host_(machine.fabric_host_of(src)),
      dst_host_(machine.fabric_host_of(dst)),
      inbox_(&inbox) {
  flow_ = machine.fabric().open_flow(src_host_, dst_host_);
  flow_open_ = true;
}

TcpPlainLink::~TcpPlainLink() { close_flow(); }

void TcpPlainLink::stream_ended() { close_flow(); }

void TcpPlainLink::close_flow() {
  if (!flow_open_) return;
  flow_open_ = false;
  machine_->fabric().close_flow(flow_);
}

sim::Task<void> TcpPlainLink::transmit_one(Frame frame,
                                           std::function<void()> on_sender_free) {
  co_await machine_->fabric().transfer(flow_, frame.bytes);
  if (on_sender_free) on_sender_free();
  co_await inbox_->send(std::move(frame));
}

sim::Task<void> TcpPlainLink::src_transmit(Frame frame,
                                           std::function<void()> on_sender_free,
                                           double t0, double window_wait, bool stalled) {
  auto& fabric = machine_->fabric();
  const double wire = fabric.wire_time(frame.bytes);
  const double tx_time = fabric.params().per_message_overhead_s +
                         wire * machine_->sender_imbalance_factor(src_host_);
  auto& tx = fabric.tx_nic(src_host_);
  const double t1 = tx.claim(tx_time);
  announce_delivery(t1, std::move(frame), t0, window_wait, stalled);
  co_await tx.use(tx_time);
  if (on_sender_free) on_sender_free();
}

sim::Task<void> TcpPlainLink::dst_receive(Frame frame) {
  co_await machine_->fabric().rx_nic(dst_host_).use(
      machine_->fabric().wire_time(frame.bytes));
  co_await inbox_->send(std::move(frame));
}

// ---------------------------------------------------------------------
// LocalLink
// ---------------------------------------------------------------------

namespace {
// In-memory hand-off between RPs on the same node: a fixed small latency
// standing in for a pipe/shared-buffer copy.
constexpr double kLocalHandoffSeconds = 2.0e-6;
}  // namespace

LocalLink::LocalLink(hw::Machine& machine, const hw::Location& loc,
                     sim::Channel<Frame>& inbox)
    : Link(machine.sim_of(loc)), inbox_(&inbox) {}

sim::Task<void> LocalLink::transmit_one(Frame frame, std::function<void()> on_sender_free) {
  co_await sim().delay(kLocalHandoffSeconds);
  if (on_sender_free) on_sender_free();
  co_await inbox_->send(std::move(frame));
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

namespace {

// Resolves this link's registry handles once, labeled by protocol and
// endpoint locations; the per-frame path in Link::run is then plain adds.
void attach_metrics(Link& link, hw::Machine& machine, const char* type,
                    const hw::Location& src, const hw::Location& dst) {
  auto& registry = machine.metrics();
  const obs::Labels labels{
      {"type", type}, {"src", src.to_string()}, {"dst", dst.to_string()}};
  LinkMetrics m;
  m.frames = &registry.counter("transport.link.frames", labels);
  m.bytes = &registry.counter("transport.link.bytes", labels);
  m.stalls = &registry.counter("transport.link.stalls", labels);
  m.stall_seconds = &registry.gauge("transport.link.stall_s", labels);
  // 1 µs … ~4 s in factor-4 steps: spans a local hand-off up to a badly
  // backpressured cross-cluster frame.
  m.frame_latency = &registry.histogram("transport.link.frame_latency_s", labels,
                                        obs::Histogram::exp_buckets(1e-6, 4.0, 12));
  link.set_metrics(m);
}

}  // namespace

std::unique_ptr<Link> make_link(hw::Machine& machine, const hw::Location& src,
                                const hw::Location& dst, sim::Channel<Frame>& inbox,
                                std::uint64_t source_tag) {
  const bool src_bg = src.cluster == hw::kBlueGene;
  const bool dst_bg = dst.cluster == hw::kBlueGene;
  std::unique_ptr<Link> link;
  const char* type = nullptr;
  bool tcp_split = false;
  if (src == dst) {
    link = std::make_unique<LocalLink>(machine, src, inbox);
    type = "local";
  } else if (src_bg && dst_bg) {
    link = std::make_unique<MpiLink>(machine, src.node, dst.node, inbox, source_tag);
    type = "mpi";
  } else if (!src_bg && dst_bg) {
    link = std::make_unique<TcpToBgLink>(machine, src, dst.node, inbox);
    type = "tcp_to_bg";
    tcp_split = true;
  } else if (src_bg && !dst_bg) {
    link = std::make_unique<TcpFromBgLink>(machine, src.node, dst, inbox);
    type = "tcp_from_bg";
    tcp_split = true;
  } else {
    link = std::make_unique<TcpPlainLink>(machine, src, dst, inbox);
    type = "tcp";
    tcp_split = true;
  }
  if (tcp_split && machine.domain() != nullptr) {
    // Split at *every* LP count (including 1): the pipeline shape — and
    // with it every simulated timestamp — must not depend on
    // SCSQ_SIM_LPS. The credit latency models the flow-control
    // round-trip and doubles as the reverse-direction lookahead.
    link->enable_split(machine.sim_of(dst), machine.make_poster(src, dst),
                       machine.make_poster(dst, src),
                       machine.fabric().params().min_link_latency(),
                       /*deferred_metrics=*/machine.parallel_drive());
  }
  attach_metrics(*link, machine, type, src, dst);
  link->set_type(type);
  return link;
}

}  // namespace scsq::transport
