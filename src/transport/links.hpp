// Concrete stream links over the simulated hardware.
//
// Protocol selection follows the paper exactly: "MPI is always used
// inside the BlueGene as that is the only allowed protocol, while TCP is
// always used when communicating between clusters" (§2.3). BlueGene
// compute nodes cannot open sockets, so TCP to/from a compute node goes
// through its pset's I/O node and the tree network (§2.1).
//
// make_link() picks the right implementation from the endpoint
// locations:
//   bg -> bg               MpiLink          (torus)
//   fe/be -> bg            TcpToBgLink      (NICs -> I/O node -> tree)
//   bg -> fe/be            TcpFromBgLink    (tree -> I/O node -> NICs)
//   fe/be -> fe/be         TcpPlainLink     (NICs)
//   same node              LocalLink        (in-memory hand-off)
#pragma once

#include <memory>

#include "hw/machine.hpp"
#include "transport/driver.hpp"

namespace scsq::transport {

class MpiLink final : public Link {
 public:
  MpiLink(hw::Machine& machine, int src_rank, int dst_rank, sim::Channel<Frame>& inbox,
          std::uint64_t source_tag);
  ~MpiLink() override;

 protected:
  sim::Task<void> transmit_one(Frame frame, std::function<void()> on_sender_free) override;
  void stream_ended() override;
  /// Rounds up to full torus packets: a partially filled final packet
  /// still burns a full 1KB slot (the profiler's packetization waste).
  std::uint64_t wire_bytes_for(std::uint64_t payload_bytes) const override;

 private:
  void unregister();

  hw::Machine* machine_;
  int src_;
  int dst_;
  sim::Channel<Frame>* inbox_;
  std::uint64_t tag_;
  bool registered_ = false;
};

class TcpToBgLink final : public Link {
 public:
  TcpToBgLink(hw::Machine& machine, const hw::Location& src, int dst_rank,
              sim::Channel<Frame>& inbox);
  ~TcpToBgLink() override;

 protected:
  sim::Task<void> transmit_one(Frame frame, std::function<void()> on_sender_free) override;
  sim::Task<void> src_transmit(Frame frame, std::function<void()> on_sender_free,
                               double t0, double window_wait, bool stalled) override;
  sim::Task<void> dst_receive(Frame frame) override;
  void stream_ended() override;

 private:
  void close_flow();

  hw::Machine* machine_;
  int dst_rank_;
  int pset_;
  int src_host_;
  int io_host_;
  sim::Channel<Frame>* inbox_;
  net::FlowId flow_ = 0;
  bool flow_open_ = false;
};

class TcpFromBgLink final : public Link {
 public:
  TcpFromBgLink(hw::Machine& machine, int src_rank, const hw::Location& dst,
                sim::Channel<Frame>& inbox);
  ~TcpFromBgLink() override;

 protected:
  sim::Task<void> transmit_one(Frame frame, std::function<void()> on_sender_free) override;
  sim::Task<void> src_transmit(Frame frame, std::function<void()> on_sender_free,
                               double t0, double window_wait, bool stalled) override;
  sim::Task<void> dst_receive(Frame frame) override;
  void stream_ended() override;

 private:
  void close_flow();

  hw::Machine* machine_;
  int src_rank_;
  int pset_;
  int io_host_;
  int dst_host_;
  sim::Channel<Frame>* inbox_;
  net::FlowId flow_ = 0;
  bool flow_open_ = false;
};

class TcpPlainLink final : public Link {
 public:
  TcpPlainLink(hw::Machine& machine, const hw::Location& src, const hw::Location& dst,
               sim::Channel<Frame>& inbox);
  ~TcpPlainLink() override;

 protected:
  sim::Task<void> transmit_one(Frame frame, std::function<void()> on_sender_free) override;
  sim::Task<void> src_transmit(Frame frame, std::function<void()> on_sender_free,
                               double t0, double window_wait, bool stalled) override;
  sim::Task<void> dst_receive(Frame frame) override;
  void stream_ended() override;

 private:
  void close_flow();

  hw::Machine* machine_;
  int src_host_;
  int dst_host_;
  sim::Channel<Frame>* inbox_;
  net::FlowId flow_ = 0;
  bool flow_open_ = false;
};

class LocalLink final : public Link {
 public:
  LocalLink(hw::Machine& machine, const hw::Location& loc, sim::Channel<Frame>& inbox);

 protected:
  sim::Task<void> transmit_one(Frame frame, std::function<void()> on_sender_free) override;

 private:
  sim::Channel<Frame>* inbox_;
};

/// Builds the appropriate link between two RP locations. `source_tag`
/// must uniquely identify the producing RP. Every link lives on the LP
/// Simulator owning its *source* location. On a machine with an LpDomain
/// the TCP links additionally run in split mode (Link::enable_split) at
/// every LP count — the same pipeline shape at SCSQ_SIM_LPS=1 and 8 is
/// what keeps the simulated timeline LP-count-invariant. MPI and local
/// links never cross LPs (the engine rejects cross-pset MPI streams on a
/// parallel drive) and keep the sequential path.
std::unique_ptr<Link> make_link(hw::Machine& machine, const hw::Location& src,
                                const hw::Location& dst, sim::Channel<Frame>& inbox,
                                std::uint64_t source_tag);

}  // namespace scsq::transport
