#include "transport/marshal.hpp"

#include <bit>
#include <cstring>

namespace scsq::transport {

using catalog::Kind;
using catalog::Object;

namespace {

// The wire format is little-endian; on LE hosts every word is a raw
// memcpy, on BE hosts the bytes are swizzled through a shift loop.
constexpr bool kLittle = std::endian::native == std::endian::little;

inline void store_u64(std::uint8_t* p, std::uint64_t v) {
  if constexpr (kLittle) {
    std::memcpy(p, &v, 8);
  } else {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  if constexpr (kLittle) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
  }
}

}  // namespace

std::uint64_t MarshalWriter::physical_size(const Object& obj) {
  constexpr std::uint64_t kTag = 1;
  switch (obj.kind()) {
    case Kind::kNull: return kTag;
    case Kind::kInt: return kTag + 8;
    case Kind::kReal: return kTag + 8;
    case Kind::kBool: return kTag + 1;
    case Kind::kStr: return kTag + 8 + obj.as_str().size();
    case Kind::kBag: {
      std::uint64_t total = kTag + 8;
      for (const auto& o : obj.as_bag()) total += physical_size(o);
      return total;
    }
    case Kind::kDArray:
      return kTag + 8 + 8 * static_cast<std::uint64_t>(obj.as_darray().size());
    case Kind::kCArray:
      return kTag + 8 + 16 * static_cast<std::uint64_t>(obj.as_carray().size());
    case Kind::kSynth: return kTag + 16;  // descriptor only; payload is nominal
    case Kind::kSp: return kTag + 8 + 8 + obj.as_sp().cluster.size();
  }
  SCSQ_CHECK(false) << "unreachable";
  return 0;
}

void MarshalWriter::write(const Object& obj) {
  const std::size_t base = out_->size();
  out_->resize(base + static_cast<std::size_t>(physical_size(obj)));
  p_ = out_->data() + base;
  emit(obj);
}

void MarshalWriter::emit(const Object& obj) {
  // write() sized the buffer exactly; p_ advances through pre-committed
  // bytes with no per-word size checks.
  *p_++ = static_cast<std::uint8_t>(obj.kind());
  switch (obj.kind()) {
    case Kind::kNull:
      break;
    case Kind::kInt:
      store_u64(p_, static_cast<std::uint64_t>(obj.as_int()));
      p_ += 8;
      break;
    case Kind::kReal: {
      std::uint64_t bits;
      double v = obj.as_real();
      std::memcpy(&bits, &v, 8);
      store_u64(p_, bits);
      p_ += 8;
      break;
    }
    case Kind::kBool:
      *p_++ = obj.as_bool() ? 1 : 0;
      break;
    case Kind::kStr: {
      const auto& s = obj.as_str();
      store_u64(p_, s.size());
      std::memcpy(p_ + 8, s.data(), s.size());
      p_ += 8 + s.size();
      break;
    }
    case Kind::kBag: {
      const auto& bag = obj.as_bag();
      store_u64(p_, bag.size());
      p_ += 8;
      for (const auto& o : bag) emit(o);
      break;
    }
    case Kind::kDArray: {
      const auto& a = obj.as_darray();
      store_u64(p_, a.size());
      if constexpr (kLittle) {
        std::memcpy(p_ + 8, a.data(), 8 * a.size());
      } else {
        for (std::size_t i = 0; i < a.size(); ++i) {
          std::uint64_t bits;
          std::memcpy(&bits, &a[i], 8);
          store_u64(p_ + 8 + 8 * i, bits);
        }
      }
      p_ += 8 + 8 * a.size();
      break;
    }
    case Kind::kCArray: {
      // std::complex<double> is array-oriented: {real, imag} contiguous —
      // exactly the wire layout, so the whole array is one bulk copy.
      const auto& a = obj.as_carray();
      store_u64(p_, a.size());
      if constexpr (kLittle) {
        std::memcpy(p_ + 8, a.data(), 16 * a.size());
      } else {
        for (std::size_t i = 0; i < a.size(); ++i) {
          std::uint64_t re, im;
          double rev = a[i].real(), imv = a[i].imag();
          std::memcpy(&re, &rev, 8);
          std::memcpy(&im, &imv, 8);
          store_u64(p_ + 8 + 16 * i, re);
          store_u64(p_ + 8 + 16 * i + 8, im);
        }
      }
      p_ += 8 + 16 * a.size();
      break;
    }
    case Kind::kSynth: {
      const auto& sa = obj.as_synth();
      store_u64(p_, sa.bytes);
      store_u64(p_ + 8, sa.seq);
      p_ += 16;
      break;
    }
    case Kind::kSp: {
      const auto sp = obj.as_sp();
      store_u64(p_, sp.id);
      store_u64(p_ + 8, sp.cluster.size());
      std::memcpy(p_ + 16, sp.cluster.data(), sp.cluster.size());
      p_ += 16 + sp.cluster.size();
      break;
    }
  }
}

std::uint8_t MarshalReader::get_u8() {
  SCSQ_CHECK(cur_ < end_) << "truncated marshal data";
  return *cur_++;
}

const std::uint8_t* MarshalReader::take(std::size_t n) {
  SCSQ_CHECK(n <= static_cast<std::size_t>(end_ - cur_)) << "truncated marshal data";
  const std::uint8_t* p = cur_;
  cur_ += n;
  return p;
}

std::uint64_t MarshalReader::get_u64() { return load_u64(take(8)); }

double MarshalReader::get_f64() {
  std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Object MarshalReader::read() {
  const auto kind = static_cast<Kind>(get_u8());
  switch (kind) {
    case Kind::kNull:
      return Object{};
    case Kind::kInt:
      return Object{static_cast<std::int64_t>(get_u64())};
    case Kind::kReal:
      return Object{get_f64()};
    case Kind::kBool:
      return Object{get_u8() != 0};
    case Kind::kStr: {
      auto len = get_u64();
      const auto* p = take(static_cast<std::size_t>(len));
      return Object{std::string(reinterpret_cast<const char*>(p),
                                static_cast<std::size_t>(len))};
    }
    case Kind::kBag: {
      auto count = get_u64();
      catalog::Bag bag;
      bag.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) bag.push_back(read());
      return Object{std::move(bag)};
    }
    case Kind::kDArray: {
      auto count = get_u64();
      const auto* p = take(8 * static_cast<std::size_t>(count));
      std::vector<double> a(static_cast<std::size_t>(count));
      if constexpr (kLittle) {
        std::memcpy(a.data(), p, 8 * a.size());
      } else {
        for (std::size_t i = 0; i < a.size(); ++i) {
          std::uint64_t bits = load_u64(p + 8 * i);
          std::memcpy(&a[i], &bits, 8);
        }
      }
      return Object{std::move(a)};
    }
    case Kind::kCArray: {
      auto count = get_u64();
      const auto* p = take(16 * static_cast<std::size_t>(count));
      std::vector<std::complex<double>> a(static_cast<std::size_t>(count));
      if constexpr (kLittle) {
        std::memcpy(a.data(), p, 16 * a.size());
      } else {
        for (std::size_t i = 0; i < a.size(); ++i) {
          std::uint64_t re = load_u64(p + 16 * i);
          std::uint64_t im = load_u64(p + 16 * i + 8);
          double rev, imv;
          std::memcpy(&rev, &re, 8);
          std::memcpy(&imv, &im, 8);
          a[i] = {rev, imv};
        }
      }
      return Object{std::move(a)};
    }
    case Kind::kSynth: {
      catalog::SynthArray sa;
      sa.bytes = get_u64();
      sa.seq = get_u64();
      return Object{sa};
    }
    case Kind::kSp: {
      catalog::SpHandle sp;
      sp.id = get_u64();
      auto len = get_u64();
      const auto* p = take(static_cast<std::size_t>(len));
      sp.cluster.assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(len));
      return Object{std::move(sp)};
    }
  }
  SCSQ_CHECK(false) << "unknown kind tag " << static_cast<int>(kind);
  return Object{};
}

void MarshalReader::read_into(Object& out) {
  const auto kind = static_cast<Kind>(get_u8());
  switch (kind) {
    case Kind::kStr: {
      auto len = get_u64();
      const auto* p = take(static_cast<std::size_t>(len));
      if (out.kind() == Kind::kStr) {
        out.as_str().assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(len));
      } else {
        out = Object{std::string(reinterpret_cast<const char*>(p),
                                 static_cast<std::size_t>(len))};
      }
      return;
    }
    case Kind::kBag: {
      auto count = get_u64();
      if (out.kind() != Kind::kBag) out = Object{catalog::Bag{}};
      auto& bag = out.as_bag();
      if (bag.size() > count) bag.resize(static_cast<std::size_t>(count));
      bag.reserve(static_cast<std::size_t>(count));
      std::size_t i = 0;
      for (; i < bag.size(); ++i) read_into(bag[i]);
      for (; i < count; ++i) {
        bag.emplace_back();
        read_into(bag.back());
      }
      return;
    }
    case Kind::kDArray: {
      auto count = get_u64();
      const auto* p = take(8 * static_cast<std::size_t>(count));
      if (out.kind() != Kind::kDArray) out = Object{std::vector<double>{}};
      auto& a = out.as_darray();
      a.resize(static_cast<std::size_t>(count));
      if constexpr (kLittle) {
        std::memcpy(a.data(), p, 8 * a.size());
      } else {
        for (std::size_t j = 0; j < a.size(); ++j) {
          std::uint64_t bits = load_u64(p + 8 * j);
          std::memcpy(&a[j], &bits, 8);
        }
      }
      return;
    }
    case Kind::kCArray: {
      auto count = get_u64();
      const auto* p = take(16 * static_cast<std::size_t>(count));
      if (out.kind() != Kind::kCArray) out = Object{std::vector<std::complex<double>>{}};
      auto& a = out.as_carray();
      a.resize(static_cast<std::size_t>(count));
      if constexpr (kLittle) {
        std::memcpy(a.data(), p, 16 * a.size());
      } else {
        for (std::size_t j = 0; j < a.size(); ++j) {
          std::uint64_t re = load_u64(p + 16 * j);
          std::uint64_t im = load_u64(p + 16 * j + 8);
          double rev, imv;
          std::memcpy(&rev, &re, 8);
          std::memcpy(&imv, &im, 8);
          a[j] = {rev, imv};
        }
      }
      return;
    }
    case Kind::kNull:
      out = Object{};
      return;
    case Kind::kInt:
      out = static_cast<std::int64_t>(get_u64());
      return;
    case Kind::kReal:
      out = get_f64();
      return;
    case Kind::kBool:
      out = (get_u8() != 0);
      return;
    case Kind::kSynth: {
      catalog::SynthArray sa;
      sa.bytes = get_u64();
      sa.seq = get_u64();
      out = sa;
      return;
    }
    default:
      // Sp carries no reusable storage worth special-casing (cluster
      // names are SSO-short on every hot path) — rewind the tag and
      // decode fresh through read().
      --cur_;
      out = read();
      return;
  }
}

void marshal(const Object& obj, std::vector<std::uint8_t>& out) {
  MarshalWriter(out).write(obj);
}

Object unmarshal(std::span<const std::uint8_t> data, std::size_t& offset) {
  MarshalReader r(data, offset);
  Object obj = r.read();
  offset = r.offset();
  return obj;
}

std::vector<std::uint8_t> marshal_all(const std::vector<Object>& objs) {
  std::vector<std::uint8_t> out;
  std::uint64_t total = 0;
  for (const auto& o : objs) total += MarshalWriter::physical_size(o);
  out.reserve(static_cast<std::size_t>(total));
  MarshalWriter w(out);
  for (const auto& o : objs) w.write(o);
  return out;
}

std::vector<Object> unmarshal_all(std::span<const std::uint8_t> data) {
  std::vector<Object> out;
  MarshalReader r(data);
  while (!r.done()) out.push_back(r.read());
  return out;
}

}  // namespace scsq::transport
