#include "transport/marshal.hpp"

#include <cstring>

namespace scsq::transport {
namespace {

using catalog::Kind;
using catalog::Object;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

std::uint8_t get_u8(std::span<const std::uint8_t> data, std::size_t& off) {
  SCSQ_CHECK(off + 1 <= data.size()) << "truncated marshal data";
  return data[off++];
}

std::uint64_t get_u64(std::span<const std::uint8_t> data, std::size_t& off) {
  SCSQ_CHECK(off + 8 <= data.size()) << "truncated marshal data";
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[off + i]) << (8 * i);
  off += 8;
  return v;
}

double get_f64(std::span<const std::uint8_t> data, std::size_t& off) {
  std::uint64_t bits = get_u64(data, off);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

void marshal(const Object& obj, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(obj.kind()));
  switch (obj.kind()) {
    case Kind::kNull:
      break;
    case Kind::kInt:
      put_u64(out, static_cast<std::uint64_t>(obj.as_int()));
      break;
    case Kind::kReal:
      put_f64(out, obj.as_real());
      break;
    case Kind::kBool:
      put_u8(out, obj.as_bool() ? 1 : 0);
      break;
    case Kind::kStr: {
      const auto& s = obj.as_str();
      put_u64(out, s.size());
      out.insert(out.end(), s.begin(), s.end());
      break;
    }
    case Kind::kBag: {
      const auto& bag = obj.as_bag();
      put_u64(out, bag.size());
      for (const auto& o : bag) marshal(o, out);
      break;
    }
    case Kind::kDArray: {
      const auto& a = obj.as_darray();
      put_u64(out, a.size());
      for (double v : a) put_f64(out, v);
      break;
    }
    case Kind::kCArray: {
      const auto& a = obj.as_carray();
      put_u64(out, a.size());
      for (const auto& c : a) {
        put_f64(out, c.real());
        put_f64(out, c.imag());
      }
      break;
    }
    case Kind::kSynth:
      put_u64(out, obj.as_synth().bytes);
      put_u64(out, obj.as_synth().seq);
      break;
    case Kind::kSp: {
      const auto& sp = obj.as_sp();
      put_u64(out, sp.id);
      put_u64(out, sp.cluster.size());
      out.insert(out.end(), sp.cluster.begin(), sp.cluster.end());
      break;
    }
  }
}

Object unmarshal(std::span<const std::uint8_t> data, std::size_t& offset) {
  const auto kind = static_cast<Kind>(get_u8(data, offset));
  switch (kind) {
    case Kind::kNull:
      return Object{};
    case Kind::kInt:
      return Object{static_cast<std::int64_t>(get_u64(data, offset))};
    case Kind::kReal:
      return Object{get_f64(data, offset)};
    case Kind::kBool:
      return Object{get_u8(data, offset) != 0};
    case Kind::kStr: {
      auto len = get_u64(data, offset);
      SCSQ_CHECK(offset + len <= data.size()) << "truncated string";
      std::string s(reinterpret_cast<const char*>(data.data() + offset),
                    static_cast<std::size_t>(len));
      offset += len;
      return Object{std::move(s)};
    }
    case Kind::kBag: {
      auto count = get_u64(data, offset);
      catalog::Bag bag;
      bag.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) bag.push_back(unmarshal(data, offset));
      return Object{std::move(bag)};
    }
    case Kind::kDArray: {
      auto count = get_u64(data, offset);
      std::vector<double> a;
      a.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) a.push_back(get_f64(data, offset));
      return Object{std::move(a)};
    }
    case Kind::kCArray: {
      auto count = get_u64(data, offset);
      std::vector<std::complex<double>> a;
      a.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        double re = get_f64(data, offset);
        double im = get_f64(data, offset);
        a.emplace_back(re, im);
      }
      return Object{std::move(a)};
    }
    case Kind::kSynth: {
      catalog::SynthArray sa;
      sa.bytes = get_u64(data, offset);
      sa.seq = get_u64(data, offset);
      return Object{sa};
    }
    case Kind::kSp: {
      catalog::SpHandle sp;
      sp.id = get_u64(data, offset);
      auto len = get_u64(data, offset);
      SCSQ_CHECK(offset + len <= data.size()) << "truncated sp cluster name";
      sp.cluster.assign(reinterpret_cast<const char*>(data.data() + offset),
                        static_cast<std::size_t>(len));
      offset += len;
      return Object{std::move(sp)};
    }
  }
  SCSQ_CHECK(false) << "unknown kind tag " << static_cast<int>(kind);
  return Object{};
}

std::vector<std::uint8_t> marshal_all(const std::vector<Object>& objs) {
  std::vector<std::uint8_t> out;
  for (const auto& o : objs) marshal(o, out);
  return out;
}

std::vector<Object> unmarshal_all(std::span<const std::uint8_t> data) {
  std::vector<Object> out;
  std::size_t off = 0;
  while (off < data.size()) out.push_back(unmarshal(data, off));
  return out;
}

}  // namespace scsq::transport
