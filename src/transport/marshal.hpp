// Binary marshaling of SCSQL objects.
//
// This is the real wire format of the stream drivers: a 1-byte kind tag
// followed by fixed-width little-endian payload fields. Object::
// marshaled_size() mirrors these sizes, with one deliberate exception:
// SynthArray physically encodes only its 17-byte descriptor, while
// marshaled_size() reports descriptor + nominal payload bytes — the
// simulation charges wire and CPU time for the payload the descriptor
// stands in for, without allocating it (see catalog/object.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "catalog/object.hpp"

namespace scsq::transport {

/// Appends the encoding of `obj` to `out`.
void marshal(const catalog::Object& obj, std::vector<std::uint8_t>& out);

/// Decodes one object starting at `offset`; advances `offset` past it.
/// SCSQ_CHECKs on malformed input (wire data is produced by our own
/// marshal; corruption is a programmer error, not a user error).
catalog::Object unmarshal(std::span<const std::uint8_t> data, std::size_t& offset);

/// Convenience: encodes a sequence of objects into one buffer.
std::vector<std::uint8_t> marshal_all(const std::vector<catalog::Object>& objs);

/// Convenience: decodes all objects in `data`.
std::vector<catalog::Object> unmarshal_all(std::span<const std::uint8_t> data);

}  // namespace scsq::transport
