// Binary marshaling of SCSQL objects.
//
// This is the real wire format of the stream drivers: a 1-byte kind tag
// followed by fixed-width little-endian payload fields. Object::
// marshaled_size() mirrors these sizes, with one deliberate exception:
// SynthArray physically encodes only its 17-byte descriptor, while
// marshaled_size() reports descriptor + nominal payload bytes — the
// simulation charges wire and CPU time for the payload the descriptor
// stands in for, without allocating it (see catalog/object.hpp).
//
// MarshalWriter/MarshalReader are the flat fast path: the writer sizes
// the encoding up front, grows its (caller-owned, reusable) buffer once,
// and emits every word with a raw memcpy store — no per-byte push_back,
// and arrays/strings go out as single bulk copies. The reader mirrors
// that with memcpy loads and bulk array materialization. The free
// functions marshal/unmarshal/marshal_all/unmarshal_all are thin
// wrappers kept for convenience and for cross-checking both entry
// points in the round-trip tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "catalog/object.hpp"

namespace scsq::transport {

/// Flat encoder over an external, reusable byte buffer. The writer
/// appends to `out` (it never shrinks it), so one buffer can carry many
/// objects and — cleared between frames — its capacity is reused across
/// an entire stream without reallocating.
class MarshalWriter {
 public:
  explicit MarshalWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  /// Appends the encoding of `obj`. Resizes the buffer to the exact
  /// final size up front, then emits through a raw cursor — one size
  /// adjustment per object, no per-word bookkeeping.
  void write(const catalog::Object& obj);

  /// Bytes the encoding of `obj` physically occupies (SynthArray counts
  /// its 17-byte descriptor only, unlike Object::marshaled_size()).
  static std::uint64_t physical_size(const catalog::Object& obj);

  std::vector<std::uint8_t>& buffer() { return *out_; }

 private:
  void emit(const catalog::Object& obj);

  std::vector<std::uint8_t>* out_;
  std::uint8_t* p_ = nullptr;  // write cursor; valid only during write()
};

/// Flat decoder over a byte span; reads objects sequentially.
class MarshalReader {
 public:
  explicit MarshalReader(std::span<const std::uint8_t> data, std::size_t offset = 0)
      : base_(data.data()), cur_(data.data() + offset), end_(data.data() + data.size()) {}

  /// Decodes the next object. SCSQ_CHECKs on malformed input (wire data
  /// is produced by our own marshal; corruption is a programmer error).
  catalog::Object read();

  /// Decodes the next object into `out`, reusing out's existing heap
  /// storage when the kinds line up: a string decodes by assign() into
  /// the old buffer, arrays memcpy into resized vectors, and bags
  /// decode element-wise into recycled slots. A receive loop that
  /// materializes every frame into the same object tree allocates
  /// nothing once capacities have warmed up — the decode-side half of
  /// the zero-churn data plane.
  void read_into(catalog::Object& out);

  bool done() const { return cur_ >= end_; }
  std::size_t offset() const { return static_cast<std::size_t>(cur_ - base_); }

 private:
  std::uint8_t get_u8();
  std::uint64_t get_u64();
  double get_f64();
  const std::uint8_t* take(std::size_t n);

  const std::uint8_t* base_;
  const std::uint8_t* cur_;
  const std::uint8_t* end_;
};

/// Appends the encoding of `obj` to `out`.
void marshal(const catalog::Object& obj, std::vector<std::uint8_t>& out);

/// Decodes one object starting at `offset`; advances `offset` past it.
catalog::Object unmarshal(std::span<const std::uint8_t> data, std::size_t& offset);

/// Convenience: encodes a sequence of objects into one buffer.
std::vector<std::uint8_t> marshal_all(const std::vector<catalog::Object>& objs);

/// Convenience: decodes all objects in `data`.
std::vector<catalog::Object> unmarshal_all(std::span<const std::uint8_t> data);

}  // namespace scsq::transport
