#include "util/bytes.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace scsq::util {

std::string format_bytes(std::uint64_t bytes) {
  static const char* const kSuffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int idx = 0;
  while (value >= 1024.0 && idx < 4) {
    value /= 1024.0;
    ++idx;
  }
  char buf[64];
  if (idx == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kSuffix[idx]);
  }
  return buf;
}

std::string format_bandwidth_bps(double bits_per_second) {
  static const char* const kSuffix[] = {"bit/s", "kbit/s", "Mbit/s", "Gbit/s"};
  double value = bits_per_second;
  int idx = 0;
  while (value >= 1000.0 && idx < 3) {
    value /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", value, kSuffix[idx]);
  return buf;
}

double to_mbps(std::uint64_t bytes, double seconds) {
  SCSQ_CHECK(seconds > 0.0) << "bandwidth over non-positive duration";
  return static_cast<double>(bytes) * 8.0 / seconds / 1e6;
}

}  // namespace scsq::util
