// Byte-count and bandwidth formatting helpers.
#pragma once

#include <cstdint>
#include <string>

namespace scsq::util {

/// Formats a byte count with a binary suffix, e.g. "3.0 MiB".
std::string format_bytes(std::uint64_t bytes);

/// Formats a bandwidth in bits per second with a decimal suffix,
/// e.g. "921.3 Mbit/s" (the paper reports Mbit/s).
std::string format_bandwidth_bps(double bits_per_second);

/// Converts bytes / seconds to Mbit/s.
double to_mbps(std::uint64_t bytes, double seconds);

}  // namespace scsq::util
