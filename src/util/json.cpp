#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace scsq::util::json {

Value Value::make_bool(bool b) {
  Value v(Type::kBool);
  v.boolean_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v(Type::kNumber);
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v(Type::kString);
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v(Type::kArray);
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value v(Type::kObject);
  v.object_ = std::move(members);
  return v;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const { throw ParseError(what, pos_); }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::make_null();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half immediately after.
            if (next() != '\\' || next() != 'u') fail("unpaired surrogate");
            unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("bad escape sequence");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      char c = next();
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("bad \\u escape digit");
      }
    }
    return cp;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail("bad number");
    // JSON forbids leading zeros on multi-digit integer parts.
    const char first = text_[start] == '-' ? text_[start + 1] : text_[start];
    if (first == '0' && int_digits > 1) fail("leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void collect_leaves(const Value& v, const std::string& path,
                    std::map<std::string, double>& out) {
  switch (v.type()) {
    case Value::Type::kNumber:
      out[path] = v.as_number();
      break;
    case Value::Type::kObject:
      for (const auto& [k, member] : v.as_object()) {
        collect_leaves(member, path.empty() ? k : path + "." + k, out);
      }
      break;
    case Value::Type::kArray:
      for (std::size_t i = 0; i < v.as_array().size(); ++i) {
        collect_leaves(v.as_array()[i], path + "[" + std::to_string(i) + "]", out);
      }
      break;
    default:
      break;
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::map<std::string, double> numeric_leaves(const Value& v) {
  std::map<std::string, double> out;
  collect_leaves(v, "", out);
  return out;
}

}  // namespace scsq::util::json
