// Minimal JSON parser (RFC 8259 subset, no external dependencies).
//
// Exists for the observability tooling: metrics_diff parses bench
// baselines and metrics snapshots, and tests round-trip trace/metrics
// exports through it as a structural validity check. It is a strict
// parser — trailing garbage, unterminated strings, bad escapes, and
// malformed numbers all throw — which is exactly what a validity check
// wants. Not built for speed; do not put it on a simulation hot path.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace scsq::util::json {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return boolean_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& as_array() const { return array_; }
  /// Object members in document order.
  const std::vector<std::pair<std::string, Value>>& as_object() const { return object_; }

  /// Member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Construction (parser + tests).
  static Value make_null() { return Value(Type::kNull); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

 private:
  explicit Value(Type t) : type_(t) {}

  Type type_ = Type::kNull;
  bool boolean_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one complete JSON document; throws ParseError on malformed
/// input (including trailing non-whitespace).
Value parse(std::string_view text);

/// Flattens every numeric leaf into path -> value, with object members
/// joined by '.' and array elements as [i]. Used by metrics_diff to
/// compare two documents structurally.
std::map<std::string, double> numeric_leaves(const Value& v);

}  // namespace scsq::util::json
