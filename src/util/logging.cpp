#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace scsq::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Thread-local: each worker thread of a parallel sweep runs its own
// Simulator, which installs its own simulated-time source. Thread
// locality both removes a mutex from the logging path and keeps
// concurrent simulators from clobbering each other's time prefix.
thread_local std::function<double()> t_time_source;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_time_source(std::function<double()> now_seconds) {
  t_time_source = std::move(now_seconds);
}

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  double t = -1.0;
  if (t_time_source) t = t_time_source();
  // Strip directories from __FILE__ for readable output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  if (t >= 0.0) {
    std::fprintf(stderr, "[%s t=%.9f %s:%d] %s\n", level_name(level), t, base, line,
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), base, line, msg.c_str());
  }
}

namespace detail {

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << expr << " ";
}

CheckFailure::~CheckFailure() {
  log_line(LogLevel::kError, "check", 0, stream_.str());
  std::abort();
}

}  // namespace detail
}  // namespace scsq::util
