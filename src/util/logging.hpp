// Lightweight leveled logging and invariant-check macros for SCSQ.
//
// Logging is intentionally minimal: a single global level, output to
// stderr, and cheap early-out when the level is disabled. The simulator
// installs a time source so log lines carry simulated time when a
// simulation is running.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace scsq::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current global log level.
LogLevel log_level();

/// Sets the global log level. Thread-safe (relaxed atomic).
void set_log_level(LogLevel level);

/// Installs a function that renders the "current time" prefix for log
/// lines (the simulator installs simulated time). Pass nullptr to reset.
/// The source is thread-local: a Simulator running on a sweep worker
/// thread only affects log lines emitted from that thread.
void set_log_time_source(std::function<double()> now_seconds);

/// Emits one formatted log line to stderr. Prefer the SCSQ_LOG macro.
void log_line(LogLevel level, const char* file, int line, const std::string& msg);

namespace detail {
struct LogMessage {
  LogLevel level;
  const char* file;
  int line;
  std::ostringstream stream;

  LogMessage(LogLevel lvl, const char* f, int l) : level(lvl), file(f), line(l) {}
  ~LogMessage() { log_line(level, file, line, stream.str()); }
};
}  // namespace detail

}  // namespace scsq::util

#define SCSQ_LOG(lvl)                                                       \
  if (::scsq::util::LogLevel::lvl < ::scsq::util::log_level()) {            \
  } else                                                                    \
    ::scsq::util::detail::LogMessage(::scsq::util::LogLevel::lvl, __FILE__, \
                                     __LINE__)                              \
        .stream

// Invariant check: always on (also in release builds); aborts with a
// message on violation. Used for programmer errors, not user errors
// (user-visible errors throw scsq::scsql::Error and friends).
#define SCSQ_CHECK(cond)                                                     \
  if (cond) {                                                                \
  } else                                                                     \
    ::scsq::util::detail::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace scsq::util::detail {
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};
}  // namespace scsq::util::detail
