// Deterministic random number generation for simulations and tests.
//
// All randomness in SCSQ flows through explicitly seeded Rng instances so
// simulation runs are reproducible; benches vary the seed across the five
// repetitions the paper prescribes.
#pragma once

#include <cstdint>
#include <random>

namespace scsq::util {

/// A seeded 64-bit Mersenne engine with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stdev) {
    return std::normal_distribution<double>(mean, stdev)(engine_);
  }

  /// Multiplicative jitter: 1 + normal(0, rel). Clamped to stay positive.
  double jitter(double rel) {
    double j = 1.0 + normal(0.0, rel);
    return j < 0.01 ? 0.01 : j;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace scsq::util
