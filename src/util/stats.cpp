#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace scsq::util {

void Stats::add(double sample) { samples_.push_back(sample); }

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Stats::stdev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  SCSQ_CHECK(!samples_.empty()) << "min() of empty Stats";
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  SCSQ_CHECK(!samples_.empty()) << "max() of empty Stats";
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::ci95() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stdev() / std::sqrt(static_cast<double>(samples_.size()));
}

}  // namespace scsq::util
