// Online statistics used by the benchmark harnesses.
//
// The paper runs every experiment five times "to achieve low variance";
// the benches do the same with different RNG seeds and report mean and
// sample standard deviation through this accumulator.
#pragma once

#include <cstddef>
#include <vector>

namespace scsq::util {

/// Accumulates samples and exposes mean / stdev / min / max.
class Stats {
 public:
  void add(double sample);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stdev() const;
  double min() const;
  double max() const;
  /// Half-width of a ~95% normal confidence interval (1.96 * stdev / sqrt(n)).
  double ci95() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace scsq::util
