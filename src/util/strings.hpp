// Small string utilities shared across SCSQ modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace scsq::util {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view trim(std::string_view text);

/// Case-sensitive prefix/suffix tests (thin wrappers for C++20 clarity).
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// True if `text` matches `pattern` where the pattern is a plain
/// substring (used by the SCSQL grep() builtin; the paper's grep is a
/// pattern scan over file lines).
bool contains(std::string_view text, std::string_view pattern);

}  // namespace scsq::util
