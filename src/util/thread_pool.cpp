#include "util/thread_pool.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace scsq::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stop_ && workers_.empty()) return;  // already shut down
    stop_ = true;
  }
  cv_task_.notify_all();
  // Drain first: workers only exit once the queue is empty (see
  // worker_loop), so every task submitted before shutdown() runs to
  // completion before any join. wait_idle additionally orders the joins
  // after the *completion* of the last task, not just its dequeue.
  wait_idle();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    SCSQ_CHECK(!stop_) << "ThreadPool::submit after shutdown";
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("SCSQ_BENCH_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace scsq::util
