#include "util/thread_pool.hpp"

#include <cstdlib>

namespace scsq::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("SCSQ_BENCH_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace scsq::util
