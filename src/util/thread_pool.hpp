// Fixed-size thread pool and ordered parallel sweep helpers.
//
// The sweep harness fans *independent* work items (one Simulator plus
// jittered CostModel per sweep point) across a fixed set of worker
// threads. There is deliberately no work stealing: items are handed out
// from a single FIFO queue in submission order, so with benches that
// enqueue their heaviest (smallest-buffer) points first, greedy FIFO
// dispatch packs threads well without any balancing machinery.
//
// Determinism contract: run_sweep/parallel_for write each item's result
// into a slot indexed by the item's position, so collected results — and
// any table printed from them — are identical regardless of thread
// count. With threads <= 1 no worker is spawned at all and the items run
// inline on the caller, byte-for-byte preserving single-threaded
// behavior.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace scsq::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks start in FIFO submission order.
  void submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Worker count for sweeps: SCSQ_BENCH_THREADS if set (>= 1), else
  /// hardware_concurrency. SCSQ_BENCH_THREADS=1 disables threading.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n) on up to `threads` workers. Blocks
/// until all iterations finish. If any iteration throws, the exception
/// of the lowest-index failing iteration is rethrown (deterministically)
/// after the sweep completes. threads <= 1 runs inline on the caller.
template <class Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(threads < n ? threads : static_cast<unsigned>(n));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&fn, &errors, i] {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

/// Maps `fn` over `points`, returning results in point order regardless
/// of thread count. The result type must be default-constructible.
template <class Point, class Fn>
auto run_sweep(const std::vector<Point>& points, Fn fn,
               unsigned threads = ThreadPool::default_threads())
    -> std::vector<std::invoke_result_t<Fn&, const Point&>> {
  std::vector<std::invoke_result_t<Fn&, const Point&>> results(points.size());
  parallel_for(points.size(), threads,
               [&](std::size_t i) { results[i] = fn(points[i]); });
  return results;
}

}  // namespace scsq::util
