// Fixed-size thread pool and ordered parallel sweep helpers.
//
// The sweep harness fans *independent* work items (one Simulator plus
// jittered CostModel per sweep point) across a fixed set of worker
// threads. There is deliberately no work stealing: items are handed out
// from a single FIFO queue in submission order, so with benches that
// enqueue their heaviest (smallest-buffer) points first, greedy FIFO
// dispatch packs threads well without any balancing machinery.
//
// Determinism contract: run_sweep/parallel_for write each item's result
// into a slot indexed by the item's position, so collected results — and
// any table printed from them — are identical regardless of thread
// count. With threads <= 1 no worker is spawned at all and the items run
// inline on the caller, byte-for-byte preserving single-threaded
// behavior.
//
// Shutdown contract: shutdown() (and the destructor, which calls it)
// first drains every already-submitted task, then joins the workers —
// deterministically, in that order, and idempotently. Submitting after
// shutdown began is a programming error and is checked. The parallel LP
// runtime (sim/plp.hpp) parks its long-running per-worker loops in a
// pool and relies on this drain-then-join discipline to tear down
// cleanly after the conservative simulation quiesces.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace scsq::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  /// Equivalent to shutdown().
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks start in FIFO submission order. Must not be
  /// called once shutdown() has begun.
  void submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  /// Drains the queue (every task submitted before this call runs to
  /// completion), then joins all workers. Idempotent; called by the
  /// destructor. After shutdown() the pool accepts no further work.
  void shutdown();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Worker count for sweeps: SCSQ_BENCH_THREADS if set (>= 1), else
  /// hardware_concurrency. SCSQ_BENCH_THREADS=1 disables threading.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Splits [0, n) into `chunks` contiguous ranges in a *stable* order —
/// chunk c always covers [c*n/chunks, (c+1)*n/chunks), independent of
/// thread count — and runs fn(chunk_index, begin, end) for each, chunks
/// submitted in increasing index order on up to `threads` workers.
/// Blocks until every chunk finishes. If any chunk throws, the exception
/// of the lowest-index failing chunk is rethrown (deterministically)
/// after all chunks complete. threads <= 1 (or a single chunk) runs
/// inline on the caller in chunk order. This is the shared fan-out
/// primitive: the sweep harness runs one item per chunk, and the LP
/// runtime assigns logical processes to workers by chunk so the LP ->
/// worker mapping is stable for any worker count.
template <class Fn>
void parallel_chunks(std::size_t n, unsigned threads, std::size_t chunks, Fn&& fn) {
  if (n == 0 || chunks == 0) return;
  if (chunks > n) chunks = n;
  const auto begin_of = [n, chunks](std::size_t c) { return c * n / chunks; };
  if (threads <= 1 || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) fn(c, begin_of(c), begin_of(c + 1));
    return;
  }
  std::vector<std::exception_ptr> errors(chunks);
  {
    ThreadPool pool(threads < chunks ? threads : static_cast<unsigned>(chunks));
    for (std::size_t c = 0; c < chunks; ++c) {
      pool.submit([&fn, &errors, &begin_of, c] {
        try {
          fn(c, begin_of(c), begin_of(c + 1));
        } catch (...) {
          errors[c] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

/// Runs fn(i) for every i in [0, n) on up to `threads` workers: one item
/// per chunk, handed out in FIFO index order (see parallel_chunks).
/// Blocks until all iterations finish; the lowest-index exception is
/// rethrown deterministically. threads <= 1 runs inline on the caller.
template <class Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  parallel_chunks(n, threads, n,
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

/// Maps `fn` over `points`, returning results in point order regardless
/// of thread count. The result type must be default-constructible.
template <class Point, class Fn>
auto run_sweep(const std::vector<Point>& points, Fn fn,
               unsigned threads = ThreadPool::default_threads())
    -> std::vector<std::invoke_result_t<Fn&, const Point&>> {
  std::vector<std::invoke_result_t<Fn&, const Point&>> results(points.size());
  parallel_for(points.size(), threads,
               [&](std::size_t i) { results[i] = fn(points[i]); });
  return results;
}

}  // namespace scsq::util
