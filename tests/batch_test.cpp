// Batch-at-a-time execution regression suite.
//
// The load-bearing invariant of the batching/fusion PR: simulated time,
// results, byte counts, and per-RP CPU seconds are identical at every
// SCSQ_BATCH_SIZE. Batching is a host-side optimization of *how* the
// per-item cost charges are folded, never of *what* they add up to.
// These tests pin that invariant for the paper's query shapes (fig6
// point-to-point, fig8 merge trees) and for the fused local pipelines,
// plus unit tests of the batch plumbing itself (ItemBatch recycling,
// frame-granular receive batching, EOS-mid-batch delivery).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <vector>

#include "catalog/batch.hpp"
#include "core/scsq.hpp"
#include "plan/operators.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "transport/driver.hpp"
#include "transport/frame.hpp"

namespace scsq {
namespace {

using catalog::ItemBatch;
using catalog::Object;

// ---------------------------------------------------------------------
// Engine-level batch invariance
// ---------------------------------------------------------------------

exec::RunReport run_with_batch(const std::string& script, std::size_t batch) {
  ScsqConfig config;
  config.exec.batch_size = batch;
  Scsq scsq(config);
  return scsq.run(script);
}

/// Asserts two reports describe the *same* simulated run: identical
/// results, elapsed time (exact), byte counts, and per-RP CPU seconds
/// (1e-12 — the op_costs audit guarantee).
void expect_same_run(const exec::RunReport& a, const exec::RunReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].kind(), b.results[i].kind());
    if (a.results[i].kind() == catalog::Kind::kInt) {
      EXPECT_EQ(a.results[i].as_int(), b.results[i].as_int());
    }
  }
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);  // bitwise, not approximate
  EXPECT_EQ(a.setup_s, b.setup_s);
  EXPECT_EQ(a.stream_bytes, b.stream_bytes);
  ASSERT_EQ(a.rps.size(), b.rps.size());
  for (std::size_t i = 0; i < a.rps.size(); ++i) {
    EXPECT_EQ(a.rps[i].elements_out, b.rps[i].elements_out) << "rp#" << a.rps[i].id;
    EXPECT_EQ(a.rps[i].bytes_sent, b.rps[i].bytes_sent) << "rp#" << a.rps[i].id;
    EXPECT_NEAR(a.rps[i].drive_s, b.rps[i].drive_s, 1e-12) << "rp#" << a.rps[i].id;
    EXPECT_NEAR(a.rps[i].marshal_s, b.rps[i].marshal_s, 1e-12) << "rp#" << a.rps[i].id;
    EXPECT_NEAR(a.rps[i].demarshal_s, b.rps[i].demarshal_s, 1e-12) << "rp#" << a.rps[i].id;
  }
}

void expect_batch_invariant(const std::string& script) {
  const auto base = run_with_batch(script, 1);
  for (std::size_t batch : {std::size_t{16}, std::size_t{256}}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    expect_same_run(base, run_with_batch(script, batch));
  }
}

TEST(BatchInvariance, Fig6PointToPoint) {
  // The paper's fig6 shape scaled down: BlueGene producer streaming
  // arrays to a count RP, extracted by the client.
  expect_batch_invariant(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(30000,20),'bg',1);");
}

TEST(BatchInvariance, Fig8MergeTree) {
  // fig8 shape: several producers merged into one count.
  expect_batch_invariant(
      "select extract(c) from bag of sp a, sp c "
      "where c=sp(count(merge(a)),'bg',0) "
      "and a=spv((select gen_array(1000, 5) "
      "from integer i where i in iota(1,3)), 'bg', {1, 2, 3});");
}

TEST(BatchInvariance, MergeUnevenProducers) {
  // Producers with different stream lengths (3 vs 6 vs 9 items): the
  // merge pump interleaving must not depend on the consumer's pull depth.
  expect_batch_invariant(
      "select extract(c) from bag of sp a, sp c "
      "where c=sp(count(merge(a)),'bg',0) "
      "and a=spv((select gen_array(1000, i * 3) "
      "from integer i where i in iota(1,3)), 'bg', {1, 2, 3});");
}

TEST(BatchInvariance, LocalFusedCount) {
  // count(gen_array) on one node: fuses into one FusedPipelineOp when
  // batch > 1; timing must not move.
  expect_batch_invariant(
      "select extract(b) from sp b "
      "where b=sp(count(gen_array(1000, 7)), 'be');");
}

TEST(BatchInvariance, SumOverReceivedStream) {
  // sum's int->real promotion is replicated exactly in the fused path.
  expect_batch_invariant(
      "select extract(b) from sp a, sp b "
      "where b=sp(sum(extract(a)), 'fe') "
      "and a=sp(iota(1, 10), 'be');");
}

TEST(BatchInvariance, StatelessOddChain) {
  // An ArrayMap stage (odd) over a received signal stream — fusable
  // without a terminal; array results flow all the way to the client.
  auto run_odd = [](std::size_t batch) {
    ScsqConfig config;
    config.exec.batch_size = batch;
    Scsq scsq(config);
    std::vector<std::vector<double>> arrays;
    for (int k = 0; k < 4; ++k) {
      std::vector<double> x(64);
      for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(k * 100 + i);
      arrays.push_back(std::move(x));
    }
    scsq.register_stream_source("sig", arrays);
    return scsq.run(
        "select extract(b) from sp a, sp b "
        "where b=sp(streamof(odd(extract(a))),'be') "
        "and a=sp(receiver('sig'),'be');");
  };
  const auto base = run_odd(1);
  ASSERT_EQ(base.results.size(), 4u);
  for (std::size_t batch : {std::size_t{16}, std::size_t{256}}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    expect_same_run(base, run_odd(batch));
  }
}

TEST(BatchInvariance, EmptyStream) {
  // Zero-item producer: count still emits its 0 and every path must
  // deliver EOS without items.
  expect_batch_invariant(
      "select extract(b) from sp b "
      "where b=sp(count(gen_array(1000, 0)), 'be');");
}

TEST(BatchInvariance, ResultValuesAreCorrect) {
  // Sanity on the actual values, not just cross-batch equality.
  auto r = run_with_batch(
      "select extract(b) from sp a, sp b "
      "where b=sp(sum(extract(a)), 'fe') "
      "and a=sp(iota(1, 10), 'be');",
      256);
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 55);
}

// ---------------------------------------------------------------------
// Fusion pass engagement
// ---------------------------------------------------------------------

bool any_fused_node(const obs::Profile& profile) {
  for (const auto& n : profile.nodes) {
    if (n.op.find("fused") != std::string::npos) return true;
  }
  return false;
}

TEST(Fusion, EngagesOnlyWhenBatched) {
  const std::string script =
      "select extract(b) from sp b "
      "where b=sp(count(gen_array(1000, 7)), 'be');";
  {
    ScsqConfig config;
    config.exec.batch_size = 256;
    Scsq scsq(config);
    auto r = scsq.run(script);
    EXPECT_TRUE(any_fused_node(scsq.engine().profile(r)));
  }
  {
    ScsqConfig config;
    config.exec.batch_size = 1;
    Scsq scsq(config);
    auto r = scsq.run(script);
    EXPECT_FALSE(any_fused_node(scsq.engine().profile(r)));
  }
}

TEST(Fusion, BatchFillReportedInProfile) {
  ScsqConfig config;
  config.exec.batch_size = 256;
  Scsq scsq(config);
  auto r = scsq.run(
      "select extract(b) from sp b "
      "where b=sp(count(gen_array(1000, 7)), 'be');");
  auto profile = scsq.engine().profile(r);
  bool saw_multi_fill = false;
  for (const auto& n : profile.nodes) {
    if (n.batches > 0 && n.mean_batch_fill() > 1.0) saw_multi_fill = true;
  }
  EXPECT_TRUE(saw_multi_fill);
}

TEST(Fusion, EnvKnobControlsDefaultBatchSize) {
  // ExecOptions::batch_size == 0 resolves from SCSQ_BATCH_SIZE. At 1,
  // every batch the roots deliver holds exactly one item.
  const std::string script =
      "select extract(b) from sp b "
      "where b=sp(streamof(gen_array(1000, 6)), 'be');";
  ::setenv("SCSQ_BATCH_SIZE", "1", 1);
  auto r1 = run_with_batch(script, 0);
  ::setenv("SCSQ_BATCH_SIZE", "256", 1);
  auto r256 = run_with_batch(script, 0);
  ::unsetenv("SCSQ_BATCH_SIZE");
  expect_same_run(r1, r256);
  for (const auto& rp : r1.rps) {
    if (rp.batches > 0) {
      EXPECT_EQ(rp.batch_items, rp.batches);  // fill 1.0
    }
  }
}

// ---------------------------------------------------------------------
// ItemBatch plumbing
// ---------------------------------------------------------------------

TEST(ItemBatchTest, RecyclesSlotsAcrossResets) {
  ItemBatch batch;
  for (int round = 0; round < 3; ++round) {
    batch.reset();
    EXPECT_TRUE(batch.empty());
    EXPECT_FALSE(batch.eos());
    for (int i = 0; i < 4; ++i) batch.push(Object{i});
    EXPECT_EQ(batch.size(), 4u);
    EXPECT_EQ(batch[3].as_int(), 3);
  }
  // Slot storage grew once and stayed: the zero-churn invariant.
  EXPECT_EQ(batch.slot_capacity(), 4u);
  batch.mark_eos();
  EXPECT_TRUE(batch.eos());
  batch.reset();
  EXPECT_FALSE(batch.eos());
  EXPECT_EQ(batch.slot_capacity(), 4u);
}

// ---------------------------------------------------------------------
// Frame-granular receive batching
// ---------------------------------------------------------------------

sim::Task<void> feed_two_frames(sim::Channel<transport::Frame>& inbox) {
  transport::Frame f1;
  for (int i = 0; i < 3; ++i) f1.objects.emplace_back(std::int64_t{i});
  f1.bytes = 27;
  co_await inbox.send(std::move(f1));
  transport::Frame f2;
  for (int i = 3; i < 5; ++i) f2.objects.emplace_back(std::int64_t{i});
  f2.bytes = 18;
  f2.eos = true;
  co_await inbox.send(std::move(f2));
}

TEST(ReceiveBatching, NeverCrossesFrameBoundaries) {
  // Two frames of 3 and 2 objects; a max=16 pull must deliver 3 (the
  // first frame only — pulling the second early would release sender
  // backpressure before the per-item path would), then 2 with EOS.
  sim::Simulator sim;
  sim::Resource cpu(sim, 1, "cpu");
  transport::ReceiverDriver driver(sim, transport::DriverParams{}, cpu);
  sim.spawn(feed_two_frames(driver.inbox()));
  std::vector<std::size_t> batch_sizes;
  bool exhausted_at_end = false;
  sim.spawn([](transport::ReceiverDriver& drv, std::vector<std::size_t>& sizes,
               bool& exhausted) -> sim::Task<void> {
    ItemBatch batch;
    while (true) {
      batch.reset();
      const std::size_t n = co_await drv.next_batch(batch, 16);
      if (n == 0) break;
      sizes.push_back(n);
      if (drv.exhausted()) break;
    }
    exhausted = drv.exhausted();
  }(driver, batch_sizes, exhausted_at_end));
  sim.run();
  ASSERT_EQ(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[0], 3u);
  EXPECT_EQ(batch_sizes[1], 2u);
  EXPECT_TRUE(exhausted_at_end);
}

// ---------------------------------------------------------------------
// Operator-level batch semantics
// ---------------------------------------------------------------------

TEST(OperatorBatching, EosRidesWithFinalItems) {
  // A 5-item source pulled at depth 16: one batch with 5 items and the
  // EOS flag set — no separate empty EOS pull needed.
  sim::Simulator sim;
  sim::Resource cpu(sim, 1, "cpu");
  plan::PlanContext ctx;
  ctx.sim = &sim;
  ctx.cpu = &cpu;
  ctx.batch_size = 16;
  plan::GenArrayOp op(ctx, 100, 5);
  std::size_t got = 0;
  bool eos = false;
  sim.spawn([](plan::Operator& o, std::size_t& n, bool& e) -> sim::Task<void> {
    ItemBatch batch;
    co_await o.next_batch(batch, 16);
    n = batch.size();
    e = batch.eos();
  }(op, got, eos));
  sim.run();
  EXPECT_EQ(got, 5u);
  EXPECT_TRUE(eos);
}

TEST(OperatorBatching, BatchedGenArrayMatchesPerItemTime) {
  // The aggregated use_repeated hold must land on the bitwise-identical
  // end time of the per-item fold.
  auto run_gen = [](std::size_t depth) {
    sim::Simulator sim;
    sim::Resource cpu(sim, 1, "cpu");
    plan::PlanContext ctx;
    ctx.sim = &sim;
    ctx.cpu = &cpu;
    ctx.batch_size = depth;
    plan::GenArrayOp op(ctx, 4096, 37);
    std::size_t items = 0;
    sim.spawn([](plan::Operator& o, std::size_t d, std::size_t& n) -> sim::Task<void> {
      if (d <= 1) {
        while (co_await o.next()) ++n;
        co_return;
      }
      ItemBatch batch;
      bool eos = false;
      while (!eos) {
        batch.reset();
        co_await o.next_batch(batch, d);
        n += batch.size();
        eos = batch.eos();
      }
    }(op, depth, items));
    sim.run();
    EXPECT_EQ(items, 37u);
    return sim.now();
  };
  const double per_item = run_gen(1);
  EXPECT_EQ(per_item, run_gen(16));
  EXPECT_EQ(per_item, run_gen(256));
}

TEST(OperatorBatching, BatchSizeOneDeliversOneItemPerPull) {
  sim::Simulator sim;
  sim::Resource cpu(sim, 1, "cpu");
  plan::PlanContext ctx;
  ctx.sim = &sim;
  ctx.cpu = &cpu;
  plan::GenArrayOp op(ctx, 100, 3);
  std::vector<std::size_t> sizes;
  sim.spawn([](plan::Operator& o, std::vector<std::size_t>& out) -> sim::Task<void> {
    ItemBatch batch;
    bool eos = false;
    while (!eos) {
      batch.reset();
      co_await o.next_batch(batch, 1);
      if (!batch.empty()) out.push_back(batch.size());
      eos = batch.eos();
    }
  }(op, sizes));
  sim.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 1, 1}));
}

}  // namespace
}  // namespace scsq
