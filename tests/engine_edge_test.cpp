// Engine edge cases: spv enumeration combinations, row-local bindings,
// filters inside spv, allocation-sequence literals, and cross-cluster
// paths not exercised by the paper's queries.
#include <gtest/gtest.h>

#include "core/scsq.hpp"

namespace scsq {
namespace {

TEST(EngineEdge, SpvCartesianEnumeration) {
  // Two 'in' enumerations: 2 x 3 = 6 stream processes, each producing
  // i*j arrays of 1000 bytes.
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from bag of sp a, sp b "
      "where b=sp(count(merge(a)), 'bg') "
      "and a=spv((select gen_array(1000, i * j) "
      "from integer i, integer j "
      "where i in iota(1,2) and j in iota(1,3)), 'be', 1);");
  ASSERT_EQ(r.results.size(), 1u);
  // Sum over i in {1,2}, j in {1,2,3} of i*j = (1+2)*(1+2+3) = 18.
  EXPECT_EQ(r.results[0].as_int(), 18);
  EXPECT_EQ(r.rp_count, 2u + 6u);  // cm + b + 6 producers
}

TEST(EngineEdge, SpvRowFilter) {
  // Filter keeps only even i: 2 of 4 subqueries spawn.
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from bag of sp a, sp b "
      "where b=sp(count(merge(a)), 'bg') "
      "and a=spv((select gen_array(1000, 5) "
      "from integer i where i in iota(1,4) and i / 2 * 2 = i), 'be', 1);");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 10);  // 2 producers x 5 arrays
}

TEST(EngineEdge, SpvRowLocalBinding) {
  // A row-local binding (m = i + 1) used by the shipped subquery.
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from bag of sp a, sp b "
      "where b=sp(count(merge(a)), 'bg') "
      "and a=spv((select gen_array(1000, m) "
      "from integer i, integer m "
      "where i in iota(1,3) and m = i + 1), 'be', 1);");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 2 + 3 + 4);
}

TEST(EngineEdge, AllocationSequenceAsBagLiteral) {
  // A literal bag allocation sequence: producers cycle over nodes 2, 3.
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from bag of sp a, sp b "
      "where b=sp(count(merge(a)), 'bg', 0) "
      "and a=spv((select gen_array(1000, 2) "
      "from integer i where i in iota(1,4)), 'bg', {2, 3, 4, 5});");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 8);
  std::set<int> nodes;
  for (const auto& c : r.connections) {
    if (c.dst == hw::Location{"bg", 0}) nodes.insert(c.src.node);
  }
  EXPECT_EQ(nodes, (std::set<int>{2, 3, 4, 5}));
}

TEST(EngineEdge, BackEndOnlyQueryNeverTouchesBlueGene) {
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))), 'be') "
      "and a=sp(gen_array(100000, 6), 'be');");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 6);
  for (const auto& c : r.connections) {
    EXPECT_NE(c.src.cluster, "bg");
    EXPECT_NE(c.dst.cluster, "bg");
  }
}

TEST(EngineEdge, FrontEndProcessing) {
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(sum(extract(a)), 'fe') "
      "and a=sp(iota(1, 10), 'be');");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 55);
}

TEST(EngineEdge, SumOfReals) {
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(sum(bagavg(cwindow(extract(a), 2))), 'bg') "
      "and a=sp(iota(1, 4), 'bg');");
  ASSERT_EQ(r.results.size(), 1u);
  // Windows {1,2},{3,4} -> averages 1.5, 3.5 -> sum 5.0 (real).
  EXPECT_DOUBLE_EQ(r.results[0].as_number(), 5.0);
}

TEST(EngineEdge, ChainAcrossAllThreeClusters) {
  // be -> bg -> fe relay, counting at each hop.
  Scsq scsq;
  auto r = scsq.run(
      "select extract(c) from sp a, sp b, sp c "
      "where c=sp(streamof(count(extract(b))), 'fe') "
      "and b=sp(extract(a), 'bg') "
      "and a=sp(gen_array(200000, 8), 'be');");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 8);
}

TEST(EngineEdge, MergeOfSingleHandle) {
  // merge() accepts a single SP handle (degenerate bag).
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(count(merge(a)), 'bg') "
      "and a=sp(gen_array(1000, 3), 'bg');");
  EXPECT_EQ(r.results[0].as_int(), 3);
}

TEST(EngineEdge, EmptyEnumerationYieldsNoProducers) {
  Scsq scsq;
  // iota(1,0) is empty: spv returns an empty bag; merge of an empty bag
  // is a user error the engine must surface cleanly.
  EXPECT_THROW(scsq.run("select extract(b) from bag of sp a, sp b "
                        "where b=sp(count(merge(a)), 'bg') "
                        "and a=spv((select gen_array(1000, 1) "
                        "from integer i where i in iota(1,0)), 'be', 1);"),
               scsql::Error);
}

TEST(EngineEdge, FunctionWithTwoParameters) {
  Scsq scsq;
  auto r = scsq.run(
      "create function pipeline(integer bytes, integer cnt) -> stream "
      "as select extract(x) from sp x "
      "where x=sp(gen_array(bytes, cnt), 'bg'); "
      "count(pipeline(1000, 9));");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 9);
}

TEST(EngineEdge, TwoCallsOfSameFunctionDoNotCollide) {
  // Inlining renames body variables per call site: two pipelines.
  Scsq scsq;
  auto r = scsq.run(
      "create function gen(integer cnt) -> stream "
      "as select extract(x) from sp x "
      "where x=sp(gen_array(1000, cnt), 'be'); "
      "count(merge({sp(count(gen(3)), 'bg'), sp(count(gen(4)), 'bg')}));");
  ASSERT_EQ(r.results.size(), 1u);
  // Two counts (3 and 4) merged and counted: 2 elements.
  EXPECT_EQ(r.results[0].as_int(), 2);
}

}  // namespace
}  // namespace scsq
