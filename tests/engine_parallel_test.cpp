// Engine-level parallel drive: the LP-invariance matrix (fig6 + fig8 +
// fig15 query slices x SCSQ_SIM_LPS x SCSQ_BATCH_SIZE must be
// byte-identical), realized parallelism (engine.sim_lps.effective > 1
// on a multi-pset run), the sequenced-multiplexer fallback for
// cross-pset MPI streams, and the FramePool shard accounting property
// (sum over shards == the legacy machine-wide pool's counters).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/scsq.hpp"
#include "exec/engine.hpp"
#include "hw/machine.hpp"
#include "transport/frame.hpp"

namespace scsq {
namespace {

// Serializes every field a bandwidth measurement depends on, bitwise
// (hexfloat for the timings). Two reports with equal fingerprints ran
// the same data plane event-for-event.
std::string fingerprint(const exec::RunReport& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << "elapsed=" << r.elapsed_s << " setup=" << r.setup_s
     << " bytes=" << r.stream_bytes << " stopped=" << r.stopped << "\n";
  for (const auto& o : r.results) os << "result " << o.to_string() << "\n";
  for (const auto& c : r.connections) {
    os << "conn " << c.producer_rp << "->" << c.consumer_rp << " "
       << c.src.to_string() << "->" << c.dst.to_string() << " " << c.bytes << "\n";
  }
  for (const auto& rp : r.rps) {
    os << "rp " << rp.id << " " << rp.loc.to_string() << " out=" << rp.elements_out
       << " tx=" << rp.bytes_sent << " rx=" << rp.bytes_received
       << " stall=" << rp.stall_s << "\n";
  }
  return os.str();
}

// fig6 point-to-point slice: bg1 -> bg0 (same pset), extract to client.
const char* kP2p =
    "select extract(b) from sp a, sp b"
    " where b=sp(streamof(count(extract(a))),'bg',0)"
    " and a=sp(gen_array(50000,6),'bg',1);";

// fig8 merge slice: two producers, one consumer, all in pset 0.
const char* kMerge =
    "select extract(c) from sp a, sp b, sp c"
    " where c=sp(count(merge({a,b})), 'bg',0)"
    " and a=sp(gen_array(50000,4),'bg',1)"
    " and b=sp(gen_array(50000,4),'bg',2);";

// fig15 Q1 slice: back-end producers into a bg merge tree.
const char* kInboundQ1 =
    "select extract(c) from bag of sp a, sp b, sp c, integer n"
    " where c=sp(extract(b), 'bg')"
    " and b=sp(count(merge(a)), 'bg')"
    " and a=spv((select gen_array(20000,3) from integer i where i in iota(1,n)),"
    " 'be', 1)"
    " and n=4;";

// fig15 Q5 slice: psetrr() spreads the b-stage over every pset, so the
// b -> c merge crosses psets over the torus — the query shape that
// forces the sequenced fallback.
const char* kInboundQ5 =
    "select extract(c) from bag of sp a, bag of sp b, sp c, integer n"
    " where c=sp(streamof(sum(merge(b))), 'bg')"
    " and b=spv((select streamof(count(extract(p))) from sp p where p in a),"
    " 'bg', psetrr())"
    " and a=spv((select gen_array(20000,3) from integer i where i in iota(1,n)),"
    " 'be', 1)"
    " and n=4;";

// Multi-pset TCP-only pipeline: the producer runs on the back-end, the
// consumer at bg8 (pset 1, LP 1 when SCSQ_SIM_LPS >= 2) with its
// extract back to the client — no bg -> bg cross-pset MPI anywhere, so
// the windowed parallel drive engages with RPs on more than one LP.
const char* kMultiPset =
    "select extract(b) from sp a, sp b"
    " where b=sp(streamof(count(extract(a))),'bg',8)"
    " and a=sp(gen_array(50000,6),'be',1);";

exec::RunReport run_at(const char* query, int lps, std::size_t batch) {
  ScsqConfig cfg;
  cfg.exec.sim_lps = lps;
  cfg.exec.batch_size = batch;
  Scsq scsq(cfg);
  return scsq.run(query);
}

TEST(EngineParallel, MatrixByteIdenticalAcrossLpsAndBatch) {
  for (const char* query : {kP2p, kMerge, kInboundQ1, kInboundQ5, kMultiPset}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{256}}) {
      const std::string base = fingerprint(run_at(query, 1, batch));
      for (int lps : {2, 4, 8}) {
        EXPECT_EQ(fingerprint(run_at(query, lps, batch)), base)
            << "lps=" << lps << " batch=" << batch << "\n"
            << query;
      }
    }
  }
}

TEST(EngineParallel, EffectiveLpsExceedsOneOnMultiPsetRun) {
  const auto r = run_at(kMultiPset, 4, 1);
  EXPECT_EQ(r.sim_lps_requested, 4);
  EXPECT_GT(r.sim_lps_effective, 1);
  // The RPs really landed on distinct LPs of the requested partition.
  std::set<int> lps;
  for (const auto& rp : r.rps) lps.insert(rp.lp);
  EXPECT_GT(lps.size(), 1u);
}

TEST(EngineParallel, CrossPsetMpiFallsBackToSequencedDrive) {
  // Q5-shaped runs used to throw at SCSQ_SIM_LPS > 1; now they take the
  // sequenced multiplexer — sequential (effective == 1) but still on
  // the sharded machine, and byte-identical to the 1-LP run (covered by
  // the matrix above).
  const auto r = run_at(kInboundQ5, 4, 1);
  EXPECT_EQ(r.sim_lps_requested, 4);
  EXPECT_EQ(r.sim_lps_effective, 1);
  std::set<int> lps;
  for (const auto& rp : r.rps) lps.insert(rp.lp);
  EXPECT_GT(lps.size(), 1u);  // the *labels* still span the partition
}

TEST(FramePoolShards, SumOverShardsMatchesLegacyGlobalPool) {
  // The sharded pools must conserve the legacy machine-wide pool's
  // acquire/recycle totals: the data plane is byte-identical, so every
  // stream cuts the same frames — sharding only changes which free list
  // serves them (reuse hit rates may differ; totals may not).
  std::uint64_t legacy_acquired = 0, legacy_recycled = 0;
  {
    ScsqConfig cfg;
    cfg.exec.sim_lps = 1;
    Scsq scsq(cfg);
    scsq.run(kMultiPset);
    ASSERT_EQ(scsq.machine().pool_count(), 1u);
    legacy_acquired = scsq.machine().pool(0).acquired();
    legacy_recycled = scsq.machine().pool(0).recycled();
  }
  EXPECT_GT(legacy_acquired, 0u);

  ScsqConfig cfg;
  cfg.exec.sim_lps = 4;
  Scsq scsq(cfg);
  scsq.run(kMultiPset);
  ASSERT_EQ(scsq.machine().pool_count(), 4u);
  std::uint64_t acquired = 0, recycled = 0, reused = 0, free_frames = 0;
  for (std::size_t i = 0; i < scsq.machine().pool_count(); ++i) {
    const auto& pool = scsq.machine().pool(i);
    EXPECT_LE(pool.reused(), pool.acquired()) << "shard " << i;
    acquired += pool.acquired();
    recycled += pool.recycled();
    reused += pool.reused();
    free_frames += pool.free_frames();
  }
  EXPECT_EQ(acquired, legacy_acquired);
  EXPECT_EQ(recycled, legacy_recycled);
  EXPECT_LE(reused, acquired);
  EXPECT_LE(free_frames, recycled);
}

TEST(FramePoolShards, SharedModeMailboxConservesCounters) {
  // Unit-level: a shared pool's recycle lands in the mailbox and is
  // drained at the owner's next acquire miss; every counter stays exact.
  transport::FramePool pool;
  pool.set_shared(true);
  std::vector<transport::Frame> out;
  for (int i = 0; i < 8; ++i) out.push_back(pool.acquire());
  EXPECT_EQ(pool.acquired(), 8u);
  EXPECT_EQ(pool.reused(), 0u);
  for (auto& f : out) pool.recycle(std::move(f));
  out.clear();
  EXPECT_EQ(pool.recycled(), 8u);
  EXPECT_EQ(pool.free_frames(), 8u);  // mailbox counts as free inventory
  for (int i = 0; i < 8; ++i) out.push_back(pool.acquire());
  EXPECT_EQ(pool.acquired(), 16u);
  EXPECT_EQ(pool.reused(), 8u);  // the drain served every one
  EXPECT_EQ(pool.free_frames(), 0u);
}

}  // namespace
}  // namespace scsq
