#include <gtest/gtest.h>

#include "exec/coordinator.hpp"
#include "exec/eval.hpp"
#include "exec/substitute.hpp"
#include "hw/machine.hpp"
#include "scsql/parser.hpp"

namespace scsq::exec {
namespace {

using catalog::Kind;
using catalog::Object;

Object ev(const std::string& text, const Env& env = {}, hw::Machine* m = nullptr) {
  return eval_const(scsql::parse_expression(text), env, m);
}

// ---------------------------------------------------------------------
// eval_const
// ---------------------------------------------------------------------

TEST(EvalConst, Literals) {
  EXPECT_EQ(ev("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(ev("2.5").as_real(), 2.5);
  EXPECT_EQ(ev("'bg'").as_str(), "bg");
}

TEST(EvalConst, Arithmetic) {
  EXPECT_EQ(ev("1 + 2 * 3").as_int(), 7);
  EXPECT_EQ(ev("10 - 4").as_int(), 6);
  EXPECT_EQ(ev("10 / 2").as_int(), 5);
  EXPECT_DOUBLE_EQ(ev("7 / 2").as_real(), 3.5);
  EXPECT_EQ(ev("-3").as_int(), -3);
}

TEST(EvalConst, DivisionByZeroThrows) {
  EXPECT_THROW(ev("1 / 0"), scsql::Error);
}

TEST(EvalConst, Comparisons) {
  EXPECT_TRUE(ev("1 < 2").as_bool());
  EXPECT_FALSE(ev("2 < 1").as_bool());
  EXPECT_TRUE(ev("2 <= 2").as_bool());
  EXPECT_TRUE(ev("3 = 3").as_bool());
  EXPECT_TRUE(ev("3 != 4").as_bool());
  EXPECT_TRUE(ev("'a' = 'a'").as_bool());
}

TEST(EvalConst, Variables) {
  Env env{{"n", Object{4}}};
  EXPECT_EQ(ev("n + 1", env).as_int(), 5);
  EXPECT_THROW(ev("m", env), scsql::Error);
}

TEST(EvalConst, Iota) {
  auto bag = ev("iota(1, 4)").as_bag();
  ASSERT_EQ(bag.size(), 4u);
  EXPECT_EQ(bag[0].as_int(), 1);
  EXPECT_EQ(bag[3].as_int(), 4);
}

TEST(EvalConst, IotaEmptyWhenReversed) {
  EXPECT_TRUE(ev("iota(5, 4)").as_bag().empty());
}

TEST(EvalConst, IotaWithVariable) {
  Env env{{"n", Object{3}}};
  EXPECT_EQ(ev("iota(1, n)", env).as_bag().size(), 3u);
}

TEST(EvalConst, Filename) {
  EXPECT_EQ(ev("filename(12)").as_str(), "lofar_obs_12.log");
}

TEST(EvalConst, BagCtor) {
  Env env{{"a", Object{catalog::SpHandle{1, "bg"}}}, {"b", Object{catalog::SpHandle{2, "bg"}}}};
  auto bag = ev("{a, b}", env).as_bag();
  ASSERT_EQ(bag.size(), 2u);
  EXPECT_EQ(bag[0].as_sp().id, 1u);
  EXPECT_EQ(bag[1].as_sp().id, 2u);
}

TEST(EvalConst, SpInConstContextThrows) {
  EXPECT_THROW(ev("sp(gen_array(1,1), 'bg')"), scsql::Error);
}

TEST(EvalConst, UnknownFunctionThrows) {
  EXPECT_THROW(ev("frobnicate(1)"), scsql::Error);
}

// ---------------------------------------------------------------------
// Allocation functions against a real machine
// ---------------------------------------------------------------------

class AllocFns : public ::testing::Test {
 protected:
  sim::Simulator sim;
  hw::Machine machine{sim};
};

TEST_F(AllocFns, UrrListsClusterNodes) {
  auto bag = ev("urr('be')", {}, &machine).as_bag();
  ASSERT_EQ(bag.size(), 4u);  // 4 back-end nodes
  EXPECT_EQ(bag[0].as_int(), 0);
  EXPECT_EQ(bag[3].as_int(), 3);
}

TEST_F(AllocFns, UrrUnknownClusterThrows) {
  EXPECT_THROW(ev("urr('nope')", {}, &machine), scsql::Error);
}

TEST_F(AllocFns, UrrWithoutMachineThrows) {
  EXPECT_THROW(ev("urr('be')"), scsql::Error);
}

TEST_F(AllocFns, InPsetListsPsetNodes) {
  auto bag = ev("inPset(1)", {}, &machine).as_bag();
  ASSERT_EQ(bag.size(), 8u);
  EXPECT_EQ(bag[0].as_int(), 8);
  EXPECT_EQ(bag[7].as_int(), 15);
}

TEST_F(AllocFns, InPsetOutOfRangeThrows) {
  EXPECT_THROW(ev("inPset(99)", {}, &machine), scsql::Error);
}

TEST_F(AllocFns, PsetrrAlternatesPsets) {
  auto bag = ev("psetrr()", {}, &machine).as_bag();
  ASSERT_GE(bag.size(), 4u);
  EXPECT_EQ(bag[0].as_int() / 8, 0);
  EXPECT_EQ(bag[1].as_int() / 8, 1);
  EXPECT_EQ(bag[2].as_int() / 8, 2);
  EXPECT_EQ(bag[3].as_int() / 8, 3);
}

// ---------------------------------------------------------------------
// Substitution
// ---------------------------------------------------------------------

TEST(Substitute, RenamesVars) {
  auto e = scsql::parse_expression("count(extract(a))");
  auto out = substitute_vars(e, {{"a", "__f_a"}});
  EXPECT_EQ(out->to_string(), "count(extract(__f_a))");
}

TEST(Substitute, LeavesFunctionNamesAlone) {
  auto e = scsql::parse_expression("count(x)");
  auto out = substitute_vars(e, {{"count", "nope"}, {"x", "y"}});
  EXPECT_EQ(out->to_string(), "count(y)");
}

TEST(Substitute, NoChangeReturnsSamePointer) {
  auto e = scsql::parse_expression("count(extract(a))");
  auto out = substitute_vars(e, {{"z", "w"}});
  EXPECT_EQ(out, e);
}

TEST(Substitute, RenamesSelectDecls) {
  auto st = scsql::parse_statement("select extract(p) from sp p where p in a;");
  auto renamed = substitute_vars(st.query, {{"p", "__f_p"}, {"a", "__f_a"}});
  ASSERT_EQ(renamed->kind, scsql::ExprKind::kSelect);
  EXPECT_EQ(renamed->select->decls[0].name, "__f_p");
  EXPECT_EQ(renamed->select->predicates[0].lhs->name, "__f_p");
  EXPECT_EQ(renamed->select->predicates[0].rhs->name, "__f_a");
}

// ---------------------------------------------------------------------
// ClusterCoordinator
// ---------------------------------------------------------------------

struct CoordFixture : ::testing::Test {
  sim::Simulator sim;
  hw::Cndb cndb{8, [](int n) { return n / 4; }};

  int allocate(ClusterCoordinator& cc, AllocationSeq* seq) {
    int node = -1;
    sim.spawn([](ClusterCoordinator& c, AllocationSeq* s, int& out) -> sim::Task<void> {
      out = co_await c.allocate_node(s);
    }(cc, seq, node));
    sim.run();
    return node;
  }
};

TEST_F(CoordFixture, NaiveSelectionIsNextAvailable) {
  ClusterCoordinator cc(sim, "bg", cndb, 200e-6, 0.0, /*exclusive=*/true);
  EXPECT_EQ(allocate(cc, nullptr), 0);
  EXPECT_EQ(allocate(cc, nullptr), 1);  // 0 is now busy
  EXPECT_TRUE(cndb.busy(0));
  cc.release_node(0);
  EXPECT_FALSE(cndb.busy(0));
}

TEST_F(CoordFixture, AllocationSequencePinsNode) {
  ClusterCoordinator cc(sim, "bg", cndb, 200e-6, 0.0, true);
  AllocationSeq seq{{5}, 0};
  EXPECT_EQ(allocate(cc, &seq), 5);
  // Node 5 busy now; the single-entry sequence has no alternative.
  EXPECT_THROW(allocate(cc, &seq), scsql::Error);
}

TEST_F(CoordFixture, SequenceCyclesAcrossAllocations) {
  ClusterCoordinator cc(sim, "be", cndb, 200e-6, 0.0, /*exclusive=*/false);
  AllocationSeq seq{{2, 4, 6}, 0};
  EXPECT_EQ(allocate(cc, &seq), 2);
  EXPECT_EQ(allocate(cc, &seq), 4);
  EXPECT_EQ(allocate(cc, &seq), 6);
  EXPECT_EQ(allocate(cc, &seq), 2);  // wraps: non-exclusive nodes reusable
}

TEST_F(CoordFixture, SequenceSkipsBusyNodes) {
  ClusterCoordinator cc(sim, "bg", cndb, 200e-6, 0.0, true);
  cndb.set_busy(2, true);
  AllocationSeq seq{{2, 4}, 0};
  EXPECT_EQ(allocate(cc, &seq), 4);
}

TEST_F(CoordFixture, SequenceWithUnknownNodeThrows) {
  ClusterCoordinator cc(sim, "bg", cndb, 200e-6, 0.0, true);
  AllocationSeq seq{{42}, 0};
  EXPECT_THROW(allocate(cc, &seq), scsql::Error);
}

TEST_F(CoordFixture, BgPollingDelaysAllocation) {
  ClusterCoordinator direct(sim, "be", cndb, 200e-6, 0.0, false);
  allocate(direct, nullptr);
  const double t_direct = sim.now();
  EXPECT_NEAR(t_direct, 200e-6, 1e-12);

  sim::Simulator sim2;
  hw::Cndb cndb2{8};
  ClusterCoordinator polled(sim2, "bg", cndb2, 200e-6, 1e-3, true);
  int node = -1;
  sim2.spawn([](ClusterCoordinator& c, int& out) -> sim::Task<void> {
    out = co_await c.allocate_node(nullptr);
  }(polled, node));
  sim2.run();
  // Registration lands at 200us; the next poll tick is 1ms.
  EXPECT_NEAR(sim2.now(), 1e-3, 1e-12);
  EXPECT_EQ(node, 0);
}

TEST_F(CoordFixture, ExhaustedClusterThrows) {
  hw::Cndb tiny{2};
  ClusterCoordinator cc(sim, "bg", tiny, 0.0, 0.0, true);
  allocate(cc, nullptr);
  allocate(cc, nullptr);
  EXPECT_THROW(allocate(cc, nullptr), scsql::Error);
}

}  // namespace
}  // namespace scsq::exec
