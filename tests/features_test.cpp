// Tests for the extension features: window aggregation, unbounded
// streams with stop conditions, per-RP monitoring, and the
// topology-aware node selection the paper proposes as future work.
#include <gtest/gtest.h>

#include "core/scsq.hpp"
#include "exec/eval.hpp"
#include "plan/builder.hpp"
#include "plan/window_ops.hpp"
#include "scsql/parser.hpp"

namespace scsq {
namespace {

using catalog::Kind;
using catalog::Object;

// ---------------------------------------------------------------------
// Window operators (unit level)
// ---------------------------------------------------------------------

struct WindowHarness {
  sim::Simulator sim;
  sim::Resource cpu{sim, 1, "cpu"};
  exec::Env env;
  plan::PlanContext ctx;

  WindowHarness() {
    ctx.sim = &sim;
    ctx.loc = {"bg", 0};
    ctx.cpu = &cpu;
    ctx.node = hw::NodeParams{};
    ctx.const_eval = [this](const scsql::ExprPtr& e) {
      return exec::eval_const(e, env, nullptr);
    };
  }

  std::vector<Object> run(const std::string& expr) {
    auto op = plan::build_plan(scsql::parse_expression(expr), ctx);
    std::vector<Object> out;
    sim.spawn([](plan::Operator& o, std::vector<Object>& sink) -> sim::Task<void> {
      while (auto obj = co_await o.next()) sink.push_back(std::move(*obj));
    }(*op, out));
    sim.run();
    return out;
  }
};

TEST(Window, TumblingGroupsElements) {
  WindowHarness h;
  auto out = h.run("cwindow(iota(1, 9), 3)");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].as_bag(), (catalog::Bag{Object{1}, Object{2}, Object{3}}));
  EXPECT_EQ(out[2].as_bag(), (catalog::Bag{Object{7}, Object{8}, Object{9}}));
}

TEST(Window, TumblingEmitsFinalPartialWindow) {
  WindowHarness h;
  auto out = h.run("cwindow(iota(1, 7), 3)");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].as_bag().size(), 1u);
  EXPECT_EQ(out[2].as_bag()[0].as_int(), 7);
}

TEST(Window, ShortStreamStillEmitsOneWindow) {
  WindowHarness h;
  auto out = h.run("cwindow(iota(1, 2), 5)");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as_bag().size(), 2u);
}

TEST(Window, EmptyStreamEmitsNothing) {
  WindowHarness h;
  EXPECT_TRUE(h.run("cwindow(iota(1, 0), 5)").empty());
}

TEST(Window, SlidingOverlapsWindows) {
  WindowHarness h;
  auto out = h.run("swindow(iota(1, 5), 3, 1)");
  // Windows: {1,2,3} {2,3,4} {3,4,5}.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].as_bag()[0].as_int(), 1);
  EXPECT_EQ(out[1].as_bag()[0].as_int(), 2);
  EXPECT_EQ(out[2].as_bag(), (catalog::Bag{Object{3}, Object{4}, Object{5}}));
}

TEST(Window, SlideOfTwo) {
  WindowHarness h;
  auto out = h.run("swindow(iota(1, 8), 4, 2)");
  // {1..4} {3..6} {5..8}: first window after 4 arrivals, then every 2.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].as_bag()[0].as_int(), 3);
}

TEST(Window, InvalidSizesRejected) {
  WindowHarness h;
  EXPECT_THROW(h.run("cwindow(iota(1,5), 0)"), scsql::Error);
  EXPECT_THROW(h.run("swindow(iota(1,5), 3, 4)"), scsql::Error);  // slide > size
  EXPECT_THROW(h.run("swindow(iota(1,5), 3, 0)"), scsql::Error);
}

TEST(Window, BagAggregates) {
  WindowHarness h;
  auto sums = h.run("bagsum(cwindow(iota(1, 6), 3))");
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0].as_number(), 6.0);   // 1+2+3
  EXPECT_DOUBLE_EQ(sums[1].as_number(), 15.0);  // 4+5+6

  auto avgs = h.run("bagavg(cwindow(iota(1, 6), 3))");
  EXPECT_DOUBLE_EQ(avgs[0].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(avgs[1].as_number(), 5.0);

  auto maxs = h.run("bagmax(cwindow(iota(1, 6), 3))");
  EXPECT_DOUBLE_EQ(maxs[1].as_number(), 6.0);

  auto mins = h.run("bagmin(cwindow(iota(1, 6), 3))");
  EXPECT_DOUBLE_EQ(mins[0].as_number(), 1.0);

  auto counts = h.run("bagcount(cwindow(iota(1, 7), 3))");
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[2].as_int(), 1);  // final partial window
}

TEST(Window, BagAggRejectsNonBags) {
  WindowHarness h;
  EXPECT_THROW(h.run("bagsum(iota(1, 3))"), scsql::Error);
}

TEST(Window, ScalarMaps) {
  WindowHarness h;
  auto abs_out = h.run("abs(iota(-3, -1))");
  ASSERT_EQ(abs_out.size(), 3u);
  EXPECT_DOUBLE_EQ(abs_out[0].as_number(), 3.0);
  auto sqrt_out = h.run("sqrtv(iota(4, 4))");
  EXPECT_DOUBLE_EQ(sqrt_out[0].as_number(), 2.0);
}

// ---------------------------------------------------------------------
// Windows through full distributed queries
// ---------------------------------------------------------------------

TEST(Window, WindowedAggregationOverStream) {
  Scsq scsq;
  // Average over tumbling windows of the counts 1..12, computed on a
  // BlueGene stream process.
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(bagavg(cwindow(extract(a), 4)), 'bg') "
      "and a=sp(iota(1, 12), 'bg');");
  ASSERT_EQ(r.results.size(), 3u);
  EXPECT_DOUBLE_EQ(r.results[0].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(r.results[1].as_number(), 6.5);
  EXPECT_DOUBLE_EQ(r.results[2].as_number(), 10.5);
}

// ---------------------------------------------------------------------
// Unbounded streams and stop conditions
// ---------------------------------------------------------------------

TEST(Stop, MaxResultsStopsInfiniteStream) {
  ScsqConfig cfg;
  cfg.exec.max_results = 10;
  Scsq scsq(cfg);
  auto r = scsq.run(
      "select extract(a) from sp a where a=sp(gen_stream(100000), 'bg');");
  EXPECT_EQ(r.results.size(), 10u);
  EXPECT_TRUE(r.stopped);
  // All objects are the synthetic arrays, in order.
  for (std::size_t i = 0; i < r.results.size(); ++i) {
    EXPECT_EQ(r.results[i].as_synth().seq, static_cast<std::uint64_t>(i));
  }
}

TEST(Stop, TimeLimitStopsRunawayQuery) {
  ScsqConfig cfg;
  cfg.exec.max_sim_time_s = 0.05;  // 50 simulated milliseconds
  Scsq scsq(cfg);
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))), 'bg') "
      "and a=sp(gen_stream(100000), 'bg');");
  EXPECT_TRUE(r.stopped);
  // count() observed end-of-stream at teardown and reported a partial
  // count (or the client saw none — either way, the engine recovered).
  EXPECT_LE(r.results.size(), 1u);
}

TEST(Stop, EngineUsableAfterStop) {
  ScsqConfig cfg;
  cfg.exec.max_results = 3;
  Scsq scsq(cfg);
  auto r1 = scsq.run("select extract(a) from sp a where a=sp(gen_stream(1000), 'bg');");
  EXPECT_TRUE(r1.stopped);
  auto r2 = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(1000,5),'bg',1);");
  ASSERT_EQ(r2.results.size(), 1u);
  EXPECT_EQ(r2.results[0].as_int(), 5);
  EXPECT_FALSE(r2.stopped);
}

TEST(Stop, FiniteQueryNotMarkedStopped) {
  Scsq scsq;
  auto r = scsq.run("select 1;");
  EXPECT_FALSE(r.stopped);
}

TEST(Stop, GenArrayRejectsNegativeCount) {
  Scsq scsq;
  EXPECT_THROW(
      scsq.run("select extract(a) from sp a where a=sp(gen_array(10, -1), 'bg');"),
      scsql::Error);
}

// ---------------------------------------------------------------------
// Per-RP monitoring
// ---------------------------------------------------------------------

TEST(Monitoring, RpStatsReportElementsAndBytes) {
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(100000,10),'bg',1);");
  ASSERT_EQ(r.rps.size(), 3u);
  const exec::RpStat* a = nullptr;
  const exec::RpStat* b = nullptr;
  const exec::RpStat* cm = nullptr;
  for (const auto& s : r.rps) {
    if (s.loc == hw::Location{"bg", 1}) a = &s;
    if (s.loc == hw::Location{"bg", 0}) b = &s;
    if (s.id == 0) cm = &s;
  }
  ASSERT_TRUE(a && b && cm);
  EXPECT_EQ(a->elements_out, 10u);          // ten arrays produced
  EXPECT_GE(a->bytes_sent, 10u * 100'000u); // payload crossed its sender
  EXPECT_EQ(a->bytes_received, 0u);
  EXPECT_EQ(b->elements_out, 1u);           // one count
  EXPECT_EQ(b->bytes_received, a->bytes_sent);
  EXPECT_EQ(cm->elements_out, 1u);
  EXPECT_EQ(cm->query, "extract(b)");  // the client manager's result expression
  EXPECT_NE(a->query.find("gen_array"), std::string::npos);
}

// ---------------------------------------------------------------------
// Topology-aware node selection
// ---------------------------------------------------------------------

TEST(SmartSelection, CndbSpreadPrefersEmptyPsets) {
  hw::Cndb db(32, [](int n) { return n / 8; });
  // Occupy two nodes of pset 0 and one of pset 1.
  db.set_busy(0, true);
  db.set_busy(1, true);
  db.set_busy(8, true);
  auto pick = db.next_available_spread();
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(*pick, 16);  // pset 2 or 3 (zero busy nodes)
}

TEST(SmartSelection, FallsBackWithoutPsets) {
  // Without psets the spread strategy degrades to naive next-available
  // (which round-robins its cursor).
  hw::Cndb db(4);
  EXPECT_EQ(db.next_available_spread(), 0);
  EXPECT_EQ(db.next_available_spread(), 1);
  db.set_busy(2, true);
  EXPECT_EQ(db.next_available_spread(), 3);
}

TEST(SmartSelection, SkipsFullPsets) {
  hw::Cndb db(16, [](int n) { return n / 8; });
  for (int i = 0; i < 8; ++i) db.set_busy(i, true);  // pset 0 full
  auto pick = db.next_available_spread();
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(*pick, 8);
}

TEST(SmartSelection, SpreadsReceiversAcrossIoNodes) {
  // Same Query-3-style topology with no allocation hints: naive packs
  // all receivers into pset 0 (one I/O node); spread recruits all four.
  auto run_with = [](exec::NodeSelection sel) {
    ScsqConfig cfg;
    cfg.exec.node_selection = sel;
    Scsq scsq(cfg);
    auto r = scsq.run(
        "select extract(c) from bag of sp a, bag of sp b, sp c, integer n "
        "where c=sp(streamof(sum(merge(b))), 'bg') "
        "and b=spv((select streamof(count(extract(p))) from sp p where p in a), 'bg') "
        "and a=spv((select gen_array(1000000,10) "
        "from integer i where i in iota(1,n)), 'be', 1) "
        "and n=4;");
    std::set<int> psets;
    for (const auto& c : r.connections) {
      if (c.src.cluster == "be" && c.dst.cluster == "bg") psets.insert(c.dst.node / 8);
    }
    EXPECT_EQ(r.results[0].as_int(), 40);
    return std::pair{psets.size(), r.elapsed_s};
  };
  auto [naive_psets, naive_time] = run_with(exec::NodeSelection::kNaive);
  auto [spread_psets, spread_time] = run_with(exec::NodeSelection::kSpread);
  EXPECT_EQ(naive_psets, 1u);
  EXPECT_EQ(spread_psets, 4u);
  // More I/O nodes -> much faster inbound streaming (Fig. 15 obs. 1).
  EXPECT_LT(spread_time, 0.6 * naive_time);
}

// ---------------------------------------------------------------------
// Rack-scale partition (paper §5: "what happens for large amounts of
// back-end and I/O nodes")
// ---------------------------------------------------------------------

TEST(Scale, RackPartitionGeometry) {
  sim::Simulator sim;
  hw::Machine m(sim, hw::CostModel::bluegene_rack());
  EXPECT_EQ(m.bg().compute_node_count(), 512);
  EXPECT_EQ(m.bg().pset_count(), 64);
  EXPECT_EQ(m.be().node_count(), 16);
}

TEST(Scale, ManyParallelStreamsOnRack) {
  // 32 inbound streams over 32 psets with spread selection and 16
  // back-end senders: ~67 stream processes in one CQ.
  ScsqConfig cfg;
  cfg.cost = hw::CostModel::bluegene_rack();
  cfg.exec.node_selection = exec::NodeSelection::kSpread;
  Scsq scsq(cfg);
  auto r = scsq.run(
      "select extract(c) from bag of sp a, bag of sp b, sp c, integer n "
      "where c=sp(streamof(sum(merge(b))), 'bg') "
      "and b=spv((select streamof(count(extract(p))) from sp p where p in a), 'bg') "
      "and a=spv((select gen_array(500000,5) "
      "from integer i where i in iota(1,n)), 'be', urr('be')) "
      "and n=32;");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 32 * 5);
  EXPECT_EQ(r.rp_count, 66u);  // client manager + 32 a + 32 b + c
  // Spread selection recruited many distinct psets.
  std::set<int> psets;
  for (const auto& c : r.connections) {
    if (c.src.cluster == "be" && c.dst.cluster == "bg") psets.insert(c.dst.node / 8);
  }
  EXPECT_GE(psets.size(), 16u);
  // With 16 sending NICs and 32 I/O paths, aggregate inbound bandwidth
  // must exceed the single-NIC ceiling of the small partition.
  const double mbps = 32.0 * 5 * 500'000 * 8 / r.elapsed_s / 1e6;
  EXPECT_GT(mbps, 940.0);
}

TEST(Scale, MergeOfSixtyFourStreams) {
  ScsqConfig cfg;
  cfg.cost = hw::CostModel::bluegene_rack();
  Scsq scsq(cfg);
  auto r = scsq.run(
      "select extract(b) from bag of sp a, sp b, integer n "
      "where b=sp(count(merge(a)), 'bg') "
      "and a=spv((select gen_array(100000,3) "
      "from integer i where i in iota(1,n)), 'bg') "
      "and n=64;");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 64 * 3);
}

}  // namespace
}  // namespace scsq
