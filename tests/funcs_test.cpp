#include <gtest/gtest.h>

#include "funcs/fft.hpp"
#include "funcs/textgen.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scsq::funcs {
namespace {

void expect_close(const CVec& a, const CVec& b, double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "index " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "index " << i;
  }
}

TEST(Fft, SizeOneIsIdentity) {
  auto out = fft({5.0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].real(), 5.0);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  auto out = fft({1.0, 0.0, 0.0, 0.0});
  for (const auto& c : out) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantSignalConcentratesAtDc) {
  auto out = fft({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(out[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < out.size(); ++k) {
    EXPECT_NEAR(std::abs(out[k]), 0.0, 1e-12);
  }
}

TEST(Fft, MatchesNaiveDftOnRandomSignals) {
  util::Rng rng(99);
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    expect_close(fft(x), naive_dft(x), 1e-7 * static_cast<double>(n));
  }
}

TEST(Fft, LinearityProperty) {
  util::Rng rng(7);
  std::vector<double> x(32), y(32), z(32);
  for (std::size_t i = 0; i < 32; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
    z[i] = 2.0 * x[i] + 3.0 * y[i];
  }
  auto fx = fft(x), fy = fft(y), fz = fft(z);
  for (std::size_t k = 0; k < 32; ++k) {
    auto expect = 2.0 * fx[k] + 3.0 * fy[k];
    EXPECT_NEAR(std::abs(fz[k] - expect), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalProperty) {
  util::Rng rng(3);
  std::vector<double> x(128);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = rng.uniform(-1, 1);
    time_energy += v * v;
  }
  double freq_energy = 0.0;
  for (const auto& c : fft(x)) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-9);
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(OddEven, SplitAndSizes) {
  std::vector<double> x{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(even(x), (std::vector<double>{0, 2, 4, 6}));
  EXPECT_EQ(odd(x), (std::vector<double>{1, 3, 5, 7}));
}

TEST(OddEven, EmptyAndSingleton) {
  EXPECT_TRUE(odd({}).empty());
  EXPECT_TRUE(even({}).empty());
  EXPECT_EQ(even({9.0}), (std::vector<double>{9.0}));
  EXPECT_TRUE(odd({9.0}).empty());
}

TEST(RadixCombine, ReconstructsFullFft) {
  // The paper's radix2 identity: combining fft(even(x)) and fft(odd(x))
  // yields fft(x).
  util::Rng rng(42);
  for (std::size_t n : {2u, 8u, 64u, 512u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-1, 1);
    auto combined = radix_combine(fft(even(x)), fft(odd(x)));
    expect_close(combined, fft(x), 1e-7 * static_cast<double>(n));
  }
}

TEST(TextGen, FilenameTable) {
  EXPECT_EQ(filename_for(1), "lofar_obs_1.log");
  EXPECT_EQ(filename_for(999), "lofar_obs_999.log");
}

TEST(TextGen, ContentDeterministic) {
  auto a = file_lines("lofar_obs_7.log");
  auto b = file_lines("lofar_obs_7.log");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
}

TEST(TextGen, DifferentFilesDiffer) {
  EXPECT_NE(file_lines("lofar_obs_1.log"), file_lines("lofar_obs_2.log"));
}

TEST(TextGen, GrepFindsOnlyMatchingLines) {
  auto matches = grep_file("pulsar", "lofar_obs_3.log");
  for (const auto& line : matches) {
    EXPECT_TRUE(util::contains(line, "pulsar")) << line;
  }
  // Cross-check against a manual scan.
  std::size_t expected = 0;
  for (const auto& line : file_lines("lofar_obs_3.log")) {
    if (util::contains(line, "pulsar")) ++expected;
  }
  EXPECT_EQ(matches.size(), expected);
}

TEST(TextGen, GrepNoMatches) {
  EXPECT_TRUE(grep_file("zebra", "lofar_obs_1.log").empty());
}

}  // namespace
}  // namespace scsq::funcs
