#include <gtest/gtest.h>

#include "hw/cndb.hpp"
#include "hw/machine.hpp"

namespace scsq::hw {
namespace {

// ---------------------------------------------------------------------
// Cndb
// ---------------------------------------------------------------------

Cndb make_bg_cndb() {
  // 32 nodes, psets of 8 (the paper's experiment partition).
  return Cndb(32, [](int n) { return n / 8; });
}

TEST(Cndb, NextAvailableRoundRobins) {
  Cndb db(4);
  EXPECT_EQ(db.next_available(), 0);
  EXPECT_EQ(db.next_available(), 1);
  EXPECT_EQ(db.next_available(), 2);
  EXPECT_EQ(db.next_available(), 3);
  EXPECT_EQ(db.next_available(), 0);  // wraps
}

TEST(Cndb, NextAvailableSkipsBusy) {
  Cndb db(4);
  db.set_busy(0, true);
  db.set_busy(1, true);
  EXPECT_EQ(db.next_available(), 2);
}

TEST(Cndb, NextAvailableEmptyWhenAllBusy) {
  Cndb db(2);
  db.set_busy(0, true);
  db.set_busy(1, true);
  EXPECT_FALSE(db.next_available().has_value());
}

TEST(Cndb, FirstAvailableInSequence) {
  Cndb db(8);
  db.set_busy(3, true);
  EXPECT_EQ(db.first_available_in({3, 5, 7}), 5);
  EXPECT_EQ(db.first_available_in({3}), std::nullopt);
  EXPECT_EQ(db.first_available_in({}), std::nullopt);
}

TEST(Cndb, RoundRobinAvailableWraps) {
  Cndb db(3);
  db.set_busy(1, true);
  auto seq = db.round_robin_available(5);
  EXPECT_EQ(seq, (std::vector<int>{0, 2, 0, 2, 0}));
}

TEST(Cndb, NodesInPset) {
  auto db = make_bg_cndb();
  auto p1 = db.nodes_in_pset(1);
  ASSERT_EQ(p1.size(), 8u);
  EXPECT_EQ(p1.front(), 8);
  EXPECT_EQ(p1.back(), 15);
  EXPECT_EQ(db.pset_count(), 4);
}

TEST(Cndb, PsetRoundRobinVisitsEachPsetFirst) {
  auto db = make_bg_cndb();
  auto seq = db.pset_round_robin(6);
  ASSERT_EQ(seq.size(), 6u);
  // First four entries: first node of psets 0..3; then second nodes.
  EXPECT_EQ(seq[0] / 8, 0);
  EXPECT_EQ(seq[1] / 8, 1);
  EXPECT_EQ(seq[2] / 8, 2);
  EXPECT_EQ(seq[3] / 8, 3);
  EXPECT_EQ(seq[4] / 8, 0);
  EXPECT_EQ(seq[5] / 8, 1);
  // All entries distinct (they are meant to be selected in order).
  std::set<int> uniq(seq.begin(), seq.end());
  EXPECT_EQ(uniq.size(), seq.size());
}

TEST(Cndb, PsetRoundRobinSkipsBusyNodes) {
  auto db = make_bg_cndb();
  db.set_busy(0, true);  // first node of pset 0
  auto seq = db.pset_round_robin(4);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0], 1);  // next available node of pset 0
}

// ---------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------

TEST(Machine, LofarGeometry) {
  sim::Simulator sim;
  Machine m(sim);
  EXPECT_EQ(m.bg().compute_node_count(), 32);
  EXPECT_EQ(m.bg().pset_count(), 4);
  EXPECT_EQ(m.be().node_count(), 4);
  EXPECT_EQ(m.fe().node_count(), 2);
  EXPECT_TRUE(m.has_cluster("bg"));
  EXPECT_TRUE(m.has_cluster("be"));
  EXPECT_TRUE(m.has_cluster("fe"));
  EXPECT_FALSE(m.has_cluster("xx"));
}

TEST(Machine, PsetMapping) {
  sim::Simulator sim;
  Machine m(sim);
  EXPECT_EQ(m.bg().pset_of(0), 0);
  EXPECT_EQ(m.bg().pset_of(7), 0);
  EXPECT_EQ(m.bg().pset_of(8), 1);
  EXPECT_EQ(m.bg().pset_of(31), 3);
}

TEST(Machine, FabricHostOfBgIsItsIoNode) {
  sim::Simulator sim;
  Machine m(sim);
  // Compute nodes in the same pset share one I/O node host.
  EXPECT_EQ(m.fabric_host_of({"bg", 0}), m.fabric_host_of({"bg", 7}));
  EXPECT_NE(m.fabric_host_of({"bg", 0}), m.fabric_host_of({"bg", 8}));
  // Linux nodes each have their own host.
  EXPECT_NE(m.fabric_host_of({"be", 0}), m.fabric_host_of({"be", 1}));
}

TEST(Machine, IoCoordinationFactor) {
  sim::Simulator sim;
  Machine m(sim);
  EXPECT_DOUBLE_EQ(m.io_coordination_factor(), 1.0);  // no senders
  auto io0 = m.bg().io_fabric_host(0);
  auto be0 = m.fabric_host_of({"be", 0});
  auto be1 = m.fabric_host_of({"be", 1});
  auto f1 = m.fabric().open_flow(be0, io0);
  EXPECT_DOUBLE_EQ(m.io_coordination_factor(), 1.0);  // one sender
  auto f2 = m.fabric().open_flow(be1, io0);
  EXPECT_DOUBLE_EQ(m.io_coordination_factor(), 1.0 + m.cost().io_coord_coeff);
  m.fabric().close_flow(f1);
  m.fabric().close_flow(f2);
  EXPECT_DOUBLE_EQ(m.io_coordination_factor(), 1.0);
}

TEST(Machine, ComputeMuxFactor) {
  sim::Simulator sim;
  Machine m(sim);
  EXPECT_DOUBLE_EQ(m.compute_mux_factor(0), 1.0);
  m.register_bg_inbound(0);
  EXPECT_DOUBLE_EQ(m.compute_mux_factor(0), 1.0);
  m.register_bg_inbound(0);
  m.register_bg_inbound(0);
  EXPECT_DOUBLE_EQ(m.compute_mux_factor(0), 1.0 + 2 * m.cost().compute_mux_coeff);
  m.unregister_bg_inbound(0);
  m.unregister_bg_inbound(0);
  m.unregister_bg_inbound(0);
  EXPECT_DOUBLE_EQ(m.compute_mux_factor(0), 1.0);
}

TEST(Machine, LinuxCpusAreDual) {
  sim::Simulator sim;
  Machine m(sim);
  EXPECT_EQ(m.cpu_of({"be", 0}).capacity(), 2);
  EXPECT_EQ(m.cpu_of({"bg", 0}).capacity(), 1);
}

TEST(Machine, NodeParamsPerCluster) {
  sim::Simulator sim;
  Machine m(sim);
  // BlueGene compute CPUs are slower per byte than Linux nodes.
  EXPECT_GT(m.node_params({"bg", 0}).marshal_per_byte_s,
            m.node_params({"be", 0}).marshal_per_byte_s);
}

}  // namespace
}  // namespace scsq::hw
