// End-to-end tests: the paper's queries running on the full stack
// (SCSQL -> binder -> engine -> RPs -> drivers -> simulated hardware).
// Workload sizes are scaled down from the paper's 100 x 3 MB so the
// whole suite stays fast; the benches run the full-size experiments.
#include <gtest/gtest.h>

#include <sstream>

#include "core/scsq.hpp"
#include "funcs/fft.hpp"
#include "funcs/textgen.hpp"
#include "util/rng.hpp"

namespace scsq {
namespace {

using catalog::Kind;

std::string inbound_query(int query_no, int n, std::uint64_t bytes = 300'000,
                          int arrays = 10) {
  // Queries 1-6 of §3.2, parameterized. Differences:
  //   receivers:  Q1/Q2 single compute node b; Q3-Q6 spv over n nodes
  //   b placement: Q3/Q4 inPset(1); Q5/Q6 psetrr()
  //   a placement: Q1/Q3/Q5 all on be node 1; Q2/Q4/Q6 urr('be')
  std::ostringstream q;
  const char* a_alloc = (query_no % 2 == 1) ? "1" : "urr('be')";
  if (query_no <= 2) {
    q << "select extract(c) from bag of sp a, sp b, sp c, integer n"
      << " where c=sp(extract(b), 'bg')"
      << " and b=sp(count(merge(a)), 'bg')"
      << " and a=spv((select gen_array(" << bytes << "," << arrays << ")"
      << "            from integer i where i in iota(1,n)), 'be', " << a_alloc << ")"
      << " and n=" << n << ";";
  } else {
    const char* b_alloc = (query_no <= 4) ? "inPset(1)" : "psetrr()";
    q << "select extract(c) from bag of sp a, bag of sp b, sp c, integer n"
      << " where c=sp(streamof(sum(merge(b))), 'bg')"
      << " and b=spv((select streamof(count(extract(p))) from sp p where p in a),"
      << "           'bg', " << b_alloc << ")"
      << " and a=spv((select gen_array(" << bytes << "," << arrays << ")"
      << "            from integer i where i in iota(1,n)), 'be', " << a_alloc << ")"
      << " and n=" << n << ";";
  }
  return q.str();
}

// ---------------------------------------------------------------------
// Intra-BG point-to-point (§3.1, Fig. 5/6)
// ---------------------------------------------------------------------

TEST(PointToPoint, PaperQueryCountsAllArrays) {
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(300000,20),'bg',1);");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 20);
  EXPECT_EQ(r.rp_count, 3u);  // a, b, and the client manager
  EXPECT_GT(r.elapsed_s, 0.0);
  EXPECT_GE(r.stream_bytes, 20u * 300'000u);
}

TEST(PointToPoint, ExplicitNodeSelectionHonored) {
  Scsq scsq;
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(1000,5),'bg',1);");
  // Find the a->b connection and check its endpoints.
  bool found = false;
  for (const auto& c : r.connections) {
    if (c.src == hw::Location{"bg", 1} && c.dst == hw::Location{"bg", 0}) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PointToPoint, CountInvariantAcrossBufferSizes) {
  for (std::uint64_t buf : {100ull, 1000ull, 10'000ull, 100'000ull}) {
    ScsqConfig cfg;
    cfg.exec.buffer_bytes = buf;
    Scsq scsq(cfg);
    auto r = scsq.run(
        "select extract(b) from sp a, sp b "
        "where b=sp(streamof(count(extract(a))),'bg',0) "
        "and a=sp(gen_array(50000,8),'bg',1);");
    ASSERT_EQ(r.results.size(), 1u) << "buffer " << buf;
    EXPECT_EQ(r.results[0].as_int(), 8) << "buffer " << buf;
  }
}

TEST(PointToPoint, SingleAndDoubleBufferingBothCorrect) {
  for (int buffers : {1, 2}) {
    ScsqConfig cfg;
    cfg.exec.send_buffers = buffers;
    Scsq scsq(cfg);
    auto r = scsq.run(
        "select extract(b) from sp a, sp b "
        "where b=sp(streamof(count(extract(a))),'bg',0) "
        "and a=sp(gen_array(100000,10),'bg',1);");
    EXPECT_EQ(r.results[0].as_int(), 10);
  }
}

TEST(PointToPoint, DoubleBufferingFasterForLargeBuffers) {
  auto run_mode = [](int buffers) {
    ScsqConfig cfg;
    cfg.exec.buffer_bytes = 100'000;
    cfg.exec.send_buffers = buffers;
    Scsq scsq(cfg);
    return scsq
        .run("select extract(b) from sp a, sp b "
             "where b=sp(streamof(count(extract(a))),'bg',0) "
             "and a=sp(gen_array(1000000,10),'bg',1);")
        .elapsed_s;
  };
  EXPECT_LT(run_mode(2), run_mode(1));
}

// ---------------------------------------------------------------------
// Intra-BG stream merging (§3.1, Fig. 7/8)
// ---------------------------------------------------------------------

std::string merge_query(int x, int y, std::uint64_t bytes = 300'000, int arrays = 10) {
  std::ostringstream q;
  q << "Select extract(c) from sp a, sp b, sp c"
    << " where c=sp(count(merge({a,b})), 'bg',0)"
    << " and a=sp(gen_array(" << bytes << "," << arrays << "),'bg'," << x << ")"
    << " and b=sp(gen_array(" << bytes << "," << arrays << "),'bg'," << y << ");";
  return q.str();
}

TEST(Merge, CountsArraysFromBothStreams) {
  Scsq scsq;
  auto r = scsq.run(merge_query(1, 4));
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 20);
  EXPECT_EQ(r.rp_count, 4u);
}

TEST(Merge, BalancedBeatsSequential) {
  // Fig. 8: balanced node selection (x=1, y=4) outperforms sequential
  // (x=1, y=2) because b's traffic is not routed through a's
  // co-processor / a's outgoing link.
  auto run_sel = [](int x, int y) {
    ScsqConfig cfg;
    cfg.exec.buffer_bytes = 64 * 1024;
    Scsq scsq(cfg);
    return scsq.run(merge_query(x, y, 1'000'000, 10)).elapsed_s;
  };
  const double t_sequential = run_sel(1, 2);
  const double t_balanced = run_sel(1, 4);
  EXPECT_LT(t_balanced, t_sequential);
}

TEST(Merge, SmallBuffersPaySwitchingPenalty) {
  // Fig. 8 observation 3: merging with small buffers is much slower
  // than with large ones (receiver co-processor source switching).
  auto run_buf = [](std::uint64_t buf) {
    ScsqConfig cfg;
    cfg.exec.buffer_bytes = buf;
    Scsq scsq(cfg);
    auto r = scsq.run(merge_query(1, 4, 200'000, 10));
    EXPECT_EQ(r.results[0].as_int(), 20);
    return r.elapsed_s;
  };
  EXPECT_GT(run_buf(1000), 2.0 * run_buf(100'000));
}

// ---------------------------------------------------------------------
// BG inbound streaming, Queries 1-6 (§3.2, Figs. 9-15)
// ---------------------------------------------------------------------

TEST(Inbound, AllSixQueriesCountCorrectly) {
  for (int qn = 1; qn <= 6; ++qn) {
    Scsq scsq;
    auto r = scsq.run(inbound_query(qn, 4));
    ASSERT_EQ(r.results.size(), 1u) << "query " << qn;
    EXPECT_EQ(r.results[0].as_int(), 4 * 10) << "query " << qn;
  }
}

TEST(Inbound, VaryingN) {
  for (int n : {1, 2, 5}) {
    Scsq scsq;
    auto r = scsq.run(inbound_query(5, n));
    EXPECT_EQ(r.results[0].as_int(), n * 10) << "n=" << n;
  }
}

TEST(Inbound, Query1SingleBackendNodeUsed) {
  Scsq scsq;
  auto r = scsq.run(inbound_query(1, 4));
  for (const auto& c : r.connections) {
    if (c.src.cluster == "be") {
      EXPECT_EQ(c.src.node, 1);  // all on be node 1
    }
  }
}

TEST(Inbound, Query2SpreadsBackendNodes) {
  Scsq scsq;
  auto r = scsq.run(inbound_query(2, 4));
  std::set<int> be_nodes;
  for (const auto& c : r.connections) {
    if (c.src.cluster == "be") be_nodes.insert(c.src.node);
  }
  EXPECT_EQ(be_nodes.size(), 4u);  // urr('be') round-robins 4 nodes
}

TEST(Inbound, Query3ReceiversShareOnePset) {
  Scsq scsq;
  auto r = scsq.run(inbound_query(3, 4));
  std::set<int> psets;
  for (const auto& c : r.connections) {
    if (c.src.cluster == "be" && c.dst.cluster == "bg") psets.insert(c.dst.node / 8);
  }
  EXPECT_EQ(psets.size(), 1u);
  EXPECT_TRUE(psets.contains(1));  // inPset(1)
}

TEST(Inbound, Query5ReceiversSpreadAcrossPsets) {
  Scsq scsq;
  auto r = scsq.run(inbound_query(5, 4));
  std::set<int> psets;
  for (const auto& c : r.connections) {
    if (c.src.cluster == "be" && c.dst.cluster == "bg") psets.insert(c.dst.node / 8);
  }
  EXPECT_EQ(psets.size(), 4u);  // psetrr(): one receiver per pset
}

TEST(Inbound, SingleIoNodeQueriesSlowerThanMultiIo) {
  // Fig. 15 observation 1: Queries 1-4 (one I/O node) are significantly
  // slower than Query 5 (n I/O nodes).
  auto elapsed = [](int qn) {
    Scsq scsq;
    return scsq.run(inbound_query(qn, 4, 1'000'000, 10)).elapsed_s;
  };
  const double q1 = elapsed(1);
  const double q3 = elapsed(3);
  const double q5 = elapsed(5);
  EXPECT_LT(q5, q3);
  EXPECT_LT(q5, q1);
}

TEST(Inbound, OneSenderBeatsManySenders) {
  // Fig. 15 observations 3/4: Q1 faster than Q2; Q5 faster than Q6.
  auto elapsed = [](int qn) {
    Scsq scsq;
    return scsq.run(inbound_query(qn, 4, 1'000'000, 10)).elapsed_s;
  };
  EXPECT_LT(elapsed(1), elapsed(2));
  EXPECT_LT(elapsed(5), elapsed(6));
}

TEST(Inbound, TwoReceiversBeatOneOnSingleIoNode) {
  // Fig. 15 observation 2: Q3 (spread receivers) is a bit faster than
  // Q1 (single receiver) even with a single I/O node.
  auto elapsed = [](int qn, int n) {
    Scsq scsq;
    return scsq.run(inbound_query(qn, n, 1'000'000, 10)).elapsed_s;
  };
  EXPECT_LT(elapsed(3, 4), elapsed(1, 4));
}

// ---------------------------------------------------------------------
// MapReduce grep (§2.4)
// ---------------------------------------------------------------------

TEST(MapReduce, GrepMatchesOracle) {
  Scsq scsq;
  auto r = scsq.run(
      "merge(spv((select grep(\"pulsar\", filename(i)) "
      "from integer i where i in iota(1,20)), 'be', urr('be')));");
  // Oracle: direct scan of the same synthetic files.
  std::size_t expected = 0;
  for (int i = 1; i <= 20; ++i) {
    expected += funcs::grep_file("pulsar", funcs::filename_for(i)).size();
  }
  EXPECT_EQ(r.results.size(), expected);
  EXPECT_GT(expected, 0u);  // the dictionary guarantees hits
  for (const auto& line : r.results) {
    EXPECT_EQ(line.kind(), Kind::kStr);
    EXPECT_NE(line.as_str().find("pulsar"), std::string::npos);
  }
}

TEST(MapReduce, CountReduceOverGreps) {
  Scsq scsq;
  auto r = scsq.run(
      "count(merge(spv((select grep(\"beam\", filename(i)) "
      "from integer i where i in iota(1,10)), 'be', 1)));");
  std::size_t expected = 0;
  for (int i = 1; i <= 10; ++i) {
    expected += funcs::grep_file("beam", funcs::filename_for(i)).size();
  }
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(static_cast<std::size_t>(r.results[0].as_int()), expected);
}

// ---------------------------------------------------------------------
// radix2 FFT query function (§2.4)
// ---------------------------------------------------------------------

TEST(Radix2, MatchesDirectFft) {
  Scsq scsq;
  // Two signal arrays of 64 samples each.
  std::vector<std::vector<double>> arrays;
  util::Rng rng(5);
  for (int k = 0; k < 2; ++k) {
    std::vector<double> x(64);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    arrays.push_back(std::move(x));
  }
  scsq.register_stream_source("antenna1", arrays);
  auto r = scsq.run(R"(
    create function radix2(string s) -> stream
    as select radixcombine(merge({a,b}))
    from sp a, sp b, sp c
    where a=sp(fft(odd(extract(c))))
    and b=sp(fft(even(extract(c))))
    and c=sp(receiver(s));
    select radix2('antenna1');
  )");
  ASSERT_EQ(r.results.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    const auto& got = r.results[k].as_carray();
    auto expect = funcs::fft(arrays[k]);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(std::abs(got[i] - expect[i]), 0.0, 1e-9) << "array " << k << " bin " << i;
    }
  }
  // The function body spawned three SPs (a, b, c) plus the client.
  EXPECT_EQ(r.rp_count, 4u);
}

// ---------------------------------------------------------------------
// Engine-level semantics and error handling
// ---------------------------------------------------------------------

TEST(Engine, ScalarSelect) {
  Scsq scsq;
  auto r = scsq.run("select 1 + 2;");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 3);
}

TEST(Engine, FunctionReturningScalar) {
  Scsq scsq;
  auto r = scsq.run(
      "create function three() -> integer as select 3;"
      "select three();");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 3);
}

TEST(Engine, FalseFilterYieldsNoResults) {
  Scsq scsq;
  auto r = scsq.run("select n from integer n where n=4 and n > 10;");
  EXPECT_TRUE(r.results.empty());
}

TEST(Engine, UnknownClusterThrows) {
  Scsq scsq;
  EXPECT_THROW(scsq.run("select extract(a) from sp a where a=sp(gen_array(1,1),'xx');"),
               scsql::Error);
}

TEST(Engine, BusyNodeInAllocationThrows) {
  Scsq scsq;
  // Both SPs pinned to bg node 0: the second allocation must fail
  // ("in case the stream contains no available node, the query will
  // fail", §2.4).
  EXPECT_THROW(scsq.run("select extract(b) from sp a, sp b "
                        "where a=sp(gen_array(1,1),'bg',0) "
                        "and b=sp(streamof(count(extract(a))),'bg',0);"),
               scsql::Error);
}

TEST(Engine, UnknownStreamSourceThrows) {
  Scsq scsq;
  EXPECT_THROW(
      scsq.run("select extract(a) from sp a where a=sp(receiver('nope'),'bg');"),
      scsql::Error);
}

TEST(Engine, NestedSpInsideRpPlanThrows) {
  Scsq scsq;
  // extract of a variable holding a non-sp value.
  EXPECT_THROW(scsq.run("select extract(n) from integer n where n=4;"), scsql::Error);
}

TEST(Engine, SequentialQueriesOnOneEngine) {
  Scsq scsq;
  auto r1 = scsq.run("select extract(b) from sp a, sp b "
                     "where b=sp(streamof(count(extract(a))),'bg',0) "
                     "and a=sp(gen_array(1000,3),'bg',1);");
  EXPECT_EQ(r1.results[0].as_int(), 3);
  // Nodes released: the same explicit placement works again.
  auto r2 = scsq.run("select extract(b) from sp a, sp b "
                     "where b=sp(streamof(count(extract(a))),'bg',0) "
                     "and a=sp(gen_array(1000,4),'bg',1);");
  EXPECT_EQ(r2.results[0].as_int(), 4);
}

TEST(Engine, SetupTimeIncludesBgPolling) {
  Scsq scsq;
  auto r = scsq.run("select extract(b) from sp a, sp b "
                    "where b=sp(streamof(count(extract(a))),'bg',0) "
                    "and a=sp(gen_array(1000,1),'bg',1);");
  // Two BlueGene registrations, each landing on a 1 ms poll tick.
  EXPECT_GE(r.setup_s, 1e-3);
  EXPECT_LT(r.setup_s, 0.1);
}

TEST(Engine, StreamBytesAccounted) {
  Scsq scsq;
  auto r = scsq.run("select extract(b) from sp a, sp b "
                    "where b=sp(streamof(count(extract(a))),'bg',0) "
                    "and a=sp(gen_array(100000,10),'bg',1);");
  // a->b carries at least the payload; b->client is tiny.
  EXPECT_GE(r.stream_bytes, 10u * 100'000u);
  EXPECT_LT(r.stream_bytes, 2u * 10u * 100'000u);
}

}  // namespace
}  // namespace scsq
