// Tests for the Linear-Road-inspired workload: generator properties,
// encode/decode round-trips, oracle behavior, and the incremental
// streaming operators validated against the oracles through full
// distributed SCSQL queries.
#include <gtest/gtest.h>

#include <sstream>

#include "core/scsq.hpp"
#include "lroad/workload.hpp"

namespace scsq::lroad {
namespace {

// Matches the defaults the lr_source() builtin uses (notably the
// segment count), so query results can be compared with local oracles.
WorkloadParams small_params(std::uint64_t seed = 7) {
  WorkloadParams p;
  p.vehicles = 20;
  p.ticks = 30;
  p.seed = seed;
  return p;
}

TEST(Workload, DeterministicForSeed) {
  auto a = generate_reports(small_params(3));
  auto b = generate_reports(small_params(3));
  EXPECT_EQ(a, b);
  auto c = generate_reports(small_params(4));
  EXPECT_NE(a, c);
}

TEST(Workload, ReportCountAndRanges) {
  auto p = small_params();
  auto reports = generate_reports(p);
  EXPECT_EQ(reports.size(), static_cast<std::size_t>(p.vehicles * p.ticks));
  for (const auto& r : reports) {
    EXPECT_GE(r.vehicle, 0);
    EXPECT_LT(r.vehicle, p.vehicles);
    EXPECT_GE(r.segment, 0);
    EXPECT_LT(r.segment, p.segments);
    EXPECT_GE(r.speed, 0.0);
    EXPECT_LE(r.speed, p.max_speed + 1e-9);
  }
}

TEST(Workload, NoZeroSpeedsWithoutAccident) {
  for (const auto& r : generate_reports(small_params())) {
    EXPECT_GT(r.speed, 0.0);
  }
}

TEST(Workload, AccidentStopsVehicles) {
  auto p = small_params();
  p.accident_start_tick = 10;
  auto reports = generate_reports(p);
  int zero_reports = 0;
  for (const auto& r : reports) {
    if (r.speed == 0.0) ++zero_reports;
  }
  // Two vehicles stopped for accident_duration_ticks ticks.
  EXPECT_EQ(zero_reports, 2 * p.accident_duration_ticks);
}

TEST(Workload, EncodeDecodeRoundTrip) {
  auto reports = generate_reports(small_params());
  std::vector<Report> first_tick(reports.begin(), reports.begin() + 20);
  auto encoded = encode_tick(first_tick);
  EXPECT_EQ(encoded.size(), 80u);
  EXPECT_EQ(decode_reports(encoded), first_tick);
}

TEST(Workload, EncodeTraceBatchesAllTicks) {
  auto p = small_params();
  auto trace = encode_trace(p);
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(p.ticks));
  std::size_t total = 0;
  for (const auto& batch : trace) total += batch.size() / 4;
  EXPECT_EQ(total, static_cast<std::size_t>(p.vehicles * p.ticks));
}

TEST(Oracle, LavCoversActiveSegments) {
  auto reports = generate_reports(small_params());
  auto lav = oracle_lav(reports, 5, 1.0);
  EXPECT_FALSE(lav.empty());
  for (const auto& [seg, v] : lav) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 70.0 + 1e-9);
  }
}

TEST(Oracle, NoTollsOnFreeFlowingRoad) {
  // Without an accident every vehicle drives at >= 30 mph, well above
  // the 40 mph threshold on average... but wobble can dip segments with
  // a slow driver; use a high-speed fleet to make the check sharp.
  auto p = small_params();
  p.min_speed = 50.0;
  auto reports = generate_reports(p);
  EXPECT_TRUE(oracle_tolls(reports, TollParams{}, p.tick_seconds).empty());
}

TEST(Oracle, AccidentCausesTollsAndDetection) {
  auto p = small_params();
  p.vehicles = 60;  // enough traffic to exceed the free-vehicle count
  p.ticks = 40;
  p.accident_start_tick = 32;  // accident still active in the last window
  p.accident_duration_ticks = 8;
  auto reports = generate_reports(p);

  auto accidents = oracle_accidents(reports, 4);
  ASSERT_FALSE(accidents.empty());

  auto tolls = oracle_tolls(reports, TollParams{}, p.tick_seconds);
  // The accident segment congests: expect at least one tolled segment.
  ASSERT_FALSE(tolls.empty());
  for (const auto& [seg, toll] : tolls) EXPECT_GT(toll, 0.0);
}

TEST(Oracle, AccidentsNeedConsecutiveStops) {
  // A vehicle stopped for 3 ticks is not an accident at threshold 4.
  std::vector<Report> reports;
  for (int t = 0; t < 3; ++t) reports.push_back({double(t), 1, 0.0, 2});
  reports.push_back({3.0, 1, 30.0, 2});
  EXPECT_TRUE(oracle_accidents(reports, 4).empty());
  reports.push_back({4.0, 1, 0.0, 2});
  EXPECT_TRUE(oracle_accidents(reports, 4).empty());  // run restarted
}

// ---------------------------------------------------------------------
// Streaming operators vs. oracles, through distributed queries
// ---------------------------------------------------------------------

std::vector<std::pair<int, double>> decode_pairs(const catalog::Object& obj) {
  const auto& a = obj.as_darray();
  std::vector<std::pair<int, double>> out;
  for (std::size_t i = 0; i + 1 < a.size(); i += 2) {
    out.emplace_back(static_cast<int>(a[i]), a[i + 1]);
  }
  return out;
}

void expect_pairs_near(const std::vector<std::pair<int, double>>& got,
                       const std::vector<std::pair<int, double>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first) << "entry " << i;
    EXPECT_NEAR(got[i].second, want[i].second, 1e-9) << "entry " << i;
  }
}

class LroadQuery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LroadQuery, StreamingLavMatchesOracle) {
  const auto seed = GetParam();
  Scsq scsq;
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(lr_lav(extract(a), 5), 'bg')"
    << " and a=sp(lr_source(20, 30, " << seed << "), 'be');";
  auto r = scsq.run(q.str());
  ASSERT_EQ(r.results.size(), 1u);

  auto p = small_params(seed);
  auto want = oracle_lav(generate_reports(p), 5, p.tick_seconds);
  expect_pairs_near(decode_pairs(r.results[0]), want);
}

TEST_P(LroadQuery, StreamingTollsMatchOracle) {
  const auto seed = GetParam();
  Scsq scsq;
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(lr_tolls(extract(a), 5), 'bg')"
    << " and a=sp(lr_source_acc(60, 40, " << seed << ", 32), 'be');";
  auto r = scsq.run(q.str());
  ASSERT_EQ(r.results.size(), 1u);

  WorkloadParams p = small_params(seed);
  p.vehicles = 60;
  p.ticks = 40;
  p.accident_start_tick = 32;
  p.accident_duration_ticks = 8;
  auto want = oracle_tolls(generate_reports(p), TollParams{}, p.tick_seconds);
  expect_pairs_near(decode_pairs(r.results[0]), want);
}

TEST_P(LroadQuery, StreamingAccidentsMatchOracle) {
  const auto seed = GetParam();
  Scsq scsq;
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(lr_accidents(extract(a), 4), 'bg')"
    << " and a=sp(lr_source_acc(60, 40, " << seed << ", 32), 'be');";
  auto r = scsq.run(q.str());
  ASSERT_EQ(r.results.size(), 1u);

  WorkloadParams p = small_params(seed);
  p.vehicles = 60;
  p.ticks = 40;
  p.accident_start_tick = 32;
  p.accident_duration_ticks = 8;
  auto want = oracle_accidents(generate_reports(p), 4);
  const auto& got = r.results[0].as_darray();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(static_cast<int>(got[i]), want[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LroadQuery, ::testing::Values(1, 7, 42, 1234, 99999));

TEST(LroadQuery, SplitStreamToBothAnalyses) {
  // One source, two independent analyses subscribing to it (stream
  // splitting, like the radix2 query): tolls and accident detection.
  Scsq scsq;
  auto r = scsq.run(
      "select extract(d) from sp a, sp b, sp c, sp d "
      "where d=sp(count(merge({b, c})), 'fe') "
      "and b=sp(lr_tolls(extract(a), 5), 'bg') "
      "and c=sp(lr_accidents(extract(a), 4), 'bg') "
      "and a=sp(lr_source_acc(60, 40, 5, 32), 'be');");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 2);  // one result array from each analysis
}

}  // namespace
}  // namespace scsq::lroad
