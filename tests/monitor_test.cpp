// Introspection-monitor regression suite (DESIGN.md §5.8).
//
// The load-bearing invariant of the monitor PR: monitors are pure
// observers. A continuous SCSQL query over system.metrics / system.lp
// runs at every sampler window boundary as a zero-duration read-only
// callback driven by synchronous coroutine resumption under an all-zero
// cost model — so every figure table, elapsed_s and result is
// byte-identical with monitors on or off, at every SCSQ_SIM_LPS x
// SCSQ_BATCH_SIZE combination. These tests pin that invariant at the
// engine level and cover the surface around it: the system.* stream row
// shapes, above() threshold semantics, register-time validation of
// non-introspection queries, the LP live-sample provider hook, and the
// alert JSONL golden shape.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/object.hpp"
#include "core/scsq.hpp"
#include "exec/eval.hpp"
#include "obs/monitor.hpp"
#include "plan/builder.hpp"
#include "scsql/parser.hpp"
#include "sim/plp.hpp"
#include "util/json.hpp"

namespace scsq {
namespace {

using catalog::Kind;
using catalog::Object;

const char* kFig6Script =
    "select extract(b) from sp a, sp b"
    " where b=sp(streamof(count(extract(a))),'bg',0)"
    " and a=sp(gen_array(100000,3),'bg',1);";

// Fig. 8-shaped merge workload: two producers into one merge consumer.
const char* kFig8Script =
    "select extract(c) from sp a, sp b, sp c"
    " where c=sp(count(merge({a,b})), 'bg',0)"
    " and a=sp(gen_array(300000,10),'bg',1)"
    " and b=sp(gen_array(300000,10),'bg',4);";

const char* kThresholdMonitor =
    "above(sum(system.rates('transport.link.bytes')), 1)";

struct RunOut {
  exec::RunReport report;
  std::string alerts_jsonl;   // serialized alerts, for byte-comparison
  std::size_t alert_count = 0;
  std::size_t windows = 0;
};

RunOut run_case(bool monitored, int lps, std::size_t batch,
                const std::string& monitor_query = kThresholdMonitor,
                const char* script = kFig6Script) {
  ScsqConfig config;
  config.exec.sample_interval_s = 1e-3;  // sampling on in *every* case:
  config.exec.sim_lps = lps;             // monitored-vs-not is the only delta
  config.exec.batch_size = batch;
  Scsq scsq(config);
  if (monitored) scsq.engine().register_monitor(monitor_query);
  RunOut out;
  out.report = scsq.run(script);
  out.alert_count = scsq.engine().monitor_alerts().size();
  out.windows = scsq.engine().sampler().windows().size();
  std::ostringstream os;
  obs::write_alerts_jsonl(os, scsq.engine().monitor_alerts());
  out.alerts_jsonl = os.str();
  return out;
}

// ---------------------------------------------------------------------
// Zero-perturbation byte-identity across the LP x batch matrix
// ---------------------------------------------------------------------

TEST(MonitorInvariance, TablesIdenticalOnOffAcrossLpsAndBatch) {
  const RunOut base = run_case(/*monitored=*/false, /*lps=*/1, /*batch=*/256);
  std::string monitored_alerts;
  for (const int lps : {1, 4}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{256}}) {
      SCOPED_TRACE("lps=" + std::to_string(lps) + " batch=" + std::to_string(batch));
      const RunOut run = run_case(/*monitored=*/true, lps, batch);
      // Bitwise, not approximate: the monitor may not move a single
      // simulated event.
      EXPECT_EQ(run.report.elapsed_s, base.report.elapsed_s);
      EXPECT_EQ(run.report.setup_s, base.report.setup_s);
      EXPECT_EQ(run.report.stream_bytes, base.report.stream_bytes);
      ASSERT_EQ(run.report.results.size(), base.report.results.size());
      for (std::size_t i = 0; i < run.report.results.size(); ++i) {
        EXPECT_EQ(run.report.results[i].to_string(),
                  base.report.results[i].to_string());
      }
      // The alert stream itself is part of the contract: same windows,
      // same rows, byte-identical serialization at every LP/batch depth.
      EXPECT_GT(run.alert_count, 0u);
      if (monitored_alerts.empty()) {
        monitored_alerts = run.alerts_jsonl;
      } else {
        EXPECT_EQ(run.alerts_jsonl, monitored_alerts);
      }
    }
  }
}

TEST(MonitorInvariance, Fig8MergeTablesIdenticalOnOff) {
  for (const int lps : {1, 4}) {
    SCOPED_TRACE("lps=" + std::to_string(lps));
    const RunOut base =
        run_case(/*monitored=*/false, lps, 256, kThresholdMonitor, kFig8Script);
    const RunOut run =
        run_case(/*monitored=*/true, lps, 256, kThresholdMonitor, kFig8Script);
    EXPECT_EQ(run.report.elapsed_s, base.report.elapsed_s);
    EXPECT_EQ(run.report.stream_bytes, base.report.stream_bytes);
    ASSERT_EQ(run.report.results.size(), 1u);
    EXPECT_EQ(run.report.results[0].as_int(), 20);  // 10 arrays per producer
    EXPECT_EQ(base.report.results[0].as_int(), 20);
    EXPECT_GT(run.alert_count, 0u);
  }
}

// ---------------------------------------------------------------------
// Alert content: the golden JSONL shape
// ---------------------------------------------------------------------

TEST(MonitorAlerts, ThresholdAlertContent) {
  const RunOut run = run_case(/*monitored=*/true, 1, 256);
  ASSERT_GT(run.alert_count, 0u);
  ASSERT_GT(run.windows, 0u);
  std::istringstream lines(run.alerts_jsonl);
  std::string line;
  std::size_t n = 0;
  long prev_window = -1;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.rfind("{\"alert\"", 0), 0u) << line;  // splice anchor
    const auto doc = util::json::parse(line);
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.find("alert")->as_number(), static_cast<double>(n));
    EXPECT_EQ(doc.find("monitor")->as_string(), "m1");
    EXPECT_EQ(doc.find("query")->as_string(), kThresholdMonitor);
    EXPECT_LT(doc.find("t_start")->as_number(), doc.find("t_end")->as_number());
    // above(sum(...), 1): every matched value is the window's summed
    // rate, strictly above the threshold.
    EXPECT_GT(doc.find("value")->as_number(), 1.0);
    const long window = static_cast<long>(doc.find("window")->as_number());
    EXPECT_GE(window, prev_window);  // window order, one pass per window
    EXPECT_LT(window, static_cast<long>(run.windows));
    prev_window = window;
    ++n;
  }
  EXPECT_EQ(n, run.alert_count);
}

TEST(MonitorAlerts, MetricsRowShape) {
  ScsqConfig config;
  config.exec.sample_interval_s = 1e-3;
  Scsq scsq(config);
  scsq.engine().register_monitor("system.metrics('transport.link.bytes')");
  scsq.run(kFig6Script);
  const auto& alerts = scsq.engine().monitor_alerts();
  ASSERT_FALSE(alerts.empty());
  for (const auto& a : alerts) {
    // {key, delta, rate, t_start, t_end}
    ASSERT_EQ(a.value.kind(), Kind::kBag);
    const auto& row = a.value.as_bag();
    ASSERT_EQ(row.size(), 5u);
    EXPECT_EQ(row[0].kind(), Kind::kStr);
    EXPECT_NE(row[0].as_str().find("transport.link.bytes"), std::string::npos);
    EXPECT_EQ(row[1].kind(), Kind::kInt);
    EXPECT_GT(row[1].as_int(), 0);  // zero-delta counters are omitted
    EXPECT_EQ(row[2].kind(), Kind::kReal);
    EXPECT_EQ(row[3].kind(), Kind::kReal);
    EXPECT_EQ(row[4].kind(), Kind::kReal);
    EXPECT_EQ(row[3].as_real(), a.t_start);
    EXPECT_EQ(row[4].as_real(), a.t_end);
  }
}

TEST(MonitorAlerts, LpStreamUsesLiveSampleProvider) {
  ScsqConfig config;
  config.exec.sample_interval_s = 1e-3;
  Scsq scsq(config);
  scsq.engine().set_lp_live_source([] {
    std::vector<sim::plp::LpLiveSample> v(2);
    v[0].lp = 0;
    v[0].events = 10;
    v[0].inbox_depth = 3;
    v[0].horizon_s = 1.5;
    v[1].lp = 1;
    v[1].events = 20;
    return v;
  });
  scsq.engine().register_monitor("system.lp()");
  scsq.run(kFig6Script);
  const auto& alerts = scsq.engine().monitor_alerts();
  const std::size_t windows = scsq.engine().sampler().windows().size();
  ASSERT_GT(windows, 0u);
  ASSERT_EQ(alerts.size(), 2 * windows);  // two LP rows per window
  // {lp, events, null_updates, msgs_sent, msgs_recvd, inbox_depth, horizon_s}
  const auto& row0 = alerts[0].value.as_bag();
  ASSERT_EQ(row0.size(), 7u);
  EXPECT_EQ(row0[0].as_int(), 0);
  EXPECT_EQ(row0[1].as_int(), 10);
  EXPECT_EQ(row0[5].as_int(), 3);
  EXPECT_EQ(row0[6].as_real(), 1.5);
  const auto& row1 = alerts[1].value.as_bag();
  EXPECT_EQ(row1[0].as_int(), 1);
  EXPECT_EQ(row1[1].as_int(), 20);
}

TEST(MonitorAlerts, DefaultLpRowsFollowPartition) {
  ScsqConfig config;
  config.exec.sample_interval_s = 1e-3;
  config.exec.sim_lps = 4;
  Scsq scsq(config);
  scsq.engine().register_monitor("system.lp()");
  scsq.run(kFig6Script);
  const auto& alerts = scsq.engine().monitor_alerts();
  const std::size_t windows = scsq.engine().sampler().windows().size();
  ASSERT_GT(windows, 0u);
  // Without a live source the engine synthesizes one row per
  // partition LP.
  ASSERT_EQ(alerts.size(), 4 * windows);
  EXPECT_EQ(alerts[0].value.as_bag()[0].as_int(), 0);
  EXPECT_EQ(alerts[3].value.as_bag()[0].as_int(), 3);
}

// ---------------------------------------------------------------------
// above() threshold operator
// ---------------------------------------------------------------------

// Minimal plan harness (same shape as the window-operator tests):
// above() is an ordinary plan operator, so it composes with any stream
// source, not only the system.* introspection feeds.
struct PlanHarness {
  sim::Simulator sim;
  sim::Resource cpu{sim, 1, "cpu"};
  exec::Env env;
  plan::PlanContext ctx;

  PlanHarness() {
    ctx.sim = &sim;
    ctx.loc = {"bg", 0};
    ctx.cpu = &cpu;
    ctx.node = hw::NodeParams{};
    ctx.const_eval = [this](const scsql::ExprPtr& e) {
      return exec::eval_const(e, env, nullptr);
    };
  }

  std::vector<Object> run(const std::string& expr) {
    auto op = plan::build_plan(scsql::parse_expression(expr), ctx);
    std::vector<Object> out;
    sim.spawn([](plan::Operator& o, std::vector<Object>& sink) -> sim::Task<void> {
      while (auto obj = co_await o.next()) sink.push_back(std::move(*obj));
    }(*op, out));
    sim.run();
    return out;
  }
};

TEST(AboveOp, FiltersNumericStream) {
  PlanHarness h;
  const auto out = h.run("above(iota(1,5), 3)");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].as_int(), 4);
  EXPECT_EQ(out[1].as_int(), 5);
}

TEST(AboveOp, RealThresholdAndEmptyResult) {
  PlanHarness h;
  const auto some = h.run("above(iota(1,4), 2.5)");
  ASSERT_EQ(some.size(), 2u);
  EXPECT_EQ(some[0].as_int(), 3);
  EXPECT_TRUE(h.run("above(iota(1,4), 100)").empty());
}

TEST(AboveOp, WrongArityRejected) {
  PlanHarness h;
  EXPECT_THROW(h.run("above(iota(1,5))"), scsql::Error);
  EXPECT_THROW(h.run("above(iota(1,5), 'x')"), scsql::Error);
}

// ---------------------------------------------------------------------
// Registration, validation, lifecycle
// ---------------------------------------------------------------------

TEST(MonitorRegistration, NamesListingAndRemoval) {
  Scsq scsq;
  auto& engine = scsq.engine();
  const std::string m1 = engine.register_monitor(kThresholdMonitor);
  // Trailing semicolons and `select` sugar are accepted.
  const std::string m2 = engine.register_monitor("select system.lp();");
  EXPECT_EQ(m1, "m1");
  EXPECT_EQ(m2, "m2");
  const auto listed = engine.monitors();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].name, "m1");
  EXPECT_EQ(listed[0].query, kThresholdMonitor);
  EXPECT_EQ(listed[1].query, "select system.lp()");
  EXPECT_TRUE(engine.unregister_monitor("m1"));
  EXPECT_FALSE(engine.unregister_monitor("m1"));  // already gone
  ASSERT_EQ(engine.monitors().size(), 1u);
  EXPECT_EQ(engine.monitors()[0].name, "m2");
  // Names never recycle: the next monitor is m3, not m1.
  EXPECT_EQ(engine.register_monitor("system.gauges('engine')"), "m3");
}

TEST(MonitorRegistration, RejectsNonIntrospectionQueries) {
  Scsq scsq;
  auto& engine = scsq.engine();
  EXPECT_THROW(engine.register_monitor(""), scsql::Error);
  EXPECT_THROW(engine.register_monitor(" ;; "), scsql::Error);
  // Stream/network sources need the data plane, not the introspection
  // feed; they are rejected at registration, not at the first window.
  EXPECT_THROW(engine.register_monitor("extract(a)"), scsql::Error);
  EXPECT_THROW(engine.register_monitor("receiver('signals')"), scsql::Error);
  // Binding clauses would spawn stream processes.
  EXPECT_THROW(
      engine.register_monitor("select extract(a) from sp a where a=sp(iota(1,3),'bg')"),
      scsql::Error);
  EXPECT_THROW(engine.register_monitor("create function f() -> integer as select 3"),
               scsql::Error);
  EXPECT_EQ(engine.monitors().size(), 0u);  // nothing half-registered
}

TEST(MonitorRegistration, IntrospectionSourcesRejectedOutsideMonitors) {
  // system.* sources exist only under a monitor plan context; a plan
  // built without an introspection feed must fail loudly at build time
  // rather than read a stale window.
  PlanHarness h;
  EXPECT_THROW(h.run("system.metrics('x')"), scsql::Error);
  EXPECT_THROW(h.run("system.lp()"), scsql::Error);
  // Same guard through the full engine: a stream process binding an
  // introspection source fails the statement.
  Scsq scsq;
  EXPECT_THROW(
      scsq.run("select extract(a) from sp a where a=sp(system.metrics('x'),'bg');"),
      scsql::Error);
}

TEST(MonitorRegistration, EnvMonitorAutoRegisters) {
  ::setenv("SCSQ_MONITOR", kThresholdMonitor, 1);
  {
    Scsq scsq;
    const auto listed = scsq.engine().monitors();
    ASSERT_EQ(listed.size(), 1u);
    EXPECT_EQ(listed[0].query, kThresholdMonitor);
  }
  ::setenv("SCSQ_MONITOR", "extract(nope)", 1);
  EXPECT_THROW(Scsq{}, scsql::Error);  // invalid env monitor fails loudly
  ::unsetenv("SCSQ_MONITOR");
}

TEST(MonitorRegistration, AlertCountsResetPerStatement) {
  ScsqConfig config;
  config.exec.sample_interval_s = 1e-3;
  Scsq scsq(config);
  scsq.engine().register_monitor(kThresholdMonitor);
  scsq.run(kFig6Script);
  const std::size_t first = scsq.engine().monitors()[0].alerts;
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, scsq.engine().monitor_alerts().size());
  scsq.run("select 1 + 2;");  // no windows: the counters reset to zero
  EXPECT_EQ(scsq.engine().monitors()[0].alerts, 0u);
  EXPECT_TRUE(scsq.engine().monitor_alerts().empty());
}

// ---------------------------------------------------------------------
// Window listeners (the shell's live \watch path)
// ---------------------------------------------------------------------

TEST(WindowListener, FiresOncePerWindowAfterMonitors) {
  ScsqConfig config;
  config.exec.sample_interval_s = 1e-3;
  Scsq scsq(config);
  scsq.engine().register_monitor(kThresholdMonitor);
  std::size_t calls = 0;
  std::size_t alerts_at_last_call = 0;
  scsq.engine().add_window_listener(
      [&](const obs::Sampler::Window& w, std::size_t index) {
        EXPECT_EQ(index, calls);
        EXPECT_LT(w.t_start, w.t_end);
        ++calls;
        alerts_at_last_call = scsq.engine().monitor_alerts().size();
      });
  scsq.run(kFig6Script);
  EXPECT_EQ(calls, scsq.engine().sampler().windows().size());
  // Monitors for the final window had already run when the listener saw
  // it (listeners observe a monitor-complete window).
  EXPECT_EQ(alerts_at_last_call, scsq.engine().monitor_alerts().size());
}

}  // namespace
}  // namespace scsq
