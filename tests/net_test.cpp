#include <gtest/gtest.h>

#include "net/ethernet.hpp"
#include "net/topology.hpp"
#include "net/torus_net.hpp"
#include "net/tree_net.hpp"
#include "util/rng.hpp"

namespace scsq::net {
namespace {

// ---------------------------------------------------------------------
// Torus3D topology maths
// ---------------------------------------------------------------------

TEST(Torus3D, NodeCountAndRankRoundTrip) {
  Torus3D t(4, 4, 2);
  EXPECT_EQ(t.node_count(), 32);
  for (int r = 0; r < t.node_count(); ++r) {
    EXPECT_EQ(t.rank_of(t.coord_of(r)), r);
  }
}

TEST(Torus3D, RankLayoutXFastest) {
  Torus3D t(4, 4, 4);
  EXPECT_EQ(t.coord_of(0), (TorusCoord{0, 0, 0}));
  EXPECT_EQ(t.coord_of(1), (TorusCoord{1, 0, 0}));
  EXPECT_EQ(t.coord_of(2), (TorusCoord{2, 0, 0}));
  EXPECT_EQ(t.coord_of(4), (TorusCoord{0, 1, 0}));
  EXPECT_EQ(t.coord_of(16), (TorusCoord{0, 0, 1}));
}

TEST(Torus3D, HopDistanceAdjacent) {
  Torus3D t(4, 4, 4);
  EXPECT_EQ(t.hop_distance(0, 1), 1);
  EXPECT_EQ(t.hop_distance(0, 4), 1);
  EXPECT_EQ(t.hop_distance(0, 16), 1);
  EXPECT_EQ(t.hop_distance(0, 0), 0);
}

TEST(Torus3D, HopDistanceUsesWraparound) {
  Torus3D t(4, 4, 4);
  // x=3 is one wrap-hop from x=0, not three.
  EXPECT_EQ(t.hop_distance(0, 3), 1);
  EXPECT_EQ(t.hop_distance(0, 2), 2);
}

TEST(Torus3D, HopDistanceSymmetric) {
  Torus3D t(4, 3, 2);
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    int a = static_cast<int>(rng.uniform_int(0, t.node_count() - 1));
    int b = static_cast<int>(rng.uniform_int(0, t.node_count() - 1));
    EXPECT_EQ(t.hop_distance(a, b), t.hop_distance(b, a));
  }
}

TEST(Torus3D, RouteEndpointsAndLength) {
  Torus3D t(4, 4, 4);
  util::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    int a = static_cast<int>(rng.uniform_int(0, t.node_count() - 1));
    int b = static_cast<int>(rng.uniform_int(0, t.node_count() - 1));
    auto path = t.route(a, b);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hop_distance(a, b));
    // Every step is between torus neighbors.
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      EXPECT_EQ(t.hop_distance(path[j], path[j + 1]), 1);
    }
  }
}

TEST(Torus3D, SequentialPlacementRoutesThroughMiddleNode) {
  // The paper's Fig. 7A: nodes 0,1,2 on a line; traffic 2->0 passes
  // through node 1's co-processor.
  Torus3D t(4, 4, 4);
  auto path = t.route(2, 0);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 2);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 0);
}

TEST(Torus3D, BalancedPlacementAvoidsMiddleNode) {
  // Fig. 7B: node 4 is a Y-neighbor of node 0; the route is direct.
  Torus3D t(4, 4, 4);
  auto path = t.route(4, 0);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 4);
  EXPECT_EQ(path[1], 0);
}

TEST(Torus3D, RouteToSelfIsSingleton) {
  Torus3D t(2, 2, 2);
  auto path = t.route(3, 3);
  EXPECT_EQ(path, (std::vector<int>{3}));
}

// ---------------------------------------------------------------------
// TorusNetwork timing model
// ---------------------------------------------------------------------

TorusParams test_params() {
  TorusParams p;
  p.source_switch_penalty_s = 0.0;  // most tests want clean arithmetic
  return p;
}

TEST(TorusNetwork, PacketizationRoundsUp) {
  sim::Simulator sim;
  TorusNetwork net(sim, Torus3D(4, 4, 4), test_params());
  EXPECT_EQ(net.packets_for(1), 1u);
  EXPECT_EQ(net.packets_for(1024), 1u);
  EXPECT_EQ(net.packets_for(1025), 2u);
  EXPECT_EQ(net.packets_for(3 * 1024 * 1024), 3u * 1024u);
  EXPECT_EQ(net.packets_for(0), 1u);  // control message
}

TEST(TorusNetwork, WireTimeChargesFullPackets) {
  sim::Simulator sim;
  TorusNetwork net(sim, Torus3D(4, 4, 4), test_params());
  // 100 bytes occupy a full 1024-byte packet on the wire.
  EXPECT_DOUBLE_EQ(net.wire_time(100), 1024.0 / 175e6);
  EXPECT_DOUBLE_EQ(net.wire_time(2048), 2048.0 / 175e6);
}

TEST(TorusNetwork, CacheFactorRampsAboveKnee) {
  sim::Simulator sim;
  TorusNetwork net(sim, Torus3D(4, 4, 4), test_params());
  EXPECT_DOUBLE_EQ(net.cache_factor(512), 1.0);
  EXPECT_DOUBLE_EQ(net.cache_factor(1024), 1.0);
  EXPECT_GT(net.cache_factor(4096), 1.0);
  EXPECT_LT(net.cache_factor(4096), net.cache_factor(65536));
  // Saturates at the max factor.
  EXPECT_DOUBLE_EQ(net.cache_factor(1u << 30), 2.5);
}

TEST(TorusNetwork, SingleHopTransferTiming) {
  sim::Simulator sim;
  auto p = test_params();
  TorusNetwork net(sim, Torus3D(4, 4, 4), p);
  double done = -1.0;
  sim.spawn([](sim::Simulator& s, TorusNetwork& n, double& out) -> sim::Task<void> {
    co_await n.transmit(1, 0, 1024, /*tag=*/7);
    out = s.now();
  }(sim, net, done));
  sim.run();
  const double expected = p.per_message_overhead_s + p.send_per_packet_s  // sender coproc
                          + 1024.0 / p.link_bandwidth_Bps                 // one hop wire
                          + p.recv_per_packet_s;                          // receiver coproc
  EXPECT_NEAR(done, expected, 1e-12);
}

TEST(TorusNetwork, TwoHopRouteIsSlowerThanOneHop) {
  sim::Simulator sim;
  TorusNetwork net(sim, Torus3D(4, 4, 4), test_params());
  double t_one = -1, t_two = -1;
  sim.spawn([](sim::Simulator& s, TorusNetwork& n, double& a, double& b) -> sim::Task<void> {
    co_await n.transmit(1, 0, 4096, 1);
    a = s.now();
    double start = s.now();
    co_await n.transmit(2, 0, 4096, 2);
    b = s.now() - start;
  }(sim, net, t_one, t_two));
  sim.run();
  EXPECT_GT(t_two, t_one);
}

TEST(TorusNetwork, RendezvousAppliesAboveEagerLimit) {
  sim::Simulator sim;
  auto p = test_params();
  p.cache_max_factor = 1.0;  // isolate the rendezvous effect
  TorusNetwork net(sim, Torus3D(4, 4, 4), p);
  double t_small = -1, t_big = -1;
  sim.spawn([](sim::Simulator& s, TorusNetwork& n, double& a, double& b) -> sim::Task<void> {
    co_await n.transmit(1, 0, 1024, 1);
    a = s.now();
    double start = s.now();
    co_await n.transmit(1, 0, 2048, 1);
    b = s.now() - start;
  }(sim, net, t_small, t_big));
  sim.run();
  // 2048 bytes = 2 packets: without rendezvous the time would be exactly
  // double the per-packet costs; the handshake adds rtt_per_hop.
  auto& p2 = net.params();
  double base_small = p2.per_message_overhead_s + p2.send_per_packet_s +
                      1024.0 / p2.link_bandwidth_Bps + p2.recv_per_packet_s;
  EXPECT_NEAR(t_small, base_small, 1e-12);
  double base_big = p2.per_message_overhead_s + 2 * p2.send_per_packet_s +
                    2048.0 / p2.link_bandwidth_Bps + 2 * p2.recv_per_packet_s;
  EXPECT_NEAR(t_big, base_big + p2.rendezvous_rtt_per_hop_s, 1e-12);
}

TEST(TorusNetwork, SwitchCostScalesWithRegisteredStreams) {
  sim::Simulator sim;
  auto p = test_params();
  p.source_switch_penalty_s = 100e-6;
  TorusNetwork net(sim, Torus3D(4, 4, 4), p);
  double t_single = -1, t_merged = -1;
  sim.spawn([](sim::Simulator& s, TorusNetwork& n, double& single,
               double& merged) -> sim::Task<void> {
    // One registered inbound stream: no switching cost.
    n.register_inbound_stream(0);
    double start = s.now();
    for (int i = 0; i < 4; ++i) co_await n.transmit(1, 0, 1024, 1);
    single = s.now() - start;
    // Two registered streams: each message pays half the penalty
    // (expected switches under interleaving).
    n.register_inbound_stream(0);
    start = s.now();
    for (int i = 0; i < 4; ++i) co_await n.transmit(1, 0, 1024, i % 2 == 0 ? 1 : 2);
    merged = s.now() - start;
    n.unregister_inbound_stream(0);
    n.unregister_inbound_stream(0);
  }(sim, net, t_single, t_merged));
  sim.run();
  EXPECT_NEAR(t_merged - t_single, 4 * 50e-6, 1e-9);
  EXPECT_EQ(net.inbound_streams(0), 0);
}

TEST(TorusNetwork, AsyncTransmitSignalsSenderFreeBeforeDelivery) {
  sim::Simulator sim;
  TorusNetwork net(sim, Torus3D(4, 4, 4), test_params());
  double t_free = -1, t_delivered = -1;
  sim.spawn([](sim::Simulator& s, TorusNetwork& n, double& tf,
               double& td) -> sim::Task<void> {
    sim::Event sender_free(s), delivered(s);
    n.transmit_async(2, 0, 4096, 1, &sender_free, &delivered);
    co_await sender_free.wait();
    tf = s.now();
    co_await delivered.wait();
    td = s.now();
  }(sim, net, t_free, t_delivered));
  sim.run();
  EXPECT_GT(t_free, 0.0);
  EXPECT_GT(t_delivered, t_free);  // 2-hop route: delivery strictly later
}

TEST(TorusNetwork, SharedLinkHalvesThroughput) {
  // Two streams whose routes share link 1->0 (senders at 1 and 2) take
  // about twice as long per stream as two streams on disjoint links
  // (senders at 1 and 4) — the Fig. 8 sequential-vs-balanced mechanism.
  auto run_pair = [](int src_b) {
    sim::Simulator sim;
    auto p = test_params();
    TorusNetwork net(sim, Torus3D(4, 4, 4), p);
    auto stream = [](TorusNetwork& n, int src, std::uint64_t tag) -> sim::Task<void> {
      for (int i = 0; i < 50; ++i) co_await n.transmit(src, 0, 64 * 1024, tag);
    };
    sim.spawn(stream(net, 1, 1));
    sim.spawn(stream(net, src_b, 2));
    return sim.run();
  };
  double t_sequential = run_pair(2);
  double t_balanced = run_pair(4);
  EXPECT_GT(t_sequential, 1.5 * t_balanced);
}

// ---------------------------------------------------------------------
// EthernetFabric
// ---------------------------------------------------------------------

TEST(Ethernet, FlowLifecycle) {
  sim::Simulator sim;
  EthernetFabric fab(sim, EthernetParams{});
  int be = fab.add_host("be1");
  int io = fab.add_host("io1", /*is_ionode=*/true);
  EXPECT_EQ(fab.flows_into(io), 0);
  auto f = fab.open_flow(be, io);
  EXPECT_EQ(fab.flows_into(io), 1);
  EXPECT_EQ(fab.distinct_senders_to_ionodes(), 1);
  fab.close_flow(f);
  EXPECT_EQ(fab.flows_into(io), 0);
  EXPECT_EQ(fab.distinct_senders_to_ionodes(), 0);
}

TEST(Ethernet, DistinctSendersCountsHostsNotFlows) {
  sim::Simulator sim;
  EthernetFabric fab(sim, EthernetParams{});
  int be = fab.add_host("be1");
  int io1 = fab.add_host("io1", true);
  int io2 = fab.add_host("io2", true);
  fab.open_flow(be, io1);
  fab.open_flow(be, io2);
  fab.open_flow(be, io1);
  EXPECT_EQ(fab.distinct_senders_to_ionodes(), 1);
}

TEST(Ethernet, TransferTiming) {
  sim::Simulator sim;
  EthernetParams p;
  EthernetFabric fab(sim, p);
  int a = fab.add_host("a");
  int b = fab.add_host("b");
  auto f = fab.open_flow(a, b);
  double done = -1;
  sim.spawn([](sim::Simulator& s, EthernetFabric& fb, FlowId id, double& t) -> sim::Task<void> {
    co_await fb.transfer(id, 1'000'000);
    t = s.now();
  }(sim, fab, f, done));
  sim.run();
  double wire = 1e6 / (p.nic_bandwidth_Bps * p.tcp_efficiency);
  EXPECT_NEAR(done, p.per_message_overhead_s + 2 * wire, 1e-12);
}

TEST(Ethernet, ImbalanceFactorNeutralCases) {
  sim::Simulator sim;
  EthernetFabric fab(sim, EthernetParams{});
  int be = fab.add_host("be1");
  int io1 = fab.add_host("io1", true);
  int io2 = fab.add_host("io2", true);
  EXPECT_DOUBLE_EQ(fab.sender_imbalance_factor(be), 1.0);  // no flows
  fab.open_flow(be, io1);
  EXPECT_DOUBLE_EQ(fab.sender_imbalance_factor(be), 1.0);  // single dst
  fab.open_flow(be, io2);
  EXPECT_DOUBLE_EQ(fab.sender_imbalance_factor(be), 1.0);  // balanced 1/1
}

TEST(Ethernet, ImbalanceFactorDetectsUnevenLoad) {
  // The Query-5 n=5 situation: one sender, 4 I/O nodes, 5 flows.
  sim::Simulator sim;
  EthernetParams p;
  EthernetFabric fab(sim, p);
  int be = fab.add_host("be1");
  std::vector<int> ios;
  for (int i = 0; i < 4; ++i) ios.push_back(fab.add_host("io" + std::to_string(i), true));
  for (int i = 0; i < 5; ++i) fab.open_flow(be, ios[i % 4]);
  EXPECT_DOUBLE_EQ(fab.sender_imbalance_factor(be), 1.0 + p.imbalance_coeff);
}

TEST(Ethernet, NicContentionSharesBandwidth) {
  sim::Simulator sim;
  EthernetParams p;
  p.per_message_overhead_s = 0.0;
  EthernetFabric fab(sim, p);
  int a = fab.add_host("a");
  int b = fab.add_host("b");
  int c = fab.add_host("c");
  auto fab_send = [](EthernetFabric& fb, FlowId id, int msgs) -> sim::Task<void> {
    for (int i = 0; i < msgs; ++i) co_await fb.transfer(id, 1'000'000);
  };
  // Two flows out of the same host 'a' contend for a.tx.
  auto f1 = fab.open_flow(a, b);
  auto f2 = fab.open_flow(a, c);
  sim.spawn(fab_send(fab, f1, 10));
  sim.spawn(fab_send(fab, f2, 10));
  double elapsed = sim.run();
  double wire = 1e6 / (p.nic_bandwidth_Bps * p.tcp_efficiency);
  // 20 MB through one tx NIC: at least 20 wire times.
  EXPECT_GE(elapsed, 20 * wire - 1e-9);
}

// ---------------------------------------------------------------------
// TreeNetwork
// ---------------------------------------------------------------------

TEST(Tree, InboundTiming) {
  sim::Simulator sim;
  TreeParams p;
  TreeNetwork tree(sim, 4, 8, p);
  double done = -1;
  sim.spawn([](sim::Simulator& s, TreeNetwork& t, double& out) -> sim::Task<void> {
    co_await t.forward_inbound(0, 3, 1'000'000, 1.0, 1.0);
    out = s.now();
  }(sim, tree, done));
  sim.run();
  double expected = p.io_per_message_overhead_s + 1e6 * p.io_forward_per_byte_s +
                    1e6 / p.link_bandwidth_Bps + p.compute_per_message_overhead_s +
                    1e6 * p.compute_recv_per_byte_s;
  EXPECT_NEAR(done, expected, 1e-12);
}

TEST(Tree, IoFactorScalesForwardingCost) {
  sim::Simulator sim;
  TreeParams p;
  TreeNetwork tree(sim, 1, 1, p);
  double t1 = -1, t2 = -1;
  sim.spawn([](sim::Simulator& s, TreeNetwork& t, double& a, double& b) -> sim::Task<void> {
    co_await t.forward_inbound(0, 0, 1'000'000, 1.0, 1.0);
    a = s.now();
    double start = s.now();
    co_await t.forward_inbound(0, 0, 1'000'000, 2.0, 1.0);
    b = s.now() - start;
  }(sim, tree, t1, t2));
  sim.run();
  EXPECT_NEAR(t2 - t1, 1e6 * p.io_forward_per_byte_s, 1e-12);
}

TEST(Tree, SharedIoCpuSerializesStreams) {
  sim::Simulator sim;
  TreeParams p;
  TreeNetwork tree(sim, 1, 2, p);
  auto stream = [](TreeNetwork& t, int cn) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) co_await t.forward_inbound(0, cn, 1'000'000, 1.0, 1.0);
  };
  sim.spawn(stream(tree, 0));
  sim.spawn(stream(tree, 1));
  double elapsed = sim.run();
  // 40 MB through one I/O CPU at io_forward_per_byte: lower bound.
  EXPECT_GE(elapsed, 40e6 * p.io_forward_per_byte_s);
}

}  // namespace
}  // namespace scsq::net
