// Stress of the obs side channels under a multi-threaded sweep: with
// SCSQ_BENCH_THREADS > 1 every sweep point runs its own Registry on a
// worker thread and run_points serializes the snapshots afterwards. The
// JSONL outputs must stay valid JSON, in point order, with totals
// consistent with the returned stats — the property the ci_smoke
// validation rests on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/json.hpp"

namespace scsq::bench {
namespace {

using scsq::util::json::Value;

class ObsStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_path_ = ::testing::TempDir() + "obs_stress_metrics.jsonl";
    profile_path_ = ::testing::TempDir() + "obs_stress_profile.jsonl";
    ::setenv("SCSQ_BENCH_QUICK", "1", 1);
    ::setenv("SCSQ_BENCH_THREADS", "4", 1);
    ::setenv("SCSQ_METRICS_OUT", metrics_path_.c_str(), 1);
    ::setenv("SCSQ_PROFILE_OUT", profile_path_.c_str(), 1);
  }

  void TearDown() override {
    ::unsetenv("SCSQ_BENCH_QUICK");
    ::unsetenv("SCSQ_BENCH_THREADS");
    ::unsetenv("SCSQ_METRICS_OUT");
    ::unsetenv("SCSQ_PROFILE_OUT");
    std::remove(metrics_path_.c_str());
    std::remove(profile_path_.c_str());
  }

  static std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

  std::string metrics_path_;
  std::string profile_path_;
};

TEST_F(ObsStressTest, ParallelSweepProducesConsistentJsonl) {
  // A quick Fig. 6 slice: two buffer sizes x single/double buffering,
  // small streams so four worker threads all get a point.
  const int arrays = 2;
  const std::uint64_t payload = kArrayBytes * static_cast<std::uint64_t>(arrays);
  const auto query = p2p_query(kArrayBytes, arrays);
  std::vector<QueryPoint> points;
  for (std::uint64_t buf : {std::uint64_t{1000}, std::uint64_t{16384}}) {
    points.push_back({query, payload, hw::CostModel::lofar(), buf, 1, buf + 1});
    points.push_back({query, payload, hw::CostModel::lofar(), buf, 2, buf + 2});
  }
  ASSERT_EQ(bench_threads(), 4u);  // the env override is live
  const auto stats = run_points(points);
  ASSERT_EQ(stats.size(), points.size());

  // --- SCSQ_METRICS_OUT: one valid record per point, in point order ---
  const auto metric_lines = read_lines(metrics_path_);
  ASSERT_EQ(metric_lines.size(), points.size());
  for (std::size_t i = 0; i < metric_lines.size(); ++i) {
    const Value doc = util::json::parse(metric_lines[i]);  // throws if invalid
    ASSERT_TRUE(doc.is_object());
    EXPECT_DOUBLE_EQ(doc.find("point")->as_number(), static_cast<double>(i));
    EXPECT_DOUBLE_EQ(doc.find("buffer_bytes")->as_number(),
                     static_cast<double>(points[i].buffer_bytes));
    EXPECT_DOUBLE_EQ(doc.find("send_buffers")->as_number(),
                     static_cast<double>(points[i].send_buffers));
    // The serialized mean matches the Stats returned to the caller.
    EXPECT_DOUBLE_EQ(doc.find("mbps_mean")->as_number(), stats[i].mean());

    // Registry totals stay coherent after the thread hand-off: the
    // link-byte counters cover at least the producer's stream payload.
    const Value* counters = doc.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    double link_bytes = 0.0;
    for (const auto& [key, value] : counters->as_object()) {
      if (key.rfind("transport.link.bytes", 0) == 0) link_bytes += value.as_number();
    }
    EXPECT_GE(link_bytes, static_cast<double>(payload));
  }

  // --- SCSQ_PROFILE_OUT: per-point profiles holding the invariant ---
  const auto profile_lines = read_lines(profile_path_);
  ASSERT_EQ(profile_lines.size(), points.size());
  for (std::size_t i = 0; i < profile_lines.size(); ++i) {
    const Value doc = util::json::parse(profile_lines[i]);
    EXPECT_DOUBLE_EQ(doc.find("point")->as_number(), static_cast<double>(i));
    const Value* profile = doc.find("profile");
    ASSERT_NE(profile, nullptr);
    const double elapsed = profile->find("elapsed_s")->as_number();
    const double attributed =
        profile->find("attribution")->find("attributed_total_s")->as_number();
    EXPECT_GT(elapsed, 0.0);
    EXPECT_NEAR(attributed, elapsed, elapsed * 1e-3);
    EXPECT_GE(profile->find("nodes")->as_array().size(), 2u);
    EXPECT_FALSE(profile->find("critical_path")->as_array().empty());
  }
}

TEST_F(ObsStressTest, ParallelSweepMatchesSequentialStats) {
  const int arrays = 2;
  const std::uint64_t payload = kArrayBytes * static_cast<std::uint64_t>(arrays);
  const auto query = p2p_query(kArrayBytes, arrays);
  std::vector<QueryPoint> points;
  for (int i = 0; i < 4; ++i) {
    points.push_back({query, payload, hw::CostModel::lofar(), 4096, 2,
                      static_cast<std::uint64_t>(100 + i)});
  }
  const auto parallel = run_points(points);

  ::setenv("SCSQ_BENCH_THREADS", "1", 1);
  const auto sequential = run_points(points);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].mean(), sequential[i].mean()) << "point " << i;
    EXPECT_EQ(parallel[i].stdev(), sequential[i].stdev()) << "point " << i;
  }
}

}  // namespace
}  // namespace scsq::bench
