#include <gtest/gtest.h>

#include <sstream>

#include "core/scsq.hpp"
#include "obs/metrics.hpp"
#include "obs/sim_bridge.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"

namespace scsq::obs {
namespace {

TEST(Counter, IncAndSetTotal) {
  Registry registry;
  auto& c = registry.counter("frames");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.set_total(42);  // idempotent re-publish of the same cumulative total
  c.set_total(100);
  EXPECT_EQ(c.value(), 100u);
}

TEST(Registry, SameNameAndLabelsSameHandle) {
  Registry registry;
  const Labels ab{{"src", "a"}, {"dst", "b"}};
  auto& first = registry.counter("link.bytes", ab);
  auto& again = registry.counter("link.bytes", ab);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(registry.size(), 1u);

  auto& other = registry.counter("link.bytes", Labels{{"src", "a"}, {"dst", "c"}});
  EXPECT_NE(&first, &other);
  EXPECT_EQ(registry.size(), 2u);

  first.inc(10);
  other.inc(5);
  EXPECT_EQ(registry.counter_total("link.bytes"), 15u);
  EXPECT_EQ(registry.counter_total("nope"), 0u);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry registry;
  auto& g = registry.gauge("util", {{"node", "3"}});
  g.set(0.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  EXPECT_EQ(&g, &registry.gauge("util", Labels{{"node", "3"}}));
}

TEST(Histogram, BucketEdgeSemantics) {
  Registry registry;
  auto& h = registry.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (upper edges are inclusive)
  h.observe(1.001);  // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(1e9);    // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 100.0 + 1e9);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, ExpBuckets) {
  const auto bounds = Histogram::exp_buckets(1e-6, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[1], 4e-6);
  EXPECT_DOUBLE_EQ(bounds[2], 16e-6);
  EXPECT_DOUBLE_EQ(bounds[3], 64e-6);
}

TEST(Registry, PrometheusExport) {
  Registry registry;
  registry.counter("link.bytes", {{"type", "mpi"}}).inc(7);
  registry.gauge("engine.setup_s").set(0.125);
  registry.histogram("lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  registry.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE link_bytes counter"), std::string::npos);
  EXPECT_NE(text.find("link_bytes{type=\"mpi\"} 7"), std::string::npos);
  EXPECT_NE(text.find("engine_setup_s 0.125"), std::string::npos);
  // Cumulative le buckets + the +Inf bucket equal to _count.
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_count 1"), std::string::npos);
}

TEST(Registry, PrometheusGroupsHelpAndTypeOncePerName) {
  Registry registry;
  registry.counter("link.bytes", {{"src", "a"}}).inc(1);
  registry.gauge("util").set(0.5);  // interleaved: a different family
  registry.counter("link.bytes", {{"src", "b"}}).inc(2);
  registry.set_help("link.bytes", "payload bytes per link");
  std::ostringstream os;
  registry.write_prometheus(os);
  const std::string text = os.str();
  // One HELP and one TYPE per family, despite two series and the
  // interleaved registration order.
  std::size_t helps = 0;
  std::size_t types = 0;
  for (std::size_t pos = 0; (pos = text.find("# HELP link_bytes", pos)) != std::string::npos;
       pos += 1) {
    ++helps;
  }
  for (std::size_t pos = 0; (pos = text.find("# TYPE link_bytes", pos)) != std::string::npos;
       pos += 1) {
    ++types;
  }
  EXPECT_EQ(helps, 1u);
  EXPECT_EQ(types, 1u);
  EXPECT_NE(text.find("# HELP link_bytes payload bytes per link"), std::string::npos);
  // Both series follow their family header contiguously.
  const auto type_at = text.find("# TYPE link_bytes counter");
  const auto a_at = text.find("link_bytes{src=\"a\"} 1");
  const auto b_at = text.find("link_bytes{src=\"b\"} 2");
  const auto util_at = text.find("# TYPE util gauge");
  ASSERT_NE(type_at, std::string::npos);
  ASSERT_NE(a_at, std::string::npos);
  ASSERT_NE(b_at, std::string::npos);
  ASSERT_NE(util_at, std::string::npos);
  EXPECT_LT(type_at, a_at);
  EXPECT_LT(a_at, b_at);
  EXPECT_TRUE(util_at < type_at || util_at > b_at);  // families not interleaved
}

TEST(Registry, PrometheusEscapesLabelValues) {
  Registry registry;
  registry.counter("c", {{"path", "a\\b"}, {"q", "say \"hi\"\nbye"}}).inc(1);
  std::ostringstream os;
  registry.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("q=\"say \\\"hi\\\"\\nbye\""), std::string::npos);
  // The raw newline must not survive into the exposition line.
  EXPECT_EQ(text.find("say \"hi\"\n"), std::string::npos);
}

TEST(Registry, JsonExportParses) {
  Registry registry;
  registry.counter("a.b", {{"k", "v\"1\""}}).inc(3);
  registry.gauge("g").set(2.5);
  registry.histogram("h", {0.5}).observe(0.25);
  const auto doc = util::json::parse(registry.json());
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* c = counters->find("a.b{k=v\"1\"}");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->as_number(), 3.0);
  const auto* h = doc.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->as_number(), 1.0);
  ASSERT_TRUE(h->find("counts")->is_array());
  EXPECT_EQ(h->find("counts")->as_array().size(), 2u);  // one bound + overflow
}

TEST(SimBridge, PublishesKernelCounters) {
  sim::Simulator sim;
  sim.spawn([](sim::Simulator& s) -> sim::Task<void> {
    co_await s.delay(1.0);
    co_await s.delay(1.0);
  }(sim));
  sim.run();
  Registry registry;
  bridge_sim_perf(registry, sim.perf());
  EXPECT_EQ(registry.counter_total("sim.events_dispatched"), sim.events_dispatched());
  EXPECT_GT(registry.counter_total("sim.events_dispatched"), 0u);
  // Re-bridging the same totals is idempotent (set_total, not inc).
  bridge_sim_perf(registry, sim.perf());
  EXPECT_EQ(registry.counter_total("sim.events_dispatched"), sim.events_dispatched());
}

TEST(Observability, FullQueryPopulatesRegistry) {
  Scsq scsq;
  auto report = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(300000,10),'bg',1);");
  scsq.machine().publish_metrics();
  auto& registry = scsq.machine().metrics();

  // Transport per-link byte counters account for every streamed byte.
  EXPECT_EQ(registry.counter_total("transport.link.bytes"), report.stream_bytes);
  EXPECT_GT(registry.counter_total("transport.link.frames"), 0u);

  // The MPI link carried the stream and recorded frame latencies.
  const Labels mpi{{"type", "mpi"}, {"src", "bg:1"}, {"dst", "bg:0"}};
  auto& latency = scsq.machine().metrics().histogram(
      "transport.link.frame_latency_s", mpi, Histogram::exp_buckets(1e-6, 4.0, 12));
  EXPECT_GT(latency.count(), 0u);
  EXPECT_GT(latency.sum(), 0.0);

  // Network + kernel sections were published too.
  EXPECT_GT(registry.counter_total("torus.messages"), 0u);
  EXPECT_EQ(registry.counter_total("sim.events_dispatched"),
            scsq.sim().events_dispatched());

  // Per-RP gauges mirror the RunReport.
  for (const auto& rp : report.rps) {
    const Labels labels{{"rp", std::to_string(rp.id)}, {"loc", rp.loc.to_string()}};
    EXPECT_DOUBLE_EQ(registry.gauge("engine.rp.elements_out", labels).value(),
                     static_cast<double>(rp.elements_out));
    EXPECT_DOUBLE_EQ(registry.gauge("engine.rp.bytes_sent", labels).value(),
                     static_cast<double>(rp.bytes_sent));
  }

  // The whole snapshot is one valid JSON document.
  const auto doc = util::json::parse(registry.json());
  EXPECT_NE(doc.find("counters"), nullptr);
  EXPECT_NE(doc.find("gauges"), nullptr);
  EXPECT_NE(doc.find("histograms"), nullptr);
}

TEST(Json, ParsesScalarsAndStructures) {
  using util::json::parse;
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse("\"a\\nb\\u0041\"").as_string(), "a\nbA");
  const auto arr = parse("[1, [2], {\"k\": 3}]");
  ASSERT_TRUE(arr.is_array());
  EXPECT_EQ(arr.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(arr.as_array()[2].find("k")->as_number(), 3.0);
}

TEST(Json, RejectsMalformedInput) {
  using util::json::parse;
  using util::json::ParseError;
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(parse("[1] trailing"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("\"raw\ncontrol\""), ParseError);
  EXPECT_THROW(parse("01"), ParseError);
}

TEST(Json, NumericLeavesFlattensPaths) {
  const auto doc = util::json::parse(R"({"a": {"b": 1}, "c": [2, {"d": 3}], "s": "x"})");
  const auto leaves = util::json::numeric_leaves(doc);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_DOUBLE_EQ(leaves.at("a.b"), 1.0);
  EXPECT_DOUBLE_EQ(leaves.at("c[0]"), 2.0);
  EXPECT_DOUBLE_EQ(leaves.at("c[1].d"), 3.0);
}

}  // namespace
}  // namespace scsq::obs
