// Unit tests for SQEP operators and the plan builder, using a minimal
// hand-wired PlanContext (no engine).
#include <gtest/gtest.h>

#include "exec/eval.hpp"
#include "plan/builder.hpp"
#include "plan/operators.hpp"
#include "scsql/parser.hpp"

namespace scsq::plan {
namespace {

using catalog::Bag;
using catalog::Kind;
using catalog::Object;

struct Harness {
  sim::Simulator sim;
  hw::NodeParams node;
  sim::Resource cpu{sim, 1, "cpu"};
  exec::Env env;
  PlanContext ctx;

  Harness() {
    ctx.sim = &sim;
    ctx.loc = {"bg", 0};
    ctx.cpu = &cpu;
    ctx.node = node;
    ctx.const_eval = [this](const scsql::ExprPtr& e) {
      return exec::eval_const(e, env, nullptr);
    };
    ctx.stream_source = [](const std::string&) {
      return std::vector<std::vector<double>>{{1.0, 2.0}, {3.0, 4.0}};
    };
  }

  /// Runs an operator to completion, collecting its stream.
  std::vector<Object> drain(Operator& op) {
    std::vector<Object> out;
    sim.spawn([](Operator& o, std::vector<Object>& sink) -> sim::Task<void> {
      while (auto obj = co_await o.next()) sink.push_back(std::move(*obj));
    }(op, out));
    sim.run();
    return out;
  }

  std::vector<Object> drain_expr(const std::string& expr_text) {
    auto op = build_plan(scsql::parse_expression(expr_text), ctx);
    return drain(*op);
  }
};

TEST(Operators, ConstEmitsOnce) {
  Harness h;
  ConstOp op(h.ctx, Object{7});
  auto out = h.drain(op);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as_int(), 7);
}

TEST(Operators, BagStreamEmitsElements) {
  Harness h;
  BagStreamOp op(h.ctx, Bag{Object{1}, Object{2}, Object{3}});
  auto out = h.drain(op);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].as_int(), 3);
}

TEST(Operators, GenArrayProducesDescriptors) {
  Harness h;
  GenArrayOp op(h.ctx, 5000, 4);
  auto out = h.drain(op);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].as_synth().bytes, 5000u);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].as_synth().seq, static_cast<std::uint64_t>(i));
  }
}

TEST(Operators, GenArrayChargesCpuTime) {
  Harness h;
  GenArrayOp op(h.ctx, 1'000'000, 2);
  h.drain(op);
  // 2 arrays at gen_per_byte each, plus op overhead.
  double expected = 2 * (h.node.op_invoke_s + 1e6 * h.node.gen_per_byte_s);
  EXPECT_NEAR(h.sim.now(), expected, 1e-12);
}

TEST(Operators, CountViaBuilder) {
  Harness h;
  auto out = h.drain_expr("count(iota(1, 41))");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as_int(), 41);
}

TEST(Operators, CountEmptyStreamIsZero) {
  Harness h;
  auto out = h.drain_expr("count(iota(1, 0))");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as_int(), 0);
}

TEST(Operators, SumInts) {
  Harness h;
  auto out = h.drain_expr("sum(iota(1, 10))");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind(), Kind::kInt);
  EXPECT_EQ(out[0].as_int(), 55);
}

TEST(Operators, StreamofPassesThrough) {
  Harness h;
  auto out = h.drain_expr("streamof(count(iota(1, 3)))");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as_int(), 3);
}

TEST(Operators, GrepEmitsMatches) {
  Harness h;
  auto out = h.drain_expr("grep('pulsar', filename(3))");
  for (const auto& o : out) {
    EXPECT_NE(o.as_str().find("pulsar"), std::string::npos);
  }
}

TEST(Operators, ReceiverSourceEmitsRegisteredArrays) {
  Harness h;
  auto out = h.drain_expr("receiver('x')");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].as_darray(), (std::vector<double>{1.0, 2.0}));
}

TEST(Operators, OddEvenFftPipeline) {
  Harness h;
  h.ctx.stream_source = [](const std::string&) {
    return std::vector<std::vector<double>>{{1, 2, 3, 4, 5, 6, 7, 8}};
  };
  auto out_even = h.drain_expr("even(receiver('x'))");
  ASSERT_EQ(out_even.size(), 1u);
  EXPECT_EQ(out_even[0].as_darray(), (std::vector<double>{1, 3, 5, 7}));

  auto out_fft = h.drain_expr("fft(even(receiver('x')))");
  ASSERT_EQ(out_fft.size(), 1u);
  EXPECT_EQ(out_fft[0].as_carray().size(), 4u);
}

TEST(Operators, FftCostScalesSuperlinearly) {
  Harness h;
  h.ctx.stream_source = [](const std::string&) {
    return std::vector<std::vector<double>>{std::vector<double>(1024, 1.0)};
  };
  auto op_small = build_plan(scsql::parse_expression("fft(receiver('x'))"), h.ctx);
  h.drain(*op_small);
  double t_1024 = h.sim.now();

  Harness h2;
  h2.ctx.stream_source = [](const std::string&) {
    return std::vector<std::vector<double>>{std::vector<double>(4096, 1.0)};
  };
  auto op_big = build_plan(scsql::parse_expression("fft(receiver('x'))"), h2.ctx);
  h2.drain(*op_big);
  double t_4096 = h2.sim.now();
  EXPECT_GT(t_4096, 4.0 * t_1024 * 0.8);  // ~4.8x for n log n
}

// ---------------------------------------------------------------------
// Builder error paths
// ---------------------------------------------------------------------

TEST(Builder, ExtractNeedsSpHandle) {
  Harness h;
  h.env["a"] = Object{42};
  EXPECT_THROW(build_plan(scsql::parse_expression("extract(a)"), h.ctx), scsql::Error);
}

TEST(Builder, MergeNeedsBagOfHandles) {
  Harness h;
  h.env["a"] = Object{Bag{Object{1}}};
  EXPECT_THROW(build_plan(scsql::parse_expression("merge(a)"), h.ctx), scsql::Error);
}

TEST(Builder, MergeEmptyBagRejected) {
  Harness h;
  h.env["a"] = Object{Bag{}};
  EXPECT_THROW(build_plan(scsql::parse_expression("merge(a)"), h.ctx), scsql::Error);
}

TEST(Builder, GenArrayArityChecked) {
  Harness h;
  EXPECT_THROW(build_plan(scsql::parse_expression("gen_array(1)"), h.ctx), scsql::Error);
  EXPECT_THROW(build_plan(scsql::parse_expression("gen_array('x', 2)"), h.ctx),
               scsql::Error);
}

TEST(Builder, NestedSpRejected) {
  Harness h;
  EXPECT_THROW(build_plan(scsql::parse_expression("count(extract(sp(gen_array(1,1))))"),
                          h.ctx),
               scsql::Error);
}

TEST(Builder, RadixCombineRequiresMergeOfTwo) {
  Harness h;
  h.env["a"] = Object{catalog::SpHandle{1, "bg"}};
  EXPECT_THROW(build_plan(scsql::parse_expression("radixcombine(extract(a))"), h.ctx),
               scsql::Error);
}

TEST(Builder, UnknownFunctionSurfacesEvalError) {
  Harness h;
  EXPECT_THROW(build_plan(scsql::parse_expression("mystery(1)"), h.ctx), scsql::Error);
}

TEST(Builder, ScalarArithmeticFoldsToConst) {
  Harness h;
  auto out = h.drain_expr("2 * 3 + 4");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as_int(), 10);
}

}  // namespace
}  // namespace scsq::plan
